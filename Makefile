# Convenience targets.  In offline environments without the `wheel`
# package, `make install` falls back to the legacy setuptools path.

.PHONY: install test test-parallel test-serve test-shard test-batch bench \
	bench-show bench-analysis bench-io bench-serve bench-scale \
	bench-batch bench-incremental bench-diff serve profile trace \
	examples report all

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

# Exercise the parallel execution path on every campaign the suite
# builds: REPRO_EXECUTOR/REPRO_WORKERS reroute each run_campaign call
# without an explicit executor through the process backend, and the
# differential equivalence tests (tests/test_executor_equivalence.py)
# run alongside as part of tests/.
test-parallel:
	REPRO_EXECUTOR=process REPRO_WORKERS=2 pytest tests/

# The serving layer end to end: e2e serving/caching/dedup plus the
# fault-injection suite (corruption repair, timeouts, backpressure,
# graceful drain).
test-serve:
	pytest tests/test_serve.py tests/test_serve_faults.py

# The sharded out-of-core pipeline: differential byte-identity against
# the monolithic build (all executor backends), shard-boundary RNG
# property tests, and the 10x-vs-1x scale-invariance check.
test-shard:
	pytest tests/test_shard_world.py tests/test_shard_world_properties.py \
		tests/test_shard_world_scale.py

# The fused trial-batch kernels: RNG lattice property tests plus the
# cell-by-cell and end-to-end byte-identity differentials against the
# per-cell planned path.
test-batch:
	pytest tests/test_batch_equivalence.py tests/test_plan_properties.py

bench:
	pytest benchmarks/ --benchmark-only

bench-show:
	pytest benchmarks/ --benchmark-only -s

# Bracket the bit-packed analysis engine against the reference path
# (multi-origin enumeration, bootstrap, full report) and run the
# packed-speedup guard; extends the BENCH_<n>.json trajectory.
bench-analysis:
	pytest benchmarks/test_perf_analysis.py --benchmark-only -s
	pytest benchmarks/test_perf_analysis.py::test_perf_packed_speedup_guard -s

# Bracket the columnar snapshot store against NDJSON, the warm world
# cache against a cold build, and the shared-memory pool handoff
# against the pickled-world initializer; extends the BENCH_<n>.json
# trajectory and runs the I/O acceptance guard.
bench-io:
	pytest benchmarks/test_perf_io.py --benchmark-only -s
	pytest benchmarks/test_perf_io.py::test_perf_io_speedup_guard -s

# Load-generate against an in-process campaign service: records
# hit/miss p50/p99 latency and warm RPS into the BENCH_<n>.json
# trajectory and asserts the warm-hit floor (p50 >= 20x cheaper than
# recompute).
bench-serve:
	pytest benchmarks/test_perf_serve.py -s

# Stream the full paper grid through the sharded pipeline: monolithic
# vs sharded at 1x and sharded at 10x (~1.2 M host rows) under the
# 512 MB memory budget; records hosts/second and per-phase peak RSS
# into the BENCH_<n>.json trajectory.
bench-scale:
	pytest benchmarks/test_perf_shard.py -s

# Bracket the fused trial-batch kernels against the per-cell grid:
# monolithic and sharded (plane-only) phases with coverage
# cross-checks; records hosts/second per phase into the BENCH_<n>.json
# trajectory and asserts the batched-streaming speedup floor on
# multi-CPU machines.
bench-batch:
	pytest benchmarks/test_perf_batch.py -s

# Bracket an add-one-origin request against the whole-campaign cold
# miss it used to be: seed the plane cache with a 7-origin run, then
# serve the 8-origin grid cold (cache off) and warm (only the added
# origin's batches dispatch); records the warm-delta speedup into the
# BENCH_<n>.json trajectory and asserts the >=5x floor on multi-CPU
# machines.
bench-incremental:
	pytest benchmarks/test_perf_incremental.py -s

# Perf-regression sentinel: compare the newest BENCH_<n>.json against
# the TRAJECTORY.json history with noise-tolerant thresholds; exits
# non-zero when any benchmark's median regresses past tolerance.
bench-diff:
	python -m repro bench diff --dir bench_artifacts

# Run the campaign service in the foreground (Ctrl-C drains).
serve:
	python -m repro serve $(SERVE_ARGS)

# cProfile the paper-scale observe() hot path (warm compiled plan) and
# print the per-stage ObserveProfile breakdown.  Pass --unplanned via
# PROFILE_ARGS to profile the reference path instead:
#   make profile PROFILE_ARGS=--unplanned
profile:
	python -m repro profile --scale 1.0 $(PROFILE_ARGS)

# Run a telemetry-instrumented campaign and render its run journal
# (span tree, manifest, top counters).
trace:
	python -m repro simulate /tmp/repro-trace --scale 0.1 \
		--telemetry /tmp/repro-trace.ndjson
	python -m repro trace /tmp/repro-trace.ndjson

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f; done

report:
	python -m repro simulate /tmp/repro-campaign --scale 0.2
	python -m repro report /tmp/repro-campaign

all: install test bench
