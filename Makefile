# Convenience targets.  In offline environments without the `wheel`
# package, `make install` falls back to the legacy setuptools path.

.PHONY: install test bench bench-show examples report all

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-show:
	pytest benchmarks/ --benchmark-only -s

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f; done

report:
	python -m repro simulate /tmp/repro-campaign --scale 0.2
	python -m repro report /tmp/repro-campaign

all: install test bench
