"""Analyzing scan data from disk — the real-data workflow.

The analysis pipeline is simulation-agnostic: it consumes campaign
datasets serialized as ndjson (one record per origin × IP observation,
the shape a ZMap + ZGrab pipeline naturally produces).  This example
round-trips a campaign through the on-disk format and runs the analyses
on the loaded copy — exactly what you would do with converted real scans.

Run:  python examples/analyze_scan_data.py [directory]
"""

import sys
import tempfile

from repro import coverage_table, paper_scenario, run_campaign
from repro.core.classification import figure2_rows
from repro.core.stats import pairwise_origin_tests
from repro.io import load_campaign, save_campaign, write_coverage_csv
from repro.reporting.tables import render_table


def main(directory: str = "") -> None:
    with tempfile.TemporaryDirectory() as fallback:
        target = directory or fallback

        # Stand-in for "your ZMap/ZGrab output converted to ndjson".
        world, origins, config = paper_scenario(seed=2, scale=0.1)
        dataset = run_campaign(world, origins, config,
                               protocols=("http",), n_trials=3)
        save_campaign(dataset, target)
        print(f"wrote campaign to {target}/ "
              f"(ndjson per trial + campaign.json manifest)")

        # From here on, everything works from disk.
        loaded = load_campaign(target)
        table = coverage_table(loaded, "http")
        print()
        print(render_table(["trial"] + table.origins + ["∩", "∪"],
                           table.rows(), title="coverage (loaded data)"))

        rows = figure2_rows(loaded, "http")
        worst = max(rows, key=lambda r: r["transient_host"])
        print(f"\nworst transient (origin, trial): "
              f"{worst['origin']}/t{worst['trial']} with "
              f"{worst['transient_host']} host-level misses")

        td = loaded.trial_data("http", 0)
        significant = sum(r.significant()
                          for r in pairwise_origin_tests(td))
        print(f"McNemar: {significant} origin pairs differ "
              f"significantly in trial 1")

        write_coverage_csv(loaded, f"{target}/coverage.csv")
        print(f"coverage summary exported to {target}/coverage.csv")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "")
