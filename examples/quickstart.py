"""Quickstart: simulate a synchronized multi-origin scan and analyze it.

Builds a small synthetic Internet, runs the paper's experiment shape
(3 trials × HTTP/HTTPS/SSH from 8 origin configurations), and prints the
headline analyses: per-origin coverage (Figure 1), the missing-host
breakdown (Figure 2), and the single- vs multi-origin medians (§7).

Run:  python examples/quickstart.py [seed]
"""

import sys

from repro import (
    coverage_table,
    median_single_origin_coverage,
    multi_origin_table,
    paper_scenario,
    run_campaign,
)
from repro.core.classification import figure2_rows
from repro.reporting.figures import render_bars
from repro.reporting.tables import render_table


def main(seed: int = 0) -> None:
    # scale=0.2 keeps the run under a couple of seconds; scale=1.0 is the
    # full 1/1000-of-the-Internet world the benchmarks use.
    world, origins, config = paper_scenario(seed=seed, scale=0.2)
    print(f"world: {world.hosts.counts_by_protocol()} services in "
          f"{len(world.topology.ases)} ASes")

    dataset = run_campaign(world, origins, config, n_trials=3)

    for protocol in ("http", "https", "ssh"):
        table = coverage_table(dataset, protocol)
        means = {o: table.mean_coverage(o) for o in table.origins}
        print()
        print(render_bars(means,
                          title=f"[Figure 1] {protocol} mean coverage"))

    print()
    rows = []
    for row in figure2_rows(dataset, "http"):
        rows.append([f"{row['origin']}/t{row['trial']}",
                     row["transient_host"] + row["transient_network"],
                     row["long_term_host"] + row["long_term_network"],
                     row["unknown"]])
    print(render_table(["origin/trial", "transient", "long-term",
                        "unknown"], rows,
                       title="[Figure 2] missing hosts by category"))

    print()
    one = median_single_origin_coverage(dataset, "http",
                                        single_probe=True)
    table = multi_origin_table(dataset, "http", max_k=3,
                               single_probe=True)
    print("[§7] single-probe HTTP coverage medians:")
    print(f"  1 origin : {one:.2%}")
    print(f"  2 origins: {table[2].median:.2%}")
    print(f"  3 origins: {table[3].median:.2%}  (σ = {table[3].std:.3%})")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 0)
