"""Quickstart: run campaigns behind the serving layer.

Starts an in-process campaign service (the same server `repro serve`
runs in the foreground), then demonstrates its contract:

* the first request computes a campaign and caches the report;
* the identical re-request is a content-addressed cache hit (~3 ms);
* concurrent identical requests are deduplicated into one execution;
* the served bytes equal the offline pipeline's report exactly.

Run:  python examples/serve_quickstart.py [seed]
"""

import concurrent.futures
import sys
import tempfile
import time

from repro import paper_scenario, run_campaign
from repro.core.report import full_report
from repro.serve.client import ServeClient
from repro.serve.server import ServeConfig, ThreadedServer

SCALE = 0.05


def main(seed: int = 3) -> None:
    with tempfile.TemporaryDirectory() as cache_dir, \
            ThreadedServer(ServeConfig(port=0,
                                       cache_dir=cache_dir)) as ts:
        client = ServeClient(port=ts.port)
        print(f"serving on http://127.0.0.1:{ts.port}  "
              f"(healthz: {client.healthz()['status']})")

        start = time.perf_counter()
        cold = client.report(seed=seed, scale=SCALE)
        cold_s = time.perf_counter() - start
        print(f"cold request:  {cold_s * 1e3:7.0f} ms  "
              f"source={cold.source}  key={cold.key[:12]}…")

        start = time.perf_counter()
        warm = client.report(seed=seed, scale=SCALE)
        warm_s = time.perf_counter() - start
        print(f"warm request:  {warm_s * 1e3:7.1f} ms  "
              f"source={warm.source}  identical={warm.text == cold.text}")

        with concurrent.futures.ThreadPoolExecutor(4) as pool:
            futures = [pool.submit(client.report, seed=seed + 1,
                                   scale=SCALE) for _ in range(4)]
            burst = [f.result() for f in futures]
        counters = client.metrics()["counters"]
        print(f"4 concurrent identical requests -> "
              f"{int(counters['serve.cache_miss']) - 1} extra execution(s), "
              f"{int(counters.get('serve.dedup_joined', 0))} joined, "
              f"{len({r.text for r in burst})} unique report(s)")

        world, origins, config = paper_scenario(seed=seed, scale=SCALE)
        offline = full_report(run_campaign(world, origins, config))
        print(f"served == offline full_report: {cold.text == offline}")

        for line in cold.text.splitlines()[:6]:
            print(f"    {line}")
        print("    …")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
