"""Vantage-point planning: how many origins do you need, and which?

The paper's practical advice (§7): 2–3 sufficiently diverse origins give
98–99 % coverage with tiny variance; the best combination is *not* the
combination of the best singles; and one probe from three origins beats
two probes from two while costing less bandwidth.

This example reproduces that planning exercise end-to-end: it ranks
single origins, pairs, and triads, and prints the probes-vs-origins
trade-off so a scanning team can size their deployment.

Run:  python examples/vantage_point_planning.py
"""

from repro import multi_origin_table, paper_scenario, run_campaign
from repro.core.multi_origin import (
    best_combination,
    probe_origin_tradeoff,
)
from repro.core.planning import diminishing_returns_k, recommend_origins
from repro.reporting.tables import render_table


def main() -> None:
    world, origins, config = paper_scenario(seed=3, scale=0.25)
    dataset = run_campaign(world, origins, config,
                           protocols=("http",), n_trials=3)

    table = multi_origin_table(dataset, "http", single_probe=True)
    rows = [[k, f"{s.median:.2%}", f"{s.minimum:.2%}", f"{s.std:.3%}"]
            for k, s in table.items()]
    print(render_table(["#origins", "median", "worst combo", "σ"], rows,
                       title="Single-probe HTTP coverage by origin count"))

    print()
    for k in (1, 2, 3):
        combo, coverage = best_combination(dataset, "http", k,
                                           single_probe=True)
        print(f"best {k}-origin set: {' + '.join(combo):24s} "
              f"→ {coverage:.2%}")

    best_single, _ = best_combination(dataset, "http", 1,
                                      single_probe=True)
    best_pair, _ = best_combination(dataset, "http", 2,
                                    single_probe=True)
    if best_single[0] not in best_pair:
        print(f"note: the best single origin ({best_single[0]}) is not "
              f"in the best pair — diversity beats individual strength")

    print()
    plan = recommend_origins(dataset, "http", single_probe=True)
    rows = [[i + 1, step.origin, f"{step.coverage_after:.2%}",
             f"+{step.marginal_gain:.2%}"]
            for i, step in enumerate(plan.steps)]
    print(render_table(["k", "add origin", "coverage", "gain"], rows,
                       title="Greedy origin plan (§7's advice as code)"))
    k = diminishing_returns_k(plan)
    print(f"diminishing returns after k = {k} origins")

    print()
    tradeoff = probe_origin_tradeoff(dataset, "http")
    rows = [
        ["1 probe × 1 origin", f"{tradeoff['1probe_1origin']:.2%}", "1×"],
        ["2 probes × 1 origin", f"{tradeoff['2probe_1origin']:.2%}",
         "2×"],
        ["1 probe × 2 origins", f"{tradeoff['1probe_2origin']:.2%}",
         "2×"],
        ["2 probes × 2 origins", f"{tradeoff['2probe_2origin']:.2%}",
         "4×"],
        ["1 probe × 3 origins", f"{tradeoff['1probe_3origin']:.2%}",
         "3×"],
    ]
    print(render_table(["configuration", "median coverage", "bandwidth"],
                       rows, title="Probes vs origins (§7)"))


if __name__ == "__main__":
    main()
