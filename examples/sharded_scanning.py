"""Sharded scanning: splitting one scan across cooperating machines.

ZMap's ``--shards`` lets N machines cover the address space exactly once
by walking every N-th element of the shared permutation.  This example
shows the property end-to-end on the simulator: four shards of one origin
jointly observe (almost) exactly what a single unsharded scanner does —
"almost" because each shard finishes in a quarter of the time, so
time-dependent behaviour (IDS detection, Alibaba blocking, burst windows)
lands differently.

Run:  python examples/sharded_scanning.py
"""

import dataclasses

import numpy as np

from repro import paper_scenario
from repro.core.records import L7Status
from repro.reporting.tables import render_table
from repro.scanner.zmap import ZMapScanner


def main() -> None:
    world, origins, config = paper_scenario(seed=6, scale=0.15)
    us1 = next(o for o in origins if o.name == "US1")
    names = tuple(o.name for o in origins)

    # One full scan...
    full = world.observe("http", 0, us1, ZMapScanner(config), names)

    # ...versus four cooperating shards.
    shard_obs = []
    for shard in range(4):
        cfg = dataclasses.replace(config, shard=shard, n_shards=4)
        shard_obs.append(world.observe("http", 0, us1,
                                       ZMapScanner(cfg), names))

    shard_ips = np.concatenate([o.ip for o in shard_obs])
    shard_l7 = np.concatenate([o.l7 for o in shard_obs])
    order = np.argsort(shard_ips)
    shard_ips = shard_ips[order]
    shard_l7 = shard_l7[order]

    rows = [
        ["services scanned", len(full), len(shard_ips)],
        ["distinct IPs", len(np.unique(full.ip)),
         len(np.unique(shard_ips))],
        ["L7 successes",
         int((full.l7 == int(L7Status.SUCCESS)).sum()),
         int((shard_l7 == int(L7Status.SUCCESS)).sum())],
    ]
    print(render_table(["metric", "1 scanner", "4 shards"], rows,
                       title="Sharded vs unsharded scan (US1, http)"))

    assert np.array_equal(np.unique(shard_ips), full.ip), \
        "shards must partition the target set exactly"
    overlap = sum(
        np.intersect1d(a.ip, b.ip).size
        for i, a in enumerate(shard_obs) for b in shard_obs[i + 1:])
    print(f"\ncross-shard target overlap: {overlap} (must be 0)")

    agree = float((shard_l7 == full.l7).mean())
    print(f"per-service outcome agreement: {agree:.1%} "
          f"(differences come from shards probing hosts at different "
          f"times)")


if __name__ == "__main__":
    main()
