"""The §6 SSH retry experiment (Figure 13).

OpenSSH's ``MaxStartups`` makes daemons refuse connections
probabilistically under concurrent unauthenticated load, so synchronized
scans miss hosts that are perfectly alive.  The paper shows that simply
retrying the handshake — each attempt is an independent draw — recovers
~90 % of refusing hosts within eight tries.

This example re-runs that experiment against the simulated world: it
finds the ASes with the most transiently missed SSH hosts, then rescans
their hosts from US1 with an increasing retry budget.

Run:  python examples/ssh_retry_experiment.py
"""

import numpy as np

from repro import paper_scenario, run_campaign
from repro.core.transient import transient_rates
from repro.scanner.retry import RetryProber
from repro.reporting.tables import render_table


def main() -> None:
    world, origins, config = paper_scenario(seed=7, scale=0.3)
    dataset = run_campaign(world, origins, config, protocols=("ssh",),
                           n_trials=3)

    # Pick candidate networks the way the paper does: the ASes with the
    # most transiently missed SSH hosts.
    rates = transient_rates(dataset, "ssh")
    missing_per_as = rates.missing.sum(axis=(0, 1))
    candidates = np.argsort(missing_per_as)[::-1][:5]

    us1 = next(o for o in origins if o.name == "US1")
    prober = RetryProber(world, us1, trial=0)
    view = world.hosts.for_protocol("ssh")

    rows = []
    curves = []
    for as_index in candidates:
        system = world.topology.ases.by_index(int(as_index))
        ips = view.ip[view.as_index == as_index]
        if len(ips) < 10:
            continue
        curve = prober.curve(ips, system.name)
        curves.append(curve)
        rows.append([system.name, len(ips)]
                    + [f"{v:.2f}" for v in curve.success_fraction])

    attempts = curves[0].max_attempts
    print(render_table(
        ["AS", "hosts"] + [f"≤{k}" for k in attempts], rows,
        title="Figure 13 — SSH handshake success vs retry budget (US1)"))

    print()
    for curve in curves:
        gain = curve.success_fraction[-1] - curve.success_fraction[0]
        if gain > 0.15:
            print(f"{curve.label}: retrying recovered "
                  f"{gain:.0%} of responding hosts — MaxStartups-style "
                  f"probabilistic blocking")


if __name__ == "__main__":
    main()
