"""Comparing two campaigns: did re-IP'ing the scanner help?

The paper's follow-up experiment found that Censys' fresh IP range
recovered more than 5 % of HTTP coverage — the reputation firewalls keyed
on its old range simply didn't know the new one.  This example runs both
campaigns and uses `repro.core.compare` to quantify, per origin and per
AS, what changed.

Run:  python examples/compare_campaigns.py
"""

from repro import paper_scenario, run_campaign
from repro.core.compare import compare_coverage, compare_visibility
from repro.reporting.tables import render_table
from repro.sim.scenario import followup_scenario

SCALE = 0.25


def main() -> None:
    world, origins, config = paper_scenario(seed=4, scale=SCALE)
    before = run_campaign(world, origins, config, protocols=("http",),
                          n_trials=2)

    fworld, forigins, fconfig = followup_scenario(seed=4, scale=SCALE)
    after = run_campaign(fworld, forigins, fconfig,
                         protocols=("http",), n_trials=2)

    delta = compare_coverage(before, after, "http")
    rows = [[o, f"{b:.2%}", f"{a:.2%}", f"{d:+.2%}"]
            for o, (b, a, d) in delta.by_origin.items()]
    print(render_table(["origin", "2019 range", "2020 range", "Δ"],
                       rows,
                       title="Coverage: main experiment vs follow-up"))
    print(f"\nbiggest gain: {delta.biggest_gain()} "
          f"({delta.by_origin[delta.biggest_gain()][2]:+.2%})")

    # Which networks did Censys get back?
    asn_before = {s.index: s.asn for s in world.topology.ases}
    asn_after = {s.index: s.asn for s in fworld.topology.ases}
    visibility = compare_visibility(before, after, "http", "CEN",
                                    asn_before, asn_after)
    recovered = visibility.recovered()
    name_of = {s.asn: s.name for s in world.topology.ases}
    print(f"\nASes recovered by the fresh Censys range "
          f"({len(recovered)}):")
    for asn in recovered[:8]:
        b, a = visibility.by_asn[asn]
        print(f"  {name_of.get(asn, f'AS{asn}'):32s} "
              f"{b:.0%} → {a:.0%}")


if __name__ == "__main__":
    main()
