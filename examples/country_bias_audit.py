"""Country-bias audit: how much of each country does my origin miss?

§4.4's warning made actionable: before publishing per-country statistics
from a single-origin scan, check how much of each country that origin
cannot see at all — a single ISP's blocking decision can hide 40 %+ of a
country (Bangladesh from Censys in the paper).

Run:  python examples/country_bias_audit.py [origin]
"""

import sys

import numpy as np

from repro import paper_scenario, run_campaign
from repro.core.countries import country_inaccessibility
from repro.reporting.tables import render_table


def main(origin_name: str = "CEN") -> None:
    world, origins, config = paper_scenario(seed=5, scale=0.5)
    dataset = run_campaign(world, origins, config, protocols=("http",),
                           n_trials=3)
    report = country_inaccessibility(dataset, "http")
    if origin_name not in report.origins:
        raise SystemExit(f"unknown origin {origin_name!r}; "
                         f"pick one of {report.origins}")

    codes = world.topology.countries.codes()
    fractions = report.for_origin(origin_name)
    oi = report.origins.index(origin_name)

    rows = []
    for ci in np.argsort(fractions)[::-1]:
        if fractions[ci] < 0.02 or report.totals[ci] < 20:
            continue
        rows.append([codes[ci], int(report.totals[ci]),
                     f"{fractions[ci]:.1%}",
                     int(report.concentration[oi, ci])])
    print(render_table(
        ["country", "hosts", "long-term missed", "#ASes ≥ majority"],
        rows,
        title=f"Country-level blind spots of origin {origin_name} "
              f"(http, ≥2%)"))

    if rows:
        print()
        print("Interpretation: a small '#ASes' value means one or two "
              "providers' blocking decisions cause the loss — per-country")
        print("statistics from this origin will be biased for the "
              "countries above; add a second, diverse origin to recover "
              "them.")
    else:
        print(f"origin {origin_name} has no >2% country-level blind "
              f"spots in this world")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "CEN")
