"""Scan origin (vantage point) definitions.

A scan origin bundles everything destination networks can react to: where
the scanner sits, how many source IPs it uses, how fast it sends, and its
scanning *reputation* (how much the address range has scanned before).  The
paper shows all of these matter: Censys' reputation triggers blocking, the
64-IP US origin evades rate-based IDSes, Australia's paths are lossy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class Origin:
    """One scanning vantage point.

    ``reputation`` is an abstract "scans per month from this address range"
    score; destination reputation firewalls compare it against their own
    thresholds.  ``drift`` models the scanner falling behind the shared
    schedule (the paper's AU/BR scanners lagged up to 2 h by scan end).
    """

    name: str                  # short label used everywhere: "AU", "US64"…
    country: str               # ISO code of the hosting network
    continent: str
    kind: str = "academic"     # academic | commercial | cloud
    n_source_ips: int = 1
    pps: float = 100_000.0     # aggregate packets/sec across all source IPs
    reputation: float = 0.0    # prior scanning volume of the address range
    drift: float = 0.0         # fractional schedule lag (0.02 → 2 % slower)
    trials: Optional[Tuple[int, ...]] = None  # None → participates in all
    #: Distinguishes otherwise-identical origins (e.g. the three colocated
    #: Tier-1 providers in the follow-up experiment).
    upstream: str = ""
    #: Origins sharing a ``path_group`` sit in the same physical location
    #: and share path *state* (loss epochs, congestion windows) even though
    #: they are distinct origins — the US1/US64 pair and the colocated
    #: Chicago Tier-1 triad.  Empty means the origin is its own group.
    path_group: str = ""

    @property
    def state_group(self) -> str:
        """The key under which this origin's path state is drawn."""
        return self.path_group or self.name

    def __post_init__(self) -> None:
        if self.n_source_ips < 1:
            raise ValueError("an origin needs at least one source IP")
        if self.pps <= 0:
            raise ValueError("pps must be positive")
        if self.drift < 0:
            raise ValueError("drift must be non-negative")

    @property
    def per_ip_pps(self) -> float:
        """Send rate per source IP — what per-IP rate IDSes observe."""
        return self.pps / self.n_source_ips

    def participates(self, trial: int) -> bool:
        """Whether this origin scans in the given trial."""
        return self.trials is None or trial in self.trials


def paper_origins() -> Tuple[Origin, ...]:
    """The seven origin configurations of the main experiment (§2).

    Reputation scores follow the paper's description: the Censys range
    scans continuously (≥106× the academic origins); AU/DE have run
    individual scans; the US /24 commonly scans even though the specific
    IPs are fresh; JP/BR (and their /24s) have never scanned; Carinet is a
    cloud provider used by Project Sonar, present only in trial 1.
    """
    return (
        Origin("AU", "AU", "OC", reputation=2.0, drift=0.04),
        Origin("BR", "BR", "SA", reputation=0.0, drift=0.03),
        Origin("DE", "DE", "EU", reputation=2.0),
        Origin("JP", "JP", "AS", reputation=0.0),
        Origin("US1", "US", "NA", reputation=5.0,
               path_group="us-stanford"),
        Origin("US64", "US", "NA", reputation=5.0, n_source_ips=64,
               path_group="us-stanford"),
        Origin("CEN", "US", "NA", kind="commercial", reputation=500.0),
        Origin("CARINET", "US", "NA", kind="cloud", reputation=20.0,
               trials=(0,)),
    )


def followup_origins() -> Tuple[Origin, ...]:
    """Origins of the follow-up colocated Tier-1 experiment (§7).

    Three fresh /24s in the same Chicago data center, each behind a
    different Tier-1 transit provider, alongside five of the original
    origins.  Censys appears with a *fresh* IP range (reputation reset),
    matching the paper's observation that re-IP'ing recovered >5 % HTTP
    coverage.
    """
    return (
        Origin("AU", "AU", "OC", reputation=2.0, drift=0.04),
        Origin("DE", "DE", "EU", reputation=2.0),
        Origin("JP", "JP", "AS", reputation=0.0),
        Origin("US1", "US", "NA", reputation=5.0),
        Origin("CEN", "US", "NA", kind="commercial", reputation=5.0),
        Origin("HE", "US", "NA", kind="commercial", upstream="hurricane",
               path_group="chicago-equinix"),
        Origin("NTT", "US", "NA", kind="commercial", upstream="ntt",
               path_group="chicago-equinix"),
        Origin("TELIA", "US", "NA", kind="commercial", upstream="telia",
               path_group="chicago-equinix"),
    )
