"""AS-level connectivity graph and topological distance (§5, §7).

The paper repeatedly tested the intuition that scanning *topologically
closer* to a destination improves visibility — and found it doesn't:
"hypotheses based on topological and regional distance, publicly visible
peering relationships, traceroute results, and packet drop rarely panned
out" (§7).  To reproduce that negative result we need a notion of
topological distance at all, so this module builds a plausible AS-level
graph over the synthetic topology:

* a small clique of Tier-1 transit providers forms the core;
* every AS multi-homes to 1–3 Tier-1s (clouds/CDNs to more), with a
  regional bias so continental structure exists;
* each scan origin attaches to the Tier-1s serving its continent.

Distances are shortest-path hop counts via networkx.  The
``distance_vs_transient`` analysis then measures whether hop count
predicts per-AS transient loss — in both the paper and this model, it
does not, because loss lives in specific paths and policies rather than
hop counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.origins import Origin
from repro.rng import CounterRNG
from repro.topology.asn import ASKind
from repro.topology.generator import Topology

#: Tier-1 backbone nodes and the continents they primarily serve.
TIER1_REGIONS = {
    "T1-NA-1": "NA", "T1-NA-2": "NA",
    "T1-EU-1": "EU", "T1-EU-2": "EU",
    "T1-AS-1": "AS", "T1-AS-2": "AS",
    "T1-SA-1": "SA", "T1-OC-1": "OC",
}


@dataclass
class ASGraph:
    """The AS-level graph plus lookup tables."""

    graph: "nx.Graph"
    #: AS index → graph node name.
    as_node: Dict[int, str]
    #: Origin name → graph node name.
    origin_node: Dict[str, str]

    def distance(self, origin_name: str, as_index: int) -> int:
        """Shortest-path hop count from an origin to an AS."""
        return nx.shortest_path_length(
            self.graph, self.origin_node[origin_name],
            self.as_node[as_index])

    def distances_from(self, origin_name: str) -> Dict[int, int]:
        """Hop counts from one origin to every AS."""
        lengths = nx.single_source_shortest_path_length(
            self.graph, self.origin_node[origin_name])
        return {as_index: lengths[node]
                for as_index, node in self.as_node.items()
                if node in lengths}


def build_as_graph(topology: Topology, origins: Sequence[Origin],
                   seed: int = 0) -> ASGraph:
    """Construct the synthetic AS-level graph."""
    rng = CounterRNG(seed, "as-graph")
    graph = nx.Graph()

    tier1 = list(TIER1_REGIONS)
    graph.add_nodes_from(tier1)
    # Tier-1s form a (nearly) full mesh — the default-free zone.
    for i, a in enumerate(tier1):
        for b in tier1[i + 1:]:
            graph.add_edge(a, b)

    continent_of = {c.code: c.continent for c in topology.countries}

    def tier1s_for(continent: str) -> List[str]:
        local = [name for name, region in TIER1_REGIONS.items()
                 if region == continent]
        return local if local else ["T1-NA-1"]

    as_node: Dict[int, str] = {}
    for system in topology.ases:
        node = f"AS{system.asn}"
        graph.add_node(node)
        as_node[system.index] = node
        continent = continent_of.get(system.country, "NA")
        local = tier1s_for(continent)
        # Everyone homes to one local Tier-1...
        first = rng.choice(local, "home", system.index)
        graph.add_edge(node, first)
        # ...and bigger/multihomed networks buy extra transit anywhere.
        extra = 2 if system.kind in (ASKind.CLOUD, ASKind.CDN) else \
            (1 if rng.bernoulli(0.35, "multi", system.index) else 0)
        for k in range(extra):
            other = rng.choice(tier1, "extra", system.index, k)
            graph.add_edge(node, other)

    origin_node: Dict[str, str] = {}
    for origin in origins:
        node = f"ORIGIN-{origin.name}"
        graph.add_node(node)
        origin_node[origin.name] = node
        for upstream in tier1s_for(origin.continent):
            graph.add_edge(node, upstream)

    return ASGraph(graph=graph, as_node=as_node,
                   origin_node=origin_node)


def distance_vs_transient(as_graph: ASGraph, rates,
                          min_hosts: float = 10.0
                          ) -> Dict[str, Tuple[float, float]]:
    """Per-origin Spearman between hop count and transient loss rate.

    ``rates`` is a :class:`repro.core.transient.TransientRates`.  The
    paper's (negative) finding is |ρ| ≈ 0: scanning closer does not
    reduce transient loss.
    """
    from repro.core.stats import spearman

    present_mean = rates.present.mean(axis=0)
    eligible = np.flatnonzero(present_mean >= min_hosts)
    mean_rates = rates.mean_rates()

    out: Dict[str, Tuple[float, float]] = {}
    for oi, origin in enumerate(rates.origins):
        if origin not in as_graph.origin_node:
            continue
        lengths = as_graph.distances_from(origin)
        xs, ys = [], []
        for a in eligible:
            if int(a) in lengths:
                xs.append(lengths[int(a)])
                ys.append(mean_rates[oi, a])
        out[origin] = spearman(np.array(xs, dtype=float),
                               np.array(ys, dtype=float))
    return out
