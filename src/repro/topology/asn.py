"""Autonomous systems: specs, instances, and the AS registry.

An :class:`ASSpec` is the declarative description of one network — its
country, size, and every behaviour the paper attributes to networks of its
kind (reputation firewalls, regional policies, rate IDSes, temporal
blocking, MaxStartups prevalence, path-loss profile, burst-outage profile,
L7 flakiness).  The topology generator turns specs into placed
:class:`AutonomousSystem` instances with allocated prefixes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.blocking.firewall import ReputationFirewallSpec, StaticBlockSpec
from repro.blocking.flaky import L7FlakySpec
from repro.blocking.ids import RateIDSSpec
from repro.blocking.maxstartups import MaxStartupsSpec
from repro.blocking.regional import RegionalPolicySpec
from repro.blocking.temporal import TemporalRSTSpec
from repro.conditions.loss import PathLossSpec
from repro.conditions.outages import BurstOutageSpec
from repro.net.ipv4 import IPv4Network

#: Protocols studied by the paper, in its canonical order.
PROTOCOLS = ("http", "https", "ssh")


class ASKind(enum.Enum):
    """Coarse network type, used by the analyses that group by industry."""

    HOSTING = "hosting"
    ISP = "isp"
    CLOUD = "cloud"
    CDN = "cdn"
    ACADEMIC = "academic"
    GOVERNMENT = "government"
    ENTERPRISE = "enterprise"
    FINANCIAL = "financial"
    HEALTHCARE = "healthcare"
    UTILITY = "utility"
    MEDIA = "media"


@dataclass(frozen=True)
class ASSpec:
    """Declarative description of one autonomous system.

    ``hosts`` maps protocol name → number of listening hosts.  All the
    behaviour fields default to "plain network": no blocking, near-zero
    loss, no outages.
    """

    name: str
    country: str
    kind: ASKind = ASKind.HOSTING
    hosts: Dict[str, int] = field(default_factory=dict)
    #: Preferred ASN; auto-assigned when None.
    asn: Optional[int] = None
    #: GeoIP misattribution: the country this AS's prefixes *appear* to be
    #: in (the Cloudflare anycast case); None means truthful geolocation.
    geolocates_to: Optional[str] = None
    #: Average listening hosts per populated /24 (controls how many /24s
    #: the AS occupies and therefore the network-vs-host analyses).
    hosts_per_slash24: float = 8.0

    # Blocking behaviours (all optional).
    reputation_firewall: Optional[ReputationFirewallSpec] = None
    static_block: Optional[StaticBlockSpec] = None
    regional_policy: Optional[RegionalPolicySpec] = None
    rate_ids: Optional[RateIDSSpec] = None
    temporal_rst: Optional[TemporalRSTSpec] = None
    maxstartups: Optional[MaxStartupsSpec] = None
    l7_flaky: Optional[L7FlakySpec] = None

    # Path conditions.
    path_loss: Optional[PathLossSpec] = None
    burst_outages: Optional[BurstOutageSpec] = None

    def total_hosts(self) -> int:
        return sum(self.hosts.values())

    def hosts_for(self, protocol: str) -> int:
        return self.hosts.get(protocol, 0)


@dataclass
class AutonomousSystem:
    """A placed AS: an :class:`ASSpec` plus its ASN, index, and prefixes."""

    index: int           # dense index used in columnar host arrays
    asn: int             # the AS number
    spec: ASSpec
    prefixes: List[IPv4Network] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def country(self) -> str:
        return self.spec.country

    @property
    def kind(self) -> ASKind:
        return self.spec.kind

    def total_addresses(self) -> int:
        return sum(p.num_addresses for p in self.prefixes)


class ASRegistry:
    """An indexed set of autonomous systems."""

    def __init__(self) -> None:
        self._systems: List[AutonomousSystem] = []
        self._by_asn: Dict[int, int] = {}
        self._by_name: Dict[str, int] = {}
        self._next_asn = 64512  # start auto-assignment in private space

    def add(self, spec: ASSpec) -> AutonomousSystem:
        """Place ``spec`` and return the new :class:`AutonomousSystem`."""
        asn = spec.asn
        if asn is None:
            asn = self._next_asn
            while asn in self._by_asn:
                asn += 1
        if asn in self._by_asn:
            raise ValueError(f"duplicate ASN {asn}")
        if spec.name in self._by_name:
            raise ValueError(f"duplicate AS name {spec.name!r}")
        self._next_asn = max(self._next_asn, asn + 1)
        system = AutonomousSystem(index=len(self._systems), asn=asn,
                                  spec=spec)
        self._systems.append(system)
        self._by_asn[asn] = system.index
        self._by_name[spec.name] = system.index
        return system

    def by_index(self, index: int) -> AutonomousSystem:
        return self._systems[index]

    def by_asn(self, asn: int) -> AutonomousSystem:
        return self._systems[self._by_asn[asn]]

    def by_name(self, name: str) -> AutonomousSystem:
        return self._systems[self._by_name[name]]

    def __len__(self) -> int:
        return len(self._systems)

    def __iter__(self) -> Iterator[AutonomousSystem]:
        return iter(self._systems)

    def names(self) -> List[str]:
        return [s.name for s in self._systems]
