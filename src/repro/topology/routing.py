"""IP → origin-AS attribution (the routing-table snapshot).

The paper snapshots a routing table from the U.S. origin at the start of
each trial and uses it to attribute responding IPs to origin ASes.  Our
stand-in maps every allocated prefix to its AS via a longest-prefix-match
trie, with a vectorized path for attributing whole host tables at once.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.net.trie import PrefixTrie
from repro.topology.asn import ASRegistry, AutonomousSystem


class RoutingTable:
    """Longest-prefix-match IP → AS attribution."""

    def __init__(self, registry: ASRegistry) -> None:
        self.registry = registry
        self._trie = PrefixTrie()
        for system in registry:
            for prefix in system.prefixes:
                self._trie.insert(prefix, system.index)

    def lookup(self, ip: int) -> Optional[AutonomousSystem]:
        """The AS announcing the most specific prefix covering ``ip``."""
        index = self._trie.lookup(ip, default=-1)
        return None if index < 0 else self.registry.by_index(index)

    def lookup_asn(self, ip: int) -> Optional[int]:
        system = self.lookup(ip)
        return None if system is None else system.asn

    def as_index_array(self, ips: np.ndarray) -> np.ndarray:
        """Vectorized attribution → dense AS indices (-1 when unrouted)."""
        raw = self._trie.lookup_index_array(ips)
        values = self._trie.compiled_values()
        table = np.array(values + [-1], dtype=np.int64)
        return table[raw]

    def __len__(self) -> int:
        return len(self._trie)
