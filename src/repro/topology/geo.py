"""Countries, continents, and IP geolocation.

The paper uses MaxMind GeoIP2 Lite to geolocate hosts.  Our stand-in is a
prefix-trie database built from the topology's own prefix allocations —
with optional deliberate *misattributions* to model the anycast/geolocation
errors the paper encounters (§4.4: hosts "exclusively accessible from
Australia" that geolocate to the US/EU because Cloudflare anycasts them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.net.ipv4 import IPv4Network
from repro.net.trie import PrefixTrie

#: Continent codes used throughout (paper origins cover all but AF/AN).
CONTINENTS = ("AF", "AN", "AS", "EU", "NA", "OC", "SA")


@dataclass(frozen=True)
class Country:
    """A country (or dependent territory) in the synthetic world."""

    code: str        # ISO-3166 alpha-2, e.g. "JP"
    name: str
    continent: str   # one of CONTINENTS

    def __post_init__(self) -> None:
        if len(self.code) != 2 or not self.code.isupper():
            raise ValueError(f"invalid country code: {self.code!r}")
        if self.continent not in CONTINENTS:
            raise ValueError(f"invalid continent: {self.continent!r}")


class CountryRegistry:
    """An indexed set of countries.

    Countries are referenced by dense integer index in the columnar host
    table, and by ISO code everywhere user-facing.
    """

    def __init__(self) -> None:
        self._countries: List[Country] = []
        self._by_code: Dict[str, int] = {}

    def add(self, country: Country) -> int:
        """Register ``country`` and return its dense index (idempotent)."""
        existing = self._by_code.get(country.code)
        if existing is not None:
            return existing
        index = len(self._countries)
        self._countries.append(country)
        self._by_code[country.code] = index
        return index

    def index_of(self, code: str) -> int:
        return self._by_code[code]

    def get(self, code: str) -> Country:
        return self._countries[self._by_code[code]]

    def by_index(self, index: int) -> Country:
        return self._countries[index]

    def __contains__(self, code: str) -> bool:
        return code in self._by_code

    def __len__(self) -> int:
        return len(self._countries)

    def __iter__(self) -> Iterator[Country]:
        return iter(self._countries)

    def codes(self) -> List[str]:
        return [c.code for c in self._countries]


class GeoIPDatabase:
    """Prefix → country geolocation with deliberate error support.

    ``true_country`` lookups reflect where the topology actually placed the
    prefix; ``geolocate`` lookups reflect what a GeoIP database would say,
    which may differ for prefixes registered with a misattribution (the
    anycast case).  Analyses use :meth:`geolocate`, exactly as the paper
    relies on MaxMind rather than ground truth.
    """

    def __init__(self, registry: CountryRegistry) -> None:
        self.registry = registry
        self._true = PrefixTrie()
        self._observed = PrefixTrie()
        # Compiled value-index → country-index translation tables, cached
        # per trie version (rebuilding them per lookup call was a
        # measurable cost in the observe() hot path).
        self._true_table: Optional[Tuple[int, np.ndarray]] = None
        self._observed_table: Optional[Tuple[int, np.ndarray]] = None

    @property
    def version(self) -> Tuple[int, int]:
        """Mutation counter pair; changes whenever a prefix is added.

        Observation plans record this at build time so a mutated database
        invalidates their cached geolocation arrays.
        """
        return (self._true.version, self._observed.version)

    def add_prefix(self, network: IPv4Network, country_code: str,
                   geolocates_to: Optional[str] = None) -> None:
        """Register a prefix's true and observed (GeoIP) country."""
        true_idx = self.registry.index_of(country_code)
        observed_code = geolocates_to or country_code
        observed_idx = self.registry.index_of(observed_code)
        self._true.insert(network, true_idx)
        self._observed.insert(network, observed_idx)

    def true_country(self, ip: int) -> Optional[Country]:
        idx = self._true.lookup(ip, default=-1)
        return None if idx < 0 else self.registry.by_index(idx)

    def geolocate(self, ip: int) -> Optional[Country]:
        idx = self._observed.lookup(ip, default=-1)
        return None if idx < 0 else self.registry.by_index(idx)

    def geolocate_index_array(self, ips: np.ndarray) -> np.ndarray:
        """Vectorized GeoIP lookup → country indices (-1 when unknown)."""
        raw = self._observed.lookup_index_array(ips)
        cached = self._observed_table
        if cached is None or cached[0] != self._observed.version:
            values = self._observed.compiled_values()
            cached = (self._observed.version,
                      np.array(values + [-1], dtype=np.int64))
            self._observed_table = cached
        return cached[1][raw]

    def true_index_array(self, ips: np.ndarray) -> np.ndarray:
        """Vectorized true-location lookup → country indices."""
        raw = self._true.lookup_index_array(ips)
        cached = self._true_table
        if cached is None or cached[0] != self._true.version:
            values = self._true.compiled_values()
            cached = (self._true.version,
                      np.array(values + [-1], dtype=np.int64))
            self._true_table = cached
        return cached[1][raw]


def default_countries() -> List[Country]:
    """The country set used by the paper scenario.

    Covers every country named in the paper's tables and figures plus the
    origin countries; host-count weights live in the scenario, not here.
    """
    rows = [
        ("US", "United States", "NA"), ("CN", "China", "AS"),
        ("RU", "Russia", "EU"), ("JP", "Japan", "AS"),
        ("DE", "Germany", "EU"), ("BR", "Brazil", "SA"),
        ("AU", "Australia", "OC"), ("IT", "Italy", "EU"),
        ("HK", "Hong Kong", "AS"), ("GB", "Great Britain", "EU"),
        ("FR", "France", "EU"), ("NL", "Netherlands", "EU"),
        ("KR", "South Korea", "AS"), ("ZA", "South Africa", "AF"),
        ("BD", "Bangladesh", "AS"), ("EE", "Estonia", "EU"),
        ("UA", "Ukraine", "EU"), ("RO", "Romania", "EU"),
        ("KZ", "Kazakhstan", "AS"), ("AR", "Argentina", "SA"),
        ("AT", "Austria", "EU"), ("VE", "Venezuela", "SA"),
        ("EC", "Ecuador", "SA"), ("AM", "Armenia", "AS"),
        ("AL", "Albania", "EU"), ("BF", "Burkina Faso", "AF"),
        ("LY", "Libya", "AF"), ("MN", "Mongolia", "AS"),
        ("MW", "Malawi", "AF"), ("SD", "Sudan", "AF"),
        ("PL", "Poland", "EU"), ("PT", "Portugal", "EU"),
        ("CO", "Colombia", "SA"), ("PE", "Peru", "SA"),
        ("ZW", "Zimbabwe", "AF"), ("TN", "Tunisia", "AF"),
        ("SN", "Senegal", "AF"), ("BO", "Bolivia", "SA"),
        ("GR", "Greece", "EU"), ("GU", "Guam", "OC"),
        ("ES", "Spain", "EU"), ("IN", "India", "AS"),
        ("CA", "Canada", "NA"), ("MX", "Mexico", "NA"),
        ("SG", "Singapore", "AS"), ("TW", "Taiwan", "AS"),
        ("VN", "Vietnam", "AS"), ("TR", "Turkey", "AS"),
        ("ID", "Indonesia", "AS"), ("SE", "Sweden", "EU"),
    ]
    return [Country(code, name, continent) for code, name, continent in rows]
