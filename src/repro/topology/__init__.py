"""Synthetic Internet topology: countries, ASes, prefixes, routing, geo."""

from repro.topology.geo import Country, CountryRegistry, GeoIPDatabase
from repro.topology.asn import ASKind, ASSpec, AutonomousSystem, ASRegistry
from repro.topology.routing import RoutingTable
from repro.topology.generator import Topology, build_topology

__all__ = [
    "Country",
    "CountryRegistry",
    "GeoIPDatabase",
    "ASKind",
    "ASSpec",
    "AutonomousSystem",
    "ASRegistry",
    "RoutingTable",
    "Topology",
    "build_topology",
]
