"""Deterministic topology construction from declarative AS specs.

Allocation is intentionally boring: ASes receive contiguous, power-of-two
aligned prefixes in spec order, with unallocated guard space between them,
starting at 1.0.0.0.  Boring is a feature — the allocation is reproducible,
prefix containment is trivially correct, and the interesting structure
(country skews, behaviour mixes) all lives in the specs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Sequence

import numpy as np

from repro.net.ipv4 import IPv4Network
from repro.topology.asn import ASRegistry, ASSpec, AutonomousSystem
from repro.topology.geo import Country, CountryRegistry, GeoIPDatabase
from repro.topology.routing import RoutingTable

#: First allocatable address (0.0.0.0/8 is reserved, as on the Internet).
ALLOCATION_BASE = 1 << 24

#: Fraction of extra /24s left unallocated between consecutive ASes.
GUARD_FRACTION = 0.25


@dataclass
class Topology:
    """A fully constructed synthetic Internet topology."""

    countries: CountryRegistry
    ases: ASRegistry
    routing: RoutingTable
    geoip: GeoIPDatabase
    #: AS index → array of populated /24 network base addresses.
    populated_slash24s: Dict[int, np.ndarray] = field(default_factory=dict)

    def country_index(self, code: str) -> int:
        return self.countries.index_of(code)

    def as_by_name(self, name: str) -> AutonomousSystem:
        return self.ases.by_name(name)


def build_topology(specs: Sequence[ASSpec],
                   countries: Sequence[Country]) -> Topology:
    """Place every spec into the address space and build lookup structures.

    Raises when a spec references a country missing from ``countries``.
    """
    country_registry = CountryRegistry()
    for country in countries:
        country_registry.add(country)

    as_registry = ASRegistry()
    geoip = GeoIPDatabase(country_registry)
    populated: Dict[int, np.ndarray] = {}

    cursor = ALLOCATION_BASE
    for spec in specs:
        if spec.country not in country_registry:
            raise ValueError(
                f"AS {spec.name!r} references unknown country "
                f"{spec.country!r}")
        if (spec.geolocates_to is not None
                and spec.geolocates_to not in country_registry):
            raise ValueError(
                f"AS {spec.name!r} geolocates to unknown country "
                f"{spec.geolocates_to!r}")

        system = as_registry.add(spec)
        n_slash24 = _slash24_count(spec)
        prefix, cursor = _allocate(cursor, n_slash24)
        system.prefixes.append(prefix)
        geoip.add_prefix(prefix, spec.country,
                         geolocates_to=spec.geolocates_to)
        # Populate the leading /24s of the prefix; the rest is guard space
        # inside the announcement, as real allocations have.
        bases = prefix.address + 256 * np.arange(n_slash24, dtype=np.uint64)
        populated[system.index] = bases.astype(np.uint32)

    routing = RoutingTable(as_registry)
    return Topology(countries=country_registry, ases=as_registry,
                    routing=routing, geoip=geoip,
                    populated_slash24s=populated)


def _slash24_count(spec: ASSpec) -> int:
    """Number of /24s to populate for one AS."""
    total = spec.total_hosts()
    if total <= 0:
        return 1
    per_block = max(spec.hosts_per_slash24, 1.0)
    return max(1, math.ceil(total / per_block))


def _allocate(cursor: int, n_slash24: int) -> tuple:
    """Allocate an aligned power-of-two prefix holding ``n_slash24`` /24s.

    Returns (prefix, new_cursor).  The prefix size includes guard space so
    neighbouring ASes are separated by unannounced addresses.
    """
    with_guard = max(1, math.ceil(n_slash24 * (1.0 + GUARD_FRACTION)))
    size_blocks = 1 << (with_guard - 1).bit_length()  # next power of two
    size_addresses = size_blocks * 256
    prefix_len = 32 - int(math.log2(size_addresses))
    # Align the cursor to the prefix size.
    aligned = (cursor + size_addresses - 1) & ~(size_addresses - 1)
    if aligned + size_addresses > (1 << 32):
        raise ValueError("address space exhausted; reduce world size")
    return IPv4Network(aligned, prefix_len), aligned + size_addresses
