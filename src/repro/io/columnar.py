"""Binary columnar snapshots: the fast persistence layer.

NDJSON (:mod:`repro.io.ndjson`) is the interoperability seam — one JSON
object per observation, readable by anything.  It is also four orders of
magnitude more bytes-touched than the data it encodes: a paper-scale
campaign is a handful of numpy arrays, and real scan pipelines (ZMap,
Censys) long ago moved their hot paths from line-oriented logs to
columnar stores for exactly this reason.  This module is that columnar
store: a versioned single-file container holding a JSON manifest plus
raw little-endian array segments, one per column, each with dtype, shape
and a CRC-32 checksum.

Container layout::

    magic "RPSNAP01" | u64 manifest length | manifest JSON | pad to 64
    segment 0 (64-byte aligned) | segment 1 | ...

Segments are the arrays' raw bytes, so loading is ``mmap`` +
``np.frombuffer`` — zero copies, lazily paged, arrays read-only.  The
same decomposition (a small pickled *skeleton* of scalar state plus a
dict of named arrays) is reused by the process executor to broadcast
worlds through ``multiprocessing.shared_memory`` and by the
content-addressed world cache (:mod:`repro.io.worldcache`).

Everything a snapshot round-trips is byte-identical to the in-memory
object (``tests/test_columnar.py``); corruption is detected per segment
and reported as :class:`SnapshotError`.
"""

from __future__ import annotations

import itertools
import json
import mmap as _mmap
import os
import pickle
import struct
import threading
import zlib
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.telemetry.context import current as _telemetry

#: File magic; the trailing digits version the container layout itself.
MAGIC = b"RPSNAP01"

#: Manifest schema version (bump on incompatible manifest changes).
FORMAT_VERSION = 1

#: Segment alignment, generous enough for any vector load width.
ALIGN = 64

_HEADER = struct.Struct("<8sQ")

PathLike = Union[str, os.PathLike]


class SnapshotError(Exception):
    """A snapshot file is missing, truncated, corrupt, or mismatched."""


#: Distinguishes concurrent writers *within* one process: two threads
#: racing the same destination must never share a temp file (the pid
#: alone cannot tell them apart).
_TMP_COUNTER = itertools.count()


def _tmp_path(path: PathLike) -> str:
    """A collision-free temp name next to ``path`` for atomic writes."""
    return (f"{os.fspath(path)}.tmp.{os.getpid()}."
            f"{threading.get_ident()}.{next(_TMP_COUNTER)}")


def _align(offset: int) -> int:
    return (offset + ALIGN - 1) & ~(ALIGN - 1)


def _le_dtype(dtype: np.dtype) -> np.dtype:
    """The little-endian equivalent of ``dtype`` (identity for 1-byte)."""
    if dtype.hasobject:
        raise TypeError(f"cannot snapshot object dtype {dtype}")
    return dtype.newbyteorder("<") if dtype.byteorder == ">" else dtype


# ----------------------------------------------------------------------
# Container read/write
# ----------------------------------------------------------------------

@dataclass
class Snapshot:
    """A loaded snapshot: its kind tag, JSON meta, and named arrays."""

    kind: str
    meta: dict
    arrays: Dict[str, np.ndarray]
    path: str


def write_snapshot(path: PathLike, kind: str, meta: Mapping,
                   arrays: Mapping[str, np.ndarray]) -> int:
    """Write a snapshot atomically (temp file + rename); returns nbytes.

    Arrays are stored contiguous and little-endian; ``meta`` must be
    JSON-serializable.  Segment order follows the mapping's iteration
    order, so identical inputs produce identical files.
    """
    tel = _telemetry()
    with tel.span("io.snapshot_save", kind=kind) as span:
        segments: List[dict] = []
        blobs: List[np.ndarray] = []
        cursor = 0
        for name, array in arrays.items():
            array = np.ascontiguousarray(array,
                                         dtype=_le_dtype(np.asarray(array)
                                                         .dtype))
            offset = _align(cursor)
            segments.append({
                "name": name,
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": offset,
                "nbytes": int(array.nbytes),
                "crc32": zlib.crc32(array.tobytes()) & 0xFFFFFFFF,
            })
            blobs.append(array)
            cursor = offset + array.nbytes
        manifest = json.dumps({
            "format": "repro-snapshot",
            "version": FORMAT_VERSION,
            "kind": kind,
            "meta": dict(meta),
            "segments": segments,
        }, sort_keys=True).encode("utf-8")

        data_start = _align(_HEADER.size + len(manifest))
        total = data_start + cursor
        tmp = _tmp_path(path)
        with open(tmp, "wb") as handle:
            handle.write(_HEADER.pack(MAGIC, len(manifest)))
            handle.write(manifest)
            for segment, blob in zip(segments, blobs):
                if blob.nbytes == 0:
                    continue
                handle.seek(data_start + segment["offset"])
                handle.write(blob.tobytes())
            handle.truncate(max(total, handle.tell()))
        os.replace(tmp, path)
        span.set(nbytes=total, segments=len(segments))
        tel.count("io.snapshot_saves", 1)
        tel.count("io.snapshot_bytes_written", total)
        return total


def _parse_header(blob: bytes, path: PathLike) -> dict:
    if len(blob) < _HEADER.size:
        raise SnapshotError(f"{os.fspath(path)}: truncated snapshot header")
    magic, manifest_len = _HEADER.unpack_from(blob)
    if magic != MAGIC:
        raise SnapshotError(
            f"{os.fspath(path)}: not a repro snapshot (bad magic)")
    raw = blob[_HEADER.size:_HEADER.size + manifest_len]
    if len(raw) < manifest_len:
        raise SnapshotError(f"{os.fspath(path)}: truncated manifest")
    try:
        manifest = json.loads(raw)
    except json.JSONDecodeError as error:
        raise SnapshotError(
            f"{os.fspath(path)}: corrupt manifest JSON ({error})") from None
    if manifest.get("format") != "repro-snapshot":
        raise SnapshotError(f"{os.fspath(path)}: unknown snapshot format")
    if manifest.get("version") != FORMAT_VERSION:
        raise SnapshotError(
            f"{os.fspath(path)}: snapshot version "
            f"{manifest.get('version')} != supported {FORMAT_VERSION}")
    manifest["__data_start__"] = _align(_HEADER.size + manifest_len)
    return manifest


def read_snapshot_manifest(path: PathLike) -> dict:
    """Read only the header + manifest (for listings; no array I/O)."""
    try:
        with open(path, "rb") as handle:
            head = handle.read(_HEADER.size)
            if len(head) < _HEADER.size:
                raise SnapshotError(
                    f"{os.fspath(path)}: truncated snapshot header")
            magic, manifest_len = _HEADER.unpack_from(head)
            if magic != MAGIC:
                raise SnapshotError(
                    f"{os.fspath(path)}: not a repro snapshot (bad magic)")
            return _parse_header(head + handle.read(manifest_len), path)
    except OSError as error:
        raise SnapshotError(f"{os.fspath(path)}: {error}") from None


def is_snapshot(path: PathLike) -> bool:
    """True when ``path`` is a file that starts with the snapshot magic."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


def read_snapshot(path: PathLike, mmap: bool = True) -> Snapshot:
    """Load a snapshot; with ``mmap=True`` arrays are zero-copy views.

    Memory-mapped arrays are read-only (the page cache is shared); with
    ``mmap=False`` they are private writable copies.  Every segment's
    CRC-32 is verified either way — a flipped byte anywhere raises
    :class:`SnapshotError` naming the bad segment.
    """
    tel = _telemetry()
    with tel.span("io.snapshot_load", mmap=mmap) as span:
        try:
            handle = open(path, "rb")
        except OSError as error:
            raise SnapshotError(f"{os.fspath(path)}: {error}") from None
        with handle:
            if mmap:
                try:
                    buffer = _mmap.mmap(handle.fileno(), 0,
                                        access=_mmap.ACCESS_READ)
                except (OSError, ValueError) as error:
                    raise SnapshotError(
                        f"{os.fspath(path)}: cannot mmap ({error})") \
                        from None
            else:
                buffer = handle.read()
        manifest = _parse_manifest_from(buffer, path)
        data_start = manifest["__data_start__"]
        arrays: Dict[str, np.ndarray] = {}
        for segment in manifest["segments"]:
            arrays[segment["name"]] = _load_segment(
                buffer, data_start, segment, path, writable=not mmap)
        span.set(kind=manifest["kind"], segments=len(arrays))
        tel.count("io.snapshot_loads", 1)
        tel.count("io.snapshot_bytes_read",
                  sum(s["nbytes"] for s in manifest["segments"]))
        return Snapshot(kind=manifest["kind"], meta=manifest["meta"],
                        arrays=arrays, path=os.fspath(path))


def _parse_manifest_from(buffer, path: PathLike) -> dict:
    header = bytes(buffer[:_HEADER.size])
    if len(header) < _HEADER.size:
        raise SnapshotError(f"{os.fspath(path)}: truncated snapshot header")
    magic, manifest_len = _HEADER.unpack(header)
    if magic != MAGIC:
        raise SnapshotError(f"{os.fspath(path)}: bad magic "
                            f"(not a repro snapshot)")
    end = _HEADER.size + manifest_len
    if len(buffer) < end:
        raise SnapshotError(f"{os.fspath(path)}: truncated manifest")
    return _parse_header(bytes(buffer[:end]), path)


def _load_segment(buffer, data_start: int, segment: Mapping,
                  path: PathLike, writable: bool) -> np.ndarray:
    name = segment["name"]
    dtype = np.dtype(segment["dtype"])
    shape = tuple(segment["shape"])
    nbytes = int(segment["nbytes"])
    start = data_start + int(segment["offset"])
    if nbytes == 0:
        return np.empty(shape, dtype=dtype)
    if len(buffer) < start + nbytes:
        raise SnapshotError(
            f"{os.fspath(path)}: segment {name!r} extends past end of file")
    crc = zlib.crc32(memoryview(buffer)[start:start + nbytes]) & 0xFFFFFFFF
    if crc != segment["crc32"]:
        raise SnapshotError(
            f"{os.fspath(path)}: checksum mismatch in segment {name!r} "
            f"(stored {segment['crc32']:#010x}, computed {crc:#010x})")
    count = nbytes // dtype.itemsize
    array = np.frombuffer(buffer, dtype=dtype, count=count,
                          offset=start).reshape(shape)
    if writable:
        array = array.copy()
    return array


# ----------------------------------------------------------------------
# Shared-memory packing (reused by the process executor)
# ----------------------------------------------------------------------

def pack_layout(arrays: Mapping[str, np.ndarray]
                ) -> Tuple[List[dict], int]:
    """Describe how ``arrays`` pack into one flat buffer.

    Returns ``(layout, total_nbytes)`` where each layout entry carries
    name/dtype/shape/offset/nbytes — the same vocabulary as snapshot
    segments, minus checksums (shared memory is not a durability layer).
    """
    layout: List[dict] = []
    cursor = 0
    for name, array in arrays.items():
        dtype = _le_dtype(np.asarray(array).dtype)
        offset = _align(cursor)
        nbytes = int(np.asarray(array).nbytes)
        layout.append({"name": name, "dtype": dtype.str,
                       "shape": list(np.asarray(array).shape),
                       "offset": offset, "nbytes": nbytes})
        cursor = offset + nbytes
    return layout, cursor


def pack_into(buffer, arrays: Mapping[str, np.ndarray],
              layout: Sequence[Mapping]) -> None:
    """Copy each array's bytes into its layout slot of ``buffer``."""
    for entry in layout:
        if entry["nbytes"] == 0:
            continue
        dtype = np.dtype(entry["dtype"])
        count = entry["nbytes"] // dtype.itemsize
        view = np.frombuffer(buffer, dtype=dtype, count=count,
                             offset=entry["offset"]).reshape(entry["shape"])
        np.copyto(view, np.ascontiguousarray(arrays[entry["name"]],
                                             dtype=dtype))


def arrays_from_buffer(buffer, layout: Sequence[Mapping],
                       writable: bool = False) -> Dict[str, np.ndarray]:
    """Reconstruct named arrays as zero-copy views over ``buffer``."""
    arrays: Dict[str, np.ndarray] = {}
    for entry in layout:
        dtype = np.dtype(entry["dtype"])
        if entry["nbytes"] == 0:
            arrays[entry["name"]] = np.empty(tuple(entry["shape"]),
                                             dtype=dtype)
            continue
        count = entry["nbytes"] // dtype.itemsize
        array = np.frombuffer(buffer, dtype=dtype, count=count,
                              offset=entry["offset"]) \
            .reshape(entry["shape"])
        if not writable:
            array.flags.writeable = False
        arrays[entry["name"]] = array
    return arrays


# ----------------------------------------------------------------------
# Campaign datasets
# ----------------------------------------------------------------------

#: Per-trial array columns stored for each campaign table.
_TRIAL_COLUMNS = ("ip", "as_index", "country_index", "geo_index",
                  "probe_mask", "l7", "time")


def campaign_arrays(dataset) -> Tuple[List[dict], Dict[str, np.ndarray]]:
    """Decompose a campaign into (per-trial meta entries, named arrays).

    The inverse is :func:`campaign_from_parts`; both are shared by the
    plain campaign snapshot and the serving layer's result snapshots,
    which bundle the same arrays next to a rendered report.
    """
    arrays: Dict[str, np.ndarray] = {}
    trials: List[dict] = []
    for i, table in enumerate(dataset):
        key = f"t{i}"
        trials.append({"key": key, "protocol": table.protocol,
                       "trial": int(table.trial),
                       "origins": list(table.origins),
                       "n_probes": int(table.n_probes)})
        for column in _TRIAL_COLUMNS:
            arrays[f"{key}.{column}"] = getattr(table, column)
    return trials, arrays


def campaign_from_parts(trials: Sequence[Mapping],
                        arrays: Mapping[str, np.ndarray],
                        metadata: Mapping):
    """Rebuild a :class:`~repro.core.dataset.CampaignDataset`."""
    from repro.core.dataset import CampaignDataset, TrialData

    tables = []
    for entry in trials:
        key = entry["key"]
        columns = {column: arrays[f"{key}.{column}"]
                   for column in _TRIAL_COLUMNS}
        tables.append(TrialData(
            protocol=entry["protocol"],
            trial=int(entry["trial"]),
            origins=list(entry["origins"]),
            n_probes=int(entry["n_probes"]),
            **columns))
    return CampaignDataset(tables, metadata=dict(metadata))


def save_campaign(dataset, path: PathLike) -> int:
    """Write a :class:`~repro.core.dataset.CampaignDataset` snapshot."""
    trials, arrays = campaign_arrays(dataset)
    meta = {"metadata": dataset.metadata, "trials": trials}
    return write_snapshot(path, "campaign", meta, arrays)


def load_campaign(path: PathLike, mmap: bool = True):
    """Load a campaign snapshot written by :func:`save_campaign`."""
    snapshot = read_snapshot(path, mmap=mmap)
    if snapshot.kind != "campaign":
        raise SnapshotError(
            f"{os.fspath(path)}: snapshot holds a {snapshot.kind!r}, "
            f"not a campaign")
    return campaign_from_parts(snapshot.meta["trials"], snapshot.arrays,
                               snapshot.meta["metadata"])


# ----------------------------------------------------------------------
# Served results: a rendered report bundled with its campaign
# ----------------------------------------------------------------------

@dataclass
class ResultSnapshot:
    """A loaded result entry: the exact report bytes plus the campaign.

    ``report`` is the rendered analysis report exactly as first computed
    — the serving layer streams these bytes back on a cache hit, which
    is what makes hit and miss responses byte-identical.  ``dataset`` is
    the backing campaign (mmap-loaded, read-only), available for future
    endpoints that need more than the rendered text — or ``None`` for
    report-only entries (streamed grid surfaces, which never
    materialize a campaign).
    """

    report: str
    meta: dict
    dataset: object
    path: str


def save_result(path: PathLike, report: str, dataset,
                meta: Optional[Mapping] = None) -> int:
    """Write a result snapshot: report text + campaign arrays, atomic.

    The write inherits :func:`write_snapshot`'s temp-file + rename
    protocol and per-segment CRCs, so a reader either sees a complete,
    checksummed entry or no entry at all — a cancelled or killed writer
    can never publish partial bytes.  ``dataset=None`` writes a
    report-only entry (no campaign arrays): the plane-incremental grid
    surface memoizes exact repeats without ever holding a dataset.
    """
    if dataset is None:
        trials: List[dict] = []
        arrays: Dict[str, np.ndarray] = {}
        metadata: dict = {}
    else:
        trials, arrays = campaign_arrays(dataset)
        metadata = dataset.metadata
    arrays["__report__"] = np.frombuffer(report.encode("utf-8"),
                                         dtype=np.uint8)
    snapshot_meta = {"metadata": metadata, "trials": trials,
                     "result": dict(meta or {})}
    return write_snapshot(path, "result", snapshot_meta, arrays)


def load_result(path: PathLike, mmap: bool = True) -> ResultSnapshot:
    """Load a result snapshot written by :func:`save_result`.

    Every segment's CRC is verified (report bytes included); corruption
    raises :class:`SnapshotError` rather than returning wrong bytes.
    """
    snapshot = read_snapshot(path, mmap=mmap)
    if snapshot.kind != "result":
        raise SnapshotError(
            f"{os.fspath(path)}: snapshot holds a {snapshot.kind!r}, "
            f"not a served result")
    report = snapshot.arrays["__report__"].tobytes().decode("utf-8")
    trials = snapshot.meta["trials"]
    dataset = campaign_from_parts(trials, snapshot.arrays,
                                  snapshot.meta["metadata"]) \
        if trials else None
    return ResultSnapshot(report=report, meta=snapshot.meta["result"],
                          dataset=dataset, path=os.fspath(path))


# ----------------------------------------------------------------------
# Host tables
# ----------------------------------------------------------------------

def host_arrays(hosts) -> Dict[str, np.ndarray]:
    """The four aligned columns of a :class:`~repro.hosts.table.HostTable`."""
    return {"hosts.ip": hosts.ip, "hosts.protocol": hosts.protocol,
            "hosts.as_index": hosts.as_index,
            "hosts.country_index": hosts.country_index}


def hosts_from_arrays(arrays: Mapping[str, np.ndarray]):
    """Rebuild a host table from stored columns without re-sorting.

    Snapshot columns were written from an already-sorted table, so this
    is zero-copy: the arrays (often mmap or shared-memory views) become
    the table's columns directly.
    """
    from repro.hosts.table import HostTable

    return HostTable.from_sorted_columns(
        ip=arrays["hosts.ip"], protocol=arrays["hosts.protocol"],
        as_index=arrays["hosts.as_index"],
        country_index=arrays["hosts.country_index"])


def save_hosts(hosts, path: PathLike) -> int:
    """Write a host table snapshot."""
    return write_snapshot(path, "hosts", {"n_services": len(hosts)},
                          host_arrays(hosts))


def load_hosts(path: PathLike, mmap: bool = True):
    """Load a host table snapshot written by :func:`save_hosts`."""
    snapshot = read_snapshot(path, mmap=mmap)
    if snapshot.kind != "hosts":
        raise SnapshotError(
            f"{os.fspath(path)}: snapshot holds a {snapshot.kind!r}, "
            f"not a host table")
    return hosts_from_arrays(snapshot.arrays)


# ----------------------------------------------------------------------
# Topologies and whole worlds
# ----------------------------------------------------------------------
#
# A world splits into a small pickled *skeleton* — seed, defaults, and
# the topology's registry/trie objects, whose pickled form already
# preserves post-build mutations (manual GeoIP prefixes, extra routes)
# exactly like the plain world pickle the process executor used to ship
# — plus the big aligned arrays: the four host columns and the
# populated-/24 map flattened CSR-style (keys / lengths / values).

def _slash24_arrays(populated: Mapping[int, np.ndarray]
                    ) -> Dict[str, np.ndarray]:
    keys = np.fromiter(populated.keys(), dtype=np.int64,
                       count=len(populated))
    lengths = np.fromiter((len(v) for v in populated.values()),
                          dtype=np.int64, count=len(populated))
    values = (np.concatenate([np.asarray(v, dtype=np.uint32)
                              for v in populated.values()])
              if populated else np.empty(0, dtype=np.uint32))
    return {"pop24.keys": keys, "pop24.lengths": lengths,
            "pop24.values": values}


def _slash24_map(arrays: Mapping[str, np.ndarray]
                 ) -> Dict[int, np.ndarray]:
    keys = arrays["pop24.keys"]
    lengths = arrays["pop24.lengths"]
    values = arrays["pop24.values"]
    populated: Dict[int, np.ndarray] = {}
    offset = 0
    for key, length in zip(keys.tolist(), lengths.tolist()):
        populated[key] = values[offset:offset + length]
        offset += length
    return populated


def decompose_topology(topology) -> Tuple[bytes, Dict[str, np.ndarray]]:
    """Split a topology into (pickled skeleton, named arrays)."""
    skeleton = pickle.dumps(
        {"countries": topology.countries, "ases": topology.ases,
         "routing": topology.routing, "geoip": topology.geoip},
        protocol=pickle.HIGHEST_PROTOCOL)
    return skeleton, _slash24_arrays(topology.populated_slash24s)


_DEFERRED_TOPOLOGY_CLS = None


def _deferred_topology_class():
    """The lazily-materializing Topology subclass (built on first use).

    Defined inside a factory because :mod:`repro.topology.generator` is
    imported lazily here to avoid an import cycle.  Instances carry the
    pickled skeleton and array views and unpickle them on first
    attribute access — the object-plane analogue of mmap's page-in: a
    warm world load returns in microseconds and the registry/trie
    objects materialize only if the run actually touches them.
    """
    global _DEFERRED_TOPOLOGY_CLS
    if _DEFERRED_TOPOLOGY_CLS is not None:
        return _DEFERRED_TOPOLOGY_CLS

    from repro.topology.generator import Topology

    class _DeferredTopology(Topology):
        def __init__(self, skeleton: bytes,
                     arrays: Mapping[str, np.ndarray]) -> None:
            self.__dict__["_pending"] = (skeleton, dict(arrays))

        def _materialize(self) -> None:
            pending = self.__dict__.pop("_pending", None)
            if pending is None:
                return
            skeleton, arrays = pending
            state = pickle.loads(skeleton)
            self.countries = state["countries"]
            self.ases = state["ases"]
            self.routing = state["routing"]
            self.geoip = state["geoip"]
            self.populated_slash24s = _slash24_map(arrays)

        def __getattr__(self, name):
            if name.startswith("_"):
                raise AttributeError(name)
            self._materialize()
            try:
                return self.__dict__[name]
            except KeyError:
                raise AttributeError(name) from None

        def __reduce__(self):
            # Pickle as a plain Topology: the class itself is local to
            # this factory and must never appear in a pickle stream.
            self._materialize()
            return (Topology, (self.countries, self.ases, self.routing,
                               self.geoip, self.populated_slash24s))

    _DEFERRED_TOPOLOGY_CLS = _DeferredTopology
    return _DeferredTopology


def recompose_topology(skeleton: bytes,
                       arrays: Mapping[str, np.ndarray],
                       lazy: bool = False):
    """Rebuild a topology from :func:`decompose_topology` output.

    With ``lazy=True`` the skeleton stays pickled until the topology's
    registries or tries are first touched; the returned object is a
    ``Topology`` subclass that materializes itself on demand.
    """
    from repro.topology.generator import Topology

    if lazy:
        return _deferred_topology_class()(skeleton, arrays)
    state = pickle.loads(skeleton)
    return Topology(countries=state["countries"], ases=state["ases"],
                    routing=state["routing"], geoip=state["geoip"],
                    populated_slash24s=_slash24_map(arrays))


def save_topology(topology, path: PathLike) -> int:
    """Write a topology snapshot."""
    skeleton, arrays = decompose_topology(topology)
    arrays["__skeleton__"] = np.frombuffer(skeleton, dtype=np.uint8)
    return write_snapshot(path, "topology",
                          {"n_ases": len(topology.ases)}, arrays)


def load_topology(path: PathLike, mmap: bool = True):
    """Load a topology snapshot written by :func:`save_topology`."""
    snapshot = read_snapshot(path, mmap=mmap)
    if snapshot.kind != "topology":
        raise SnapshotError(
            f"{os.fspath(path)}: snapshot holds a {snapshot.kind!r}, "
            f"not a topology")
    return recompose_topology(snapshot.arrays["__skeleton__"].tobytes(),
                              snapshot.arrays)


def decompose_world(world) -> Tuple[bytes, Dict[str, np.ndarray]]:
    """Split a world into (pickled skeleton, named zero-copy arrays).

    The arrays dict references the world's live arrays — nothing is
    copied here.  ``recompose_world(skeleton, arrays)`` builds a world
    that observes byte-identically (every lazy cache is rebuilt from the
    counter-addressed RNG, so reconstruction is exact).
    """
    topo_skeleton, arrays = decompose_topology(world.topology)
    skeleton = pickle.dumps(
        {"seed": world.seed, "defaults": world.defaults,
         "topology": topo_skeleton},
        protocol=pickle.HIGHEST_PROTOCOL)
    arrays.update(host_arrays(world.hosts))
    return skeleton, arrays


def recompose_world(skeleton: bytes, arrays: Mapping[str, np.ndarray],
                    lazy_topology: bool = False):
    """Rebuild a world from :func:`decompose_world` output.

    ``lazy_topology=True`` defers unpickling the registry/trie objects
    until first use (see :func:`recompose_topology`); the host columns
    are adopted immediately either way.
    """
    from repro.sim.world import World

    state = pickle.loads(skeleton)
    topology = recompose_topology(state["topology"], arrays,
                                  lazy=lazy_topology)
    hosts = hosts_from_arrays(arrays)
    return World(topology, hosts, state["seed"],
                 defaults=state["defaults"])


def save_world(world, path: PathLike,
               extra_meta: Optional[Mapping] = None) -> int:
    """Write a full world snapshot (topology + hosts + seed/defaults)."""
    skeleton, arrays = decompose_world(world)
    arrays["__skeleton__"] = np.frombuffer(skeleton, dtype=np.uint8)
    meta = {"seed": int(world.seed), "n_services": len(world.hosts),
            "n_ases": len(world.topology.ases)}
    if extra_meta:
        meta.update(extra_meta)
    return write_snapshot(path, "world", meta, arrays)


def load_world(path: PathLike, mmap: bool = True,
               lazy_topology: bool = False):
    """Load a world snapshot written by :func:`save_world`.

    With ``mmap=True`` the host columns and populated-/24 arrays are
    read-only views over the file — a warm load touches only the bytes
    the run actually uses.  ``lazy_topology=True`` extends the same
    treatment to the object plane: the pickled registries and tries stay
    frozen until the run first touches ``world.topology``.
    """
    snapshot = read_snapshot(path, mmap=mmap)
    if snapshot.kind != "world":
        raise SnapshotError(
            f"{os.fspath(path)}: snapshot holds a {snapshot.kind!r}, "
            f"not a world")
    return recompose_world(snapshot.arrays["__skeleton__"].tobytes(),
                           snapshot.arrays, lazy_topology=lazy_topology)
