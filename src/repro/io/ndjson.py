"""ndjson round-trip for campaign datasets.

The on-disk format mirrors what a real ZMap + ZGrab pipeline emits: one
JSON object per (origin, ip) observation, one file per (protocol, trial),
plus a campaign manifest.  This is the interoperability seam: real scan
data converted into these records can be pushed through every analysis in
:mod:`repro.core`.

Record schema (one line each)::

    {"ip": "203.0.113.7", "origin": "AU", "probe_mask": 3,
     "l7": "success", "time": 512.25,
     "asn": 64512, "country": "JP", "geo": "JP"}

Only responsive-or-classified hosts need records; hosts absent from a
file simply never responded to anyone.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Mapping, Tuple, Union

import numpy as np

from repro.core.dataset import CampaignDataset, TrialData
from repro.core.records import L7Status
from repro.net.ipv4 import format_ipv4, parse_ipv4

#: Wire names for L7 status codes.
_L7_NAMES = {
    L7Status.NO_L4: "no-l4",
    L7Status.L4_DROP: "drop",
    L7Status.L4_CLOSE_FIN: "close-fin",
    L7Status.L4_CLOSE_RST: "close-rst",
    L7Status.SUCCESS: "success",
}
_L7_CODES = {name: int(code) for code, name in _L7_NAMES.items()}

_MANIFEST = "campaign.json"


def read_ndjson_records(path: Union[str, os.PathLike]
                        ) -> Tuple[List[dict], int]:
    """Read NDJSON objects tolerantly: ``(records, n_skipped)``.

    Blank lines are ignored; lines that fail to parse as JSON — or parse
    to something other than an object — are skipped and counted rather
    than raised.  Telemetry journals are read through this (a crashed run
    leaves a truncated final line exactly when the journal matters most),
    and real scan data imported from elsewhere gets the same tolerance.
    Skips are also reported on the ambient telemetry counter
    ``io.ndjson_malformed``, so silent tolerance still leaves a trace.
    """
    records: List[dict] = []
    skipped = 0
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if not isinstance(record, dict):
                skipped += 1
                continue
            records.append(record)
    if skipped:
        # Imported lazily: telemetry's journal reader imports this module.
        from repro.telemetry.context import current
        current().count("io.ndjson_malformed", skipped)
    return records, skipped


def _trial_filename(protocol: str, trial: int) -> str:
    return f"{protocol}_trial{trial}.ndjson"


def save_campaign(dataset: CampaignDataset, directory: str) -> None:
    """Write a dataset as a directory of ndjson files plus a manifest."""
    os.makedirs(directory, exist_ok=True)
    manifest: Dict[str, object] = {
        "metadata": dataset.metadata,
        "trials": [],
    }
    for table in dataset:
        filename = _trial_filename(table.protocol, table.trial)
        manifest["trials"].append({
            "protocol": table.protocol,
            "trial": table.trial,
            "origins": table.origins,
            "n_probes": table.n_probes,
            "file": filename,
        })
        with open(os.path.join(directory, filename), "w") as handle:
            for oi, origin in enumerate(table.origins):
                for i in range(len(table.ip)):
                    record = {
                        "ip": format_ipv4(int(table.ip[i])),
                        "origin": origin,
                        "probe_mask": int(table.probe_mask[oi, i]),
                        "l7": _L7_NAMES[L7Status(int(table.l7[oi, i]))],
                        # Full precision: float32 → float64 → decimal is
                        # exact, so load(save(ds)) is byte-identical.
                        "time": float(table.time[oi, i]),
                        "asn": int(table.as_index[i]),
                        "country": int(table.country_index[i]),
                        "geo": int(table.geo_index[i]),
                    }
                    handle.write(json.dumps(record) + "\n")
    with open(os.path.join(directory, _MANIFEST), "w") as handle:
        json.dump(manifest, handle, indent=2)


def load_campaign(directory: str) -> CampaignDataset:
    """Load a dataset previously written by :func:`save_campaign`."""
    with open(os.path.join(directory, _MANIFEST)) as handle:
        manifest = json.load(handle)

    tables: List[TrialData] = []
    for entry in manifest["trials"]:
        path = os.path.join(directory, entry["file"])
        tables.append(_load_trial(path, entry))
    return CampaignDataset(tables, metadata=manifest.get("metadata"))


def _load_trial(path: str, entry: Mapping) -> TrialData:
    origins: List[str] = list(entry["origins"])
    origin_row = {origin: i for i, origin in enumerate(origins)}

    by_ip: Dict[int, int] = {}
    ips: List[int] = []
    asn: List[int] = []
    country: List[int] = []
    geo: List[int] = []
    rows: List[Tuple[int, int, int, int, float]] = []

    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            ip = parse_ipv4(record["ip"])
            if ip not in by_ip:
                by_ip[ip] = len(ips)
                ips.append(ip)
                asn.append(int(record.get("asn", -1)))
                country.append(int(record.get("country", -1)))
                geo.append(int(record.get("geo", -1)))
            rows.append((
                origin_row[record["origin"]],
                by_ip[ip],
                int(record.get("probe_mask", 0)),
                _L7_CODES[record.get("l7", "no-l4")],
                float(record.get("time", 0.0)),
            ))

    order = np.argsort(np.array(ips, dtype=np.uint32))
    remap = np.empty(len(order), dtype=np.int64)
    remap[order] = np.arange(len(order))

    n = len(ips)
    o = len(origins)
    probe_mask = np.zeros((o, n), dtype=np.uint8)
    l7 = np.zeros((o, n), dtype=np.uint8)
    time = np.zeros((o, n), dtype=np.float32)
    for origin_idx, host_idx, mask, status, t in rows:
        col = remap[host_idx]
        probe_mask[origin_idx, col] = mask
        l7[origin_idx, col] = status
        time[origin_idx, col] = t

    return TrialData(
        protocol=entry["protocol"],
        trial=int(entry["trial"]),
        origins=origins,
        ip=np.array(ips, dtype=np.uint32)[order],
        as_index=np.array(asn, dtype=np.int64)[order],
        country_index=np.array(country, dtype=np.int64)[order],
        geo_index=np.array(geo, dtype=np.int64)[order],
        probe_mask=probe_mask,
        l7=l7,
        time=time,
        n_probes=int(entry.get("n_probes", 2)))
