"""Content-addressed cache of compiled worlds.

Building a paper-scale world costs ~100 ms of topology allocation and
population draws, repeated by every CLI invocation, every test session,
and every sweep over seeds.  The output, though, is a pure function of
its inputs: the AS spec list, the seed, the world defaults, and the
country registry that seeds the GeoIP database.  This module hashes
those inputs into a cache key and stores the finished world as a
columnar snapshot (:mod:`repro.io.columnar`), so a warm
``build_world_from_specs`` is an mmap load instead of a rebuild.

The key is a SHA-256 over a *canonical pickle* of the inputs: a
C-speed pickle at a pinned protocol whose one source of nondeterminism
— set/frozenset iteration order, which varies with ``PYTHONHASHSEED``
— is removed by a dispatch-table override that pickles sets as sorted
tuples.  Pickle bytes decode to exactly one value, so two different
inputs can never share a key (no false hits); at worst an equal value
constructed with different internal sharing re-pickles differently and
misses spuriously, which only costs a rebuild.  Any input change (a
spec field, the seed, the scale folded into the specs, a GeoIP country
entry, the snapshot format itself) changes the key; stale entries are
simply never addressed again.

Environment:

* ``REPRO_CACHE_DIR`` — cache root (default ``$XDG_CACHE_HOME/repro``
  or ``~/.cache/repro``).
* ``REPRO_WORLD_CACHE=0`` — disable the cache entirely.

Corrupt or truncated entries (a killed writer, a flipped bit — CRCs are
verified per segment) are treated as misses and rebuilt; writes are
atomic (temp file + rename), and concurrent cold builders elect a single
writer through an ``O_EXCL`` claim lockfile so racing builds — threads
or processes — can never interleave writes to one entry (stale claims
from killed writers are broken after :data:`STALE_CLAIM_S`).  Hits load with a *lazy*
topology: the pickled registries and tries stay frozen until first
touched, so a warm ``build_world_from_specs`` pays only the key hash,
the manifest read, and the host-column adoption.  (An entry whose CRCs
pass but whose pickled classes have drifted surfaces at first topology
access rather than at load — bump :data:`BUILDER_VERSION` when class
layouts change.)  Hits and misses are
counted as ``cache.world_hit`` / ``cache.world_miss`` — a ``cache.``
namespace excluded from telemetry's cross-backend determinism contract,
since warmth is process-local state.
"""

from __future__ import annotations

import copyreg
import hashlib
import io
import os
import pickle
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Union

from repro.io.columnar import (FORMAT_VERSION, SnapshotError, load_hosts,
                               load_world, read_snapshot_manifest,
                               save_hosts, save_world)
from repro.telemetry.context import current as _telemetry

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_WORLD_CACHE = "REPRO_WORLD_CACHE"

#: Bump when world *construction* changes meaning for identical inputs
#: (topology allocation, population draws, ...): old entries must not
#: satisfy new builds.
BUILDER_VERSION = 1

_SUFFIX = ".world"
_SHARD_SUFFIX = ".shard"

PathLike = Union[str, os.PathLike]


def cache_enabled() -> bool:
    """Whether the world cache is on (``REPRO_WORLD_CACHE`` != ``0``)."""
    return os.environ.get(ENV_WORLD_CACHE, "1") != "0"


def cache_dir(directory: Optional[PathLike] = None) -> Path:
    """Resolve the cache root: argument > env > XDG default."""
    if directory is not None:
        return Path(directory)
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


# ----------------------------------------------------------------------
# Canonical fingerprinting
# ----------------------------------------------------------------------

#: Pinned pickle protocol for cache keys: a protocol bump in a future
#: Python must not silently re-key (and orphan) every cached world.
_KEY_PROTOCOL = 5

_KEY_DISPATCH = copyreg.dispatch_table.copy()
_KEY_DISPATCH[frozenset] = \
    lambda s: (frozenset, (tuple(sorted(s, key=repr)),))
_KEY_DISPATCH[set] = lambda s: (set, (tuple(sorted(s, key=repr)),))


def _canonical_bytes(value) -> bytes:
    """Deterministic pickle of ``value`` (sets pickled as sorted tuples).

    Dicts pickle in insertion order and dataclasses/enums by structure,
    both deterministic; set iteration order — the one place
    ``PYTHONHASHSEED`` leaks into pickle output — is canonicalized by
    the dispatch-table overrides.
    """
    buffer = io.BytesIO()
    pickler = pickle.Pickler(buffer, protocol=_KEY_PROTOCOL)
    pickler.dispatch_table = _KEY_DISPATCH
    pickler.dump(value)
    return buffer.getvalue()


def world_key(specs: Sequence, seed: int, defaults,
              countries: Sequence) -> str:
    """The content address of a world build (64 hex chars)."""
    payload = {
        "builder": BUILDER_VERSION,
        "snapshot_format": FORMAT_VERSION,
        "seed": int(seed),
        "specs": list(specs),
        "defaults": defaults,
        "countries": list(countries),
    }
    return hashlib.sha256(_canonical_bytes(payload)).hexdigest()


# ----------------------------------------------------------------------
# The cache proper
# ----------------------------------------------------------------------

def entry_path(key: str, directory: Optional[PathLike] = None) -> Path:
    return cache_dir(directory) / f"{key}{_SUFFIX}"


#: A writer claim older than this is presumed dead (a killed builder)
#: and broken, so one crash can never wedge a cache key forever.
STALE_CLAIM_S = 300.0


def _claim_write(path: Path) -> Optional[Path]:
    """Atomically claim the right to write ``path``; None if already held.

    The claim is an ``O_CREAT | O_EXCL`` lockfile next to the entry —
    exactly one concurrent builder (thread *or* process) wins it, so
    racing cold builds produce a single writer instead of interleaved
    partial writes.  Losers simply skip the write: their built world is
    still returned, and the winner's entry serves every later call.
    """
    lock = path.with_name(path.name + ".lock")
    for attempt in range(2):
        try:
            fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            if attempt:
                return None
            try:
                age = time.time() - lock.stat().st_mtime
            except OSError:
                continue  # holder just released; retry the claim
            if age < STALE_CLAIM_S:
                return None
            try:  # break a dead builder's claim and retry once
                lock.unlink()
            except OSError:
                return None
        else:
            os.close(fd)
            return lock
    return None


def _release_claim(lock: Path) -> None:
    try:
        lock.unlink()
    except OSError:
        pass


def cached_build_world(specs: Sequence, seed: int, defaults,
                       countries: Sequence, builder: Callable[[], object],
                       directory: Optional[PathLike] = None):
    """Return the world for these inputs, building at most once per key.

    A readable entry is mmap-loaded (``cache.world_hit``); a missing or
    corrupt one falls back to ``builder()`` and the result is written
    back atomically (``cache.world_miss``).  Failures to *write* never
    fail the build — the cache is an accelerator, not a dependency.
    """
    tel = _telemetry()
    key = world_key(specs, seed, defaults, countries)
    path = entry_path(key, directory)
    if path.exists():
        try:
            with tel.span("cache.world_load", key=key[:12]):
                world = load_world(path, lazy_topology=True)
            tel.count("cache.world_hit", 1)
            return world
        except (SnapshotError, pickle.UnpicklingError, OSError,
                ValueError, KeyError, AttributeError, ImportError):
            # Unreadable entry (truncated write, stale class layout):
            # treat as a miss and overwrite below.
            pass
    tel.count("cache.world_miss", 1)
    world = builder()
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        claim = _claim_write(path)
        if claim is None:
            # Another builder holds the write claim for this key; its
            # atomic rename will publish an equivalent entry.
            tel.count("cache.world_write_skipped", 1)
            return world
        try:
            with tel.span("cache.world_save", key=key[:12]):
                save_world(world, path, extra_meta={"cache_key": key})
        finally:
            _release_claim(claim)
        from repro.io import prune
        prune.maybe_prune()
    except OSError:
        pass
    return world


# ----------------------------------------------------------------------
# Per-shard entries (sharded worlds: repro.sim.shard)
# ----------------------------------------------------------------------

def shard_key(base_key: str, index: int,
              boundaries: Sequence[int]) -> str:
    """The content address of one shard of a sharded world.

    ``base_key`` is the :func:`world_key` of the monolithic build these
    shards concatenate to; the key folds in the shard index *and* the
    full boundary vector, so re-planning the partition (different shard
    count, different AS grouping) re-keys every shard — a shard segment
    is only ever reused for the exact (world, partition, index) that
    produced it.
    """
    payload = f"{base_key}:shard:{index}:{','.join(str(b) for b in boundaries)}"
    return hashlib.sha256(payload.encode()).hexdigest()


def shard_entry_path(key: str,
                     directory: Optional[PathLike] = None) -> Path:
    return cache_dir(directory) / f"{key}{_SHARD_SUFFIX}"


def cached_build_shard(base_key: str, index: int,
                       boundaries: Sequence[int],
                       builder: Callable[[], object],
                       directory: Optional[PathLike] = None):
    """Return one shard's host table, building at most once per key.

    The shard analog of :func:`cached_build_world`: a readable entry is
    mmap-loaded zero-copy (``cache.shard_hit``), a missing or corrupt
    one is rebuilt by ``builder()`` and written back under the same
    single-writer claim protocol (``cache.shard_miss``).  Write
    failures never fail the build.
    """
    tel = _telemetry()
    key = shard_key(base_key, index, boundaries)
    path = shard_entry_path(key, directory)
    if path.exists():
        try:
            hosts = load_hosts(path, mmap=True)
            tel.count("cache.shard_hit", 1)
            return hosts
        except (SnapshotError, OSError, ValueError, KeyError):
            pass
    tel.count("cache.shard_miss", 1)
    hosts = builder()
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        claim = _claim_write(path)
        if claim is None:
            tel.count("cache.shard_write_skipped", 1)
            return hosts
        try:
            save_hosts(hosts, path)
        finally:
            _release_claim(claim)
        from repro.io import prune
        prune.maybe_prune()
    except OSError:
        pass
    return hosts


def list_shard_entries(directory: Optional[PathLike] = None
                       ) -> List["CacheEntry"]:
    """Enumerate per-shard cache entries (manifest-only reads)."""
    root = cache_dir(directory)
    entries: List[CacheEntry] = []
    if not root.is_dir():
        return entries
    for path in sorted(root.glob(f"*{_SHARD_SUFFIX}")):
        nbytes = path.stat().st_size
        try:
            meta = read_snapshot_manifest(path)["meta"]
            entries.append(CacheEntry(
                key=path.stem, path=path, nbytes=nbytes,
                n_services=meta.get("n_services")))
        except SnapshotError:
            entries.append(CacheEntry(key=path.stem, path=path,
                                      nbytes=nbytes, valid=False))
    return entries


def clear_shards(directory: Optional[PathLike] = None) -> int:
    """Delete every per-shard entry; returns how many were removed."""
    removed = 0
    for entry in list_shard_entries(directory):
        try:
            entry.path.unlink()
            removed += 1
        except OSError:
            pass
    return removed


@dataclass(frozen=True)
class CacheEntry:
    """One cached world, as listed by :func:`list_entries`."""

    key: str
    path: Path
    nbytes: int
    seed: Optional[int] = None
    n_services: Optional[int] = None
    n_ases: Optional[int] = None
    valid: bool = True


def list_entries(directory: Optional[PathLike] = None) -> List[CacheEntry]:
    """Enumerate cache entries (manifest-only reads; no array I/O)."""
    root = cache_dir(directory)
    entries: List[CacheEntry] = []
    if not root.is_dir():
        return entries
    for path in sorted(root.glob(f"*{_SUFFIX}")):
        nbytes = path.stat().st_size
        try:
            meta = read_snapshot_manifest(path)["meta"]
            entries.append(CacheEntry(
                key=path.stem, path=path, nbytes=nbytes,
                seed=meta.get("seed"), n_services=meta.get("n_services"),
                n_ases=meta.get("n_ases")))
        except SnapshotError:
            entries.append(CacheEntry(key=path.stem, path=path,
                                      nbytes=nbytes, valid=False))
    return entries


def clear(directory: Optional[PathLike] = None) -> int:
    """Delete every cache entry; returns how many were removed."""
    removed = 0
    for entry in list_entries(directory):
        try:
            entry.path.unlink()
            removed += 1
        except OSError:
            pass
    return removed
