"""CSV summary export.

Analyses are numpy-native; this module writes the small, human-shareable
summaries (per-origin coverage per trial) as plain CSV without pulling in
pandas.
"""

from __future__ import annotations

import csv
from typing import Optional, Sequence

from repro.core.coverage import coverage_table
from repro.core.dataset import CampaignDataset


def write_coverage_csv(dataset: CampaignDataset, path: str,
                       protocols: Optional[Sequence[str]] = None) -> None:
    """Write per-(protocol, trial, origin) coverage rows to ``path``."""
    chosen = list(protocols) if protocols is not None \
        else dataset.protocols
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["protocol", "trial", "origin", "coverage",
                         "ground_truth_hosts"])
        for protocol in chosen:
            table = coverage_table(dataset, protocol)
            for trial in table.trials:
                for origin in table.origins:
                    value = table.coverage[trial].get(origin)
                    if value is None:
                        continue
                    writer.writerow([
                        protocol, trial, origin, f"{value:.6f}",
                        table.union_size[trial]])
