"""LRU-by-mtime eviction for every on-disk cache.

Four content-addressed caches accumulate under the cache roots — built
worlds (``.world``), shard segments (``.shard``), served results
(``.result``), and plane units (``.planes``) — and none of them, by
design, ever re-addresses a stale key, so without a cap a long-lived
host grows without bound.  This module enforces an optional total-size
budget, ``REPRO_CACHE_MAX_BYTES``, across all of them: entries are
ranked by mtime (newest first) and the oldest are unlinked until the
survivors fit.

Unlinking is safe against concurrent readers by construction: every
cache reads via ``open``/``mmap`` on the published file, and POSIX
unlink only removes the directory entry — a reader holding the file
(or its mapping) keeps the inode alive until it closes.  Writers are
equally safe: publications go through temp-file + atomic rename, so a
pruned key that is re-stored simply reappears as a fresh entry.  Only
cache entries themselves are candidates — ``.lock`` claims and ``.tmp``
staging files are never touched.

Invocation points:

* ``repro cache prune [--max-bytes N]`` — explicit, one-shot;
* :func:`maybe_prune` — called after every successful cache write
  (worlds, shards, results, planes); a cheap no-op unless
  ``REPRO_CACHE_MAX_BYTES`` is set.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.telemetry.context import current as _telemetry

ENV_CACHE_MAX_BYTES = "REPRO_CACHE_MAX_BYTES"

#: Every on-disk cache-entry suffix subject to eviction.
CACHE_SUFFIXES = (".world", ".shard", ".result", ".planes")

PathLike = Union[str, os.PathLike]


def max_bytes_env() -> Optional[int]:
    """The configured budget, or ``None`` when unset/invalid."""
    raw = os.environ.get(ENV_CACHE_MAX_BYTES)
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value >= 0 else None


def cache_roots() -> List[Path]:
    """Every cache root currently in effect, deduplicated."""
    from repro.io import worldcache
    from repro.serve import planecache, resultcache

    roots: List[Path] = []
    for root in (worldcache.cache_dir(), resultcache.cache_dir(),
                 planecache.cache_dir()):
        resolved = Path(root)
        if resolved not in roots:
            roots.append(resolved)
    return roots


@dataclass(frozen=True)
class PruneReport:
    """What one prune pass scanned, kept, and removed."""

    scanned: int
    removed: int
    freed_bytes: int
    kept: int
    kept_bytes: int
    max_bytes: Optional[int]
    roots: Tuple[str, ...]


def _candidates(roots: Sequence[Path]) -> List[Tuple[float, str, int, Path]]:
    """(mtime, name, nbytes, path) for every cache entry under ``roots``."""
    out: List[Tuple[float, str, int, Path]] = []
    for root in roots:
        if not root.is_dir():
            continue
        for suffix in CACHE_SUFFIXES:
            for path in root.glob(f"*{suffix}"):
                try:
                    stat = path.stat()
                except OSError:
                    continue  # racing unlink; nothing to evict
                out.append((stat.st_mtime, path.name, stat.st_size, path))
    return out


def prune(max_bytes: Optional[int] = None,
          roots: Optional[Sequence[PathLike]] = None) -> PruneReport:
    """Evict oldest-first until total cache bytes fit ``max_bytes``.

    ``max_bytes`` defaults to ``REPRO_CACHE_MAX_BYTES``; with neither
    set this raises :class:`ValueError` (an unbounded prune would empty
    every cache).  Entries are ranked by mtime with the file name as a
    deterministic tiebreak; removal is plain ``unlink`` — concurrent
    readers keep their inode, concurrent writers re-publish atomically.
    """
    if max_bytes is None:
        max_bytes = max_bytes_env()
    if max_bytes is None:
        raise ValueError(
            f"no budget: pass max_bytes or set {ENV_CACHE_MAX_BYTES}")
    resolved = [Path(r) for r in roots] if roots is not None \
        else cache_roots()
    entries = _candidates(resolved)
    # Newest first; name tiebreak keeps equal-mtime ordering stable.
    entries.sort(key=lambda e: (-e[0], e[1]))
    kept = kept_bytes = removed = freed = 0
    for _mtime, _name, nbytes, path in entries:
        if kept_bytes + nbytes <= max_bytes:
            kept += 1
            kept_bytes += nbytes
            continue
        try:
            path.unlink()
        except OSError:
            kept += 1  # racing reader platform quirk or permission: keep
            kept_bytes += nbytes
            continue
        removed += 1
        freed += nbytes
    tel = _telemetry()
    if removed:
        tel.count("cache.pruned", removed)
        tel.count("cache.pruned_bytes", freed)
    return PruneReport(scanned=len(entries), removed=removed,
                       freed_bytes=freed, kept=kept, kept_bytes=kept_bytes,
                       max_bytes=max_bytes,
                       roots=tuple(str(r) for r in resolved))


def maybe_prune() -> Optional[PruneReport]:
    """Post-write hook: prune iff ``REPRO_CACHE_MAX_BYTES`` is set.

    Never raises — eviction is bookkeeping, and a failed prune must not
    fail the cache write that triggered it.
    """
    budget = max_bytes_env()
    if budget is None:
        return None
    try:
        return prune(budget)
    except (OSError, ValueError):
        return None
