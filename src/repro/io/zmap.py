"""Loaders for raw ZMap / ZGrab output.

Real campaigns produce, per (origin, protocol, trial):

* a **ZMap CSV** of SYN-ACK responders — we accept the classic
  ``saddr,timestamp_ts[,probe]`` header (extra columns ignored; a missing
  ``probe`` column counts every row against probe 0, with duplicate rows
  for retransmission responses mapped to successive probes);
* a **ZGrab ndjson** stream of application-handshake results — objects
  with ``ip`` and either ``success: true`` or an ``error`` string.

:func:`assemble_trial` fuses one trial's per-origin files into a
:class:`~repro.core.dataset.TrialData`, optionally attributing IPs via a
routing table and GeoIP database, after which every analysis in
:mod:`repro.core` applies unchanged.
"""

from __future__ import annotations

import json
from typing import Dict, Mapping, Tuple

import numpy as np

from repro.core.dataset import TrialData
from repro.core.records import L7Status
from repro.net.ipv4 import parse_ipv4

#: ZGrab error substrings → observed L7 status.
_ERROR_STATUS = (
    ("reset", L7Status.L4_CLOSE_RST),
    ("connection refused", L7Status.L4_CLOSE_FIN),
    ("closed", L7Status.L4_CLOSE_FIN),
    ("eof", L7Status.L4_CLOSE_FIN),
    ("timeout", L7Status.L4_DROP),
    ("unreachable", L7Status.NO_L4),
)


def read_zmap_csv(text: str) -> Dict[int, Tuple[int, float]]:
    """Parse ZMap responder output → ip → (probe_mask, first_time).

    Accepts a header line naming at least ``saddr``; ``timestamp_ts`` and
    ``probe`` are used when present.  Without a ``probe`` column,
    repeated rows for the same address are interpreted as responses to
    successive probes.
    """
    lines = [line.strip() for line in text.splitlines() if line.strip()]
    if not lines:
        return {}
    header = [col.strip() for col in lines[0].split(",")]
    if "saddr" not in header:
        raise ValueError("ZMap CSV must have a 'saddr' column")
    ip_col = header.index("saddr")
    ts_col = header.index("timestamp_ts") if "timestamp_ts" in header \
        else None
    probe_col = header.index("probe") if "probe" in header else None

    out: Dict[int, Tuple[int, float]] = {}
    seen_count: Dict[int, int] = {}
    for line in lines[1:]:
        cols = [c.strip() for c in line.split(",")]
        ip = parse_ipv4(cols[ip_col])
        time = float(cols[ts_col]) if ts_col is not None \
            and ts_col < len(cols) else 0.0
        if probe_col is not None and probe_col < len(cols):
            probe = int(cols[probe_col])
        else:
            probe = seen_count.get(ip, 0)
        seen_count[ip] = seen_count.get(ip, 0) + 1
        mask, first = out.get(ip, (0, time))
        out[ip] = (mask | (1 << min(probe, 7)), min(first, time))
    return out


def read_zgrab_ndjson(text: str) -> Dict[int, L7Status]:
    """Parse ZGrab results → ip → observed L7 status."""
    out: Dict[int, L7Status] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        ip = parse_ipv4(record["ip"])
        if record.get("success"):
            out[ip] = L7Status.SUCCESS
            continue
        error = str(record.get("error", "")).lower()
        status = L7Status.L4_DROP
        for needle, candidate in _ERROR_STATUS:
            if needle in error:
                status = candidate
                break
        out[ip] = status
    return out


def assemble_trial(protocol: str, trial: int,
                   zmap_by_origin: Mapping[str, str],
                   zgrab_by_origin: Mapping[str, str],
                   routing=None, geoip=None,
                   n_probes: int = 2) -> TrialData:
    """Fuse per-origin ZMap + ZGrab output into a TrialData.

    ``routing`` (a :class:`~repro.topology.routing.RoutingTable`) and
    ``geoip`` (a :class:`~repro.topology.geo.GeoIPDatabase`) are optional;
    without them attribution columns are -1 and the per-AS/per-country
    analyses will see a single "unknown" bucket.
    """
    if set(zmap_by_origin) != set(zgrab_by_origin):
        raise ValueError("zmap and zgrab inputs must cover the same "
                         "origins")
    origins = sorted(zmap_by_origin)
    zmap = {o: read_zmap_csv(zmap_by_origin[o]) for o in origins}
    zgrab = {o: read_zgrab_ndjson(zgrab_by_origin[o]) for o in origins}

    universe = sorted({ip for table in zmap.values() for ip in table}
                      | {ip for table in zgrab.values() for ip in table})
    ips = np.array(universe, dtype=np.uint32)
    index_of = {ip: i for i, ip in enumerate(universe)}
    n = len(ips)
    o = len(origins)

    probe_mask = np.zeros((o, n), dtype=np.uint8)
    l7 = np.zeros((o, n), dtype=np.uint8)
    time = np.zeros((o, n), dtype=np.float32)
    for oi, origin in enumerate(origins):
        for ip, (mask, first) in zmap[origin].items():
            col = index_of[ip]
            probe_mask[oi, col] = mask
            time[oi, col] = first
        for ip, status in zgrab[origin].items():
            col = index_of[ip]
            if probe_mask[oi, col] == 0 and status != L7Status.NO_L4:
                # ZGrab reached it, so L4 worked even if ZMap's CSV was
                # incomplete; count one probe response.
                probe_mask[oi, col] = 1
            l7[oi, col] = int(status)
        # L4 responders with no ZGrab record: the follow-up never
        # completed → silent drop.
        responded = probe_mask[oi] > 0
        no_l7 = np.array([universe[i] not in zgrab[origin]
                          for i in range(n)])
        l7[oi, responded & no_l7] = int(L7Status.L4_DROP)

    as_index = np.full(n, -1, dtype=np.int64)
    country_index = np.full(n, -1, dtype=np.int64)
    geo_index = np.full(n, -1, dtype=np.int64)
    if routing is not None:
        as_index = routing.as_index_array(ips)
    if geoip is not None:
        country_index = geoip.true_index_array(ips)
        geo_index = geoip.geolocate_index_array(ips)

    return TrialData(protocol=protocol, trial=trial, origins=origins,
                     ip=ips, as_index=as_index,
                     country_index=country_index, geo_index=geo_index,
                     probe_mask=probe_mask, l7=l7, time=time,
                     n_probes=n_probes)
