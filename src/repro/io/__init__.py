"""Dataset import/export: ndjson scan records and CSV summaries."""

from repro.io.ndjson import (load_campaign, read_ndjson_records,
                             save_campaign)
from repro.io.csv import write_coverage_csv
from repro.io.zmap import assemble_trial, read_zgrab_ndjson, read_zmap_csv

__all__ = [
    "load_campaign",
    "read_ndjson_records",
    "save_campaign",
    "write_coverage_csv",
    "assemble_trial",
    "read_zgrab_ndjson",
    "read_zmap_csv",
]
