"""Dataset import/export: ndjson scan records, columnar snapshots, CSV.

Two campaign formats share one data model: NDJSON directories
(:mod:`repro.io.ndjson`, the interoperability seam) and binary columnar
snapshots (:mod:`repro.io.columnar`, the fast path).
:func:`load_any_campaign` tells them apart by shape — a directory is
NDJSON, a file with the snapshot magic is columnar — so CLI consumers
accept either.
"""

import os

from repro.io.columnar import (SnapshotError, is_snapshot, read_snapshot,
                               write_snapshot)
from repro.io.columnar import load_campaign as load_campaign_columnar
from repro.io.columnar import load_world, save_world
from repro.io.columnar import save_campaign as save_campaign_columnar
from repro.io.csv import write_coverage_csv
from repro.io.ndjson import (load_campaign, read_ndjson_records,
                             save_campaign)
from repro.io.zmap import assemble_trial, read_zgrab_ndjson, read_zmap_csv


def load_any_campaign(path):
    """Load a campaign from either on-disk format, detected by shape."""
    if os.path.isdir(path):
        return load_campaign(path)
    if is_snapshot(path):
        return load_campaign_columnar(path)
    raise ValueError(
        f"{path}: neither an ndjson campaign directory nor a columnar "
        f"snapshot file")


__all__ = [
    "SnapshotError",
    "is_snapshot",
    "read_snapshot",
    "write_snapshot",
    "load_campaign",
    "load_campaign_columnar",
    "load_any_campaign",
    "load_world",
    "save_world",
    "read_ndjson_records",
    "save_campaign",
    "save_campaign_columnar",
    "write_coverage_csv",
    "assemble_trial",
    "read_zgrab_ndjson",
    "read_zmap_csv",
]
