"""Plain-text table rendering for benches and examples."""

from __future__ import annotations

from typing import List, Optional, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: Optional[str] = None) -> str:
    """Render an aligned ASCII table.

    Cells are stringified; columns are right-aligned except the first.
    """
    str_rows: List[List[str]] = [[str(cell) for cell in row]
                                 for row in rows]
    str_headers = [str(h) for h in headers]
    n_cols = len(str_headers)
    for row in str_rows:
        if len(row) != n_cols:
            raise ValueError(
                f"row has {len(row)} cells, expected {n_cols}")

    widths = [len(h) for h in str_headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if i == 0:
                parts.append(cell.ljust(widths[i]))
            else:
                parts.append(cell.rjust(widths[i]))
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
    lines.append(format_row(str_headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(format_row(row) for row in str_rows)
    return "\n".join(lines)
