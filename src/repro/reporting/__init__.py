"""ASCII renderers for the paper's tables and figures."""

from repro.reporting.tables import render_table
from repro.reporting.figures import (
    render_bars,
    render_grouped_bars,
    render_cdf,
    render_series,
)

__all__ = [
    "render_table",
    "render_bars",
    "render_grouped_bars",
    "render_cdf",
    "render_series",
]
