"""Plain-text figure rendering: bar charts, CDFs, time series.

These produce the textual analogs of the paper's figures so benches and
examples can show the regenerated result inline.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

import numpy as np

_BAR_WIDTH = 40


def render_bars(values: Mapping[str, float], title: Optional[str] = None,
                fmt: str = "{:.1%}", width: int = _BAR_WIDTH) -> str:
    """A horizontal bar chart of label → value."""
    if not values:
        return title or ""
    peak = max(abs(v) for v in values.values()) or 1.0
    label_width = max(len(str(k)) for k in values)
    lines = [title] if title else []
    for label, value in values.items():
        bar = "#" * max(0, round(abs(value) / peak * width))
        lines.append(f"{str(label).ljust(label_width)} "
                     f"{fmt.format(value).rjust(8)} {bar}")
    return "\n".join(lines)


def render_grouped_bars(groups: Mapping[str, Mapping[str, float]],
                        title: Optional[str] = None,
                        fmt: str = "{:,.0f}") -> str:
    """Stacked-category bars: group → {category: value}."""
    lines = [title] if title else []
    label_width = max((len(str(g)) for g in groups), default=0)
    categories: List[str] = []
    for parts in groups.values():
        for category in parts:
            if category not in categories:
                categories.append(category)
    for group, parts in groups.items():
        cells = "  ".join(f"{c}={fmt.format(parts.get(c, 0))}"
                          for c in categories)
        lines.append(f"{str(group).ljust(label_width)}  {cells}")
    return "\n".join(lines)


def render_cdf(values: np.ndarray, cdf: np.ndarray,
               title: Optional[str] = None,
               points: Sequence[float] = (0.25, 0.5, 0.75, 0.9, 0.95, 0.99)
               ) -> str:
    """Summarize a CDF at the given quantiles."""
    lines = [title] if title else []
    values = np.asarray(values)
    cdf = np.asarray(cdf)
    if len(values) == 0:
        lines.append("(empty)")
        return "\n".join(lines)
    for point in points:
        idx = int(np.searchsorted(cdf, point))
        idx = min(idx, len(values) - 1)
        lines.append(f"  p{int(point * 100):02d}: {values[idx]:.4f}")
    return "\n".join(lines)


def render_series(series: Mapping[str, np.ndarray],
                  title: Optional[str] = None,
                  height_chars: str = " .:-=+*#%@") -> str:
    """Render time series as character sparklines (one row per label)."""
    lines = [title] if title else []
    label_width = max((len(str(k)) for k in series), default=0)
    for label, values in series.items():
        values = np.asarray(values, dtype=np.float64)
        if len(values) == 0:
            lines.append(f"{str(label).ljust(label_width)}  (no data)")
            continue
        finite = np.nan_to_num(values, nan=0.0)
        peak = finite.max() or 1.0
        levels = np.clip((finite / peak * (len(height_chars) - 1)),
                         0, len(height_chars) - 1).astype(int)
        spark = "".join(height_chars[level] for level in levels)
        lines.append(f"{str(label).ljust(label_width)}  |{spark}|")
    return "\n".join(lines)
