"""Markdown rendering of tables and bar data.

Mirrors :mod:`repro.reporting.tables` / ``figures`` for report files and
READMEs: GitHub-flavoured pipe tables and percentage columns instead of
ASCII bars.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence],
                   title: Optional[str] = None) -> str:
    """A GitHub-flavoured pipe table."""
    str_headers = [str(h) for h in headers]
    str_rows = [[str(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(str_headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(str_headers)}")
    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| " + " | ".join(str_headers) + " |")
    lines.append("|" + "|".join("---" for _ in str_headers) + "|")
    for row in str_rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def markdown_bars(values: Mapping[str, float],
                  title: Optional[str] = None,
                  fmt: str = "{:.1%}") -> str:
    """Label/value pairs as a two-column markdown table."""
    rows = [[label, fmt.format(value)] for label, value in values.items()]
    return markdown_table(["", "value"], rows, title=title)
