"""Counter-based deterministic random number generation.

Every stochastic decision in the simulator is a pure function of
``(seed, stream key, counters)``.  This gives two properties that ordinary
sequential generators (``random.Random``, ``numpy.random.Generator``) lack:

* **Order independence** — the outcome for host *h* does not depend on how
  many other hosts were evaluated first.  The vectorized scan path and the
  scalar per-host path therefore agree bit-for-bit.
* **Stable replay** — re-running any slice of a campaign (one origin, one
  trial, one host) reproduces exactly the same draws.

The mixing function is splitmix64 (Steele, Lea & Flood 2014), applied to a
running fold of the key material.  It passes BigCrush when used as a plain
generator and is more than adequate as a hash-style RNG for simulation.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

import numpy as np

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB

#: Accepted key-component types.
KeyPart = Union[int, str]


def _mix_scalar(x: int) -> int:
    """One splitmix64 finalization round over a Python int."""
    x = (x + _GOLDEN) & _MASK64
    x ^= x >> 30
    x = (x * _MIX1) & _MASK64
    x ^= x >> 27
    x = (x * _MIX2) & _MASK64
    x ^= x >> 31
    return x


def _fold_part(state: int, part: KeyPart) -> int:
    """Fold one key component (int or str) into a 64-bit state."""
    if isinstance(part, str):
        for byte in part.encode("utf-8"):
            state = _mix_scalar(state ^ byte)
        return _mix_scalar(state ^ len(part))
    if isinstance(part, (int, np.integer)):
        return _mix_scalar(state ^ (int(part) & _MASK64))
    raise TypeError(f"RNG key parts must be int or str, got {type(part)!r}")


def _mix_array(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalization over a uint64 array."""
    x = (x + np.uint64(_GOLDEN)).astype(np.uint64)
    x ^= x >> np.uint64(30)
    x = (x * np.uint64(_MIX1)).astype(np.uint64)
    x ^= x >> np.uint64(27)
    x = (x * np.uint64(_MIX2)).astype(np.uint64)
    x ^= x >> np.uint64(31)
    return x


class CounterRNG:
    """A keyed, counter-addressable random stream.

    A stream is identified by a 64-bit key derived from a seed plus an
    arbitrary sequence of int/str components.  Draws are addressed by
    integer counters rather than produced sequentially::

        rng = CounterRNG(7, "packet-loss", origin_id)
        u = rng.uniform(host_id, probe_no)          # scalar draw
        us = rng.uniform_array(host_ids, probe_no)  # one draw per host

    ``derive`` creates an independent sub-stream; two streams derived with
    different components never collide in practice.
    """

    __slots__ = ("key", "_key_u64")

    def __init__(self, seed: int, *stream: KeyPart) -> None:
        state = _mix_scalar(int(seed) & _MASK64)
        for part in stream:
            state = _fold_part(state, part)
        self.key = state
        self._key_u64 = np.uint64(state)

    def derive(self, *stream: KeyPart) -> "CounterRNG":
        """Return an independent sub-stream keyed by ``stream``."""
        child = CounterRNG.__new__(CounterRNG)
        state = self.key
        for part in stream:
            state = _fold_part(state, part)
        child.key = state
        child._key_u64 = np.uint64(state)
        return child

    # ------------------------------------------------------------------
    # Scalar draws
    # ------------------------------------------------------------------

    def bits(self, *counters: KeyPart) -> int:
        """64 pseudo-random bits addressed by ``counters`` (ints or strs)."""
        state = self.key
        for c in counters:
            state = _fold_part(state, c)
        return _mix_scalar(state)

    def uniform(self, *counters: int) -> float:
        """A float in [0, 1) addressed by ``counters``."""
        return (self.bits(*counters) >> 11) * (1.0 / (1 << 53))

    def bernoulli(self, p: float, *counters: int) -> bool:
        """True with probability ``p``, addressed by ``counters``."""
        if p <= 0.0:
            return False
        if p >= 1.0:
            return True
        return self.uniform(*counters) < p

    def randint(self, lo: int, hi: int, *counters: int) -> int:
        """An integer in [lo, hi) addressed by ``counters``."""
        if hi <= lo:
            raise ValueError(f"empty range [{lo}, {hi})")
        span = hi - lo
        return lo + self.bits(*counters) % span

    def exponential(self, mean: float, *counters: int) -> float:
        """An exponential variate with the given mean."""
        u = self.uniform(*counters)
        # Guard against log(0); u is in [0, 1) so 1 - u is in (0, 1].
        return -mean * float(np.log1p(-u))

    def choice(self, items: Sequence, *counters: int):
        """One element of ``items`` chosen uniformly."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return items[self.bits(*counters) % len(items)]

    def weighted_choice(self, items: Sequence, weights: Sequence[float],
                        *counters: int):
        """One element of ``items`` chosen with the given weights."""
        if len(items) != len(weights):
            raise ValueError("items and weights must have equal length")
        total = float(sum(weights))
        if total <= 0.0:
            raise ValueError("weights must sum to a positive value")
        target = self.uniform(*counters) * total
        acc = 0.0
        for item, weight in zip(items, weights):
            acc += weight
            if target < acc:
                return item
        return items[-1]

    def shuffled(self, items: Iterable, *counters: int) -> list:
        """A deterministically shuffled copy of ``items``."""
        out = list(items)
        sub = self.derive("shuffle", *[int(c) for c in counters])
        # Fisher-Yates driven by counter-addressed draws.
        for i in range(len(out) - 1, 0, -1):
            j = sub.bits(i) % (i + 1)
            out[i], out[j] = out[j], out[i]
        return out

    # ------------------------------------------------------------------
    # Vectorized draws
    # ------------------------------------------------------------------

    def bits_array(self, counters: np.ndarray, *extra: int) -> np.ndarray:
        """64 pseudo-random bits per element of ``counters``.

        ``extra`` scalar counters are folded in before the per-element
        counter, so ``bits_array(ids, k)`` matches ``bits(k, i)`` — note the
        per-element counter is folded last in both paths.
        """
        state = self.key
        for c in extra:
            state = _fold_part(state, c)
        arr = np.asarray(counters, dtype=np.uint64)
        # Mirror the scalar path exactly: fold the per-element counter, then
        # apply the final output mix.
        return _mix_array(_mix_array(np.uint64(state) ^ arr))

    def uniform_array(self, counters: np.ndarray, *extra: int) -> np.ndarray:
        """Floats in [0, 1), one per element of ``counters``."""
        bits = self.bits_array(counters, *extra)
        return (bits >> np.uint64(11)).astype(np.float64) * (1.0 / (1 << 53))

    def bernoulli_array(self, p, counters: np.ndarray,
                        *extra: int) -> np.ndarray:
        """Boolean array, each True with probability ``p``.

        ``p`` may be a scalar or an array broadcastable to ``counters``.
        """
        return self.uniform_array(counters, *extra) < p

    def exponential_array(self, mean, counters: np.ndarray,
                          *extra: int) -> np.ndarray:
        """Exponential variates, one per element of ``counters``."""
        u = self.uniform_array(counters, *extra)
        return -np.asarray(mean, dtype=np.float64) * np.log1p(-u)


def _mix_array_inplace(x: np.ndarray, scratch: np.ndarray) -> None:
    """One splitmix64 finalization round over ``x``, in place.

    Identical arithmetic to :func:`_mix_array` (uint64 wraparound, same
    operation order) but written through ``out=`` into ``x`` and the
    caller-provided ``scratch`` buffer, so hot loops — the vectorized
    bootstrap draws 500 × n of these — allocate nothing per call and
    keep their working set cache-resident.
    """
    np.add(x, np.uint64(_GOLDEN), out=x)
    np.right_shift(x, np.uint64(30), out=scratch)
    np.bitwise_xor(x, scratch, out=x)
    np.multiply(x, np.uint64(_MIX1), out=x)
    np.right_shift(x, np.uint64(27), out=scratch)
    np.bitwise_xor(x, scratch, out=x)
    np.multiply(x, np.uint64(_MIX2), out=x)
    np.right_shift(x, np.uint64(31), out=scratch)
    np.bitwise_xor(x, scratch, out=x)


def keyed_bits_into(key: np.uint64, counters: np.ndarray,
                    out: np.ndarray, scratch: np.ndarray) -> np.ndarray:
    """Draw ``bits_array(counters)`` for one pre-derived stream key.

    Writes into the caller's ``out``/``scratch`` uint64 buffers (both
    shaped like ``counters``) and returns ``out``.  Bit-identical to
    ``CounterRNG`` with ``key`` → ``bits_array(counters)``; the
    allocation-free twin of :func:`keyed_bits_array` for loops that
    draw from many streams over the same counter vector.
    """
    np.bitwise_xor(counters, key, out=out)
    _mix_array_inplace(out, scratch)
    _mix_array_inplace(out, scratch)
    return out


def keyed_bits_array(keys: np.ndarray,
                     counters: np.ndarray) -> np.ndarray:
    """64 pseudo-random bits where element *i* draws from stream ``keys[i]``.

    ``keys`` carries pre-derived stream keys (:attr:`CounterRNG.key`);
    ``keys`` and ``counters`` broadcast against each other, so a
    ``(replicates, 1)`` key column against a ``(1, n)`` counter row
    yields a full ``(replicates, n)`` draw matrix in one call — the
    vectorized-bootstrap workhorse.  Bit-identical to calling
    ``CounterRNG`` with ``key == keys[i]`` → ``bits_array(counters)``
    element by element.
    """
    keys = np.asarray(keys, dtype=np.uint64)
    counters = np.asarray(counters, dtype=np.uint64)
    return _mix_array(_mix_array(keys ^ counters))


def keyed_uniform_array(keys: np.ndarray,
                        counters: np.ndarray) -> np.ndarray:
    """Floats in [0, 1) where element *i* is drawn from stream ``keys[i]``.

    ``keys`` carries pre-derived stream keys (:attr:`CounterRNG.key`), one
    per element, so a single vectorized call can evaluate draws that
    belong to *different* streams — e.g. per-AS firewall-coverage draws
    concatenated across ASes.  Bit-identical to calling
    ``CounterRNG`` with ``key == keys[i]`` → ``uniform_array(counters)``
    element by element.
    """
    bits = keyed_bits_array(keys, counters)
    return (bits >> np.uint64(11)).astype(np.float64) * (1.0 / (1 << 53))


def stream_keys(rng: CounterRNG,
                suffixes: Iterable[Sequence[KeyPart]]) -> np.ndarray:
    """Pre-derived stream keys, one per suffix tuple, as a uint64 array.

    ``stream_keys(rng, [("present", proto, t) for t in trials])`` is the
    array-of-trials twin of ``rng.derive("present", proto, t).key``: row
    *t* of the returned vector keys exactly the stream the scalar path
    would use for trial ``t``.  Feed the result to
    :func:`keyed_bits_lattice` / :func:`keyed_uniform_lattice` to draw a
    whole trial axis in one vectorized call.
    """
    keys = [rng.derive(*suffix).key for suffix in suffixes]
    return np.asarray(keys, dtype=np.uint64)


def keyed_bits_lattice(keys: np.ndarray,
                       counters: np.ndarray) -> np.ndarray:
    """A ``(len(keys), n)`` bit matrix: row *t* draws from stream ``keys[t]``.

    ``counters`` is either one shared ``(n,)`` counter vector (every row
    draws at the same addresses — e.g. host ids) or a ``(len(keys), n)``
    matrix (per-row addresses — e.g. per-trial epoch keys).  Row *t* is
    bit-identical to ``CounterRNG`` with ``key == keys[t]`` →
    ``bits_array(counters[t])``; batching over the trial axis is exact,
    not approximate.
    """
    keys = np.asarray(keys, dtype=np.uint64)
    counters = np.asarray(counters, dtype=np.uint64)
    shared = counters.ndim == 1
    out = np.empty((len(keys), counters.shape[-1]), dtype=np.uint64)
    # Row-at-a-time on purpose: the temporaries of one row stay
    # cache-resident, where a single (T, n) evaluation would stream
    # T-times-larger intermediates through memory for the same hashes.
    for t in range(len(keys)):
        row = counters if shared else counters[t]
        out[t] = _mix_array(_mix_array(keys[t] ^ row))
    return out


def keyed_uniform_lattice(keys: np.ndarray,
                          counters: np.ndarray) -> np.ndarray:
    """A ``(len(keys), n)`` float matrix in [0, 1): row *t* from ``keys[t]``.

    The uniform twin of :func:`keyed_bits_lattice`; see there for the
    counter-broadcast contract.  This is the workhorse of the fused
    trial-batched observation kernel (:mod:`repro.sim.batch`): one call
    replaces one ``uniform_array`` call per trial.
    """
    keys = np.asarray(keys, dtype=np.uint64)
    counters = np.asarray(counters, dtype=np.uint64)
    shared = counters.ndim == 1
    out = np.empty((len(keys), counters.shape[-1]), dtype=np.float64)
    for t in range(len(keys)):
        row = counters if shared else counters[t]
        bits = _mix_array(_mix_array(keys[t] ^ row))
        out[t] = (bits >> np.uint64(11)).astype(np.float64) \
            * (1.0 / (1 << 53))
    return out


def scalar_matches_vector(rng: CounterRNG, counter: int, *extra: int) -> bool:
    """True when the scalar and vector paths agree for one draw.

    Exposed for tests and for sanity checks in user code; the agreement is a
    core invariant of the simulator (see module docstring).
    """
    scalar = rng.bits(*extra, counter)
    vector = int(rng.bits_array(np.array([counter]), *extra)[0])
    return scalar == vector
