"""Transient application-layer flakiness for HTTP(S) servers.

Not all transient loss happens at L4: the paper observes that ~70 % of
transiently missed HTTP(S) hosts complete the TCP handshake and then *drop*
the connection (time out) rather than close it, and that 8 % of long-term
inaccessible HTTP(S) hosts are responsive at L4 but never complete the L7
handshake.  This module models both: a small population of flaky servers
that probabilistically fail the application handshake, split between
dropping and explicitly closing, plus a sliver of persistently L7-dead
hosts (half-configured servers, middleboxes answering SYNs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rng import CounterRNG, keyed_uniform_lattice, stream_keys


@dataclass(frozen=True)
class L7FlakySpec:
    """Application-layer flakiness within one network."""

    #: Fraction of hosts that are transiently flaky at L7.
    flaky_fraction: float = 0.0
    #: Per-connection probability that a flaky host fails the handshake.
    fail_prob: float = 0.3
    #: Among failures, fraction that silently drop (vs. explicitly close).
    drop_share: float = 0.7
    #: Fraction of hosts that are persistently L7-dead (respond at L4 but
    #: never complete the application handshake, from any origin).
    dead_fraction: float = 0.0

    def __post_init__(self) -> None:
        for name in ("flaky_fraction", "fail_prob", "drop_share",
                     "dead_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


class L7FlakyModel:
    """Evaluates transient and persistent L7 failures."""

    def __init__(self, rng: CounterRNG) -> None:
        self._rng = rng.derive("l7-flaky")

    def dead_mask_params(self, dead_fractions: np.ndarray,
                         host_ids: np.ndarray, protocol: str) -> np.ndarray:
        """Array-parameter form of :meth:`dead_mask` (per-host fractions)."""
        u = self._rng.uniform_array(
            np.asarray(host_ids, dtype=np.uint64), "dead", protocol)
        return u < np.asarray(dead_fractions, dtype=np.float64)

    def flaky_mask_params(self, flaky_fractions: np.ndarray,
                          host_ids: np.ndarray, protocol: str) -> np.ndarray:
        """Persistent membership in the transiently-flaky population."""
        host_ids = np.asarray(host_ids, dtype=np.uint64)
        return self._rng.uniform_array(host_ids, "flaky", protocol) \
            < np.asarray(flaky_fractions, dtype=np.float64)

    def drop_style_mask_params(self, drop_shares: np.ndarray,
                               host_ids: np.ndarray,
                               protocol: str) -> np.ndarray:
        """Persistent failure style: True → silent drop, False → close."""
        host_ids = np.asarray(host_ids, dtype=np.uint64)
        return self._rng.uniform_array(host_ids, "style", protocol) \
            < np.asarray(drop_shares, dtype=np.float64)

    def fail_mask_params(self, fail_probs: np.ndarray,
                         host_ids: np.ndarray, protocol: str,
                         origin_name: str, trial: int,
                         attempt: int = 0) -> np.ndarray:
        """Per-(origin, trial, attempt) handshake-failure draw."""
        host_ids = np.asarray(host_ids, dtype=np.uint64)
        return self._rng.uniform_array(host_ids, "fail", protocol,
                                       origin_name, trial, attempt) \
            < np.asarray(fail_probs, dtype=np.float64)

    def fail_mask_lattice(self, fail_probs: np.ndarray,
                          host_ids: np.ndarray, protocol: str,
                          origin_name: str, trials,
                          attempt: int = 0) -> np.ndarray:
        """:meth:`fail_mask_params` for a whole trial axis at once.

        Row *t* of the ``(n_trials, n_hosts)`` result is bit-identical
        to ``fail_mask_params(fail_probs, host_ids, protocol,
        origin_name, trials[t], attempt)``.
        """
        keys = stream_keys(
            self._rng,
            [("fail", protocol, origin_name, int(t), attempt)
             for t in trials])
        u = keyed_uniform_lattice(
            keys, np.asarray(host_ids, dtype=np.uint64))
        return u < np.asarray(fail_probs, dtype=np.float64)

    def failure_masks_params(self, flaky_fractions: np.ndarray,
                             fail_probs: np.ndarray,
                             drop_shares: np.ndarray,
                             host_ids: np.ndarray, protocol: str,
                             origin_name: str, trial: int,
                             attempt: int = 0) -> tuple:
        """Array-parameter form of :meth:`failure_masks`.

        ``attempt`` distinguishes L7 retries so re-connecting to a flaky
        server is an independent draw.  The flaky-membership and style
        draws are origin/trial-independent; observation plans cache them
        per protocol view (:mod:`repro.sim.plan`) and compose the same
        masks from the split methods above.
        """
        host_ids = np.asarray(host_ids, dtype=np.uint64)
        flaky = self.flaky_mask_params(flaky_fractions, host_ids, protocol)
        fails = flaky & self.fail_mask_params(fail_probs, host_ids,
                                              protocol, origin_name,
                                              trial, attempt)
        drops = fails & self.drop_style_mask_params(drop_shares, host_ids,
                                                    protocol)
        return fails, drops

    def dead_mask(self, spec: L7FlakySpec, host_ids: np.ndarray,
                  protocol: str) -> np.ndarray:
        """Persistently L7-dead hosts (identical for every origin/trial)."""
        host_ids = np.asarray(host_ids, dtype=np.uint64)
        fractions = np.full(host_ids.shape, spec.dead_fraction)
        return self.dead_mask_params(fractions, host_ids, protocol)

    def failure_masks(self, spec: L7FlakySpec, host_ids: np.ndarray,
                      protocol: str, origin_name: str, trial: int,
                      attempt: int = 0) -> tuple:
        """(fails, drops) boolean masks for this origin/trial.

        ``fails`` marks flaky hosts failing this connection; ``drops``
        subdivides the failures into silent drops (True) vs explicit closes
        (False).
        """
        host_ids = np.asarray(host_ids, dtype=np.uint64)
        return self.failure_masks_params(
            np.full(host_ids.shape, spec.flaky_fraction),
            np.full(host_ids.shape, spec.fail_prob),
            np.full(host_ids.shape, spec.drop_share),
            host_ids, protocol, origin_name, trial, attempt)
