"""Rate-based intrusion detection systems (§4.3).

Networks like Ruhr-Universität Bochum and SK Broadband detect source IPs
sending above a per-IP packet-rate threshold into their address space and
block them — persistently.  The paper observed all single-IP origins losing
these networks about two hours into the very first scan, while the 64-IP US
origin (1/64th the per-IP rate) stayed under the radar in every trial.

Detection is modelled per (origin source-IP configuration, AS): if the
per-IP probe rate into the AS exceeds the threshold, a detection time is
drawn for the *first trial the origin participates in*; from that moment on
(including all later trials) the origin is blocked at L4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.origins import Origin
from repro.rng import CounterRNG


@dataclass(frozen=True)
class RateIDSSpec:
    """Configuration of one network's rate-based IDS."""

    #: Per-source-IP probe rate (probes/sec into this AS) above which the
    #: source is flagged.  The paper's IDSes catch 100 kpps single-IP
    #: scanners but not the same aggregate rate split over 64 IPs.
    per_ip_rate_threshold: float = 5.0
    #: Mean time-to-detection once over threshold, in seconds.
    detection_delay_mean_s: float = 7200.0
    #: Whether the block persists across trials (the observed behaviour).
    persistent: bool = True
    #: Fraction of the AS's hosts behind the IDS.
    coverage: float = 1.0
    #: Protocols the IDS watches; empty means all.
    protocols: tuple = ()

    def __post_init__(self) -> None:
        if self.per_ip_rate_threshold <= 0:
            raise ValueError("per_ip_rate_threshold must be positive")
        if not 0.0 <= self.coverage <= 1.0:
            raise ValueError("coverage must be in [0, 1]")

    def watches(self, protocol: str) -> bool:
        return not self.protocols or protocol in self.protocols


class RateIDS:
    """Evaluates detection state for (origin, AS) pairs."""

    def __init__(self, rng: CounterRNG) -> None:
        self._rng = rng.derive("rate-ids")
        # Detection draws are pure in (spec, origin, AS, rate, protocol),
        # so the result is memoized across observe() calls; ``observe``
        # re-evaluates every watching AS each trial otherwise.
        self._memo: dict = {}

    def detection_time(self, spec: RateIDSSpec, origin: Origin,
                       as_index: int, per_ip_rate_into_as: float,
                       protocol: str) -> Optional[float]:
        """Seconds into the origin's first scan when detection fires.

        Returns None when the origin stays under the threshold (the 64-IP
        evasion) or the IDS does not watch this protocol.  The draw is keyed
        by (AS, origin) only, so detection carries across trials.
        """
        key = (spec, origin.name, as_index, per_ip_rate_into_as, protocol)
        if key in self._memo:
            return self._memo[key]
        if not spec.watches(protocol):
            result: Optional[float] = None
        elif per_ip_rate_into_as < spec.per_ip_rate_threshold:
            result = None
        else:
            sub = self._rng.derive("detect", as_index, origin.name,
                                   protocol)
            result = sub.exponential(spec.detection_delay_mean_s)
        self._memo[key] = result
        return result

    def blocked_at(self, spec: RateIDSSpec, origin: Origin, as_index: int,
                   per_ip_rate_into_as: float, protocol: str,
                   trial: int, first_trial: int, time: float) -> bool:
        """Whether probes at ``time`` (s into trial ``trial``) are blocked.

        ``first_trial`` is the first trial this origin participated in; a
        persistent IDS blocks everything after its detection moment in that
        first scan.
        """
        detect = self.detection_time(spec, origin, as_index,
                                     per_ip_rate_into_as, protocol)
        if detect is None:
            return False
        if trial > first_trial:
            return spec.persistent
        if trial == first_trial:
            return time >= detect
        return False
