"""Geographic access policies (§4.4).

Some networks only answer probes from specific countries: Japanese hosting
providers reachable only from within Japan, WebCentral's Australian-only
sites, the WA K-20 educational network that serves Brazil a "Blocked Site"
page while dropping everyone else.  Conversely, some networks blocklist
specific origin countries.

These policies are keyed on the *origin's* country, not the destination's,
and are static across trials — hosts they hide are long-term inaccessible
from the filtered origins and often "exclusively accessible" from one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from repro.origins import Origin


@dataclass(frozen=True)
class RegionalPolicySpec:
    """Country-based allow/block policy for a destination network.

    Exactly one of ``allow_countries`` (allowlist: only these origin
    countries may connect) or ``block_countries`` (blocklist) is normally
    set; when both are set the allowlist is applied first.
    """

    allow_countries: Optional[FrozenSet[str]] = None
    block_countries: FrozenSet[str] = frozenset()
    #: Fraction of the network's hosts behind the policy.
    coverage: float = 1.0
    #: When True, blocked origins still complete the TCP handshake and
    #: receive an explicit refusal page/close (the WA K-20 "Blocked Site"
    #: case serves *allowed* clients content and drops others; some
    #: networks instead close politely).  Affects the observed close type.
    responds_with_block_page: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.coverage <= 1.0:
            raise ValueError("coverage must be in [0, 1]")
        if self.allow_countries is not None:
            object.__setattr__(self, "allow_countries",
                               frozenset(self.allow_countries))
        object.__setattr__(self, "block_countries",
                           frozenset(self.block_countries))

    def blocks(self, origin: Origin) -> bool:
        """Whether probes from ``origin`` are filtered."""
        if (self.allow_countries is not None
                and origin.country not in self.allow_countries):
            return True
        return origin.country in self.block_countries
