"""Network-wide temporal scan blocking — the Alibaba SSH behaviour (§6).

Alibaba's networks (AS 37963/45102 in the paper) run scan detection that is
non-deterministic in *when* it fires: single-IP origins are detected at
different points within each trial — around two-thirds of the way through
trial 1 — and from that moment on, **every** SSH host in the network
completes the TCP handshake and immediately RSTs the connection.  Unlike the
rate IDS, the block resets between trials (detection re-occurs each scan)
and unlike a firewall it acts above L4, which is why the paper can observe
it: hosts remain SYN-ACK-responsive but fail the application handshake.

Multi-IP origins dilute the per-IP signature; the paper's Figure 14 shows
Alibaba "only selectively blocks certain origins when scanning is
detected", so each origin's detection in each trial is an independent
probabilistic event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.origins import Origin
from repro.rng import CounterRNG


@dataclass(frozen=True)
class TemporalRSTSpec:
    """Configuration of an Alibaba-style temporal blocker."""

    #: Protocols subject to the behaviour (Alibaba does this only for SSH).
    protocols: tuple = ("ssh",)
    #: Probability that a single-IP origin is detected during one trial.
    detection_prob: float = 0.9
    #: Detection probability for origins whose per-IP rate is diluted by
    #: multiple source addresses.
    multi_ip_detection_prob: float = 0.15
    #: Mean fraction of the scan at which detection fires (paper: ~2/3 into
    #: trial 1, varying across trials).
    detect_fraction_mean: float = 0.55
    #: Half-width of the uniform jitter around the mean fraction.
    detect_fraction_jitter: float = 0.35

    def __post_init__(self) -> None:
        if not 0.0 <= self.detection_prob <= 1.0:
            raise ValueError("detection_prob must be in [0, 1]")
        if not 0.0 <= self.multi_ip_detection_prob <= 1.0:
            raise ValueError("multi_ip_detection_prob must be in [0, 1]")


class TemporalRSTBlocker:
    """Draws per-(origin, trial) detection moments for one network."""

    def __init__(self, rng: CounterRNG) -> None:
        self._rng = rng.derive("temporal-rst")
        # Pure in every argument → memoized across observe() calls.
        self._memo: dict = {}

    def detection_time(self, spec: TemporalRSTSpec, origin: Origin,
                       as_index: int, trial: int, protocol: str,
                       scan_duration_s: float) -> Optional[float]:
        """Seconds into the trial when network-wide RSTs begin.

        None when this (origin, trial) goes undetected or the protocol is
        not watched.  Detection does not persist across trials.
        """
        key = (spec, origin.name, as_index, trial, protocol,
               scan_duration_s)
        if key in self._memo:
            return self._memo[key]
        result = self._detection_time(spec, origin, as_index, trial,
                                      protocol, scan_duration_s)
        self._memo[key] = result
        return result

    def _detection_time(self, spec: TemporalRSTSpec, origin: Origin,
                        as_index: int, trial: int, protocol: str,
                        scan_duration_s: float) -> Optional[float]:
        if protocol not in spec.protocols:
            return None
        prob = (spec.detection_prob if origin.n_source_ips == 1
                else spec.multi_ip_detection_prob)
        sub = self._rng.derive("detect", as_index, origin.name,
                               trial, protocol)
        if not sub.bernoulli(prob, 0):
            return None
        jitter = (sub.uniform(1) * 2.0 - 1.0) * spec.detect_fraction_jitter
        fraction = min(max(spec.detect_fraction_mean + jitter, 0.02), 0.98)
        return fraction * scan_duration_s

    def rst_at(self, spec: TemporalRSTSpec, origin: Origin, as_index: int,
               trial: int, protocol: str, time: float,
               scan_duration_s: float) -> bool:
        """Whether a connection at ``time`` is RST after the handshake."""
        detect = self.detection_time(spec, origin, as_index, trial,
                                     protocol, scan_duration_s)
        return detect is not None and time >= detect
