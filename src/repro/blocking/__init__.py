"""Destination-side blocking systems observed by the paper."""

from repro.blocking.firewall import ReputationFirewallSpec, StaticBlockSpec
from repro.blocking.regional import RegionalPolicySpec
from repro.blocking.ids import RateIDSSpec, RateIDS
from repro.blocking.temporal import TemporalRSTSpec, TemporalRSTBlocker
from repro.blocking.maxstartups import MaxStartupsSpec, MaxStartupsModel
from repro.blocking.flaky import L7FlakySpec

__all__ = [
    "ReputationFirewallSpec",
    "StaticBlockSpec",
    "RegionalPolicySpec",
    "RateIDSSpec",
    "RateIDS",
    "TemporalRSTSpec",
    "TemporalRSTBlocker",
    "MaxStartupsSpec",
    "MaxStartupsModel",
    "L7FlakySpec",
]
