"""Static, reputation-driven firewalls (§4.1, §4.2).

Two mechanisms produce the paper's long-term inaccessibility:

* :class:`ReputationFirewallSpec` — networks that block source ranges with
  heavy scanning history.  This is what hits Censys (DXTL, EGI, Enzu block
  ~100 % of their hosts to it) and, to a lesser degree, origins whose /24s
  have scanned before.
* :class:`StaticBlockSpec` — networks that block specific origins outright,
  regardless of reputation: the Eastern-European hosters that block both
  Brazil and Japan, US health/finance networks that block Brazil, Tegna's
  networks that block every non-US origin, and the ABCDE Group block of
  the US and Censys ranges.

Both specs carry a ``coverage`` fraction: the share of the network's hosts
actually behind the filter (a policy may be enforced at the edge on a subset
of hosts).  Host membership in the covered subset is a persistent draw, so
the same hosts are blocked in every trial — by construction this is
long-term inaccessibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet

import numpy as np

from repro.origins import Origin
from repro.rng import CounterRNG, keyed_uniform_array


@dataclass(frozen=True)
class ReputationFirewallSpec:
    """Block origins whose scanning reputation exceeds a threshold."""

    #: Origins with reputation >= this value are dropped at L4.
    min_reputation: float
    #: Fraction of the AS's hosts behind the filter.
    coverage: float = 1.0
    #: Trial from which the filter is active (EGI-style: partially blocked
    #: in trial 1, fully blocked by trial 3 → modelled as coverage ramping
    #: to 1.0 from ``full_coverage_from_trial`` onward).
    full_coverage_from_trial: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.coverage <= 1.0:
            raise ValueError("coverage must be in [0, 1]")

    def blocks(self, origin: Origin) -> bool:
        return origin.reputation >= self.min_reputation

    def coverage_in_trial(self, trial: int) -> float:
        if trial >= self.full_coverage_from_trial:
            return 1.0 if self.full_coverage_from_trial > 0 else self.coverage
        return self.coverage


@dataclass(frozen=True)
class StaticBlockSpec:
    """Block a fixed set of origins (by name) at L4."""

    origins: FrozenSet[str]
    coverage: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.coverage <= 1.0:
            raise ValueError("coverage must be in [0, 1]")
        object.__setattr__(self, "origins", frozenset(self.origins))

    def blocks(self, origin: Origin) -> bool:
        return origin.name in self.origins


def covered_hosts_mask(rng: CounterRNG, host_ids: np.ndarray,
                       as_index: int, coverage: float,
                       label: str) -> np.ndarray:
    """Persistent per-host membership in a firewall's covered subset.

    Keyed only by (AS, host, label) — never by trial or origin — so the
    covered subset is identical across trials and origins, making the
    resulting inaccessibility long-term as the paper requires.
    """
    if coverage >= 1.0:
        return np.ones(np.asarray(host_ids).shape, dtype=bool)
    if coverage <= 0.0:
        return np.zeros(np.asarray(host_ids).shape, dtype=bool)
    sub = rng.derive("firewall-coverage", label, as_index)
    return sub.uniform_array(np.asarray(host_ids, dtype=np.uint64)) < coverage


def coverage_stream_key(rng: CounterRNG, as_index: int, label: str) -> int:
    """The derived stream key behind :func:`covered_hosts_mask`.

    Compiled observation plans pre-derive one key per (AS, label) rule so
    coverage draws for many ASes can run as a single
    :func:`~repro.rng.keyed_uniform_array` call.
    """
    return rng.derive("firewall-coverage", label, as_index).key


def covered_hosts_mask_keyed(stream_keys: np.ndarray, host_ids: np.ndarray,
                             coverages: np.ndarray) -> np.ndarray:
    """Vectorized multi-AS counterpart of :func:`covered_hosts_mask`.

    ``stream_keys`` carries one pre-derived key per host (hosts of the
    same AS/label share a key), so one call evaluates the concatenated
    members of any number of blocking rules.  Because draws are in [0, 1),
    the comparison reproduces the per-AS shortcut semantics exactly:
    coverage ≥ 1 covers every host, coverage ≤ 0 covers none.
    """
    u = keyed_uniform_array(stream_keys,
                            np.asarray(host_ids, dtype=np.uint64))
    return u < np.asarray(coverages, dtype=np.float64)
