"""OpenSSH ``MaxStartups`` probabilistic connection refusal (§6).

``MaxStartups start:rate:full`` makes sshd refuse each new unauthenticated
connection with probability ``rate``% once ``start`` are pending, and refuse
all once ``full`` are pending.  Synchronized scans make every origin's probe
arrive at nearly the same moment (shared ZMap seed), so the pending count is
roughly the number of scanning origins — the more simultaneous origins, the
more refusals.  The paper attributes 32–63 % of missing SSH hosts to this
mechanism and shows (Figure 13) that retrying the handshake up to eight
times reaches ~90 % of the refusing IPs.

We model each affected host with a per-host refusal probability drawn once
(persistently), applied per (origin, trial, attempt).  A host with a high
draw can look long-term inaccessible while actually being probabilistically
blocked — the paper measures this at ~30 % of probabilistically blocked IPs.
All draws are keyed purely by host identity, so a host behaves identically
whether evaluated through the per-AS or the array-parameter path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rng import CounterRNG, keyed_uniform_lattice, stream_keys


@dataclass(frozen=True)
class MaxStartupsSpec:
    """MaxStartups prevalence and strength within one network."""

    #: Fraction of the network's SSH hosts running a MaxStartups-limited
    #: daemon that a synchronized multi-origin scan can trip.
    fraction: float = 0.0
    #: Mean of the per-host refusal probability (per connection attempt
    #: during a synchronized scan).
    refuse_prob_mean: float = 0.55
    #: Half-width of the uniform spread around the mean.
    refuse_prob_spread: float = 0.35
    #: MaxStartups only matters while several origins connect at once; a
    #: lone scanner (the retry experiment) sees refusals at ``solo_factor``
    #: times the synchronized-scan probability.
    solo_factor: float = 0.85

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if not 0.0 <= self.refuse_prob_mean <= 1.0:
            raise ValueError("refuse_prob_mean must be in [0, 1]")


class MaxStartupsModel:
    """Per-host refusal behaviour for MaxStartups-protected SSH daemons."""

    def __init__(self, rng: CounterRNG) -> None:
        self._rng = rng.derive("maxstartups")

    # ------------------------------------------------------------------
    # Array-parameter primitives (per-host spec values)
    # ------------------------------------------------------------------

    def affected_mask_params(self, fractions: np.ndarray,
                             host_ids: np.ndarray) -> np.ndarray:
        """Persistent mask of hosts running a trippable MaxStartups sshd."""
        u = self._rng.uniform_array(
            np.asarray(host_ids, dtype=np.uint64), "affected")
        return u < np.asarray(fractions, dtype=np.float64)

    def refuse_probs_params(self, means: np.ndarray, spreads: np.ndarray,
                            host_ids: np.ndarray) -> np.ndarray:
        """Persistent per-host refusal probability (synchronized scan)."""
        u = self._rng.uniform_array(
            np.asarray(host_ids, dtype=np.uint64), "strength")
        means = np.asarray(means, dtype=np.float64)
        spreads = np.asarray(spreads, dtype=np.float64)
        return np.clip(means - spreads + u * 2.0 * spreads, 0.0, 0.98)

    def refusal_uniforms(self, host_ids: np.ndarray, origin_name: str,
                         trial: int, attempt: int = 0) -> np.ndarray:
        """The per-(origin, trial, attempt) refusal draw.

        Exposed so observation plans can cache the persistent affected
        mask and refusal probabilities and redo only this draw per call.
        """
        return self._rng.uniform_array(
            np.asarray(host_ids, dtype=np.uint64), "refuse", origin_name,
            trial, attempt)

    def refusal_uniform_lattice(self, host_ids: np.ndarray,
                                origin_name: str, trials,
                                attempt: int = 0) -> np.ndarray:
        """:meth:`refusal_uniforms` for a whole trial axis at once.

        Row *t* of the ``(n_trials, n_hosts)`` result is bit-identical
        to ``refusal_uniforms(host_ids, origin_name, trials[t],
        attempt)``.
        """
        keys = stream_keys(
            self._rng,
            [("refuse", origin_name, int(t), attempt) for t in trials])
        return keyed_uniform_lattice(
            keys, np.asarray(host_ids, dtype=np.uint64))

    def refused_mask_params(self, fractions: np.ndarray, means: np.ndarray,
                            spreads: np.ndarray, solo_factors: np.ndarray,
                            host_ids: np.ndarray, origin_name: str,
                            trial: int, attempt: int = 0,
                            solo: bool = False) -> np.ndarray:
        """Whether each host refuses this connection attempt.

        ``attempt`` distinguishes retries (each retry is an independent
        draw, which is what makes retrying effective).  ``solo`` applies the
        reduced single-scanner pressure of the retry experiment.
        """
        host_ids = np.asarray(host_ids, dtype=np.uint64)
        affected = self.affected_mask_params(fractions, host_ids)
        probs = self.refuse_probs_params(means, spreads, host_ids)
        if solo:
            probs = probs * np.asarray(solo_factors, dtype=np.float64)
        u = self.refusal_uniforms(host_ids, origin_name, trial, attempt)
        return affected & (u < probs)

    # ------------------------------------------------------------------
    # Spec-based convenience forms
    # ------------------------------------------------------------------

    def affected_mask(self, spec: MaxStartupsSpec,
                      host_ids: np.ndarray) -> np.ndarray:
        host_ids = np.asarray(host_ids, dtype=np.uint64)
        return self.affected_mask_params(
            np.full(host_ids.shape, spec.fraction), host_ids)

    def refuse_probs(self, spec: MaxStartupsSpec,
                     host_ids: np.ndarray) -> np.ndarray:
        host_ids = np.asarray(host_ids, dtype=np.uint64)
        return self.refuse_probs_params(
            np.full(host_ids.shape, spec.refuse_prob_mean),
            np.full(host_ids.shape, spec.refuse_prob_spread), host_ids)

    def refused_mask(self, spec: MaxStartupsSpec, host_ids: np.ndarray,
                     origin_name: str, trial: int, attempt: int = 0,
                     solo: bool = False) -> np.ndarray:
        host_ids = np.asarray(host_ids, dtype=np.uint64)
        return self.refused_mask_params(
            np.full(host_ids.shape, spec.fraction),
            np.full(host_ids.shape, spec.refuse_prob_mean),
            np.full(host_ids.shape, spec.refuse_prob_spread),
            np.full(host_ids.shape, spec.solo_factor),
            host_ids, origin_name, trial, attempt, solo=solo)

    def refused_one(self, spec: MaxStartupsSpec, host_id: int,
                    origin_name: str, trial: int, attempt: int = 0,
                    solo: bool = False) -> bool:
        """Scalar counterpart of :meth:`refused_mask`."""
        mask = self.refused_mask(spec, np.array([host_id], dtype=np.uint64),
                                 origin_name, trial, attempt, solo=solo)
        return bool(mask[0])
