"""repro — reproduction of "On the Origin of Scanning" (IMC 2020).

The library has three layers:

* :mod:`repro.core` — the paper's analysis pipeline, operating on
  :class:`~repro.core.dataset.CampaignDataset` objects that can come from
  real ZMap/ZGrab output (via :mod:`repro.io`) or from the simulator.
* :mod:`repro.sim` + the substrate packages (:mod:`repro.topology`,
  :mod:`repro.hosts`, :mod:`repro.conditions`, :mod:`repro.blocking`,
  :mod:`repro.scanner`) — a deterministic synthetic Internet and
  ZMap/ZGrab-analog scanners used to regenerate the paper's experiments.
* :mod:`repro.reporting` — ASCII renderers for the paper's tables and
  figures.

Quickstart::

    from repro import paper_scenario, run_campaign, coverage_table

    world, origins, config = paper_scenario(seed=0, scale=0.1)
    dataset = run_campaign(world, origins, config)
    print(coverage_table(dataset, "http").rows())
"""

from repro.core import (
    CampaignDataset,
    Classification,
    L7Status,
    MissCategory,
    TrialData,
    breakdown_by_origin,
    classify_misses,
    coverage_by_origin,
    coverage_table,
    median_single_origin_coverage,
    multi_origin_table,
    union_ground_truth,
)
from repro.origins import Origin, followup_origins, paper_origins
from repro.rng import CounterRNG
from repro.scanner import ZMapConfig, ZMapScanner
from repro.sim import (
    Campaign,
    World,
    WorldDefaults,
    followup_scenario,
    paper_scenario,
    run_campaign,
    small_scenario,
)

__version__ = "1.0.0"

__all__ = [
    "CampaignDataset",
    "Classification",
    "L7Status",
    "MissCategory",
    "TrialData",
    "breakdown_by_origin",
    "classify_misses",
    "coverage_by_origin",
    "coverage_table",
    "median_single_origin_coverage",
    "multi_origin_table",
    "union_ground_truth",
    "Origin",
    "followup_origins",
    "paper_origins",
    "CounterRNG",
    "ZMapConfig",
    "ZMapScanner",
    "Campaign",
    "World",
    "WorldDefaults",
    "followup_scenario",
    "paper_scenario",
    "run_campaign",
    "small_scenario",
    "__version__",
]
