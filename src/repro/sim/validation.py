"""Pre-campaign validation scans (§2).

Before the real experiments the paper ran ZMap scans of 1 % of the IPv4
space from every origin to confirm that (a) each origin can sustain
100 kpps and (b) packet drop does not increase above minimal scan speeds
(1 kpps).  This module reproduces that procedure: sample a slice of the
world, scan it from each origin at several rates, and compare estimated
drop rates — the go/no-go check a scanning team runs before committing to
a synchronized campaign.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.packet_loss import estimate_drop_rate
from repro.core.records import L7Status
from repro.origins import Origin
from repro.scanner.zmap import ZMapConfig, ZMapScanner
from repro.sim.world import World


@dataclass
class RateValidation:
    """Drop estimates per (origin, pps) from the validation scans."""

    sample_fraction: float
    rates_pps: List[float]
    #: drop[origin][pps] → estimated per-probe drop rate.
    drop: Dict[str, Dict[float, float]]

    def is_rate_safe(self, origin: str,
                     tolerance: float = 0.005) -> bool:
        """True when drop at the highest rate ≈ drop at the lowest.

        The paper's criterion: no increased packet drop above minimal
        scan speeds.
        """
        series = self.drop[origin]
        lowest = series[min(series)]
        highest = series[max(series)]
        return highest <= lowest + tolerance

    def all_safe(self, tolerance: float = 0.005) -> bool:
        return all(self.is_rate_safe(o, tolerance) for o in self.drop)


def validate_scan_rates(world: World, origins: Sequence[Origin],
                        base_config: ZMapConfig,
                        rates_pps: Sequence[float] = (1_000.0, 10_000.0,
                                                      100_000.0),
                        sample_fraction: float = 0.01,
                        protocol: str = "http",
                        trial: int = 0) -> RateValidation:
    """Run the §2 validation: scan a sample at several rates per origin.

    The sample is the deterministic leading ``sample_fraction`` slice of
    the shared permutation — exactly how a real "scan 1 % of IPv4" run
    picks its targets.
    """
    if not 0.0 < sample_fraction <= 1.0:
        raise ValueError("sample_fraction must be in (0, 1]")
    names = tuple(o.name for o in origins)
    drop: Dict[str, Dict[float, float]] = {o.name: {} for o in origins}

    for pps in rates_pps:
        config = dataclasses.replace(base_config, pps=float(pps))
        scanner = ZMapScanner(config)
        cutoff = int(config.domain_size * sample_fraction)
        for origin in origins:
            observation = world.observe(protocol, trial, origin, scanner,
                                        names)
            positions = scanner.permutation.position_of_array(
                observation.ip.astype(np.uint64))
            in_sample = positions < cutoff
            l7 = observation.l7[in_sample]
            responses = observation.responses[in_sample]
            alive = l7 == int(L7Status.SUCCESS)
            n1 = int((responses[alive] == 1).sum())
            n2 = int((responses[alive] == 2).sum())
            drop[origin.name][float(pps)] = estimate_drop_rate(n1, n2)

    return RateValidation(sample_fraction=sample_fraction,
                          rates_pps=[float(r) for r in rates_pps],
                          drop=drop)
