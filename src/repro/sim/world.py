"""The simulated Internet a scan campaign runs against.

A :class:`World` composes the topology, the host population, temporal
churn, path conditions, and every destination-side blocking system into a
single question: *what does origin O observe for each service of protocol P
in trial T?*  The answer (an :class:`Observation`) mirrors exactly what a
real ZMap + ZGrab pipeline records: per-address SYN-ACK counts, the L7
outcome, and timestamps.

Evaluation order per probe follows the life of a packet:

1. exclusion blocklist (scanner-side — excluded services never appear),
2. presence (churn): absent services answer nobody,
3. static L4 filters: reputation firewall, static origin blocks, regional
   policy, rate-IDS detection state,
4. path: burst outages, then the correlated loss channel,
5. L7: temporal RST blocking, MaxStartups refusal, persistent L7-dead
   hosts, transient flakiness — first matching behaviour wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.blocking.firewall import (coverage_stream_key, covered_hosts_mask,
                                     covered_hosts_mask_keyed)
from repro.blocking.flaky import L7FlakyModel, L7FlakySpec
from repro.blocking.ids import RateIDS
from repro.blocking.maxstartups import MaxStartupsModel, MaxStartupsSpec
from repro.blocking.temporal import TemporalRSTBlocker
from repro.conditions.loss import LossDraw, PathLossModel, PathLossSpec
from repro.conditions.outages import BurstOutageModel, BurstOutageSpec
from repro.core.bits import popcount_u8
from repro.core.records import L7Status
from repro.hosts.churn import ChurnModel, ChurnSpec
from repro.hosts.table import HostTable
from repro.origins import Origin
from repro.rng import CounterRNG
from repro.scanner.zmap import ZMapConfig, ZMapScanner
from repro.sim.plan import (ASGrouping, CompiledOriginPolicy, HostCaches,
                            IDSEntry, ObservationPlan, ObserveProfile,
                            PolicyEntry, _StageTimer,
                            sorted_membership_mask)
from repro.telemetry.context import current as _telemetry
from repro.topology.generator import Topology


@dataclass(frozen=True)
class WorldDefaults:
    """Behaviour applied to ASes that declare nothing of their own."""

    path_loss: PathLossSpec = field(default_factory=PathLossSpec)
    l7_flaky: L7FlakySpec = field(
        default_factory=lambda: L7FlakySpec(
            flaky_fraction=0.02, fail_prob=0.2, drop_share=0.7,
            dead_fraction=0.002))
    burst_outages: Optional[BurstOutageSpec] = field(
        default_factory=BurstOutageSpec)
    churn: ChurnSpec = field(default_factory=ChurnSpec)
    #: Baseline MaxStartups prevalence: the OpenSSH default configuration
    #: ships with MaxStartups 10:30:100, so a slice of *every* network's
    #: SSH hosts is probabilistically refusing under synchronized scans.
    maxstartups: MaxStartupsSpec = field(
        default_factory=lambda: MaxStartupsSpec(
            fraction=0.06, refuse_prob_mean=0.5, refuse_prob_spread=0.35))
    #: Per-(origin, trial) probability that a churning (unstable) service
    #: silently fails to answer at L4 even while nominally present.  This
    #: is what populates the paper's "unknown" classification bucket.
    churner_wobble: float = 0.18


@dataclass
class Observation:
    """What one origin saw for one (protocol, trial)."""

    protocol: str
    trial: int
    origin: str
    ip: np.ndarray             # uint32, services present & scannable
    as_index: np.ndarray       # int64
    country_index: np.ndarray  # int64 (true country)
    geo_index: np.ndarray      # int64 (observed GeoIP country)
    #: Bitmask of answered probes: bit k set ⇔ probe k drew a SYN-ACK.
    #: Keeping per-probe identity (not just a count) lets the analyses
    #: simulate single-probe scans exactly as §5 does.
    probe_mask: np.ndarray     # uint8
    l7: np.ndarray             # uint8, L7Status codes
    time: np.ndarray           # float32, first-probe send time (s)

    def __len__(self) -> int:
        return len(self.ip)

    @property
    def responses(self) -> np.ndarray:
        """Number of SYN-ACKs received per service (popcount of the mask)."""
        return popcount_u8(self.probe_mask)


class World:
    """A concrete synthetic Internet, ready to be scanned."""

    def __init__(self, topology: Topology, hosts: HostTable, seed: int,
                 defaults: Optional[WorldDefaults] = None) -> None:
        self.topology = topology
        self.hosts = hosts
        self.seed = seed
        self.defaults = defaults if defaults is not None else WorldDefaults()

        root = CounterRNG(seed, "world")
        self._rng = root
        self.churn = ChurnModel(root, self.defaults.churn)
        self._ids = RateIDS(root)
        self._temporal = TemporalRSTBlocker(root)
        self._maxstartups = MaxStartupsModel(root)
        self._flaky = L7FlakyModel(root)
        self._loss_models: Dict[str, PathLossModel] = {}
        self._loss_params: Dict[str, Tuple[np.ndarray, ...]] = {}
        self._outage_model: Optional[BurstOutageModel] = None
        self._outage_specs: Optional[Dict[int, BurstOutageSpec]] = None
        self._flaky_params: Optional[Tuple[np.ndarray, ...]] = None
        self._maxstartups_params: Optional[Tuple[np.ndarray, ...]] = None
        self._plans: Dict[Tuple[str, ZMapConfig], ObservationPlan] = {}
        self._host_caches: Dict[str, HostCaches] = {}

    def __getstate__(self) -> dict:
        # Plans are pure acceleration state and can be large; dropping them
        # keeps process-executor payloads small.  Workers rebuild plans
        # lazily and — because every draw is counter-addressed — rebuild
        # them identically.
        state = self.__dict__.copy()
        state["_plans"] = {}
        state["_host_caches"] = {}
        return state

    # ------------------------------------------------------------------
    # Lazily built per-AS parameter tables
    # ------------------------------------------------------------------

    def loss_model(self, origin: Origin) -> PathLossModel:
        model = self._loss_models.get(origin.name)
        if model is None:
            model = PathLossModel(self._rng, origin.name,
                                  state_group=origin.state_group)
            self._loss_models[origin.name] = model
        return model

    def _loss_param_arrays(self, origin: Origin) -> Tuple[np.ndarray, ...]:
        """(epoch, random, persistent, variability) arrays indexed by AS."""
        cached = self._loss_params.get(origin.name)
        if cached is not None:
            return cached
        n = len(self.topology.ases)
        epoch = np.zeros(n)
        random_ = np.zeros(n)
        persistent = np.zeros(n)
        variability = np.zeros(n)
        for system in self.topology.ases:
            spec = system.spec.path_loss or self.defaults.path_loss
            draw: LossDraw = spec.for_origin(origin.name,
                                             origin.state_group)
            epoch[system.index] = draw.epoch_rate
            random_[system.index] = draw.random_rate
            persistent[system.index] = draw.persistent_fraction
            variability[system.index] = draw.variability
        result = (epoch, random_, persistent, variability)
        self._loss_params[origin.name] = result
        return result

    def _outages(self, origins: Tuple[str, ...],
                 scan_duration_s: float) -> BurstOutageModel:
        if self._outage_model is None:
            self._outage_model = BurstOutageModel(
                self._rng, origins, scan_duration_s)
        return self._outage_model

    def outage_specs(self) -> Dict[int, BurstOutageSpec]:
        if self._outage_specs is None:
            specs: Dict[int, BurstOutageSpec] = {}
            for system in self.topology.ases:
                spec = system.spec.burst_outages or self.defaults.burst_outages
                if spec is not None:
                    specs[system.index] = spec
            self._outage_specs = specs
        return self._outage_specs

    def _flaky_param_arrays(self) -> Tuple[np.ndarray, ...]:
        """Per-AS (flaky_fraction, fail_prob, drop_share, dead_fraction)."""
        if self._flaky_params is None:
            n = len(self.topology.ases)
            flaky = np.zeros(n)
            fail = np.zeros(n)
            drop = np.zeros(n)
            dead = np.zeros(n)
            for system in self.topology.ases:
                spec = system.spec.l7_flaky or self.defaults.l7_flaky
                flaky[system.index] = spec.flaky_fraction
                fail[system.index] = spec.fail_prob
                drop[system.index] = spec.drop_share
                dead[system.index] = spec.dead_fraction
            self._flaky_params = (flaky, fail, drop, dead)
        return self._flaky_params

    def _maxstartups_param_arrays(self) -> Tuple[np.ndarray, ...]:
        """Per-AS (fraction, mean, spread, solo_factor) arrays."""
        if self._maxstartups_params is None:
            n = len(self.topology.ases)
            fraction = np.zeros(n)
            mean = np.zeros(n)
            spread = np.zeros(n)
            solo = np.zeros(n)
            for system in self.topology.ases:
                spec = system.spec.maxstartups or self.defaults.maxstartups
                fraction[system.index] = spec.fraction
                mean[system.index] = spec.refuse_prob_mean
                spread[system.index] = spec.refuse_prob_spread
                solo[system.index] = spec.solo_factor
            self._maxstartups_params = (fraction, mean, spread, solo)
        return self._maxstartups_params

    # ------------------------------------------------------------------
    # L4 static filtering
    # ------------------------------------------------------------------

    def _static_l4_masks(self, origin: Origin, trial: int,
                         ips: np.ndarray, as_idx: np.ndarray
                         ) -> Tuple[np.ndarray, np.ndarray]:
        """(silent_block, l7_drop_block) for static policies.

        ``silent_block`` suppresses SYN-ACKs entirely (firewall drop);
        ``l7_drop_block`` lets TCP complete but drops the application
        handshake (regional policies with ``responds_with_block_page``).
        """
        silent = np.zeros(ips.shape, dtype=bool)
        l7_drop = np.zeros(ips.shape, dtype=bool)
        host_ids = ips.astype(np.uint64)
        for system in self.topology.ases:
            spec = system.spec
            members = None

            def member_mask() -> np.ndarray:
                nonlocal members
                if members is None:
                    members = as_idx == system.index
                return members

            fw = spec.reputation_firewall
            if fw is not None and fw.blocks(origin):
                m = member_mask()
                if np.any(m):
                    coverage = fw.coverage_in_trial(trial)
                    covered = covered_hosts_mask(
                        self._rng, host_ids[m], system.index, coverage,
                        "reputation")
                    silent[np.flatnonzero(m)[covered]] = True

            sb = spec.static_block
            if sb is not None and sb.blocks(origin):
                m = member_mask()
                if np.any(m):
                    covered = covered_hosts_mask(
                        self._rng, host_ids[m], system.index, sb.coverage,
                        "static")
                    silent[np.flatnonzero(m)[covered]] = True

            rp = spec.regional_policy
            if rp is not None and rp.blocks(origin):
                m = member_mask()
                if np.any(m):
                    covered = covered_hosts_mask(
                        self._rng, host_ids[m], system.index, rp.coverage,
                        "regional")
                    target = l7_drop if rp.responds_with_block_page \
                        else silent
                    target[np.flatnonzero(m)[covered]] = True
        return silent, l7_drop

    def _ids_block_mask(self, origin: Origin, trial: int, first_trial: int,
                        protocol: str, as_idx: np.ndarray,
                        times: np.ndarray, ips: np.ndarray,
                        scanner: ZMapScanner) -> np.ndarray:
        """Hosts whose network's rate IDS has blocked this origin."""
        blocked = np.zeros(as_idx.shape, dtype=bool)
        host_ids = ips.astype(np.uint64)
        for system in self.topology.ases:
            spec = system.spec.rate_ids
            if spec is None:
                continue
            members = as_idx == system.index
            if not np.any(members):
                continue
            rate = scanner.probes_into_as_per_second(
                system.total_addresses(), origin)
            detect = self._ids.detection_time(
                spec, origin, system.index, rate, protocol)
            if detect is None:
                continue
            idx = np.flatnonzero(members)
            if trial > first_trial and spec.persistent:
                hit = np.ones(idx.shape, dtype=bool)
            elif trial == first_trial:
                hit = times[idx] >= detect
            else:
                continue
            if spec.coverage < 1.0:
                covered = covered_hosts_mask(
                    self._rng, host_ids[idx], system.index, spec.coverage,
                    "ids")
                hit &= covered
            blocked[idx[hit]] = True
        return blocked

    # ------------------------------------------------------------------
    # Compiled observation plans
    # ------------------------------------------------------------------

    def plan(self, protocol: str, scanner: ZMapScanner) -> ObservationPlan:
        """The compiled observation plan for one (protocol, scanner config).

        Built once and cached on the world; reused across every trial and
        origin that observes with an equal scanner configuration.  Plans
        are pure acceleration: a planned observation is byte-identical to
        an unplanned one (``plan=False``).  A mutated GeoIP database
        invalidates cached plans automatically; scanner configurations are
        immutable value objects, so they key the cache directly.
        """
        tel = _telemetry()
        key = (protocol, scanner.config)
        plan = self._plans.get(key)
        if plan is not None and plan.geo_version == self.topology.geoip.version:
            if tel.enabled:
                tel.count("cache.plan_hit", 1, protocol=protocol)
            return plan
        if tel.enabled:
            tel.count("cache.plan_miss", 1, protocol=protocol)
        plan = self._build_plan(protocol, scanner)
        self._plans[key] = plan
        return plan

    def _build_plan(self, protocol: str,
                    scanner: ZMapScanner) -> ObservationPlan:
        # Plan compilation is process-local work (each pool worker
        # rebuilds lazily), so its span lives in the excluded ``cache.``
        # namespace — span counts under it may differ across backends.
        with _telemetry().span("cache.plan_build", protocol=protocol):
            return self._compile_plan(protocol, scanner)

    def host_caches(self, protocol: str) -> HostCaches:
        """Scanner-independent per-protocol host state, built once.

        Campaigns reseed the scanner per trial, which keys one
        :class:`ObservationPlan` per trial — but everything here (churn
        class, deadness, flakiness, MaxStartups membership, grouping,
        GeoIP translation) depends only on the world and the protocol.
        Hoisting it out of the plan makes per-trial plan builds cheap and
        gives the fused trial-batch kernel one shared gather for a whole
        trial axis.
        """
        cached = self._host_caches.get(protocol)
        if cached is not None \
                and cached.geo_version == self.topology.geoip.version:
            return cached

        view = self.hosts.for_protocol(protocol)
        ips = view.ip
        as_index = view.as_index
        n_ases = len(self.topology.ases)
        host_ids = ips.astype(np.uint64)

        flaky_f, fail_p, drop_s, dead_f = self._flaky_param_arrays()
        ms_affected = ms_probs = ms_style = None
        if protocol == "ssh":
            ms_fraction, ms_mean, ms_spread, _ = \
                self._maxstartups_param_arrays()
            ms_affected = self._maxstartups.affected_mask_params(
                ms_fraction[as_index], host_ids)
            ms_probs = self._maxstartups.refuse_probs_params(
                ms_mean[as_index], ms_spread[as_index], host_ids)
            ms_style = self._rng.derive("ms-style").bernoulli_array(
                0.5, host_ids)

        static_systems = tuple(
            int(s.index) for s in self.topology.ases
            if s.spec.reputation_firewall is not None
            or s.spec.static_block is not None
            or s.spec.regional_policy is not None)
        ids_systems = tuple(int(s.index) for s in self.topology.ases
                            if s.spec.rate_ids is not None)
        temporal_systems = tuple(
            int(s.index) for s in self.topology.ases
            if s.spec.temporal_rst is not None
            and protocol in s.spec.temporal_rst.protocols)

        caches = HostCaches(
            protocol=protocol,
            n_view=len(ips),
            n_ases=n_ases,
            geo_version=self.topology.geoip.version,
            grouping=ASGrouping(as_index, n_ases),
            geo_full=self.topology.geoip.geolocate_index_array(ips),
            host_ids_full=host_ids,
            stable_full=self.churn.stable_mask(ips, protocol),
            dead_full=self._flaky.dead_mask_params(
                dead_f[as_index], host_ids, protocol),
            flaky_full=self._flaky.flaky_mask_params(
                flaky_f[as_index], host_ids, protocol),
            drop_full=self._flaky.drop_style_mask_params(
                drop_s[as_index], host_ids, protocol),
            ms_affected_full=ms_affected,
            ms_probs_full=ms_probs,
            ms_style_full=ms_style,
            static_systems=static_systems,
            ids_systems=ids_systems,
            temporal_systems=temporal_systems)
        self._host_caches[protocol] = caches
        return caches

    def _compile_plan(self, protocol: str,
                      scanner: ZMapScanner) -> ObservationPlan:
        caches = self.host_caches(protocol)
        view = self.hosts.for_protocol(protocol)
        ips = view.ip

        return ObservationPlan(
            protocol=protocol,
            n_view=caches.n_view,
            n_ases=caches.n_ases,
            geo_version=caches.geo_version,
            grouping=caches.grouping,
            geo_full=caches.geo_full,
            host_ids_full=caches.host_ids_full,
            eligible_full=scanner.eligible_mask(ips),
            base_first_full=scanner.first_probe_times(ips),
            stable_full=caches.stable_full,
            dead_full=caches.dead_full,
            flaky_full=caches.flaky_full,
            drop_full=caches.drop_full,
            ms_affected_full=caches.ms_affected_full,
            ms_probs_full=caches.ms_probs_full,
            ms_style_full=caches.ms_style_full,
            static_systems=caches.static_systems,
            ids_systems=caches.ids_systems,
            temporal_systems=caches.temporal_systems,
            persist_u=caches.persist_u)

    def _origin_policy(self, plan: ObservationPlan, origin: Origin,
                       scanner: ZMapScanner) -> CompiledOriginPolicy:
        """Per-origin compiled static-L4 rules (cached on the plan)."""
        policy = plan.origin_policies.get(origin.name)
        if policy is not None:
            return policy

        static_entries = []
        for i in plan.static_systems:
            spec = self.topology.ases.by_index(i).spec
            fw = spec.reputation_firewall
            if fw is not None and fw.blocks(origin):
                static_entries.append(PolicyEntry(
                    as_index=i,
                    stream_key=coverage_stream_key(self._rng, i,
                                                   "reputation"),
                    coverage=fw.coverage,
                    full_coverage_from_trial=(
                        fw.full_coverage_from_trial
                        if fw.full_coverage_from_trial > 0 else -1),
                    to_l7_drop=False,
                    cause="reputation"))
            sb = spec.static_block
            if sb is not None and sb.blocks(origin):
                static_entries.append(PolicyEntry(
                    as_index=i,
                    stream_key=coverage_stream_key(self._rng, i, "static"),
                    coverage=sb.coverage,
                    full_coverage_from_trial=-1,
                    to_l7_drop=False,
                    cause="static"))
            rp = spec.regional_policy
            if rp is not None and rp.blocks(origin):
                static_entries.append(PolicyEntry(
                    as_index=i,
                    stream_key=coverage_stream_key(self._rng, i, "regional"),
                    coverage=rp.coverage,
                    full_coverage_from_trial=-1,
                    to_l7_drop=bool(rp.responds_with_block_page),
                    cause="regional"))

        ids_entries = []
        for i in plan.ids_systems:
            system = self.topology.ases.by_index(i)
            spec = system.spec.rate_ids
            rate = scanner.probes_into_as_per_second(
                system.total_addresses(), origin)
            detect = self._ids.detection_time(
                spec, origin, i, rate, plan.protocol)
            if detect is None:
                continue
            ids_entries.append(IDSEntry(
                as_index=i,
                stream_key=coverage_stream_key(self._rng, i, "ids"),
                coverage=spec.coverage,
                persistent=bool(spec.persistent),
                detection_time=float(detect)))

        policy = CompiledOriginPolicy(tuple(static_entries),
                                      tuple(ids_entries))
        plan.origin_policies[origin.name] = policy
        return policy

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------

    def observe(self, protocol: str, trial: int, origin: Origin,
                scanner: ZMapScanner, all_origin_names: Tuple[str, ...],
                first_trial: int = 0,
                targets: Optional[np.ndarray] = None,
                plan: Union[ObservationPlan, bool, None] = None,
                profile: Optional[ObserveProfile] = None) -> Observation:
        """Everything ``origin`` records for one protocol in one trial.

        ``all_origin_names`` fixes the origin universe for shared burst
        events; ``first_trial`` is the first trial this origin scanned in
        (rate-IDS state carries over from it).

        ``targets`` restricts the observation to a subset of addresses —
        the §6 "iteratively scan candidate sub-networks" workflow.
        Because every stochastic draw is counter-addressed by entity, a
        targeted observation returns *exactly* the rows the full scan
        would (tested invariant), so targeted re-scans are consistent
        with campaign data.

        ``plan`` selects the evaluation path: ``None`` (default) fetches or
        builds the compiled :class:`~repro.sim.plan.ObservationPlan` for
        this (protocol, scanner config); an explicit plan is used as-is;
        ``False`` forces the unplanned reference path.  The two paths are
        byte-identical in every Observation field.  ``profile`` (planned
        path only) receives per-stage wall times for this call in addition
        to the plan's cumulative profile.

        When a telemetry context is active (:mod:`repro.telemetry`), every
        call emits an ``observe`` span (with ``observe.<stage>`` children
        on the planned path) plus probe/blocking counters; with telemetry
        disabled — the default — the only cost is one contextvar read.
        Telemetry never perturbs results: observations are byte-identical
        with and without it.
        """
        tel = _telemetry()
        if tel.enabled:
            with tel.span("observe", protocol=protocol, trial=trial,
                          origin=origin.name,
                          planned=plan is not False) as obs_span:
                observation = self._observe(
                    protocol, trial, origin, scanner, all_origin_names,
                    first_trial, targets, plan, profile)
                n = len(observation)
                obs_span.set(n_services=n)
                tel.count("observe.calls", 1,
                          protocol=protocol, origin=origin.name)
                tel.count("observe.services", n,
                          protocol=protocol, origin=origin.name)
                tel.count("observe.probes_sent",
                          n * scanner.config.n_probes,
                          protocol=protocol, origin=origin.name)
                tel.observe_value("observe.services_per_call", n,
                                  protocol=protocol)
                return observation
        return self._observe(protocol, trial, origin, scanner,
                             all_origin_names, first_trial, targets, plan,
                             profile)

    def _observe(self, protocol: str, trial: int, origin: Origin,
                 scanner: ZMapScanner, all_origin_names: Tuple[str, ...],
                 first_trial: int, targets: Optional[np.ndarray],
                 plan: Union[ObservationPlan, bool, None],
                 profile: Optional[ObserveProfile]) -> Observation:
        """Dispatch to the planned or unplanned evaluation path."""
        if plan is not False:
            if plan is None:
                plan = self.plan(protocol, scanner)
            elif plan.protocol != protocol:
                raise ValueError(
                    f"plan was compiled for protocol {plan.protocol!r}, "
                    f"not {protocol!r}")
            return self._observe_planned(
                plan, protocol, trial, origin, scanner, all_origin_names,
                first_trial, targets, profile)
        return self._observe_unplanned(
            protocol, trial, origin, scanner, all_origin_names,
            first_trial, targets)

    def _observe_unplanned(self, protocol: str, trial: int, origin: Origin,
                           scanner: ZMapScanner,
                           all_origin_names: Tuple[str, ...],
                           first_trial: int = 0,
                           targets: Optional[np.ndarray] = None
                           ) -> Observation:
        """Reference evaluation path (no cross-call caching).

        Kept deliberately close to the straightforward formulation: the
        differential suite (``tests/test_plan_equivalence.py``) checks the
        planned path against this one field-by-field.
        """
        view = self.hosts.for_protocol(protocol)
        present = self.churn.present_mask(view.ip, protocol, trial)
        eligible = scanner.eligible_mask(view.ip)
        wanted = present & eligible
        if targets is not None:
            # view.ip is sorted (the host table lexsorts by address), so
            # membership is a binary search, not np.isin's sort-per-call.
            wanted &= sorted_membership_mask(view.ip, targets)
        keep = np.flatnonzero(wanted)

        ips = view.ip[keep]
        as_idx = view.as_index[keep]
        country_idx = view.country_index[keep]
        geo_idx = self.topology.geoip.geolocate_index_array(ips)
        host_ids = ips.astype(np.uint64)
        n = len(ips)
        n_probes = scanner.config.n_probes

        probe_times = scanner.probe_times(ips, origin)
        first_times = probe_times[0]

        # --- L4 static filtering -------------------------------------
        silent_block, l7_drop_block = self._static_l4_masks(
            origin, trial, ips, as_idx)
        ids_block = self._ids_block_mask(
            origin, trial, first_trial, protocol, as_idx, first_times, ips,
            scanner)
        l4_filtered = silent_block | ids_block

        # --- Path: outages + correlated loss --------------------------
        loss = self.loss_model(origin)
        epoch, random_, persistent, variability = \
            self._loss_param_arrays(origin)
        effective_epoch = loss.trial_epoch_rates(
            epoch[as_idx], variability[as_idx], as_idx, trial)
        persist_u = loss.persistent_draws(host_ids)

        outages = self._outages(all_origin_names,
                                scanner.config.scan_duration_s)
        outage_specs = self.outage_specs()

        probe_mask = np.zeros(n, dtype=np.uint8)
        for probe_no in range(n_probes):
            times_k = probe_times[probe_no]
            delivered = loss.probe_delivered(
                host_ids, as_idx, times_k, trial, probe_no,
                effective_epoch, random_[as_idx], persistent[as_idx],
                persist_u=persist_u)
            outage_lost = outages.lost_mask(
                origin.name, trial, as_idx, times_k, outage_specs)
            ok = delivered & ~outage_lost & ~l4_filtered
            probe_mask |= ok.astype(np.uint8) << np.uint8(probe_no)

        # Unstable (churning) services intermittently fail to answer even
        # while present; this is the raw material of the paper's "unknown"
        # classification bucket.
        if self.defaults.churner_wobble > 0.0:
            churners = self.churn.churner_mask(ips, protocol)
            wobble = self._rng.derive("wobble").bernoulli_array(
                self.defaults.churner_wobble, host_ids,
                protocol, origin.name, trial)
            probe_mask[churners & wobble] = 0

        l4_success = probe_mask > 0

        # --- L7 evaluation --------------------------------------------
        l7 = np.full(n, int(L7Status.NO_L4), dtype=np.uint8)
        l7[l4_success] = int(L7Status.SUCCESS)

        # Regional block pages: TCP completes, handshake is dropped.
        drop_page = l4_success & l7_drop_block
        l7[drop_page] = int(L7Status.L4_DROP)

        # Temporal network-wide RST blocking (Alibaba, SSH).
        for system in self.topology.ases:
            spec = system.spec.temporal_rst
            if spec is None or protocol not in spec.protocols:
                continue
            members = l4_success & (as_idx == system.index)
            if not np.any(members):
                continue
            detect = self._temporal.detection_time(
                spec, origin, system.index, trial, protocol,
                scanner.config.scan_duration_s)
            if detect is None:
                continue
            idx = np.flatnonzero(members)
            hit = first_times[idx] >= detect
            l7[idx[hit]] = int(L7Status.L4_CLOSE_RST)

        # MaxStartups probabilistic refusal (SSH).
        if protocol == "ssh":
            ms_fraction, ms_mean, ms_spread, ms_solo = \
                self._maxstartups_param_arrays()
            candidates = l7 == int(L7Status.SUCCESS)
            idx = np.flatnonzero(candidates)
            if len(idx):
                refused = self._maxstartups.refused_mask_params(
                    ms_fraction[as_idx[idx]], ms_mean[as_idx[idx]],
                    ms_spread[as_idx[idx]], ms_solo[as_idx[idx]],
                    host_ids[idx], origin.name, trial)
                # sshd closes the socket; roughly half the observations in
                # the paper are RST, half FIN-ACK.
                style_rst = self._rng.derive("ms-style").bernoulli_array(
                    0.5, host_ids[idx])
                close = np.where(style_rst, int(L7Status.L4_CLOSE_RST),
                                 int(L7Status.L4_CLOSE_FIN))
                l7[idx[refused]] = close[refused]

        # Persistent L7-dead hosts and transient flakiness.
        flaky_f, fail_p, drop_s, dead_f = self._flaky_param_arrays()
        still_ok = l7 == int(L7Status.SUCCESS)
        dead = self._flaky.dead_mask_params(
            dead_f[as_idx], host_ids, protocol)
        l7[still_ok & dead] = int(L7Status.L4_DROP)

        still_ok = l7 == int(L7Status.SUCCESS)
        fails, drops = self._flaky.failure_masks_params(
            flaky_f[as_idx], fail_p[as_idx], drop_s[as_idx],
            host_ids, protocol, origin.name, trial)
        l7[still_ok & fails & drops] = int(L7Status.L4_DROP)
        l7[still_ok & fails & ~drops] = int(L7Status.L4_CLOSE_FIN)

        return Observation(
            protocol=protocol, trial=trial, origin=origin.name,
            ip=ips, as_index=as_idx, country_index=country_idx,
            geo_index=geo_idx, probe_mask=probe_mask, l7=l7,
            time=first_times.astype(np.float32))

    def _observe_planned(self, plan: ObservationPlan, protocol: str,
                         trial: int, origin: Origin, scanner: ZMapScanner,
                         all_origin_names: Tuple[str, ...],
                         first_trial: int, targets: Optional[np.ndarray],
                         profile: Optional[ObserveProfile]) -> Observation:
        """Fast path over a compiled plan (byte-identical to unplanned).

        Every cached array is a full-view evaluation of the same pure,
        counter-addressed draw the unplanned path makes on the kept
        subset, so slicing by ``keep`` reproduces the subset draws
        exactly; AS membership comes from the plan's CSR grouping instead
        of ``as_idx == i`` scans.
        """
        tel = _telemetry()
        timer = _StageTimer(plan.profile, profile, tel=tel)
        view = self.hosts.for_protocol(protocol)
        present = self.churn.present_mask(view.ip, protocol, trial,
                                          stable=plan.stable_full)
        wanted = present & plan.eligible_full
        if targets is not None:
            wanted &= sorted_membership_mask(view.ip, targets)
        keep = np.flatnonzero(wanted)

        ips = view.ip[keep]
        as_idx = view.as_index[keep]
        country_idx = view.country_index[keep]
        geo_idx = plan.geo_full[keep]
        host_ids = plan.host_ids_full[keep]
        n = len(ips)
        n_probes = scanner.config.n_probes
        position_of_row = plan.position_of_row(keep)
        timer.stamp("filter")

        first_times = plan.base_first_full[keep]
        if origin.drift:
            first_times = first_times * (1.0 + origin.drift)
        probe_offsets = (np.arange(n_probes, dtype=np.float64)
                         * scanner.config.probe_spacing_s)
        timer.stamp("schedule")

        # --- L4 static filtering (compiled policy entries) ------------
        policy = self._origin_policy(plan, origin, scanner)
        silent_block = np.zeros(n, dtype=bool)
        l7_drop_block = np.zeros(n, dtype=bool)
        if policy.static_entries:
            pos_parts, key_parts, cov_parts, drop_parts = [], [], [], []
            entry_parts = []
            for entry in policy.static_entries:
                pos = plan.grouping.members_in(entry.as_index,
                                               position_of_row)
                if len(pos) == 0:
                    continue
                pos_parts.append(pos)
                entry_parts.append(entry)
                key_parts.append(np.full(len(pos), entry.stream_key,
                                         dtype=np.uint64))
                cov_parts.append(np.full(len(pos),
                                         entry.coverage_in_trial(trial)))
                drop_parts.append(np.full(len(pos), entry.to_l7_drop,
                                          dtype=bool))
            if pos_parts:
                pos_all = np.concatenate(pos_parts)
                covered = covered_hosts_mask_keyed(
                    np.concatenate(key_parts), host_ids[pos_all],
                    np.concatenate(cov_parts))
                to_drop = np.concatenate(drop_parts)
                silent_block[pos_all[covered & ~to_drop]] = True
                l7_drop_block[pos_all[covered & to_drop]] = True
                if tel.enabled:
                    # Per-cause attribution in three vectorized ops (a
                    # per-entry slice-sum loop would dominate the
                    # enabled-path overhead at paper scale).
                    causes = sorted({e.cause for e in entry_parts})
                    code_of = {c: i for i, c in enumerate(causes)}
                    codes = np.repeat(
                        np.array([code_of[e.cause] for e in entry_parts]),
                        [len(p) for p in pos_parts])
                    hits = np.bincount(codes[covered],
                                       minlength=len(causes))
                    for cause, hit in zip(causes, hits):
                        if hit:
                            tel.count("observe.hosts_blocked", int(hit),
                                      cause=cause, protocol=protocol,
                                      origin=origin.name)
        timer.stamp("l4_static")

        ids_block = np.zeros(n, dtype=bool)
        for entry in policy.ids_entries:
            pos = plan.grouping.members_in(entry.as_index, position_of_row)
            if len(pos) == 0:
                continue
            if trial > first_trial and entry.persistent:
                hit = np.ones(len(pos), dtype=bool)
            elif trial == first_trial:
                hit = first_times[pos] >= entry.detection_time
            else:
                continue
            if entry.coverage < 1.0:
                hit &= covered_hosts_mask_keyed(
                    np.full(len(pos), entry.stream_key, dtype=np.uint64),
                    host_ids[pos], np.full(len(pos), entry.coverage))
            ids_block[pos[hit]] = True
            if tel.enabled and hit.any():
                tel.count("observe.hosts_blocked", int(hit.sum()),
                          cause="ids", protocol=protocol,
                          origin=origin.name)
        l4_filtered = silent_block | ids_block
        timer.stamp("l4_ids")

        # --- Path: outages + correlated loss --------------------------
        loss = self.loss_model(origin)
        epoch, random_, persistent, variability = \
            self._loss_param_arrays(origin)
        # Per-AS rates, gathered by membership: the draw is elementwise in
        # the AS value, so evaluating once per AS and gathering matches
        # the per-host evaluation bit-for-bit.
        rates_by_as = loss.trial_epoch_rates(
            epoch, variability, np.arange(plan.n_ases, dtype=np.int64),
            trial)
        effective_epoch = rates_by_as[as_idx]
        persist_full = plan.persist_u.get(origin.name)
        if persist_full is None:
            persist_full = loss.persistent_draws(plan.host_ids_full)
            plan.persist_u[origin.name] = persist_full
        persist_u = persist_full[keep]
        random_rates = random_[as_idx]
        persistent_fracs = persistent[as_idx]

        outages = self._outages(all_origin_names,
                                scanner.config.scan_duration_s)
        active = outages.active_windows(origin.name, trial,
                                        self.outage_specs())
        active_members = []
        for as_index, windows in active.items():
            pos = plan.grouping.members_in(as_index, position_of_row)
            if len(pos):
                active_members.append((pos, windows))

        probe_mask = np.zeros(n, dtype=np.uint8)
        epoch_memo: dict = {}
        probes_lost = 0
        outage_lost = 0
        for probe_no in range(n_probes):
            times_k = first_times + probe_offsets[probe_no]
            delivered = loss.probe_delivered(
                host_ids, as_idx, times_k, trial, probe_no,
                effective_epoch, random_rates, persistent_fracs,
                persist_u=persist_u, epoch_memo=epoch_memo)
            if tel.enabled:
                probes_lost += n - int(delivered.sum())
            ok = delivered & ~l4_filtered
            # Outage accounting as a per-probe delta (one reduction per
            # probe, not one per affected AS — there can be hundreds).
            before_outages = int(ok.sum()) \
                if tel.enabled and active_members else 0
            for pos, windows in active_members:
                member_times = times_k[pos]
                hit = np.zeros(len(pos), dtype=bool)
                for start, end in windows:
                    hit |= (member_times >= start) & (member_times < end)
                ok[pos[hit]] = False
            if tel.enabled and active_members:
                outage_lost += before_outages - int(ok.sum())
            probe_mask |= ok.astype(np.uint8) << np.uint8(probe_no)

        wobbled = 0
        if self.defaults.churner_wobble > 0.0:
            churners = ~plan.stable_full[keep]
            wobble = self._rng.derive("wobble").bernoulli_array(
                self.defaults.churner_wobble, host_ids,
                protocol, origin.name, trial)
            zeroed = churners & wobble
            probe_mask[zeroed] = 0
            if tel.enabled:
                wobbled = int(zeroed.sum())
        if tel.enabled:
            # One correlated-loss evaluation per (host, distinct epoch
            # pattern): the per-/24-style shared-fate draw volume.
            tel.count("observe.loss_draws", len(epoch_memo) * n,
                      protocol=protocol, origin=origin.name)
            tel.count("observe.probes_lost", probes_lost,
                      protocol=protocol, origin=origin.name)
            if outage_lost:
                tel.count("observe.probes_outage_lost", outage_lost,
                          protocol=protocol, origin=origin.name)
            if wobbled:
                tel.count("observe.hosts_wobbled", wobbled,
                          protocol=protocol, origin=origin.name)
        timer.stamp("path")

        l4_success = probe_mask > 0

        # --- L7 evaluation --------------------------------------------
        l7 = np.full(n, int(L7Status.NO_L4), dtype=np.uint8)
        l7[l4_success] = int(L7Status.SUCCESS)

        drop_page = l4_success & l7_drop_block
        l7[drop_page] = int(L7Status.L4_DROP)

        for i in plan.temporal_systems:
            pos = plan.grouping.members_in(i, position_of_row)
            if len(pos) == 0:
                continue
            pos = pos[l4_success[pos]]
            if len(pos) == 0:
                continue
            spec = self.topology.ases.by_index(i).spec.temporal_rst
            detect = self._temporal.detection_time(
                spec, origin, i, trial, protocol,
                scanner.config.scan_duration_s)
            if detect is None:
                continue
            hit = first_times[pos] >= detect
            l7[pos[hit]] = int(L7Status.L4_CLOSE_RST)
            if tel.enabled and hit.any():
                tel.count("observe.hosts_blocked", int(hit.sum()),
                          cause="temporal_rst", protocol=protocol,
                          origin=origin.name)

        if protocol == "ssh":
            candidates = l7 == int(L7Status.SUCCESS)
            idx = np.flatnonzero(candidates)
            if len(idx):
                rows = keep[idx]
                refused = plan.ms_affected_full[rows] \
                    & (self._maxstartups.refusal_uniforms(
                        host_ids[idx], origin.name, trial)
                       < plan.ms_probs_full[rows])
                close = np.where(plan.ms_style_full[rows],
                                 int(L7Status.L4_CLOSE_RST),
                                 int(L7Status.L4_CLOSE_FIN))
                l7[idx[refused]] = close[refused]
                if tel.enabled and refused.any():
                    tel.count("observe.hosts_blocked", int(refused.sum()),
                              cause="maxstartups", protocol=protocol,
                              origin=origin.name)

        _, fail_p, _, _ = self._flaky_param_arrays()
        still_ok = l7 == int(L7Status.SUCCESS)
        l7[still_ok & plan.dead_full[keep]] = int(L7Status.L4_DROP)

        still_ok = l7 == int(L7Status.SUCCESS)
        fails = plan.flaky_full[keep] & self._flaky.fail_mask_params(
            fail_p[as_idx], host_ids, protocol, origin.name, trial)
        drops = fails & plan.drop_full[keep]
        l7[still_ok & fails & drops] = int(L7Status.L4_DROP)
        l7[still_ok & fails & ~drops] = int(L7Status.L4_CLOSE_FIN)
        timer.stamp("l7")
        timer.finish(n)

        return Observation(
            protocol=protocol, trial=trial, origin=origin.name,
            ip=ips, as_index=as_idx, country_index=country_idx,
            geo_index=geo_idx, probe_mask=probe_mask, l7=l7,
            time=first_times.astype(np.float32))

    # ------------------------------------------------------------------
    # Targeted re-probing (the §6 retry experiment)
    # ------------------------------------------------------------------

    def ssh_retry_success(self, ips: np.ndarray, origin: Origin, trial: int,
                          max_attempts: int) -> np.ndarray:
        """Whether ≤ ``max_attempts`` immediate retries complete SSH.

        Models the paper's follow-up experiment: iteratively re-trying the
        SSH handshake against MaxStartups-protected hosts from a single
        origin (``solo=True`` applies the reduced single-scanner pressure).
        Hosts not affected by MaxStartups succeed on the first attempt.
        """
        ips = np.asarray(ips, dtype=np.uint32)
        as_idx = self.topology.routing.as_index_array(ips)
        if np.any(as_idx < 0):
            raise ValueError("some target IPs are not routed to any AS")
        host_ids = ips.astype(np.uint64)
        fraction, mean, spread, solo = self._maxstartups_param_arrays()
        success = np.zeros(ips.shape, dtype=bool)
        remaining = np.arange(len(ips))
        for attempt in range(max_attempts):
            if len(remaining) == 0:
                break
            refused = self._maxstartups.refused_mask_params(
                fraction[as_idx[remaining]], mean[as_idx[remaining]],
                spread[as_idx[remaining]], solo[as_idx[remaining]],
                host_ids[remaining], origin.name, trial,
                attempt=attempt, solo=True)
            success[remaining[~refused]] = True
            remaining = remaining[refused]
        return success
