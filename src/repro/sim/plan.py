"""Compiled observation plans for the ``World.observe()`` hot path.

A plan precomputes, once per (protocol, scanner configuration), everything
about an observation that does not depend on the trial or the origin:

* a **CSR-style AS-grouping index** over the protocol view, so "which kept
  services belong to AS *i*" is a slice lookup instead of an
  ``as_idx == i`` scan over every service — and the policy loops iterate
  only over ASes that actually declare specs;
* **cross-call caches** for the per-view GeoIP translation, the scanner's
  eligibility mask, probe-schedule base times, host-id casts, and every
  persistent (origin/trial-independent) per-host draw the blocking models
  make (churn stability, L7 deadness/flakiness, MaxStartups membership);
* **per-origin policy compilation**: for each origin, the dense list of
  (AS, coverage, rng stream key) entries of the firewalls/policies/IDSes
  that block it, so coverage draws run over concatenated member indices
  in a handful of vectorized operations.

Plans are pure acceleration: the planned and unplanned observation paths
are byte-identical for every :class:`~repro.sim.world.Observation` field
(differential suite: ``tests/test_plan_equivalence.py``).  Every cached
draw is a pure function of ``(seed, stream key, counters)``, so slicing a
full-view cache by the per-trial ``keep`` subset reproduces exactly the
draws the unplanned path makes on the subset.

Plans are picklable, but :class:`~repro.sim.world.World` deliberately
drops its plan cache when pickled (process-executor payloads stay small;
workers rebuild plans lazily and, because every draw is counter-addressed,
rebuild them identically).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

#: Stage names in reporting order (used by profile rendering).
STAGES = ("filter", "schedule", "l4_static", "l4_ids", "path", "l7")


class ObserveProfile:
    """Per-stage wall-time accumulator for planned observations.

    One profile lives on each plan (accumulating across every call that
    used the plan); callers may pass their own to
    :meth:`~repro.sim.world.World.observe` to meter a single call.  The
    executor aggregates per-job profiles into
    ``metadata["execution"]["stages"]`` so benchmark regressions can be
    attributed to a stage.
    """

    __slots__ = ("stage_s", "stage_calls", "n_observations", "n_services")

    def __init__(self) -> None:
        self.stage_s: Dict[str, float] = {}
        self.stage_calls: Dict[str, int] = {}
        self.n_observations = 0
        self.n_services = 0

    def add(self, stage: str, seconds: float) -> None:
        self.stage_s[stage] = self.stage_s.get(stage, 0.0) + seconds
        self.stage_calls[stage] = self.stage_calls.get(stage, 0) + 1

    def count_observation(self, n_services: int) -> None:
        self.n_observations += 1
        self.n_services += int(n_services)

    def merge(self, other: "ObserveProfile") -> None:
        for stage, seconds in other.stage_s.items():
            self.add(stage, seconds)
            self.stage_calls[stage] += other.stage_calls[stage] - 1
        self.n_observations += other.n_observations
        self.n_services += other.n_services

    @property
    def total_s(self) -> float:
        return float(sum(self.stage_s.values()))

    def to_metadata(self) -> Dict[str, float]:
        """Stage → seconds, JSON-able, in canonical stage order."""
        ordered = [s for s in STAGES if s in self.stage_s]
        ordered += [s for s in self.stage_s if s not in STAGES]
        return {s: round(self.stage_s[s], 6) for s in ordered}

    def render(self) -> str:
        """A small human-readable table (used by ``repro profile``)."""
        lines = [f"{'stage':<12} {'calls':>7} {'total s':>10} {'share':>7}"]
        total = self.total_s or 1.0
        for stage in self.to_metadata():
            seconds = self.stage_s[stage]
            lines.append(f"{stage:<12} {self.stage_calls[stage]:>7} "
                         f"{seconds:>10.4f} {seconds / total:>6.1%}")
        lines.append(f"{'total':<12} {self.n_observations:>7} "
                     f"{self.total_s:>10.4f} "
                     f"({self.n_services} services)")
        return "\n".join(lines)


class _StageTimer:
    """Stamps stage boundaries into one or more profiles.

    When an enabled telemetry context is passed, every stamp also emits
    an ``observe.<stage>`` child span (wall + CPU time) into it — the
    stage spans of the run journal and the :class:`ObserveProfile`
    numbers come from the same boundary, so they can never disagree.
    """

    __slots__ = ("profiles", "_last", "_tel", "_cpu_last", "_prefix")

    def __init__(self, *profiles: Optional[ObserveProfile],
                 tel=None, prefix: str = "observe.") -> None:
        self.profiles = [p for p in profiles if p is not None]
        self._tel = tel if tel is not None and tel.enabled else None
        self._prefix = prefix
        self._last = time.perf_counter()
        self._cpu_last = time.process_time() if self._tel else 0.0

    def stamp(self, stage: str) -> None:
        now = time.perf_counter()
        elapsed = now - self._last
        for profile in self.profiles:
            profile.add(stage, elapsed)
        self._last = now
        if self._tel is not None:
            cpu_now = time.process_time()
            self._tel.span_event(f"{self._prefix}{stage}", elapsed,
                                 cpu_now - self._cpu_last)
            self._cpu_last = cpu_now

    def finish(self, n_services: int) -> None:
        for profile in self.profiles:
            profile.count_observation(n_services)


class ASGrouping:
    """CSR-style index: AS index → member row positions.

    Rows are grouped by AS once (a single stable argsort); membership for
    any AS is then an O(group size) slice instead of an O(n_rows) equality
    scan.  Only ASes that actually own rows occupy a group.
    """

    __slots__ = ("n_rows", "order", "starts", "group_of")

    def __init__(self, as_indices: np.ndarray, n_ases: int) -> None:
        as_indices = np.asarray(as_indices, dtype=np.int64)
        self.n_rows = len(as_indices)
        self.order = np.argsort(as_indices, kind="stable")
        present, first = np.unique(as_indices[self.order],
                                   return_index=True)
        self.starts = np.concatenate(
            [first, [self.n_rows]]).astype(np.int64)
        self.group_of = np.full(n_ases, -1, dtype=np.int64)
        self.group_of[present] = np.arange(len(present), dtype=np.int64)

    def members(self, as_index: int) -> np.ndarray:
        """Row positions belonging to ``as_index`` (ascending)."""
        group = int(self.group_of[as_index]) \
            if 0 <= as_index < len(self.group_of) else -1
        if group < 0:
            return _EMPTY_INT64
        rows = self.order[self.starts[group]:self.starts[group + 1]]
        # The stable argsort preserves row order within a group, so the
        # slice is already ascending — same order a boolean scan yields.
        return rows

    def members_in(self, as_index: int,
                   position_of_row: np.ndarray) -> np.ndarray:
        """Member positions within a subset.

        ``position_of_row`` maps full row index → position in the subset
        (-1 when the row was filtered out).  Equivalent to
        ``np.flatnonzero(subset_as_idx == as_index)``.
        """
        positions = position_of_row[self.members(as_index)]
        return positions[positions >= 0]


_EMPTY_INT64 = np.array([], dtype=np.int64)


@dataclass(frozen=True)
class PolicyEntry:
    """One compiled static-L4 blocking rule of one AS against one origin."""

    as_index: int
    #: Pre-derived rng stream key for the coverage draw
    #: (``rng.derive("firewall-coverage", label, as_index)``).
    stream_key: int
    coverage: float
    #: Reputation-firewall ramp: trial from which coverage becomes 1.0
    #: (-1 when the rule does not ramp).
    full_coverage_from_trial: int
    #: True → TCP completes but the handshake is dropped (block pages);
    #: False → silent L4 drop.
    to_l7_drop: bool
    #: Blocking cause for telemetry attribution
    #: (``reputation`` / ``static`` / ``regional``).
    cause: str = "static"

    def coverage_in_trial(self, trial: int) -> float:
        if self.full_coverage_from_trial > 0 \
                and trial >= self.full_coverage_from_trial:
            return 1.0
        return self.coverage


@dataclass(frozen=True)
class IDSEntry:
    """One compiled rate-IDS rule of one AS against one origin."""

    as_index: int
    stream_key: int
    coverage: float
    persistent: bool
    #: Seconds into the origin's first trial when detection fires; the
    #: draw is trial-independent, so it compiles per (origin, AS).
    detection_time: float


@dataclass(frozen=True)
class CompiledOriginPolicy:
    """Everything static-L4 about one origin, compiled once."""

    static_entries: Tuple[PolicyEntry, ...]
    ids_entries: Tuple[IDSEntry, ...]


@dataclass
class HostCaches:
    """Per-protocol observation state independent of the scanner config.

    Everything here is a pure function of the world (seed, topology,
    blocking specs) and the protocol — none of it depends on the scanner
    seed, shard, or schedule.  A campaign reseeds the scanner per trial
    (``seed + trial``), which keys a fresh :class:`ObservationPlan` per
    trial; hoisting these arrays into one shared cache makes the
    per-trial plan build cheap (eligibility + schedule only) and lets
    the fused trial-batch kernel (:mod:`repro.sim.batch`) gather host
    state once for a whole trial axis.  Plans built from the same cache
    share these arrays by reference — including the lazy ``persist_u``
    per-origin dict, which is scanner-independent by construction.
    """

    protocol: str
    n_view: int
    n_ases: int
    geo_version: Tuple[int, int]
    grouping: ASGrouping
    geo_full: np.ndarray
    host_ids_full: np.ndarray       # uint64
    stable_full: np.ndarray         # bool (churn stability class)
    dead_full: np.ndarray           # bool (persistently L7-dead)
    flaky_full: np.ndarray          # bool (transiently flaky membership)
    drop_full: np.ndarray           # bool (failure style: drop vs close)
    ms_affected_full: Optional[np.ndarray]   # bool, SSH only
    ms_probs_full: Optional[np.ndarray]      # float64, SSH only
    ms_style_full: Optional[np.ndarray]      # bool, SSH only (RST vs FIN)
    static_systems: Tuple[int, ...]
    ids_systems: Tuple[int, ...]
    temporal_systems: Tuple[int, ...]
    #: Shared across every plan of this protocol (draws are
    #: scanner-independent: keyed by origin state group and host id only).
    persist_u: Dict[str, np.ndarray] = field(default_factory=dict)


@dataclass
class ObservationPlan:
    """Precomputed state for fast observations of one (protocol, config).

    Built by :meth:`repro.sim.world.World.plan`; reused across every trial
    and origin of a campaign.  All fields are plain data (picklable).
    """

    protocol: str
    n_view: int
    n_ases: int
    #: :attr:`repro.topology.geo.GeoIPDatabase.version` at build time; a
    #: mismatch on fetch invalidates the plan (stale ``geo_full``).
    geo_version: Tuple[int, int]
    grouping: ASGrouping
    # Full-view cross-call caches, sliced by ``keep`` per observation.
    geo_full: np.ndarray
    host_ids_full: np.ndarray       # uint64
    eligible_full: np.ndarray       # bool
    base_first_full: np.ndarray     # float64, drift-free first-probe times
    stable_full: np.ndarray         # bool (churn stability class)
    dead_full: np.ndarray           # bool (persistently L7-dead)
    flaky_full: np.ndarray          # bool (transiently flaky membership)
    drop_full: np.ndarray           # bool (failure style: drop vs close)
    ms_affected_full: Optional[np.ndarray]   # bool, SSH only
    ms_probs_full: Optional[np.ndarray]      # float64, SSH only
    ms_style_full: Optional[np.ndarray]      # bool, SSH only (RST vs FIN)
    # Spec-declaring AS lists (the only ASes the policy loops visit).
    static_systems: Tuple[int, ...]
    ids_systems: Tuple[int, ...]
    temporal_systems: Tuple[int, ...]
    # Lazy per-origin caches (identical on rebuild: draws are pure).
    origin_policies: Dict[str, CompiledOriginPolicy] = \
        field(default_factory=dict)
    persist_u: Dict[str, np.ndarray] = field(default_factory=dict)
    profile: ObserveProfile = field(default_factory=ObserveProfile)

    def position_of_row(self, keep: np.ndarray) -> np.ndarray:
        """Full-view row index → position in the kept subset (-1 if cut)."""
        positions = np.full(self.n_view, -1, dtype=np.int64)
        positions[keep] = np.arange(len(keep), dtype=np.int64)
        return positions


def sorted_membership_mask(sorted_ips: np.ndarray,
                           targets: np.ndarray) -> np.ndarray:
    """``np.isin(sorted_ips, targets)`` via binary search.

    The protocol view's ``ip`` column is sorted (the host table lexsorts
    by address), so membership is two ``searchsorted`` passes instead of
    an O(n·m) or sort-per-call scan.
    """
    targets = np.unique(np.asarray(targets, dtype=np.uint32))
    if len(targets) == 0:
        return np.zeros(sorted_ips.shape, dtype=bool)
    pos = np.searchsorted(targets, sorted_ips)
    pos_clipped = np.minimum(pos, len(targets) - 1)
    return (pos < len(targets)) & (targets[pos_clipped] == sorted_ips)
