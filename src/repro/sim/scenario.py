"""The paper's world: every named network and its observed behaviour.

This module is the reproduction's "testbed wiring": it instantiates the
synthetic Internet at ≈1/1000 of the paper's scale with the specific
networks §4–§6 name — DXTL/EGI/Enzu blocking Censys, Telecom Italia's dead
paths from Germany, Alibaba's SSH detection, the regional allowlists of
Bekkoame/WebCentral/WA K-20, the rate IDSes of Ruhr-Universität Bochum and
SK Broadband, the Eastern-European hosters that block Japan and Brazil, and
the long tail of background networks that make the aggregate statistics
realistic.

Numbers are calibrated to reproduce the paper's *shape* (who misses whom,
by roughly what factor), not its absolute counts; EXPERIMENTS.md records
the comparison per table/figure.
"""

from __future__ import annotations

import math
import os
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.blocking.firewall import ReputationFirewallSpec, StaticBlockSpec
from repro.blocking.flaky import L7FlakySpec
from repro.blocking.ids import RateIDSSpec
from repro.blocking.maxstartups import MaxStartupsSpec
from repro.blocking.regional import RegionalPolicySpec
from repro.blocking.temporal import TemporalRSTSpec
from repro.conditions.loss import LossDraw, PathLossSpec
from repro.conditions.outages import BurstOutageSpec
from repro.hosts.churn import ChurnSpec
from repro.hosts.population import populate
from repro.origins import Origin, followup_origins, paper_origins
from repro.rng import CounterRNG
from repro.scanner.zmap import ZMapConfig
from repro.sim.world import World, WorldDefaults
from repro.topology.asn import ASKind, ASSpec
from repro.topology.generator import build_topology
from repro.topology.geo import default_countries

#: Paper-scale ground-truth targets divided by 1000.
PROTOCOL_TOTALS = {"http": 58_000, "https": 41_000, "ssh": 19_600}

#: Share of global HTTP hosts per country (normalized at build time);
#: HTTPS/SSH populations follow with per-protocol global ratios.
COUNTRY_SHARES = {
    "US": 33.0, "CN": 12.0, "DE": 5.0, "JP": 4.0, "GB": 4.0, "FR": 3.0,
    "NL": 3.0, "RU": 3.0, "HK": 2.5, "IT": 2.0, "BR": 2.0, "KR": 2.0,
    "AU": 1.5, "CA": 1.5, "IN": 1.2, "ES": 1.0, "PL": 1.0, "TW": 1.0,
    "SG": 1.0, "VN": 1.0, "TR": 1.0, "ID": 0.8, "UA": 0.7, "RO": 0.7,
    "AR": 0.6, "SE": 0.5, "MX": 0.5, "ZA": 0.5, "AT": 0.5, "CO": 0.4,
    "GR": 0.35, "PT": 0.35, "KZ": 0.3, "VE": 0.3, "PE": 0.3, "EC": 0.25,
    "BD": 0.2, "EE": 0.15, "AM": 0.1, "BO": 0.1, "AL": 0.08, "TN": 0.07,
    "SD": 0.04, "LY": 0.03, "MN": 0.03, "ZW": 0.03, "SN": 0.03,
    "MW": 0.02, "BF": 0.02, "GU": 0.02,
}

#: Default per-origin path-loss profile for background networks.  AU's
#: elevated rates reflect the paper's finding that it has the worst global
#: packet loss and the most consistent-worst destinations.
DEFAULT_LOSS = PathLossSpec(
    default=LossDraw(epoch_rate=0.005, random_rate=0.0034,
                     persistent_fraction=0.002, variability=1.2),
    per_origin={
        "AU": LossDraw(0.010, 0.0062, persistent_fraction=0.0022,
                       variability=1.4),
        "BR": LossDraw(0.007, 0.0045, persistent_fraction=0.003,
                       variability=1.3),
        "DE": LossDraw(0.0055, 0.0037, persistent_fraction=0.002,
                       variability=1.2),
        "JP": LossDraw(0.0055, 0.0035, persistent_fraction=0.0028,
                       variability=1.2),
        "us-stanford": LossDraw(0.005, 0.0033,
                                persistent_fraction=0.0015,
                                variability=1.2),
        "CEN": LossDraw(0.0055, 0.0037, persistent_fraction=0.002,
                        variability=1.3),
        "CARINET": LossDraw(0.007, 0.003, persistent_fraction=0.002,
                            variability=1.2),
        "chicago-equinix": LossDraw(0.0055, 0.0023,
                                    persistent_fraction=0.0015,
                                    variability=1.2),
        "HE": LossDraw(0.0044, 0.0017, persistent_fraction=0.0010,
                       variability=1.2),
        "NTT": LossDraw(0.0054, 0.0026, persistent_fraction=0.0016,
                        variability=1.2),
        "TELIA": LossDraw(0.0060, 0.0025, persistent_fraction=0.0016,
                          variability=1.2),
    })

#: Loss towards Chinese networks: high and unstable from everywhere
#: (Zhu et al., "the Great Bottleneck of China"), with a stable rank
#: ordering of origins that does *not* follow random-drop estimates.
CHINA_LOSS = PathLossSpec(
    default=LossDraw(0.045, 0.035, persistent_fraction=0.004,
                     variability=1.5),
    per_origin={
        "AU": LossDraw(0.075, 0.055, variability=1.5),
        "BR": LossDraw(0.024, 0.018, variability=1.5),
        "DE": LossDraw(0.048, 0.032, variability=1.5),
        "JP": LossDraw(0.065, 0.042, variability=1.5),
        "us-stanford": LossDraw(0.038, 0.026, variability=1.5),
        "CEN": LossDraw(0.055, 0.038, variability=1.5),
    })


def _h(count: float, scale: float) -> int:
    """Scale a host count, keeping small named populations non-empty."""
    if count <= 0:
        return 0
    return max(1, round(count * scale))


def _hosts(scale: float, http: float = 0, https: float = 0,
           ssh: float = 0) -> Dict[str, int]:
    out = {}
    if http:
        out["http"] = _h(http, scale)
    if https:
        out["https"] = _h(https, scale)
    if ssh:
        out["ssh"] = _h(ssh, scale)
    return out


def _named_specs(scale: float) -> List[ASSpec]:
    """Every network the paper names, with its observed behaviour."""
    specs: List[ASSpec] = []

    # --- §4.1: the providers that dwarf Censys' coverage ---------------
    censys_wall = ReputationFirewallSpec(min_reputation=100.0)
    specs.append(ASSpec(
        "DXTL Tseung Kwan O Service", "HK", ASKind.HOSTING,
        hosts=_hosts(scale, http=900, https=260, ssh=110),
        reputation_firewall=censys_wall))
    specs.append(ASSpec(
        "DXTL Bangladesh", "BD", ASKind.HOSTING,
        hosts=_hosts(scale, http=55, https=20, ssh=12),
        reputation_firewall=censys_wall))
    specs.append(ASSpec(
        "DXTL South Africa", "ZA", ASKind.HOSTING,
        hosts=_hosts(scale, http=85, https=30, ssh=15),
        reputation_firewall=censys_wall))
    specs.append(ASSpec(
        "EGI Hosting", "US", ASKind.HOSTING,
        hosts=_hosts(scale, http=620, https=250, ssh=160),
        reputation_firewall=ReputationFirewallSpec(
            min_reputation=100.0, coverage=0.9, full_coverage_from_trial=2),
        maxstartups=MaxStartupsSpec(fraction=0.75, refuse_prob_mean=0.6,
                                    refuse_prob_spread=0.25)))
    specs.append(ASSpec(
        "Enzu", "US", ASKind.HOSTING,
        hosts=_hosts(scale, http=450, https=190, ssh=90),
        reputation_firewall=censys_wall))

    # --- §4.2 / §5.2: Telecom Italia — dead paths from Germany ---------
    specs.append(ASSpec(
        "Telecom Italia", "IT", ASKind.ISP, asn=3269,
        hosts=_hosts(scale, http=700, https=350, ssh=300),
        path_loss=PathLossSpec(
            default=LossDraw(0.16, 0.006, variability=1.4),
            per_origin={
                "DE": LossDraw(0.42, 0.02, persistent_fraction=0.30,
                               variability=1.2),
                "BR": LossDraw(0.003, 0.003, variability=1.0),
            })))
    specs.append(ASSpec(
        "Telecom Italia Sparkle", "IT", ASKind.ISP,
        hosts=_hosts(scale, http=130, https=80, ssh=70),
        path_loss=PathLossSpec(
            default=LossDraw(0.22, 0.006, variability=1.6),
            per_origin={
                "DE": LossDraw(0.55, 0.02, persistent_fraction=0.40,
                               variability=1.2),
                "BR": LossDraw(0.004, 0.003, variability=1.0),
            })))

    # --- Akamai: huge CDN, slight German inaccessibility, big absolute
    #     transient swings ------------------------------------------------
    specs.append(ASSpec(
        "Akamai", "US", ASKind.CDN,
        hosts=_hosts(scale, http=1500, https=1400, ssh=40),
        hosts_per_slash24=24.0,
        path_loss=PathLossSpec(
            default=LossDraw(0.008, 0.003, variability=2.0),
            per_origin={
                "DE": LossDraw(0.015, 0.004, persistent_fraction=0.008,
                               variability=2.0),
            })))

    # --- ABCDE Group (AS 133201): blocks US/BR/Censys on HTTP, wildly
    #     unstable paths for everyone else --------------------------------
    specs.append(ASSpec(
        "ABCDE Group", "HK", ASKind.CLOUD, asn=133201,
        hosts=_hosts(scale, http=230, https=60, ssh=40),
        static_block=StaticBlockSpec(
            origins=frozenset({"US1", "US64", "BR", "CEN"}), coverage=0.55),
        path_loss=PathLossSpec(
            default=LossDraw(0.10, 0.004, variability=3.0))))

    # --- §6: Alibaba's SSH scan detection --------------------------------
    alibaba_rst = TemporalRSTSpec(
        protocols=("ssh",), detection_prob=0.85,
        multi_ip_detection_prob=0.06, detect_fraction_mean=0.55,
        detect_fraction_jitter=0.35)
    specs.append(ASSpec(
        "Alibaba CN", "CN", ASKind.CLOUD, asn=37963,
        hosts=_hosts(scale, http=1200, https=600, ssh=750),
        temporal_rst=alibaba_rst, path_loss=CHINA_LOSS))
    specs.append(ASSpec(
        "HZ Alibaba Advanced", "CN", ASKind.CLOUD, asn=45102,
        hosts=_hosts(scale, http=600, https=300, ssh=380),
        temporal_rst=alibaba_rst, path_loss=CHINA_LOSS))

    # --- Other large Chinese networks (Table 3) --------------------------
    specs.append(ASSpec(
        "Tencent", "CN", ASKind.CLOUD,
        hosts=_hosts(scale, http=600, https=300, ssh=250),
        path_loss=CHINA_LOSS))
    specs.append(ASSpec(
        "China Telecom", "CN", ASKind.ISP,
        hosts=_hosts(scale, http=2500, https=1000, ssh=700),
        path_loss=CHINA_LOSS))

    # --- Psychz Networks: MaxStartups-heavy hosting (Fig 13) -------------
    specs.append(ASSpec(
        "Psychz Networks", "US", ASKind.HOSTING,
        hosts=_hosts(scale, http=460, https=180, ssh=210),
        maxstartups=MaxStartupsSpec(fraction=0.8, refuse_prob_mean=0.62,
                                    refuse_prob_spread=0.25),
        path_loss=PathLossSpec(
            default=LossDraw(0.02, 0.004, variability=2.2))))

    # --- §4.3: rate-IDS networks only US64 can see -----------------------
    specs.append(ASSpec(
        "Ruhr-Universitaet Bochum", "DE", ASKind.ACADEMIC, asn=29484,
        hosts=_hosts(scale, http=120, https=100, ssh=80),
        rate_ids=RateIDSSpec(per_ip_rate_threshold=0.012,
                             detection_delay_mean_s=7200.0)))
    specs.append(ASSpec(
        "SK Broadband", "KR", ASKind.ISP, asn=9318,
        hosts=_hosts(scale, http=400, https=150, ssh=320),
        rate_ids=RateIDSSpec(per_ip_rate_threshold=0.012,
                             detection_delay_mean_s=10800.0,
                             protocols=("ssh",))))

    for name, country, http, https, ssh in (
            ("Hanyang University", "KR", 90, 70, 50),
            ("TU Delft", "NL", 110, 90, 60),
            ("UNAM", "MX", 80, 50, 40)):
        specs.append(ASSpec(
            name, country, ASKind.ACADEMIC,
            hosts=_hosts(scale, http=http, https=https, ssh=ssh),
            rate_ids=RateIDSSpec(per_ip_rate_threshold=0.012,
                                 detection_delay_mean_s=9000.0)))

    # --- §4.4: regional allow/blocklists ----------------------------------
    specs.append(ASSpec(
        "Bekkoame Internet", "JP", ASKind.HOSTING,
        hosts=_hosts(scale, http=520, https=180, ssh=60),
        regional_policy=RegionalPolicySpec(
            allow_countries=frozenset({"JP"}), coverage=0.08)))
    specs.append(ASSpec(
        "NTT Communications", "JP", ASKind.ISP,
        hosts=_hosts(scale, http=260, https=140, ssh=70),
        regional_policy=RegionalPolicySpec(
            allow_countries=frozenset({"JP"}), coverage=0.11)))
    specs.append(ASSpec(
        "Gateway Inc", "US", ASKind.HOSTING, asn=132827,
        hosts=_hosts(scale, http=60, https=20, ssh=10),
        regional_policy=RegionalPolicySpec(
            allow_countries=frozenset({"JP"}), coverage=0.5)))
    specs.append(ASSpec(
        "WebCentral", "AU", ASKind.HOSTING, asn=7496,
        hosts=_hosts(scale, http=110, https=50, ssh=15),
        regional_policy=RegionalPolicySpec(
            allow_countries=frozenset({"AU"}), coverage=0.35)))
    specs.append(ASSpec(
        "Cloudflare Anycast AU-US", "AU", ASKind.CDN,
        hosts=_hosts(scale, http=45, https=40),
        geolocates_to="US",
        regional_policy=RegionalPolicySpec(
            allow_countries=frozenset({"AU"}), coverage=1.0)))
    specs.append(ASSpec(
        "Cloudflare Anycast AU-DE", "AU", ASKind.CDN,
        hosts=_hosts(scale, http=25, https=20),
        geolocates_to="DE",
        regional_policy=RegionalPolicySpec(
            allow_countries=frozenset({"AU"}), coverage=1.0)))
    specs.append(ASSpec(
        "WA K-20 Telecommunications", "US", ASKind.ACADEMIC,
        hosts=_hosts(scale, http=120, https=30, ssh=10),
        regional_policy=RegionalPolicySpec(
            allow_countries=frozenset({"BR"}), coverage=0.6,
            responds_with_block_page=True)))
    for i in range(3):
        specs.append(ASSpec(
            f"Tegna Station {i + 1}", "US", ASKind.MEDIA,
            hosts=_hosts(scale, http=30, https=12),
            regional_policy=RegionalPolicySpec(
                allow_countries=frozenset({"US"}), coverage=1.0)))

    # --- Eastern-European hosters blocking Brazil and Japan ---------------
    specs.append(ASSpec(
        "SantaPlus", "EE", ASKind.HOSTING,
        hosts=_hosts(scale, http=40, https=15, ssh=8),
        regional_policy=RegionalPolicySpec(
            block_countries=frozenset({"BR", "JP"}), coverage=0.6)))
    for name, country, http in (
            ("VolgaHost", "RU", 60), ("UralNet Hosting", "RU", 40),
            ("KyivColo", "UA", 35), ("BucharestServers", "RO", 30),
            ("TiranaHost", "AL", 12)):
        specs.append(ASSpec(
            name, country, ASKind.HOSTING,
            hosts=_hosts(scale, http=http, https=http * 0.4,
                         ssh=http * 0.2),
            regional_policy=RegionalPolicySpec(
                block_countries=frozenset({"BR", "JP"}), coverage=0.4)))
    specs.append(ASSpec(
        "A1 Telekom Austria", "AT", ASKind.ISP,
        hosts=_hosts(scale, http=200, https=90, ssh=40),
        regional_policy=RegionalPolicySpec(
            block_countries=frozenset({"BR", "JP"}), coverage=0.11)))

    # --- US health / finance networks blocking Brazil (§4.2, Fig 5) ------
    for i in range(23):
        kind = ASKind.FINANCIAL if i % 2 == 0 else ASKind.HEALTHCARE
        specs.append(ASSpec(
            f"US {kind.value.title()} Co {i + 1:02d}", "US", kind,
            hosts=_hosts(scale, http=10 + 3 * (i % 5), https=6),
            regional_policy=RegionalPolicySpec(
                block_countries=frozenset({"BR"}), coverage=1.0)))
    for i in range(4):
        specs.append(ASSpec(
            f"US Utility Co {i + 1}", "US", ASKind.UTILITY,
            hosts=_hosts(scale, http=8, https=5),
            regional_policy=RegionalPolicySpec(
                block_countries=frozenset({"BR"}), coverage=1.0)))

    # --- Networks blocking Censys outright (Jack-in-the-Box, government) -
    specs.append(ASSpec(
        "Jack in the Box", "US", ASKind.ENTERPRISE, asn=46603,
        hosts=_hosts(scale, http=20, https=15),
        static_block=StaticBlockSpec(origins=frozenset({"CEN"}))))
    for i in range(8):
        specs.append(ASSpec(
            f"US Government Agency {i + 1}", "US", ASKind.GOVERNMENT,
            hosts=_hosts(scale, http=12, https=10),
            static_block=StaticBlockSpec(origins=frozenset({"CEN"}))))
    for i in range(5):
        specs.append(ASSpec(
            f"US Consumer Business {i + 1}", "US", ASKind.ENTERPRISE,
            hosts=_hosts(scale, http=10, https=6),
            static_block=StaticBlockSpec(origins=frozenset({"CEN"}))))

    # --- Hyperscalers whose best origin flips between trials (§5.1) ------
    unstable = PathLossSpec(default=LossDraw(0.006, 0.003, variability=2.5))
    specs.append(ASSpec(
        "Amazon", "US", ASKind.CLOUD, hosts_per_slash24=20.0,
        hosts=_hosts(scale, http=3500, https=3000, ssh=800),
        path_loss=unstable))
    specs.append(ASSpec(
        "Google", "US", ASKind.CLOUD, hosts_per_slash24=20.0,
        hosts=_hosts(scale, http=2000, https=1800, ssh=300),
        path_loss=unstable))
    specs.append(ASSpec(
        "DigitalOcean", "US", ASKind.CLOUD, hosts_per_slash24=20.0,
        hosts=_hosts(scale, http=1200, https=900, ssh=900),
        path_loss=unstable))

    # --- Destinations where Australia is the consistent worst origin -----
    au_bad = PathLossSpec(
        default=LossDraw(0.004, 0.004, variability=0.8),
        per_origin={"AU": LossDraw(0.041, 0.03, variability=0.6)})
    for name, country, http in (
            ("Rostelecom", "RU", 500), ("MTS Russia", "RU", 250),
            ("VimpelCom", "RU", 120)):
        specs.append(ASSpec(
            name, country, ASKind.ISP,
            hosts=_hosts(scale, http=http, https=http * 0.45,
                         ssh=http * 0.25),
            path_loss=au_bad))
    specs.append(ASSpec(
        "Kazakhtelecom", "KZ", ASKind.ISP,
        hosts=_hosts(scale, http=160, https=70, ssh=35),
        path_loss=PathLossSpec(
            default=LossDraw(0.0039, 0.004, variability=0.8),
            per_origin={"AU": LossDraw(0.046, 0.03, variability=0.6)})))

    # --- Table 2 long tail: countries dominated by one filtered AS -------
    specs.append(ASSpec(
        "Telecom Argentina", "AR", ASKind.ISP,
        hosts=_hosts(scale, http=200, https=90, ssh=40),
        path_loss=PathLossSpec(
            default=LossDraw(0.005, 0.005),
            per_origin={"DE": LossDraw(0.05, 0.01,
                                       persistent_fraction=0.09)})))
    specs.append(ASSpec(
        "CANTV Venezuela", "VE", ASKind.ISP,
        hosts=_hosts(scale, http=110, https=45, ssh=20),
        path_loss=PathLossSpec(
            default=LossDraw(0.005, 0.005),
            per_origin={"DE": LossDraw(0.04, 0.01,
                                       persistent_fraction=0.07)})))
    specs.append(ASSpec(
        "Ecuanet", "EC", ASKind.ISP,
        hosts=_hosts(scale, http=90, https=35, ssh=18),
        reputation_firewall=ReputationFirewallSpec(
            min_reputation=100.0, coverage=0.17),
        path_loss=PathLossSpec(
            default=LossDraw(0.005, 0.005),
            per_origin={
                "DE": LossDraw(0.04, 0.01, persistent_fraction=0.09),
                "us-stanford": LossDraw(0.02, 0.008,
                                        persistent_fraction=0.06),
            })))
    specs.append(ASSpec(
        "ArmenTel", "AM", ASKind.ISP,
        hosts=_hosts(scale, http=40, https=15, ssh=8),
        path_loss=PathLossSpec(
            default=LossDraw(0.005, 0.005),
            per_origin={"DE": LossDraw(0.05, 0.01,
                                       persistent_fraction=0.12)})))
    specs.append(ASSpec(
        "Libya Telecom", "LY", ASKind.ISP,
        hosts=_hosts(scale, http=14, https=6, ssh=3),
        reputation_firewall=ReputationFirewallSpec(
            min_reputation=100.0, coverage=0.16),
        path_loss=PathLossSpec(
            default=LossDraw(0.005, 0.005),
            per_origin={"DE": LossDraw(0.08, 0.02,
                                       persistent_fraction=0.3)})))
    specs.append(ASSpec(
        "Sudatel", "SD", ASKind.ISP,
        hosts=_hosts(scale, http=18, https=8, ssh=4),
        reputation_firewall=ReputationFirewallSpec(
            min_reputation=100.0, coverage=0.13),
        path_loss=PathLossSpec(
            default=LossDraw(0.005, 0.005),
            per_origin={"DE": LossDraw(0.07, 0.02,
                                       persistent_fraction=0.25)})))
    specs.append(ASSpec(
        "Burkina Telecom", "BF", ASKind.ISP,
        hosts=_hosts(scale, http=10, https=4, ssh=2),
        static_block=StaticBlockSpec(
            origins=frozenset({"JP", "US1", "CEN"}), coverage=0.38)))
    specs.append(ASSpec(
        "Malawi Telecom", "MW", ASKind.ISP,
        hosts=_hosts(scale, http=9, https=4, ssh=2),
        static_block=StaticBlockSpec(
            origins=frozenset({"JP", "US1", "CEN"}), coverage=0.29)))
    specs.append(ASSpec(
        "MobiNet Mongolia", "MN", ASKind.ISP,
        hosts=_hosts(scale, http=14, https=6, ssh=3),
        reputation_firewall=ReputationFirewallSpec(
            min_reputation=100.0, coverage=0.3)))

    return specs


def _background_specs(scale: float, named: Sequence[ASSpec],
                      rng: CounterRNG) -> List[ASSpec]:
    """The long tail of unremarkable networks filling each country.

    Sizes follow a Zipf-like split so per-country AS distributions are
    top-heavy, as on the real Internet.  A small slice of these networks
    carries generic anti-scanner behaviour (reputation firewalls, arbitrary
    origin blocks) that produces the paper's diffuse exclusive-
    inaccessibility tail.
    """
    taken: Dict[str, Dict[str, float]] = {}
    for spec in named:
        by_proto = taken.setdefault(spec.country, {})
        for proto, count in spec.hosts.items():
            by_proto[proto] = by_proto.get(proto, 0) + count

    share_total = sum(COUNTRY_SHARES.values())
    protocol_ratio = {
        proto: total / PROTOCOL_TOTALS["http"]
        for proto, total in PROTOCOL_TOTALS.items()
    }

    specs: List[ASSpec] = []
    origin_pool = ("AU", "BR", "DE", "JP", "US1", "US64", "CEN")
    for country, share in COUNTRY_SHARES.items():
        country_http = PROTOCOL_TOTALS["http"] * scale * share / share_total
        remaining = {}
        for proto, ratio in protocol_ratio.items():
            want = country_http * ratio
            have = taken.get(country, {}).get(proto, 0)
            remaining[proto] = max(0.0, want - have)
        if sum(remaining.values()) < 4:
            continue

        n_as = max(1, min(40, round(remaining["http"] / 55) + 1))
        weights = [1.0 / (i + 1) for i in range(n_as)]
        weight_total = sum(weights)
        sub = rng.derive("bg", country)
        for i in range(n_as):
            frac = weights[i] / weight_total
            hosts = {proto: max(0, round(remaining[proto] * frac))
                     for proto in remaining}
            hosts = {p: c for p, c in hosts.items() if c > 0}
            if not hosts:
                continue
            kind = sub.weighted_choice(
                (ASKind.ISP, ASKind.HOSTING, ASKind.ENTERPRISE,
                 ASKind.ACADEMIC, ASKind.GOVERNMENT),
                (0.4, 0.35, 0.15, 0.05, 0.05), "kind", i)
            spec_kwargs = {"path_loss": _jittered_loss(sub, i)}
            roll = sub.uniform("behaviour", i)
            if roll < 0.025:
                # Generic Censys-blocking network.
                spec_kwargs["reputation_firewall"] = ReputationFirewallSpec(
                    min_reputation=100.0,
                    coverage=0.4 + 0.6 * sub.uniform("cov", i))
            elif roll < 0.029:
                # Blocks every origin range with *any* scanning history.
                spec_kwargs["reputation_firewall"] = ReputationFirewallSpec(
                    min_reputation=1.0,
                    coverage=0.5 + 0.5 * sub.uniform("cov", i))
            elif roll < 0.040:
                # Arbitrary grudge against one or two specific origins.
                first = sub.choice(origin_pool, "grudge1", i)
                blocked = {first}
                if sub.bernoulli(0.4, "grudge-two", i):
                    blocked.add(sub.choice(origin_pool, "grudge2", i))
                spec_kwargs["static_block"] = StaticBlockSpec(
                    origins=frozenset(blocked))
            elif roll < 0.050 and kind is ASKind.HOSTING:
                # Flakier-than-average hosting.
                spec_kwargs["l7_flaky"] = L7FlakySpec(
                    flaky_fraction=0.06, fail_prob=0.3, drop_share=0.7,
                    dead_fraction=0.004)
            specs.append(ASSpec(
                f"{country} Network {i + 1:02d}", country, kind,
                hosts=hosts, **spec_kwargs))
    return specs


def _jittered_loss(rng: CounterRNG, index: int) -> PathLossSpec:
    """A per-AS variation of :data:`DEFAULT_LOSS`.

    Real networks differ: some paths are chronically lossier in *both* the
    correlated and the independent component.  The epoch multiplier is
    lognormal-ish and the random multiplier follows it sub-linearly plus
    noise, which is what gives the §5.2 moderate (ρ ≈ 0.4–0.5) rank
    correlation between estimated drop and transient loss across ASes.  A
    small slice of networks is additionally much worse from Australia,
    feeding Figure 11's consistent-worst population.
    """
    u = rng.uniform("loss-mult", index)
    epoch_mult = 0.28 * math.exp(2.7 * u)          # roughly 0.28x - 4.2x
    noise = 0.75 + 0.5 * rng.uniform("rand-noise", index)
    random_mult = (epoch_mult ** 0.9) * noise
    au_penalty = 6.0 if rng.bernoulli(0.12, "au-bad", index) else 1.0

    def scaled(draw: LossDraw, origin_key: str) -> LossDraw:
        au = au_penalty if origin_key == "AU" else 1.0
        return LossDraw(
            epoch_rate=min(0.5, draw.epoch_rate * epoch_mult * au),
            random_rate=min(0.2, draw.random_rate * random_mult
                            * (au if au > 1 else 1.0)),
            persistent_fraction=min(
                0.1, draw.persistent_fraction * epoch_mult ** 0.5),
            variability=draw.variability)

    per_origin = {key: scaled(draw, key)
                  for key, draw in DEFAULT_LOSS.per_origin.items()}
    return PathLossSpec(default=scaled(DEFAULT_LOSS.default, ""),
                        per_origin=per_origin)


def paper_specs(seed: int = 0, scale: float = 1.0) -> List[ASSpec]:
    """The complete AS spec list of the paper world (named + background).

    Exposed so world *variants* (e.g. the blocking-off ablation in
    :mod:`repro.sim.variants`) can transform the specs and rebuild an
    otherwise-identical world.
    """
    rng = CounterRNG(seed, "scenario")
    named = _named_specs(scale)
    background = _background_specs(scale, named, rng)
    return named + background


def build_world_from_specs(specs: List[ASSpec], seed: int,
                           defaults: WorldDefaults,
                           cache: Union[bool, str, None] = None) -> World:
    """Assemble a world from an explicit spec list (variant support).

    Construction is a pure function of ``(specs, seed, defaults)`` plus
    the default country registry, so finished worlds are cached
    content-addressed on disk (:mod:`repro.io.worldcache`): a warm call
    mmap-loads the compiled world instead of re-running topology
    allocation and population.  ``cache`` controls the behaviour:
    ``None`` honors ``REPRO_WORLD_CACHE`` (default on), ``False``
    bypasses the cache, ``True`` forces it, and a path string selects an
    explicit cache directory.
    """
    def assemble() -> World:
        rng = CounterRNG(seed, "scenario")
        topology = build_topology(specs, default_countries())
        hosts = populate(topology, rng.derive("population"))
        return World(topology, hosts, seed, defaults=defaults)

    from repro.io import worldcache
    directory = None
    if isinstance(cache, (str, os.PathLike)):
        directory, cache = cache, True
    use_cache = worldcache.cache_enabled() if cache is None else bool(cache)
    if not use_cache:
        return assemble()
    return worldcache.cached_build_world(
        specs, seed, defaults, default_countries(), assemble,
        directory=directory)


def paper_defaults() -> WorldDefaults:
    """The world defaults used by the paper scenario (public alias)."""
    return _paper_defaults()


def _build_world(seed: int, scale: float,
                 defaults: WorldDefaults) -> World:
    return build_world_from_specs(paper_specs(seed, scale), seed,
                                  defaults)


def _paper_defaults() -> WorldDefaults:
    return WorldDefaults(
        path_loss=DEFAULT_LOSS,
        l7_flaky=L7FlakySpec(flaky_fraction=0.012, fail_prob=0.18,
                             drop_share=0.7, dead_fraction=0.002),
        burst_outages=BurstOutageSpec(
            events_per_origin_trial=0.08, shared_events_per_trial=0.02,
            duration_mean_s=2700.0,
            origin_multipliers={"AU": 2.5}),
        churn=ChurnSpec(stable_fraction=0.91, churner_presence_prob=0.55),
        maxstartups=MaxStartupsSpec(
            fraction=0.09, refuse_prob_mean=0.5, refuse_prob_spread=0.35),
        churner_wobble=0.08)


def paper_scenario(seed: int = 0, scale: float = 1.0
                   ) -> Tuple[World, Tuple[Origin, ...], ZMapConfig]:
    """The main experiment's world, origins, and scan configuration (§2).

    ``scale`` multiplies every host population; 1.0 targets ≈1/1000 of the
    paper's ground truth (≈58 k HTTP, 41 k HTTPS, 19.6 k SSH services).
    """
    world = _build_world(seed, scale, _paper_defaults())
    config = ZMapConfig(seed=seed, pps=100_000.0, n_probes=2)
    return world, paper_origins(), config


def paper_sharded_scenario(seed: int = 0, scale: float = 1.0,
                           n_shards: Optional[int] = None,
                           max_hosts: Optional[int] = None,
                           cache: Union[bool, str, None] = None):
    """The paper scenario as a sharded, out-of-core world.

    Same specs, seed, defaults, origins, and scan configuration as
    :func:`paper_scenario`, but the host population stays virtual —
    partitioned into contiguous AS-index shards that are generated (or
    mmap-loaded) one at a time by :mod:`repro.sim.shard`.  This is the
    entry point for running the paper grid at scales whose monolithic
    world would not fit in memory (see docs/SCALING.md).
    """
    from repro.sim.shard import build_sharded_world

    sharded = build_sharded_world(
        paper_specs(seed, scale), seed, _paper_defaults(),
        n_shards=n_shards, max_hosts=max_hosts, cache=cache)
    config = ZMapConfig(seed=seed, pps=100_000.0, n_probes=2)
    return sharded, paper_origins(), config


def followup_scenario(seed: int = 0, scale: float = 1.0
                      ) -> Tuple[World, Tuple[Origin, ...], ZMapConfig]:
    """The September-2020 follow-up: colocated Tier-1 origins (§7).

    Same world construction (a fresh seed models the eleven months of
    ecosystem drift), scanned by five original origins plus the three
    Chicago Tier-1 hosts; Censys appears with a fresh, unblocked IP range.
    """
    world = _build_world(seed + 1_000_003, scale, _paper_defaults())
    config = ZMapConfig(seed=seed + 7, pps=100_000.0, n_probes=2)
    return world, followup_origins(), config


def small_scenario(seed: int = 0
                   ) -> Tuple[World, Tuple[Origin, ...], ZMapConfig]:
    """A fast, small world for tests and examples (~3 k services)."""
    return paper_scenario(seed=seed, scale=0.04)
