"""Pluggable execution backends for campaign observation grids.

A campaign is a grid of independent ``(protocol, trial, origin)``
observations: every stochastic draw in the simulator is counter-addressed
(:mod:`repro.rng`), so the outcome of one observation never depends on
when — or in which worker — any other observation ran.  This module
exploits that property to fan the grid out across threads or processes
while guaranteeing results bit-identical to serial execution.

Three backends share one interface:

* :class:`SerialExecutor` — the reference implementation, one job at a
  time in submission order.
* :class:`ThreadExecutor` — a thread pool; the world is shared, which is
  safe because its lazy caches memoize pure counter-addressed functions
  (a racing rebuild produces the identical value).
* :class:`ProcessExecutor` — a process pool; the world's array plane is
  broadcast once through ``multiprocessing.shared_memory`` (workers
  attach zero-copy read-only views and rebuild the world around them),
  with the small scalar skeleton pickled per worker.  Job payloads stay
  small (an :class:`Origin`, a trial-reseeded :class:`ZMapConfig`, and
  indices).  ``REPRO_WORLD_TRANSPORT=pickle`` — or any failure to
  create the shared block — falls back to pickling the whole world into
  the pool initializer, the pre-shared-memory behaviour.

Every job carries everything a worker needs — including the origin's
``first_trial`` (rate-IDS state carries over from it), which must travel
*in the payload* because a worker process cannot see the full origin
list to recompute it.

Determinism contract: :meth:`Executor.run_grid` returns observations in
job-index order regardless of completion order, so
``run_campaign(..., executor=X)`` is byte-identical for every backend
(tested in ``tests/test_executor_equivalence.py``).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
import time
from abc import ABC, abstractmethod
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, \
    ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from multiprocessing import shared_memory

from repro.io.columnar import (arrays_from_buffer, decompose_world,
                               pack_into, pack_layout, recompose_world)
from repro.origins import Origin
from repro.scanner.zmap import ZMapConfig, ZMapScanner
from repro.sim.batch import BatchOutput, observe_trial_batch
from repro.sim.plan import ObserveProfile
from repro.sim.world import Observation, World
from repro.telemetry.context import Telemetry, current as _telemetry, \
    peak_rss_bytes as _peak_rss, use
from repro.telemetry.tracing import TraceContext

#: Environment variables consulted when no executor is passed explicitly;
#: they let an entire test run (``make test-parallel``) exercise the
#: parallel path without touching call sites.
ENV_EXECUTOR = "REPRO_EXECUTOR"
ENV_WORKERS = "REPRO_WORKERS"
#: How the process backend ships the world: ``shm`` (default) or
#: ``pickle`` (the reference path shared memory falls back to).
ENV_TRANSPORT = "REPRO_WORLD_TRANSPORT"

#: Registered world transports for the process backend.
TRANSPORTS = ("shm", "pickle")

#: Progress callback signature: ``(jobs_done, jobs_total, job)``.
ProgressCallback = Callable[[int, int, "Job"], None]


@dataclass(frozen=True)
class ObservationJob:
    """One schedulable ``(protocol, trial, origin)`` observation.

    ``config`` is already trial-reseeded (``seed + trial``), and
    ``first_trial`` is precomputed by the grid builder, so a worker needs
    no context beyond the world itself — results are identical no matter
    which worker runs the job, or in what order.
    """

    index: int
    protocol: str
    trial: int
    origin: Origin
    config: ZMapConfig
    first_trial: int
    origin_names: Tuple[str, ...]
    #: Whether to observe through a compiled plan (the default).  The
    #: unplanned reference path exists for differential testing
    #: (``run_campaign(..., planned=False)``).
    planned: bool = True


@dataclass(frozen=True)
class TrialBatchJob:
    """One schedulable ``(protocol, origin)`` *trial batch*.

    The batched granularity: all trials this origin participates in for
    one protocol, evaluated in a single fused kernel pass
    (:func:`repro.sim.batch.observe_trial_batch`).  ``configs`` carries
    one trial-reseeded :class:`~repro.scanner.zmap.ZMapConfig` per entry
    of ``trials`` — the same reseeding the per-cell grid applies — so a
    batch job's outputs are byte-identical to the per-cell jobs it
    replaces, while shipping far fewer pickles per campaign (one job per
    (protocol, origin) instead of one per grid cell).

    ``plane_only`` skips Observation materialization and returns
    :class:`~repro.sim.batch.PlaneSlice` columns for streamed analyses.
    """

    index: int
    protocol: str
    origin: Origin
    trials: Tuple[int, ...]
    configs: Tuple[ZMapConfig, ...]
    first_trial: int
    origin_names: Tuple[str, ...]
    planned: bool = True
    plane_only: bool = False


#: Anything an executor can schedule.
Job = Union[ObservationJob, TrialBatchJob]


@dataclass(frozen=True)
class JobResult:
    """An observation plus the instrumentation the report aggregates.

    For a :class:`TrialBatchJob`, ``observation`` is a tuple of per-trial
    outputs (in ``job.trials`` order) instead of a single observation.
    """

    index: int
    observation: Union[Observation, Tuple[BatchOutput, ...]]
    wall_s: float
    worker: str
    #: Per-stage wall times of this observation (planned jobs only),
    #: as ``(stage, seconds)`` pairs.
    stages: Tuple[Tuple[str, float], ...] = ()
    #: Job-local telemetry snapshot (:meth:`Telemetry.snapshot`), present
    #: when the grid ran under an active telemetry context.  Plain data,
    #: so it crosses the process-pool pickle boundary unchanged.
    telemetry: Optional[dict] = None
    #: Peak RSS of the process that ran the job, in bytes (0 unknown).
    #: Sampled post-observation so process-pool workers report their own
    #: high-water mark across the pickle boundary.
    peak_rss_bytes: int = 0


@dataclass(frozen=True)
class ExecutionReport:
    """How a grid execution went: backend, timing, concurrency yield.

    ``job_wall_s`` is indexed like the job list; ``busy_s`` (its sum) is
    the serial-equivalent work, so ``busy_s / wall_s`` estimates the
    realized speedup.  :meth:`to_metadata` flattens the report into the
    JSON-able dict stored under ``CampaignDataset.metadata["execution"]``.
    """

    backend: str
    workers: int
    n_jobs: int
    wall_s: float
    job_wall_s: Tuple[float, ...]
    workers_used: int
    #: Observe-stage → total seconds, summed over every planned job (see
    #: :class:`repro.sim.plan.ObserveProfile`); empty for unplanned runs.
    stage_s: Tuple[Tuple[str, float], ...] = ()
    #: How the world reached the workers (``"shm"`` or ``"pickle"``);
    #: empty for backends that share the world in-process.
    transport: str = ""
    #: High-water resident memory over the run, in bytes: the max of the
    #: parent process and every worker that ran a job (0 if unknown).
    peak_rss_bytes: int = 0

    @property
    def busy_s(self) -> float:
        """Total per-job wall-clock — what a serial run would cost."""
        return float(sum(self.job_wall_s))

    @property
    def speedup(self) -> float:
        """Realized parallelism: serial-equivalent seconds per wall second."""
        if self.wall_s <= 0.0:
            return 1.0
        return self.busy_s / self.wall_s

    def to_metadata(self) -> Dict[str, object]:
        out = {
            "backend": self.backend,
            "workers": self.workers,
            "workers_used": self.workers_used,
            "n_jobs": self.n_jobs,
            "wall_s": round(self.wall_s, 6),
            "busy_s": round(self.busy_s, 6),
            "job_wall_max_s": round(max(self.job_wall_s), 6)
            if self.job_wall_s else 0.0,
            "speedup": round(self.speedup, 3),
            "stages": {stage: round(seconds, 6)
                       for stage, seconds in self.stage_s},
        }
        if self.transport:
            out["transport"] = self.transport
        if self.peak_rss_bytes:
            out["peak_rss_bytes"] = self.peak_rss_bytes
        return out


def run_job(world: World, job: Job, collect: bool = False,
            trace: Optional[TraceContext] = None) -> JobResult:
    """Execute one job against a world (any backend).

    Dispatches on the job type: an :class:`ObservationJob` runs one
    per-cell observation; a :class:`TrialBatchJob` runs the fused
    trial-batch kernel and returns a tuple of per-trial outputs.

    With ``collect=True`` the job runs under a fresh job-local
    :class:`~repro.telemetry.context.Telemetry` whose snapshot rides back
    in the result; the parent adopts snapshots in job-index order, so the
    merged journal and counter totals are identical no matter which
    worker (or backend) ran the job.  A ``trace`` context stamps every
    job-local span with the originating request/campaign's trace ID —
    the snapshot carries it back across the pickle boundary, so adopted
    spans stay correlated with the tree that spawned them.
    """
    if isinstance(job, TrialBatchJob):
        return _run_batch_job(world, job, collect, trace)
    start = time.perf_counter()
    scanner = ZMapScanner(job.config)
    profile = ObserveProfile() if job.planned else None
    worker = f"{os.getpid()}/{threading.current_thread().name}"
    snapshot = None
    if collect:
        job_tel = Telemetry(
            trace_id=trace.trace_id if trace is not None else None)
        with use(job_tel):
            with job_tel.span("executor.job", index=job.index,
                              protocol=job.protocol, trial=job.trial,
                              origin=job.origin.name):
                observation = world.observe(
                    job.protocol, job.trial, job.origin, scanner,
                    job.origin_names, first_trial=job.first_trial,
                    plan=None if job.planned else False, profile=profile)
        job_tel.count("executor.jobs", 1)
        job_tel.count("runtime.worker_jobs", 1, worker=worker)
        snapshot = job_tel.snapshot()
    else:
        observation = world.observe(
            job.protocol, job.trial, job.origin, scanner, job.origin_names,
            first_trial=job.first_trial,
            plan=None if job.planned else False, profile=profile)
    wall = time.perf_counter() - start
    stages = tuple(profile.stage_s.items()) if profile is not None else ()
    return JobResult(job.index, observation, wall, worker, stages,
                     snapshot, _peak_rss())


def _run_batch_job(world: World, job: TrialBatchJob, collect: bool,
                   trace: Optional[TraceContext]) -> JobResult:
    """Run one fused trial batch (see :func:`run_job`)."""
    start = time.perf_counter()
    scanners = tuple(ZMapScanner(config) for config in job.configs)
    profile = ObserveProfile()
    worker = f"{os.getpid()}/{threading.current_thread().name}"
    snapshot = None
    if collect:
        job_tel = Telemetry(
            trace_id=trace.trace_id if trace is not None else None)
        with use(job_tel):
            with job_tel.span("executor.job", index=job.index,
                              protocol=job.protocol,
                              origin=job.origin.name,
                              n_trials=len(job.trials),
                              trials=[int(t) for t in job.trials]):
                observations = observe_trial_batch(
                    world, job.protocol, job.origin, job.trials, scanners,
                    job.origin_names, first_trial=job.first_trial,
                    plane_only=job.plane_only, profile=profile)
        job_tel.count("executor.jobs", 1)
        job_tel.count("runtime.worker_jobs", 1, worker=worker)
        snapshot = job_tel.snapshot()
    else:
        observations = observe_trial_batch(
            world, job.protocol, job.origin, job.trials, scanners,
            job.origin_names, first_trial=job.first_trial,
            plane_only=job.plane_only, profile=profile)
    wall = time.perf_counter() - start
    return JobResult(job.index, tuple(observations), wall, worker,
                     tuple(profile.stage_s.items()), snapshot, _peak_rss())


class Executor(ABC):
    """Executes an observation grid and reassembles deterministic output."""

    #: Backend name recorded in the :class:`ExecutionReport`.
    name: str = "abstract"

    #: Set by backends that ship the world across a process boundary;
    #: recorded as :attr:`ExecutionReport.transport`.
    _transport_used: str = ""

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers if workers is not None \
            else (os.cpu_count() or 1)

    @abstractmethod
    def _execute(self, world: World, jobs: Sequence[Job],
                 progress: Optional[ProgressCallback], collect: bool,
                 trace: Optional[TraceContext]) -> List[JobResult]:
        """Run every job, in any order, returning all results.

        ``collect`` asks each job to gather a job-local telemetry
        snapshot (see :func:`run_job`); ``trace`` is the ambient trace
        context (or ``None``).  Backends must forward both across their
        worker boundary.
        """

    def run_grid(self, world: World, jobs: Sequence[Job],
                 progress: Optional[ProgressCallback] = None
                 ) -> Tuple[List, ExecutionReport]:
        """Run the grid; observations come back in job-index order.

        Under an active telemetry context the whole grid runs inside an
        ``executor.run_grid`` span, and every job's telemetry snapshot is
        adopted — in job-index order, regardless of completion order —
        into the parent collector, so journals and counter totals are
        deterministic across backends and worker counts.
        """
        tel = _telemetry()
        start = time.perf_counter()
        if tel.enabled:
            with tel.span("executor.run_grid", backend=self.name,
                          workers=self.workers,
                          n_jobs=len(jobs)) as grid_span:
                trace = TraceContext(tel.trace_id, grid_span.span_id) \
                    if tel.trace_id else None
                results = self._execute(world, jobs, progress, True, trace)
            grid_id = grid_span.span_id
        else:
            results = self._execute(world, jobs, progress, False, None)
            grid_id = None
        wall = time.perf_counter() - start
        if len(results) != len(jobs):
            raise RuntimeError(
                f"executor returned {len(results)} results for "
                f"{len(jobs)} jobs")
        by_index: Dict[int, JobResult] = {r.index: r for r in results}
        ordered = [by_index[job.index] for job in jobs]
        if tel.enabled:
            for result in ordered:
                if result.telemetry is not None:
                    tel.adopt(result.telemetry,
                              prefix=f"j{result.index}.",
                              parent_id=grid_id)
                tel.observe_value("runtime.job_wall_s", result.wall_s,
                                  backend=self.name)
        stage_totals: Dict[str, float] = {}
        for result in ordered:
            for stage, seconds in result.stages:
                stage_totals[stage] = stage_totals.get(stage, 0.0) + seconds
        report = ExecutionReport(
            backend=self.name,
            workers=self.workers,
            n_jobs=len(jobs),
            wall_s=wall,
            job_wall_s=tuple(r.wall_s for r in ordered),
            workers_used=len({r.worker for r in ordered}),
            # Sorted by stage name: completion order must never leak into
            # metadata (thread workers finish in nondeterministic order).
            stage_s=tuple(sorted(stage_totals.items())),
            transport=self._transport_used,
            peak_rss_bytes=max([_peak_rss()]
                               + [r.peak_rss_bytes for r in ordered]))
        return [r.observation for r in ordered], report


class SerialExecutor(Executor):
    """The reference backend: one job at a time, submission order."""

    name = "serial"

    def __init__(self, workers: Optional[int] = None) -> None:
        super().__init__(1)

    def _execute(self, world: World, jobs: Sequence[Job],
                 progress: Optional[ProgressCallback], collect: bool,
                 trace: Optional[TraceContext]) -> List[JobResult]:
        results: List[JobResult] = []
        for done, job in enumerate(jobs, start=1):
            results.append(run_job(world, job, collect=collect,
                                   trace=trace))
            if progress is not None:
                progress(done, len(jobs), job)
        return results


class ThreadExecutor(Executor):
    """Thread-pool backend sharing one world across workers.

    Safe because the world's lazy caches memoize pure counter-addressed
    functions: two threads racing to fill the same cache entry compute
    the identical value, so last-write-wins cannot change any result.
    """

    name = "thread"

    def _execute(self, world: World, jobs: Sequence[Job],
                 progress: Optional[ProgressCallback], collect: bool,
                 trace: Optional[TraceContext]) -> List[JobResult]:
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            futures = {pool.submit(run_job, world, job, collect, trace): job
                       for job in jobs}
            return _drain(futures, len(jobs), progress)


# Module-level slots for the per-process world, telemetry flag, and
# trace context; set by the pool initializer, read by every job the
# worker runs.  The shared-memory mapping must stay referenced for the
# worker's lifetime: the world's host columns are views into it.
_WORKER_WORLD: Optional[World] = None
_WORKER_COLLECT: bool = False
_WORKER_TRACE: Optional[TraceContext] = None
_WORKER_SHM: Optional[shared_memory.SharedMemory] = None


def _process_init(payload: bytes, collect: bool = False,
                  trace: Optional[TraceContext] = None) -> None:
    global _WORKER_WORLD, _WORKER_COLLECT, _WORKER_TRACE
    _WORKER_WORLD = pickle.loads(payload)
    _WORKER_COLLECT = collect
    _WORKER_TRACE = trace


def _process_init_shm(name: str, skeleton: bytes, layout: Sequence[dict],
                      collect: bool = False,
                      trace: Optional[TraceContext] = None) -> None:
    """Attach the parent's shared block and rebuild the world around it.

    The arrays become read-only zero-copy views over the mapping — no
    bytes are copied, and an accidental in-place write in a worker
    raises instead of corrupting every sibling.  Pool workers share the
    parent's resource tracker, so attaching here re-registers the same
    name (an idempotent set-add); the parent's ``unlink`` performs the
    single unregister.  Unregistering per worker would strip the
    parent's entry and break that accounting.
    """
    global _WORKER_WORLD, _WORKER_COLLECT, _WORKER_TRACE, _WORKER_SHM
    shm = shared_memory.SharedMemory(name=name)
    _WORKER_SHM = shm
    _WORKER_WORLD = recompose_world(skeleton,
                                    arrays_from_buffer(shm.buf, layout))
    _WORKER_COLLECT = collect
    _WORKER_TRACE = trace


def _process_run_job(job: Job) -> JobResult:
    if _WORKER_WORLD is None:
        raise RuntimeError("worker process was not initialized with a world")
    return run_job(_WORKER_WORLD, job, collect=_WORKER_COLLECT,
                   trace=_WORKER_TRACE)


class SharedWorld:
    """A world's array plane packed into one shared-memory block.

    ``decompose_world`` splits the world into a small pickled skeleton
    (seed, defaults, topology registries) and its big arrays (host
    columns, populated /24s); the arrays are copied once into a single
    ``multiprocessing.shared_memory`` block that every worker maps
    zero-copy.  The creator must call :meth:`close` (which also unlinks)
    when the pool is done.
    """

    def __init__(self, world: World) -> None:
        self.skeleton, arrays = decompose_world(world)
        self.layout, self.nbytes = pack_layout(arrays)
        self._shm: Optional[shared_memory.SharedMemory] = \
            shared_memory.SharedMemory(create=True,
                                       size=max(self.nbytes, 1))
        pack_into(self._shm.buf, arrays, self.layout)
        self.name = self._shm.name

    def initargs(self, collect: bool,
                 trace: Optional[TraceContext] = None) -> Tuple:
        """Arguments for :func:`_process_init_shm` (small: no arrays)."""
        return (self.name, self.skeleton, self.layout, collect, trace)

    def close(self) -> None:
        """Release and unlink the block (idempotent)."""
        if self._shm is None:
            return
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass
        self._shm = None


class ProcessExecutor(Executor):
    """Process-pool backend: the world ships to each worker exactly once.

    By default the world's arrays travel through one shared-memory block
    (:class:`SharedWorld`) that workers map zero-copy, and only the
    scalar skeleton is pickled per worker; ``transport="pickle"`` (or
    ``REPRO_WORLD_TRANSPORT=pickle``, or shared-memory creation
    failing) pickles the whole world into the pool initializer instead.
    Either way nothing world-sized rides in job payloads, and workers
    rebuild the lazy per-AS caches locally; because every draw is pure
    in ``(seed, key, counters)``, the rebuilt caches are identical to
    the parent's and the output is bit-identical to serial execution.
    """

    name = "process"

    def __init__(self, workers: Optional[int] = None,
                 start_method: Optional[str] = None,
                 transport: Optional[str] = None) -> None:
        super().__init__(workers)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = start_method
        if transport is None:
            transport = os.environ.get(ENV_TRANSPORT, "shm")
        if transport not in TRANSPORTS:
            raise ValueError(
                f"unknown world transport {transport!r}; "
                f"expected one of {TRANSPORTS}")
        self.transport = transport

    def _execute(self, world: World, jobs: Sequence[Job],
                 progress: Optional[ProgressCallback], collect: bool,
                 trace: Optional[TraceContext]) -> List[JobResult]:
        tel = _telemetry()
        shared: Optional[SharedWorld] = None
        if self.transport == "shm":
            try:
                shared = SharedWorld(world)
            except Exception:
                # No usable /dev/shm, unpicklable skeleton, size limits:
                # the pickle path handles every world the old way.
                shared = None
        try:
            if shared is not None:
                initializer, initargs = \
                    _process_init_shm, shared.initargs(collect, trace)
                self._transport_used = "shm"
                if tel.enabled:
                    tel.count("runtime.world_shm_bytes", shared.nbytes)
            else:
                payload = pickle.dumps(world,
                                       protocol=pickle.HIGHEST_PROTOCOL)
                initializer, initargs = \
                    _process_init, (payload, collect, trace)
                self._transport_used = "pickle"
            if tel.enabled:
                tel.count("runtime.world_transport", 1,
                          transport=self._transport_used)
            context = multiprocessing.get_context(self.start_method)
            with ProcessPoolExecutor(max_workers=self.workers,
                                     mp_context=context,
                                     initializer=initializer,
                                     initargs=initargs) as pool:
                futures = {pool.submit(_process_run_job, job): job
                           for job in jobs}
                return _drain(futures, len(jobs), progress)
        finally:
            if shared is not None:
                shared.close()


def _drain(futures: Dict, total: int,
           progress: Optional[ProgressCallback]) -> List[JobResult]:
    """Collect pool futures, firing progress callbacks as they land."""
    results: List[JobResult] = []
    pending = set(futures)
    while pending:
        finished, pending = wait(pending, return_when=FIRST_COMPLETED)
        for future in finished:
            results.append(future.result())
            if progress is not None:
                progress(len(results), total, futures[future])
    return results


#: Registered backend names, in documentation order.
BACKENDS = ("serial", "thread", "process")

_BACKEND_CLASSES = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def make_executor(backend: Union[str, Executor, None] = None,
                  workers: Optional[int] = None) -> Executor:
    """Build an executor from a backend name (or pass one through).

    With ``backend=None`` the :data:`ENV_EXECUTOR` / :data:`ENV_WORKERS`
    environment variables are consulted, defaulting to serial execution —
    this is how ``make test-parallel`` reroutes every campaign in the
    test suite through the process backend without touching call sites.
    """
    if isinstance(backend, Executor):
        if workers is not None and workers != backend.workers:
            raise ValueError(
                "pass workers via the Executor constructor, not both")
        return backend
    if backend is None:
        backend = os.environ.get(ENV_EXECUTOR, "serial")
        if workers is None and os.environ.get(ENV_WORKERS):
            workers = int(os.environ[ENV_WORKERS])
    try:
        cls = _BACKEND_CLASSES[backend]
    except KeyError:
        raise ValueError(
            f"unknown executor backend {backend!r}; "
            f"expected one of {BACKENDS}") from None
    return cls(workers=workers)
