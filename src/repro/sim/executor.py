"""Pluggable execution backends for campaign observation grids.

A campaign is a grid of independent ``(protocol, trial, origin)``
observations: every stochastic draw in the simulator is counter-addressed
(:mod:`repro.rng`), so the outcome of one observation never depends on
when — or in which worker — any other observation ran.  This module
exploits that property to fan the grid out across threads or processes
while guaranteeing results bit-identical to serial execution.

Three backends share one interface:

* :class:`SerialExecutor` — the reference implementation, one job at a
  time in submission order.
* :class:`ThreadExecutor` — a thread pool; the world is shared, which is
  safe because its lazy caches memoize pure counter-addressed functions
  (a racing rebuild produces the identical value).
* :class:`ProcessExecutor` — a process pool; the world is pickled once
  per worker via the pool initializer, and each worker rebuilds the lazy
  per-AS caches locally.  Job payloads stay small (an :class:`Origin`,
  a trial-reseeded :class:`ZMapConfig`, and indices).

Every job carries everything a worker needs — including the origin's
``first_trial`` (rate-IDS state carries over from it), which must travel
*in the payload* because a worker process cannot see the full origin
list to recompute it.

Determinism contract: :meth:`Executor.run_grid` returns observations in
job-index order regardless of completion order, so
``run_campaign(..., executor=X)`` is byte-identical for every backend
(tested in ``tests/test_executor_equivalence.py``).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
import time
from abc import ABC, abstractmethod
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, \
    ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.origins import Origin
from repro.scanner.zmap import ZMapConfig, ZMapScanner
from repro.sim.plan import ObserveProfile
from repro.sim.world import Observation, World
from repro.telemetry.context import Telemetry, current as _telemetry, use

#: Environment variables consulted when no executor is passed explicitly;
#: they let an entire test run (``make test-parallel``) exercise the
#: parallel path without touching call sites.
ENV_EXECUTOR = "REPRO_EXECUTOR"
ENV_WORKERS = "REPRO_WORKERS"

#: Progress callback signature: ``(jobs_done, jobs_total, job)``.
ProgressCallback = Callable[[int, int, "ObservationJob"], None]


@dataclass(frozen=True)
class ObservationJob:
    """One schedulable ``(protocol, trial, origin)`` observation.

    ``config`` is already trial-reseeded (``seed + trial``), and
    ``first_trial`` is precomputed by the grid builder, so a worker needs
    no context beyond the world itself — results are identical no matter
    which worker runs the job, or in what order.
    """

    index: int
    protocol: str
    trial: int
    origin: Origin
    config: ZMapConfig
    first_trial: int
    origin_names: Tuple[str, ...]
    #: Whether to observe through a compiled plan (the default).  The
    #: unplanned reference path exists for differential testing
    #: (``run_campaign(..., planned=False)``).
    planned: bool = True


@dataclass(frozen=True)
class JobResult:
    """An observation plus the instrumentation the report aggregates."""

    index: int
    observation: Observation
    wall_s: float
    worker: str
    #: Per-stage wall times of this observation (planned jobs only),
    #: as ``(stage, seconds)`` pairs.
    stages: Tuple[Tuple[str, float], ...] = ()
    #: Job-local telemetry snapshot (:meth:`Telemetry.snapshot`), present
    #: when the grid ran under an active telemetry context.  Plain data,
    #: so it crosses the process-pool pickle boundary unchanged.
    telemetry: Optional[dict] = None


@dataclass(frozen=True)
class ExecutionReport:
    """How a grid execution went: backend, timing, concurrency yield.

    ``job_wall_s`` is indexed like the job list; ``busy_s`` (its sum) is
    the serial-equivalent work, so ``busy_s / wall_s`` estimates the
    realized speedup.  :meth:`to_metadata` flattens the report into the
    JSON-able dict stored under ``CampaignDataset.metadata["execution"]``.
    """

    backend: str
    workers: int
    n_jobs: int
    wall_s: float
    job_wall_s: Tuple[float, ...]
    workers_used: int
    #: Observe-stage → total seconds, summed over every planned job (see
    #: :class:`repro.sim.plan.ObserveProfile`); empty for unplanned runs.
    stage_s: Tuple[Tuple[str, float], ...] = ()

    @property
    def busy_s(self) -> float:
        """Total per-job wall-clock — what a serial run would cost."""
        return float(sum(self.job_wall_s))

    @property
    def speedup(self) -> float:
        """Realized parallelism: serial-equivalent seconds per wall second."""
        if self.wall_s <= 0.0:
            return 1.0
        return self.busy_s / self.wall_s

    def to_metadata(self) -> Dict[str, object]:
        return {
            "backend": self.backend,
            "workers": self.workers,
            "workers_used": self.workers_used,
            "n_jobs": self.n_jobs,
            "wall_s": round(self.wall_s, 6),
            "busy_s": round(self.busy_s, 6),
            "job_wall_max_s": round(max(self.job_wall_s), 6)
            if self.job_wall_s else 0.0,
            "speedup": round(self.speedup, 3),
            "stages": {stage: round(seconds, 6)
                       for stage, seconds in self.stage_s},
        }


def run_job(world: World, job: ObservationJob,
            collect: bool = False) -> JobResult:
    """Execute one observation job against a world (any backend).

    With ``collect=True`` the job runs under a fresh job-local
    :class:`~repro.telemetry.context.Telemetry` whose snapshot rides back
    in the result; the parent adopts snapshots in job-index order, so the
    merged journal and counter totals are identical no matter which
    worker (or backend) ran the job.
    """
    start = time.perf_counter()
    scanner = ZMapScanner(job.config)
    profile = ObserveProfile() if job.planned else None
    worker = f"{os.getpid()}/{threading.current_thread().name}"
    snapshot = None
    if collect:
        job_tel = Telemetry()
        with use(job_tel):
            with job_tel.span("executor.job", index=job.index,
                              protocol=job.protocol, trial=job.trial,
                              origin=job.origin.name):
                observation = world.observe(
                    job.protocol, job.trial, job.origin, scanner,
                    job.origin_names, first_trial=job.first_trial,
                    plan=None if job.planned else False, profile=profile)
        job_tel.count("executor.jobs", 1)
        job_tel.count("runtime.worker_jobs", 1, worker=worker)
        snapshot = job_tel.snapshot()
    else:
        observation = world.observe(
            job.protocol, job.trial, job.origin, scanner, job.origin_names,
            first_trial=job.first_trial,
            plan=None if job.planned else False, profile=profile)
    wall = time.perf_counter() - start
    stages = tuple(profile.stage_s.items()) if profile is not None else ()
    return JobResult(job.index, observation, wall, worker, stages,
                     snapshot)


class Executor(ABC):
    """Executes an observation grid and reassembles deterministic output."""

    #: Backend name recorded in the :class:`ExecutionReport`.
    name: str = "abstract"

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers if workers is not None \
            else (os.cpu_count() or 1)

    @abstractmethod
    def _execute(self, world: World, jobs: Sequence[ObservationJob],
                 progress: Optional[ProgressCallback],
                 collect: bool) -> List[JobResult]:
        """Run every job, in any order, returning all results.

        ``collect`` asks each job to gather a job-local telemetry
        snapshot (see :func:`run_job`); backends must forward it across
        their worker boundary.
        """

    def run_grid(self, world: World, jobs: Sequence[ObservationJob],
                 progress: Optional[ProgressCallback] = None
                 ) -> Tuple[List[Observation], ExecutionReport]:
        """Run the grid; observations come back in job-index order.

        Under an active telemetry context the whole grid runs inside an
        ``executor.run_grid`` span, and every job's telemetry snapshot is
        adopted — in job-index order, regardless of completion order —
        into the parent collector, so journals and counter totals are
        deterministic across backends and worker counts.
        """
        tel = _telemetry()
        start = time.perf_counter()
        if tel.enabled:
            with tel.span("executor.run_grid", backend=self.name,
                          workers=self.workers,
                          n_jobs=len(jobs)) as grid_span:
                results = self._execute(world, jobs, progress, True)
            grid_id = grid_span.span_id
        else:
            results = self._execute(world, jobs, progress, False)
            grid_id = None
        wall = time.perf_counter() - start
        if len(results) != len(jobs):
            raise RuntimeError(
                f"executor returned {len(results)} results for "
                f"{len(jobs)} jobs")
        by_index: Dict[int, JobResult] = {r.index: r for r in results}
        ordered = [by_index[job.index] for job in jobs]
        if tel.enabled:
            for result in ordered:
                if result.telemetry is not None:
                    tel.adopt(result.telemetry,
                              prefix=f"j{result.index}.",
                              parent_id=grid_id)
                tel.observe_value("runtime.job_wall_s", result.wall_s,
                                  backend=self.name)
        stage_totals: Dict[str, float] = {}
        for result in ordered:
            for stage, seconds in result.stages:
                stage_totals[stage] = stage_totals.get(stage, 0.0) + seconds
        report = ExecutionReport(
            backend=self.name,
            workers=self.workers,
            n_jobs=len(jobs),
            wall_s=wall,
            job_wall_s=tuple(r.wall_s for r in ordered),
            workers_used=len({r.worker for r in ordered}),
            # Sorted by stage name: completion order must never leak into
            # metadata (thread workers finish in nondeterministic order).
            stage_s=tuple(sorted(stage_totals.items())))
        return [r.observation for r in ordered], report


class SerialExecutor(Executor):
    """The reference backend: one job at a time, submission order."""

    name = "serial"

    def __init__(self, workers: Optional[int] = None) -> None:
        super().__init__(1)

    def _execute(self, world: World, jobs: Sequence[ObservationJob],
                 progress: Optional[ProgressCallback],
                 collect: bool) -> List[JobResult]:
        results: List[JobResult] = []
        for done, job in enumerate(jobs, start=1):
            results.append(run_job(world, job, collect=collect))
            if progress is not None:
                progress(done, len(jobs), job)
        return results


class ThreadExecutor(Executor):
    """Thread-pool backend sharing one world across workers.

    Safe because the world's lazy caches memoize pure counter-addressed
    functions: two threads racing to fill the same cache entry compute
    the identical value, so last-write-wins cannot change any result.
    """

    name = "thread"

    def _execute(self, world: World, jobs: Sequence[ObservationJob],
                 progress: Optional[ProgressCallback],
                 collect: bool) -> List[JobResult]:
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            futures = {pool.submit(run_job, world, job, collect): job
                       for job in jobs}
            return _drain(futures, len(jobs), progress)


# Module-level slots for the per-process world and telemetry flag; set
# by the pool initializer, read by every job the worker runs.
_WORKER_WORLD: Optional[World] = None
_WORKER_COLLECT: bool = False


def _process_init(payload: bytes, collect: bool = False) -> None:
    global _WORKER_WORLD, _WORKER_COLLECT
    _WORKER_WORLD = pickle.loads(payload)
    _WORKER_COLLECT = collect


def _process_run_job(job: ObservationJob) -> JobResult:
    if _WORKER_WORLD is None:
        raise RuntimeError("worker process was not initialized with a world")
    return run_job(_WORKER_WORLD, job, collect=_WORKER_COLLECT)


class ProcessExecutor(Executor):
    """Process-pool backend: the world ships to each worker exactly once.

    The world is pickled into the pool initializer rather than into every
    job, so per-job payloads stay a few hundred bytes.  Workers rebuild
    the lazy per-AS caches locally; because every draw is pure in
    ``(seed, key, counters)``, the rebuilt caches are identical to the
    parent's and the output is bit-identical to serial execution.
    """

    name = "process"

    def __init__(self, workers: Optional[int] = None,
                 start_method: Optional[str] = None) -> None:
        super().__init__(workers)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = start_method

    def _execute(self, world: World, jobs: Sequence[ObservationJob],
                 progress: Optional[ProgressCallback],
                 collect: bool) -> List[JobResult]:
        payload = pickle.dumps(world, protocol=pickle.HIGHEST_PROTOCOL)
        context = multiprocessing.get_context(self.start_method)
        with ProcessPoolExecutor(max_workers=self.workers,
                                 mp_context=context,
                                 initializer=_process_init,
                                 initargs=(payload, collect)) as pool:
            futures = {pool.submit(_process_run_job, job): job
                       for job in jobs}
            return _drain(futures, len(jobs), progress)


def _drain(futures: Dict, total: int,
           progress: Optional[ProgressCallback]) -> List[JobResult]:
    """Collect pool futures, firing progress callbacks as they land."""
    results: List[JobResult] = []
    pending = set(futures)
    while pending:
        finished, pending = wait(pending, return_when=FIRST_COMPLETED)
        for future in finished:
            results.append(future.result())
            if progress is not None:
                progress(len(results), total, futures[future])
    return results


#: Registered backend names, in documentation order.
BACKENDS = ("serial", "thread", "process")

_BACKEND_CLASSES = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def make_executor(backend: Union[str, Executor, None] = None,
                  workers: Optional[int] = None) -> Executor:
    """Build an executor from a backend name (or pass one through).

    With ``backend=None`` the :data:`ENV_EXECUTOR` / :data:`ENV_WORKERS`
    environment variables are consulted, defaulting to serial execution —
    this is how ``make test-parallel`` reroutes every campaign in the
    test suite through the process backend without touching call sites.
    """
    if isinstance(backend, Executor):
        if workers is not None and workers != backend.workers:
            raise ValueError(
                "pass workers via the Executor constructor, not both")
        return backend
    if backend is None:
        backend = os.environ.get(ENV_EXECUTOR, "serial")
        if workers is None and os.environ.get(ENV_WORKERS):
            workers = int(os.environ[ENV_WORKERS])
    try:
        cls = _BACKEND_CLASSES[backend]
    except KeyError:
        raise ValueError(
            f"unknown executor backend {backend!r}; "
            f"expected one of {BACKENDS}") from None
    return cls(workers=workers)
