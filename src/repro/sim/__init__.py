"""World assembly and synchronized campaign execution."""

from repro.sim.world import World, WorldDefaults, Observation
from repro.sim.plan import ASGrouping, ObservationPlan, ObserveProfile
from repro.sim.campaign import Campaign, build_observation_grid, run_campaign
from repro.sim.executor import (
    BACKENDS,
    ExecutionReport,
    Executor,
    ObservationJob,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)
from repro.sim.scenario import (
    paper_scenario,
    followup_scenario,
    small_scenario,
)

__all__ = [
    "World",
    "WorldDefaults",
    "Observation",
    "ObservationPlan",
    "ObserveProfile",
    "ASGrouping",
    "Campaign",
    "run_campaign",
    "build_observation_grid",
    "BACKENDS",
    "Executor",
    "ExecutionReport",
    "ObservationJob",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "make_executor",
    "paper_scenario",
    "followup_scenario",
    "small_scenario",
]
