"""World assembly and synchronized campaign execution."""

from repro.sim.world import World, WorldDefaults, Observation
from repro.sim.campaign import Campaign, run_campaign
from repro.sim.scenario import (
    paper_scenario,
    followup_scenario,
    small_scenario,
)

__all__ = [
    "World",
    "WorldDefaults",
    "Observation",
    "Campaign",
    "run_campaign",
    "paper_scenario",
    "followup_scenario",
    "small_scenario",
]
