"""Fused trial-batched observation kernels.

The campaign grid is (protocol × trial × origin), and the per-cell path
(:meth:`repro.sim.world.World.observe`) evaluates one cell per call.
Because every stochastic draw in the simulator is a pure function of
``(seed, stream key, counters)``, a whole *trial axis* can be drawn as a
2-D lattice with bit-identical results: per-trial stream keys are
pre-derived (:func:`repro.rng.stream_keys`) and broadcast against the
shared per-host counter addresses (:func:`repro.rng.keyed_uniform_lattice`).
:func:`observe_trial_batch` exploits this to evaluate **all trials of one
(protocol, origin)** in a single vectorized pass:

* churn presence as an ``(n_trials, n_hosts)`` lattice,
* one shared targets mask and one hoisted host-state gather
  (:meth:`~repro.sim.world.World.host_caches`),
* the compiled origin policy and loss-parameter arrays fetched once,
* per-probe delivery draws batched over the trial axis
  (:meth:`~repro.conditions.loss.PathLossModel.delivered_lattice`),
* the L7 ladder assembled per trial from the pre-drawn lattices.

Every matrix row sliced by a trial's ``keep`` subset reproduces exactly
the arrays the per-cell planned path computes, so batched observations
are **byte-identical** to per-cell ones (differential suite:
``tests/test_batch_equivalence.py``).  The per-cell path is retained as
the reference.

In **plane-only mode** the kernel skips ``Observation`` row
materialization and returns :class:`PlaneSlice` objects — just the
columns the streaming reducers (:mod:`repro.core.streaming`) consume —
which the sharded campaign feeds straight into packed bit planes.

Memory model: the trial lattice holds a handful of
``(n_trials, n_hosts)`` matrices at once (presence and failure lattices
as booleans, probe schedules and delivery draws as float64), so the
working set is roughly ``n_trials × n_hosts × (8 bytes × ~4 matrices)``
per (protocol, origin) batch — for the paper grid (3 trials, ≤ ~600 K
hosts per protocol) well under 60 MB, and per-shard views bound
``n_hosts`` in the out-of-core pipeline.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.blocking.firewall import covered_hosts_mask_keyed
from repro.core.records import L7Status
from repro.origins import Origin
from repro.rng import keyed_uniform_array, keyed_uniform_lattice, stream_keys
from repro.scanner.zmap import ZMapScanner
from repro.sim.plan import ObserveProfile, _StageTimer, \
    sorted_membership_mask
from repro.sim.world import Observation, World
from repro.telemetry.context import current as _telemetry

#: Environment opt-out for the batched path (``REPRO_BATCH=0``).
ENV_BATCH = "REPRO_BATCH"

#: Stage names of the batched kernel in reporting order.  The first six
#: mirror the per-cell stages (the batched stage covers every trial of
#: the batch at once); ``emit`` is the final row/plane materialization.
BATCH_STAGES = ("filter", "schedule", "l4_static", "l4_ids", "path",
                "l7", "emit")

_FALSEY = ("0", "false", "no", "off")


def batch_enabled(batch: Optional[bool] = None,
                  planned: bool = True) -> bool:
    """Resolve the batched-path switch.

    Explicit argument beats the ``REPRO_BATCH`` environment variable
    (``0``/``false``/``no``/``off`` opt out) beats the default (on).
    The unplanned reference path is never batched — it anchors the
    differential suites for both the plan and the batch kernels — so
    ``planned=False`` always resolves to the per-cell path.
    """
    if not planned:
        return False
    if batch is not None:
        return bool(batch)
    env = os.environ.get(ENV_BATCH)
    if env is None:
        return True
    return env.strip().lower() not in _FALSEY


@dataclass
class PlaneSlice:
    """Plane-only batch output: the columns streamed analyses consume.

    ``accessible`` is the origin's success plane (``l7 == SUCCESS``);
    ``ip``/``as_index`` identify the kept rows (identical across the
    origins of one (protocol, trial) — the synchronized-campaign
    invariant the reducer validates).  No probe masks, timestamps, or
    geo columns are materialized.
    """

    protocol: str
    trial: int
    origin: str
    ip: np.ndarray          # uint32
    as_index: np.ndarray    # int64
    accessible: np.ndarray  # bool

    def __len__(self) -> int:
        return len(self.ip)


BatchOutput = Union[Observation, PlaneSlice]


def observe_trial_batch(world: World, protocol: str, origin: Origin,
                        trials: Sequence[int],
                        scanners: Sequence[ZMapScanner],
                        all_origin_names: Tuple[str, ...],
                        first_trial: int = 0,
                        targets: Optional[np.ndarray] = None,
                        plane_only: bool = False,
                        profile: Optional[ObserveProfile] = None
                        ) -> List[BatchOutput]:
    """Everything ``origin`` records for ``protocol`` in *all* ``trials``.

    ``scanners`` carries one trial-reseeded scanner per entry of
    ``trials`` (the campaign convention: ``seed + trial``); the configs
    must differ only in their seed.  Output element *i* is byte-identical
    to ``world.observe(protocol, trials[i], origin, scanners[i], ...)``
    — as an :class:`~repro.sim.world.Observation`, or as a
    :class:`PlaneSlice` when ``plane_only`` is set.

    With telemetry enabled the call emits one ``batch.stream`` span with
    ``observe.batched.<stage>`` child events plus ``observe.batched.*``
    counters; the per-host blocking/loss counters
    (``observe.hosts_blocked``, ``observe.probes_lost``, …) keep their
    per-cell names and totals.
    """
    tel = _telemetry()
    if tel.enabled:
        with tel.span("batch.stream", protocol=protocol,
                      origin=origin.name, n_trials=len(trials),
                      trials=[int(t) for t in trials],
                      plane_only=plane_only) as span:
            results = _observe_trial_batch(
                world, protocol, origin, trials, scanners,
                all_origin_names, first_trial, targets, plane_only,
                profile, tel)
            n = sum(len(r) for r in results)
            span.set(n_services=n)
            tel.count("observe.batched.calls", 1,
                      protocol=protocol, origin=origin.name)
            tel.count("observe.batched.trials", len(trials),
                      protocol=protocol, origin=origin.name)
            tel.count("observe.batched.services", n,
                      protocol=protocol, origin=origin.name)
            if plane_only:
                tel.count("observe.batched.plane_rows", n,
                          protocol=protocol, origin=origin.name)
            if scanners:
                tel.count("observe.probes_sent",
                          n * scanners[0].config.n_probes,
                          protocol=protocol, origin=origin.name)
            return results
    return _observe_trial_batch(world, protocol, origin, trials, scanners,
                                all_origin_names, first_trial, targets,
                                plane_only, profile, tel)


def _observe_trial_batch(world: World, protocol: str, origin: Origin,
                         trials: Sequence[int],
                         scanners: Sequence[ZMapScanner],
                         all_origin_names: Tuple[str, ...],
                         first_trial: int, targets: Optional[np.ndarray],
                         plane_only: bool,
                         profile: Optional[ObserveProfile],
                         tel) -> List[BatchOutput]:
    n_t = len(trials)
    if n_t != len(scanners):
        raise ValueError("one scanner per trial required "
                         f"({n_t} trials, {len(scanners)} scanners)")
    if n_t == 0:
        return []
    configs = [s.config for s in scanners]
    base = configs[0]
    for cfg in configs[1:]:
        if dataclasses.replace(cfg, seed=base.seed) != base:
            raise ValueError(
                "observe_trial_batch requires per-trial scanner configs "
                "that differ only in their seed (the campaign "
                "trial-reseeding convention)")
    counting = tel.enabled

    timer = _StageTimer(profile, tel=tel, prefix="observe.batched.")
    view = world.hosts.for_protocol(protocol)
    caches = world.host_caches(protocol)
    plans = [world.plan(protocol, s) for s in scanners]
    as_full = view.as_index
    host_ids_full = caches.host_ids_full

    # --- filter: presence lattice + one shared targets mask -----------
    present = world.churn.present_lattice(view.ip, protocol, trials,
                                          stable=caches.stable_full)
    target_mask = sorted_membership_mask(view.ip, targets) \
        if targets is not None else None
    keeps = []
    kept_lattice = np.zeros_like(present)
    for ti in range(n_t):
        wanted = present[ti] & plans[ti].eligible_full
        if target_mask is not None:
            wanted &= target_mask
        keeps.append(np.flatnonzero(wanted))
        kept_lattice[ti] = wanted
    positions = [plans[ti].position_of_row(keeps[ti]) for ti in range(n_t)]
    counts: List[dict] = [dict() for _ in range(n_t)]
    timer.stamp("filter")

    # --- schedule: per-trial probe schedules as one (T, n) matrix -----
    first_full = np.stack([p.base_first_full for p in plans])
    if origin.drift:
        first_full = first_full * (1.0 + origin.drift)
    n_probes = base.n_probes
    probe_offsets = (np.arange(n_probes, dtype=np.float64)
                     * base.probe_spacing_s)
    first_times = [first_full[ti][keeps[ti]] for ti in range(n_t)]
    timer.stamp("schedule")

    # --- L4 static: coverage draws once, thresholds per trial ---------
    policy = world._origin_policy(plans[0], origin, scanners[0])
    silent_blocks = [np.zeros(len(k), dtype=bool) for k in keeps]
    l7_drop_blocks = [np.zeros(len(k), dtype=bool) for k in keeps]
    static_precomp = []
    for entry in policy.static_entries:
        members = caches.grouping.members(entry.as_index)
        if len(members) == 0:
            continue
        # The covered-subset draw is trial-independent; only the ramping
        # coverage threshold varies, so draw once and compare per trial.
        u = keyed_uniform_array(
            np.full(len(members), entry.stream_key, dtype=np.uint64),
            host_ids_full[members])
        static_precomp.append((entry, members, u))
    for ti in range(n_t):
        trial = trials[ti]
        pos_of = positions[ti]
        for entry, members, u in static_precomp:
            pos = pos_of[members]
            covered = (u < entry.coverage_in_trial(trial)) & (pos >= 0)
            if not covered.any():
                continue
            target = l7_drop_blocks[ti] if entry.to_l7_drop \
                else silent_blocks[ti]
            target[pos[covered]] = True
            if counting:
                c = counts[ti]
                c[entry.cause] = c.get(entry.cause, 0) \
                    + int(covered.sum())
    timer.stamp("l4_static")

    # --- L4 IDS: per-trial detection state over shared entries --------
    l4_filtered = []
    for ti in range(n_t):
        trial = trials[ti]
        ids_block = np.zeros(len(keeps[ti]), dtype=bool)
        host_ids_t = host_ids_full[keeps[ti]]
        for entry in policy.ids_entries:
            pos = caches.grouping.members_in(entry.as_index, positions[ti])
            if len(pos) == 0:
                continue
            if trial > first_trial and entry.persistent:
                hit = np.ones(len(pos), dtype=bool)
            elif trial == first_trial:
                hit = first_times[ti][pos] >= entry.detection_time
            else:
                continue
            if entry.coverage < 1.0:
                hit &= covered_hosts_mask_keyed(
                    np.full(len(pos), entry.stream_key, dtype=np.uint64),
                    host_ids_t[pos], np.full(len(pos), entry.coverage))
            ids_block[pos[hit]] = True
            if counting and hit.any():
                counts[ti]["ids"] = counts[ti].get("ids", 0) \
                    + int(hit.sum())
        l4_filtered.append(silent_blocks[ti] | ids_block)
    timer.stamp("l4_ids")

    # --- path: delivery draws batched over the trial axis -------------
    loss = world.loss_model(origin)
    epoch, random_, persistent, variability = \
        world._loss_param_arrays(origin)
    rate_matrix = loss.trial_epoch_rate_matrix(
        epoch, variability, np.arange(caches.n_ases, dtype=np.int64),
        trials)
    persist_full = plans[0].persist_u.get(origin.name)
    if persist_full is None:
        persist_full = loss.persistent_draws(host_ids_full)
        plans[0].persist_u[origin.name] = persist_full
    effective_full = rate_matrix[:, as_full]
    random_full = random_[as_full]
    persistent_full = persistent[as_full]

    delivered = []
    epoch_memo: dict = {}
    for k in range(n_probes):
        # Rows cut by the filter never contribute draws, but their times
        # would still enter the epoch-memo key — and a single cut row
        # crossing an epoch boundary between probes would defeat the
        # memo the per-cell path gets on its kept subset.  Pin cut rows
        # to t=0 so the memo keys (and hits) depend on kept rows only;
        # kept rows' epoch addresses are untouched, so draws stay
        # byte-identical.
        times = np.where(kept_lattice, first_full + probe_offsets[k], 0.0)
        delivered.append(loss.delivered_lattice(
            host_ids_full, as_full, times,
            trials, k, effective_full, random_full, persistent_full,
            persist_full, epoch_memo=epoch_memo))

    wobble_full = None
    if world.defaults.churner_wobble > 0.0:
        wobble_keys = stream_keys(
            world._rng.derive("wobble"),
            [(protocol, origin.name, int(t)) for t in trials])
        wobble_full = keyed_uniform_lattice(wobble_keys, host_ids_full) \
            < world.defaults.churner_wobble

    outages = world._outages(all_origin_names, base.scan_duration_s)
    outage_specs = world.outage_specs()

    probe_masks = []
    path_counts = []
    for ti in range(n_t):
        trial = trials[ti]
        keep = keeps[ti]
        n = len(keep)
        active = outages.active_windows(origin.name, trial, outage_specs)
        active_members = []
        for as_index, windows in active.items():
            pos = caches.grouping.members_in(as_index, positions[ti])
            if len(pos):
                active_members.append((pos, windows))

        probe_mask = np.zeros(n, dtype=np.uint8)
        probes_lost = 0
        outage_lost = 0
        for k in range(n_probes):
            delivered_t = delivered[k][ti][keep]
            ok = delivered_t & ~l4_filtered[ti]
            if counting:
                probes_lost += n - int(delivered_t.sum())
            before_outages = int(ok.sum()) \
                if counting and active_members else 0
            for pos, windows in active_members:
                member_times = first_times[ti][pos] + probe_offsets[k]
                hit = np.zeros(len(pos), dtype=bool)
                for start, end in windows:
                    hit |= (member_times >= start) & (member_times < end)
                ok[pos[hit]] = False
            if counting and active_members:
                outage_lost += before_outages - int(ok.sum())
            probe_mask |= ok.astype(np.uint8) << np.uint8(k)

        wobbled = 0
        if wobble_full is not None:
            zeroed = ~caches.stable_full[keep] & wobble_full[ti][keep]
            probe_mask[zeroed] = 0
            if counting:
                wobbled = int(zeroed.sum())
        probe_masks.append(probe_mask)
        path_counts.append((len(epoch_memo) * n, probes_lost,
                            outage_lost, wobbled))
    timer.stamp("path")

    # --- L7 ladder per trial over the pre-drawn lattices --------------
    refusal_full = None
    if protocol == "ssh":
        refusal_full = world._maxstartups.refusal_uniform_lattice(
            host_ids_full, origin.name, trials)
    _, fail_p, _, _ = world._flaky_param_arrays()
    fail_full = world._flaky.fail_mask_lattice(
        fail_p[as_full], host_ids_full, protocol, origin.name, trials)

    l7s = []
    for ti in range(n_t):
        trial = trials[ti]
        keep = keeps[ti]
        n = len(keep)
        l4_success = probe_masks[ti] > 0

        l7 = np.full(n, int(L7Status.NO_L4), dtype=np.uint8)
        l7[l4_success] = int(L7Status.SUCCESS)
        l7[l4_success & l7_drop_blocks[ti]] = int(L7Status.L4_DROP)

        for i in caches.temporal_systems:
            pos = caches.grouping.members_in(i, positions[ti])
            if len(pos) == 0:
                continue
            pos = pos[l4_success[pos]]
            if len(pos) == 0:
                continue
            spec = world.topology.ases.by_index(i).spec.temporal_rst
            detect = world._temporal.detection_time(
                spec, origin, i, trial, protocol,
                configs[ti].scan_duration_s)
            if detect is None:
                continue
            hit = first_times[ti][pos] >= detect
            l7[pos[hit]] = int(L7Status.L4_CLOSE_RST)
            if counting and hit.any():
                counts[ti]["temporal_rst"] = \
                    counts[ti].get("temporal_rst", 0) + int(hit.sum())

        if protocol == "ssh":
            idx = np.flatnonzero(l7 == int(L7Status.SUCCESS))
            if len(idx):
                rows = keep[idx]
                refused = caches.ms_affected_full[rows] \
                    & (refusal_full[ti][rows] < caches.ms_probs_full[rows])
                close = np.where(caches.ms_style_full[rows],
                                 int(L7Status.L4_CLOSE_RST),
                                 int(L7Status.L4_CLOSE_FIN))
                l7[idx[refused]] = close[refused]
                if counting and refused.any():
                    counts[ti]["maxstartups"] = \
                        counts[ti].get("maxstartups", 0) \
                        + int(refused.sum())

        still_ok = l7 == int(L7Status.SUCCESS)
        l7[still_ok & caches.dead_full[keep]] = int(L7Status.L4_DROP)

        still_ok = l7 == int(L7Status.SUCCESS)
        fails = caches.flaky_full[keep] & fail_full[ti][keep]
        drops = fails & caches.drop_full[keep]
        l7[still_ok & fails & drops] = int(L7Status.L4_DROP)
        l7[still_ok & fails & ~drops] = int(L7Status.L4_CLOSE_FIN)
        l7s.append(l7)
    timer.stamp("l7")

    # --- emit: Observation rows or packed-plane columns ---------------
    results: List[BatchOutput] = []
    for ti in range(n_t):
        trial = trials[ti]
        keep = keeps[ti]
        ips = view.ip[keep]
        as_idx = view.as_index[keep]
        if plane_only:
            results.append(PlaneSlice(
                protocol=protocol, trial=int(trial), origin=origin.name,
                ip=ips, as_index=as_idx,
                accessible=l7s[ti] == int(L7Status.SUCCESS)))
        else:
            results.append(Observation(
                protocol=protocol, trial=int(trial), origin=origin.name,
                ip=ips, as_index=as_idx,
                country_index=view.country_index[keep],
                geo_index=caches.geo_full[keep],
                probe_mask=probe_masks[ti], l7=l7s[ti],
                time=first_times[ti].astype(np.float32)))
        if counting:
            n = len(keep)
            # One logical observe per grid cell, whichever kernel ran:
            # the observation-level counters describe the byte-identical
            # output, so their totals must match the per-cell path.
            tel.count("observe.calls", 1,
                      protocol=protocol, origin=origin.name)
            tel.count("observe.services", n,
                      protocol=protocol, origin=origin.name)
            tel.observe_value("observe.services_per_call", n,
                              protocol=protocol)
            for cause in sorted(counts[ti]):
                tel.count("observe.hosts_blocked", counts[ti][cause],
                          cause=cause, protocol=protocol,
                          origin=origin.name)
            loss_draws, probes_lost, outage_lost, wobbled = \
                path_counts[ti]
            tel.count("observe.loss_draws", loss_draws,
                      protocol=protocol, origin=origin.name)
            tel.count("observe.probes_lost", probes_lost,
                      protocol=protocol, origin=origin.name)
            if outage_lost:
                tel.count("observe.probes_outage_lost", outage_lost,
                          protocol=protocol, origin=origin.name)
            if wobbled:
                tel.count("observe.hosts_wobbled", wobbled,
                          protocol=protocol, origin=origin.name)
        timer.finish(len(keep))
    timer.stamp("emit")
    return results
