"""Honouring exclusion requests (§2, Ethical Considerations).

The paper synchronized blocklists across origins before scanning, and
during the study received exclusion requests from nine organizations,
which were "immediately honored and removed from analysis".  Two tools
model that workflow:

* pre-scan: pass a merged :class:`~repro.net.blocklist.Blocklist` in the
  :class:`~repro.scanner.zmap.ZMapConfig` — those addresses are never
  probed (the synchronized-blocklist path).
* post-hoc: :func:`apply_exclusions` filters an already collected
  dataset, removing the requesting ranges from *every* trial — exactly
  what "removed from analysis" requires for requests that arrive
  mid-study.
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.core.dataset import CampaignDataset, TrialData
from repro.net.blocklist import Blocklist


def exclude_from_trial(trial_data: TrialData,
                       blocklist: Blocklist) -> TrialData:
    """A copy of ``trial_data`` without the blocklisted addresses."""
    keep = ~blocklist.contains_array(trial_data.ip)
    return dataclasses.replace(
        trial_data,
        ip=trial_data.ip[keep],
        as_index=trial_data.as_index[keep],
        country_index=trial_data.country_index[keep],
        geo_index=trial_data.geo_index[keep],
        probe_mask=trial_data.probe_mask[:, keep],
        l7=trial_data.l7[:, keep],
        time=trial_data.time[:, keep])


def apply_exclusions(dataset: CampaignDataset,
                     blocklist: Blocklist) -> CampaignDataset:
    """Remove requested ranges from every trial of a collected dataset.

    Returns a new dataset; the input is untouched.  Metadata records the
    exclusion so downstream reports can disclose it.
    """
    tables: List[TrialData] = [exclude_from_trial(t, blocklist)
                               for t in dataset]
    metadata = dict(dataset.metadata)
    previously = int(metadata.get("excluded_addresses", 0))
    metadata["excluded_addresses"] = previously \
        + blocklist.total_excluded()
    metadata["exclusion_ranges"] = int(
        metadata.get("exclusion_ranges", 0)) + len(blocklist)
    return CampaignDataset(tables, metadata=metadata)


def excluded_host_count(dataset: CampaignDataset,
                        blocklist: Blocklist) -> int:
    """How many observed services an exclusion would remove (pre-check)."""
    total = 0
    for table in dataset:
        total += int(blocklist.contains_array(table.ip).sum())
    return total
