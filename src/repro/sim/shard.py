"""Sharded, out-of-core worlds: stream big synthetic Internets.

A monolithic :class:`~repro.sim.world.World` is built, held, and
observed as one in-memory object, which caps world size at RAM.  This
module partitions the synthetic Internet into contiguous per-AS-group
*shards*, each generated independently and streamed through
observe/execute/analyze on a fixed memory budget:

* **Independent generation.**  Every per-AS draw in
  :func:`repro.hosts.population.populate` is keyed only on the AS
  index, and prefix allocation in :mod:`repro.topology.generator` is
  sequential in spec order — so shard K's host columns are buildable
  without shards 0..K-1, and per-shard tables concatenated in shard
  order equal the monolithic :class:`~repro.hosts.table.HostTable`
  byte for byte (each AS's address range is disjoint from and above
  its predecessors').
* **Columnar segments.**  Shard host tables persist as content-addressed
  ``hosts`` snapshots in the world cache
  (:func:`repro.io.worldcache.cached_build_shard`); a warm shard load
  is an mmap, and :meth:`ShardedWorld.shard_world` wraps one shard's
  columns in a full-topology ``World`` — every blocking/loss/churn
  draw is elementwise in (host, AS, trial, origin), so the shard
  world's observation equals the monolithic observation restricted to
  the shard's rows.
* **Streaming execution.**  :func:`run_sharded_campaign` runs the
  (protocol × trial × origin) grid one shard at a time through the
  ordinary executor backends and reduces each shard's tables into
  :mod:`repro.core.streaming` accumulators immediately, so resident
  state is one shard plus bit-plane accumulators.  A memory-budget
  model (``REPRO_MEMORY_BUDGET``, default 512 MB) rejects shard plans
  whose single-shard footprint cannot fit.

Differential guarantees are pinned by ``tests/test_shard_world.py``:
materialized shard tables equal the monolithic build, streamed packed
planes equal the monolithic engine's, and the streamed paper-grid
numbers equal the dataset-level analyses — at seed scale, across
executor backends.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.streaming import StreamingCampaignResult, StreamingTrial
from repro.hosts.population import populate
from repro.hosts.table import HostTable
from repro.origins import Origin
from repro.rng import CounterRNG
from repro.scanner.zmap import ZMapConfig
from repro.sim.world import Observation, World, WorldDefaults
from repro.telemetry.context import current as _telemetry
from repro.topology.asn import PROTOCOLS
from repro.topology.generator import Topology, build_topology
from repro.topology.geo import default_countries

#: Environment variable bounding resident memory during streaming runs
#: (bytes; suffix-free integer).  The default models a small container.
ENV_MEMORY_BUDGET = "REPRO_MEMORY_BUDGET"
DEFAULT_MEMORY_BUDGET = 512 * 2 ** 20

#: Default shard granularity: target host rows per shard.  Constant (not
#: budget-derived) so shard boundaries — and therefore per-shard cache
#: keys — are stable across machines and budget settings.
DEFAULT_SHARD_ROWS = 131_072

#: Footprint model constants (see docs/SCALING.md): bytes per resident
#: host-table row, and bytes per observed row per (trial, origin) job
#: held between observation and reduction.
_ROW_BYTES = 21
_OBS_ROW_BYTES = 34
#: Fixed overhead reserved for the interpreter, numpy, the topology and
#: the plane accumulators.
_BASE_OVERHEAD = 192 * 2 ** 20


class MemoryBudgetError(RuntimeError):
    """A shard plan cannot run within the configured memory budget."""


def memory_budget(budget: Optional[int] = None) -> int:
    """Resolve the streaming memory budget: argument > env > default."""
    if budget is not None:
        return int(budget)
    env = os.environ.get(ENV_MEMORY_BUDGET)
    if env:
        return int(env)
    return DEFAULT_MEMORY_BUDGET


@dataclass(frozen=True)
class ShardManifest:
    """The partition of one world into contiguous AS-index groups.

    ``boundaries`` has ``n_shards + 1`` entries; shard *i* covers dense
    AS indices ``[boundaries[i], boundaries[i+1])``.  ``n_hosts`` is the
    exact per-shard service-row count (populate places exactly the
    spec'd counts, so this is known without building).  ``base_key`` is
    the :func:`repro.io.worldcache.world_key` of the monolithic inputs;
    together with the boundaries it content-addresses every segment.
    """

    seed: int
    boundaries: Tuple[int, ...]
    n_hosts: Tuple[int, ...]
    base_key: str

    @property
    def n_shards(self) -> int:
        return len(self.boundaries) - 1

    def as_range(self, index: int) -> Tuple[int, int]:
        return (self.boundaries[index], self.boundaries[index + 1])

    def digest(self) -> str:
        """A short stable identity of the partition (16 hex chars)."""
        payload = json.dumps(
            {"seed": self.seed, "boundaries": list(self.boundaries),
             "n_hosts": list(self.n_hosts), "base_key": self.base_key},
            sort_keys=True).encode()
        return hashlib.sha256(payload).hexdigest()[:16]

    def to_meta(self) -> dict:
        return {"seed": self.seed, "n_shards": self.n_shards,
                "boundaries": list(self.boundaries),
                "n_hosts": list(self.n_hosts),
                "digest": self.digest()}


def _per_as_rows(topology: Topology) -> np.ndarray:
    """Exact service-row counts per dense AS index (from the specs)."""
    systems = list(topology.ases)
    return np.array([sum(s.spec.hosts_for(p) for p in PROTOCOLS)
                     for s in systems], dtype=np.int64)


def plan_shards(topology: Topology,
                n_shards: Optional[int] = None,
                max_hosts: Optional[int] = None) -> Tuple[int, ...]:
    """Partition AS indices into contiguous groups of bounded size.

    Greedy first-fit in index order: a shard closes once it holds at
    least ``target`` rows (``max_hosts``, or total/``n_shards``), so
    every shard except possibly the last is non-empty and no AS is
    split.  Deterministic in the topology alone.
    """
    rows = _per_as_rows(topology)
    total = int(rows.sum())
    if n_shards is not None and max_hosts is not None:
        raise ValueError("pass n_shards or max_hosts, not both")
    if n_shards is not None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        target = max(1, -(-total // n_shards))
    else:
        target = max_hosts if max_hosts is not None else DEFAULT_SHARD_ROWS
        if target < 1:
            raise ValueError("max_hosts must be >= 1")
    boundaries = [0]
    acc = 0
    for index, count in enumerate(rows):
        acc += int(count)
        if acc >= target and index + 1 < len(rows):
            boundaries.append(index + 1)
            acc = 0
    boundaries.append(len(rows))
    # Greedy accumulation can overshoot the requested shard count by
    # one; merge the smallest tail shard back in that case.
    if n_shards is not None:
        while len(boundaries) - 1 > n_shards:
            boundaries.pop(-2)
    return tuple(boundaries)


class ShardedWorld:
    """A world partitioned into independently-generated host shards.

    Holds the (small) full topology and defaults plus one loader per
    shard; host columns materialize shard-at-a-time, normally as mmap'd
    views over content-addressed columnar segments.  Use
    :meth:`shard_world` for streaming observation and
    :meth:`materialize` for the monolithic equivalent (differential
    tests; small worlds only).
    """

    def __init__(self, topology: Topology, seed: int,
                 defaults: Optional[WorldDefaults],
                 manifest: ShardManifest,
                 loaders: Sequence[Callable[[], HostTable]]) -> None:
        if len(loaders) != manifest.n_shards:
            raise ValueError("one loader per shard, exactly")
        self.topology = topology
        self.seed = seed
        self.defaults = defaults if defaults is not None else WorldDefaults()
        self.manifest = manifest
        self._loaders = list(loaders)

    @property
    def n_shards(self) -> int:
        return self.manifest.n_shards

    def shard_hosts(self, index: int) -> HostTable:
        """One shard's host table (fresh load; nothing retained here)."""
        return self._loaders[index]()

    def shard_world(self, index: int) -> World:
        """A full-topology world holding only shard ``index``'s hosts.

        Identical seed and models to the monolithic world; every
        stochastic draw is elementwise in (host, AS, trial, origin), so
        observing this world yields exactly the monolithic observation
        rows whose IPs fall in the shard.
        """
        return World(self.topology, self.shard_hosts(index), self.seed,
                     defaults=self.defaults)

    def materialize(self) -> World:
        """Concatenate every shard into one monolithic world.

        Shard address ranges are disjoint and increasing, so adopting
        the concatenated columns via ``from_sorted_columns`` both
        avoids a re-sort and *asserts* the ordering invariant.
        """
        tables = [self.shard_hosts(i) for i in range(self.n_shards)]
        hosts = HostTable.from_sorted_columns(
            ip=np.concatenate([t.ip for t in tables]),
            protocol=np.concatenate([t.protocol for t in tables]),
            as_index=np.concatenate([t.as_index for t in tables]),
            country_index=np.concatenate([t.country_index for t in tables]))
        return World(self.topology, hosts, self.seed,
                     defaults=self.defaults)

    def counts_by_protocol(self) -> Dict[str, int]:
        """Total spec'd services per protocol (no shard materialized)."""
        totals: Dict[str, int] = {}
        for system in self.topology.ases:
            for protocol in PROTOCOLS:
                count = system.spec.hosts_for(protocol)
                if count:
                    totals[protocol] = totals.get(protocol, 0) + count
        return totals

    def fingerprint_payload(self) -> Dict[str, object]:
        """World identity for manifests and campaign fingerprints.

        Matches the monolithic ``world_fingerprint`` fields and adds the
        shard-manifest digest, so sharded and monolithic runs of the
        same world are distinguishable cache keys while two runs of the
        same partition collide (and share results).
        """
        return {
            "seed": self.seed,
            "n_ases": len(self.topology.ases),
            "services": self.counts_by_protocol(),
            "shards": {"n": self.n_shards,
                       "digest": self.manifest.digest()},
        }

    def shard_footprint(self, index: int, n_origins: int,
                        n_trials: int) -> int:
        """Modelled peak resident bytes while streaming shard ``index``.

        One shard's host columns plus every (protocol, trial, origin)
        observation of it held between execution and reduction — the
        model behind the budget check in :func:`run_sharded_campaign`
        (see docs/SCALING.md for the derivation).
        """
        rows = self.manifest.n_hosts[index]
        return rows * _ROW_BYTES \
            + rows * _OBS_ROW_BYTES * n_origins * n_trials


def build_sharded_world(specs: Sequence, seed: int,
                        defaults: Optional[WorldDefaults] = None,
                        n_shards: Optional[int] = None,
                        max_hosts: Optional[int] = None,
                        cache: Union[bool, str, None] = None
                        ) -> ShardedWorld:
    """Plan and wire a sharded world from an AS spec list.

    The topology (small: registries and prefix tries, no host columns)
    is built eagerly; host shards stay virtual until streamed.  With the
    cache enabled (the default, honoring ``REPRO_WORLD_CACHE``), each
    shard loader round-trips a content-addressed columnar segment —
    first touch populates and writes, later touches mmap.
    """
    from repro.io import worldcache

    countries = default_countries()
    topology = build_topology(list(specs), countries)
    boundaries = plan_shards(topology, n_shards=n_shards,
                             max_hosts=max_hosts)
    rows = _per_as_rows(topology)
    n_hosts = tuple(int(rows[start:stop].sum())
                    for start, stop in zip(boundaries, boundaries[1:]))
    base_key = worldcache.world_key(list(specs), seed, defaults,
                                    countries)
    manifest = ShardManifest(seed=seed, boundaries=boundaries,
                             n_hosts=n_hosts, base_key=base_key)

    directory = None
    if isinstance(cache, (str, os.PathLike)):
        directory, cache = cache, True
    use_cache = worldcache.cache_enabled() if cache is None else bool(cache)

    def make_loader(index: int) -> Callable[[], HostTable]:
        as_range = manifest.as_range(index)

        def build() -> HostTable:
            rng = CounterRNG(seed, "scenario").derive("population")
            return populate(topology, rng, as_range=as_range)

        if not use_cache:
            return build
        return lambda: worldcache.cached_build_shard(
            base_key, index, boundaries, build, directory=directory)

    loaders = [make_loader(i) for i in range(manifest.n_shards)]
    world_defaults = defaults if defaults is not None else WorldDefaults()
    return ShardedWorld(topology, seed, world_defaults, manifest, loaders)


# ----------------------------------------------------------------------
# Streaming campaign execution
# ----------------------------------------------------------------------

def _empty_observation(protocol: str, trial: int,
                       origin: str) -> Observation:
    """A zero-row observation for a shard with no hosts of a protocol."""
    return Observation(
        protocol=protocol, trial=trial, origin=origin,
        ip=np.zeros(0, dtype=np.uint32),
        as_index=np.zeros(0, dtype=np.int64),
        country_index=np.zeros(0, dtype=np.int64),
        geo_index=np.zeros(0, dtype=np.int64),
        probe_mask=np.zeros(0, dtype=np.uint8),
        l7=np.zeros(0, dtype=np.uint8),
        time=np.zeros(0, dtype=np.float32))


def run_sharded_campaign(sharded: ShardedWorld,
                         origins: Sequence[Origin],
                         zmap: ZMapConfig,
                         protocols: Sequence[str] = PROTOCOLS,
                         n_trials: int = 3,
                         executor=None,
                         workers: Optional[int] = None,
                         planned: bool = True,
                         batch: Optional[bool] = None,
                         budget: Optional[int] = None,
                         collect: bool = False,
                         origin_universe: Optional[Sequence[str]] = None,
                         plane_cache: Optional[bool] = None,
                         plane_extra=None,
                         plane_dir=None,
                         telemetry=None):
    """Stream the full campaign grid shard-by-shard under a memory budget.

    Schedules the (protocol × trial × origin) jobs of one shard at a
    time through an ordinary executor backend
    (:func:`repro.sim.executor.make_executor`) and reduces each shard's
    stacked trial tables into :class:`~repro.core.streaming` plane
    accumulators before the next shard loads, so peak memory is one
    shard's footprint plus the accumulators — independent of world
    size.  Shards whose modelled footprint exceeds ``budget``
    (default ``REPRO_MEMORY_BUDGET``) raise :class:`MemoryBudgetError`
    with a re-sharding hint *before* any memory is committed.

    ``batch`` selects fused trial-batch jobs (default on, see
    :mod:`repro.sim.batch`): each shard schedules one job per
    (protocol, origin) covering its whole trial axis.  Without
    ``collect`` the batched jobs run in *plane-only* mode — the kernel
    emits :class:`~repro.sim.batch.PlaneSlice` columns that stream
    straight into the packed bit-plane accumulators, skipping
    per-cell ``Observation``/``TrialData`` materialization entirely.
    Accumulated planes and analyses are byte-identical either way.

    In plane-only mode every (protocol, origin, shard, trial) unit is
    probed against the plane cache (:mod:`repro.serve.planecache`)
    before dispatch, so a warm re-run with one new origin recomputes
    only that origin's batches; ``plane_cache=False`` (or
    ``REPRO_PLANE_CACHE=0``) forces the non-incremental reference
    path.  ``origin_universe`` pins the origin-name list that shared
    outage draws see, letting origin *subsets* reuse units computed
    under the full scenario universe.

    Returns a :class:`~repro.core.streaming.StreamingCampaignResult`;
    with ``collect=True`` returns ``(result, dataset)`` where
    ``dataset`` is the fully materialized
    :class:`~repro.core.dataset.CampaignDataset` — byte-identical to
    ``run_campaign`` on the monolithic world, and only sensible at
    small scale (it is exactly the memory the streaming path avoids).
    """
    from repro.core.dataset import CampaignDataset, TrialData
    from repro.sim.batch import batch_enabled
    from repro.sim.campaign import build_observation_grid, \
        build_trial_batches, _merge_plane_outputs, _probe_plane_units, \
        _stack, _universe_names
    from repro.sim.executor import make_executor

    tel = _telemetry()
    if tel.enabled and getattr(tel, "trace_id", None) is None:
        # Same mint-if-absent rule as run_campaign: a standalone sharded
        # run starts its own trace, a serve-set request trace is kept.
        from repro.telemetry.tracing import new_trace_id
        tel.trace_id = new_trace_id()
    limit = memory_budget(budget)
    n_origins = len(origins)
    for index in range(sharded.n_shards):
        footprint = sharded.shard_footprint(index, n_origins, n_trials)
        if footprint + _BASE_OVERHEAD > limit:
            raise MemoryBudgetError(
                f"shard {index} needs ~{footprint // 2 ** 20} MiB "
                f"(+{_BASE_OVERHEAD // 2 ** 20} MiB base) against a "
                f"{limit // 2 ** 20} MiB budget; rebuild with more "
                f"shards (smaller max_hosts) or raise "
                f"{ENV_MEMORY_BUDGET}")

    batched = batch_enabled(batch, planned)
    plane_only = batched and not collect
    if batched:
        jobs = build_trial_batches(origins, zmap, protocols, n_trials,
                                   planned=planned, plane_only=plane_only,
                                   origin_universe=origin_universe)
    else:
        jobs = build_observation_grid(origins, zmap, protocols, n_trials,
                                      planned=planned,
                                      origin_universe=origin_universe)
    session = None
    if plane_only:
        from repro.serve import planecache
        session = planecache.session_for(
            sharded, zmap, _universe_names(origins, origin_universe),
            n_shards=sharded.n_shards, enabled=plane_cache,
            directory=plane_dir, extra=plane_extra)
    backend = make_executor(executor, workers)
    n_ases = len(sharded.topology.ases)
    cells = [(protocol, trial) for protocol in protocols
             for trial in range(n_trials)]

    accumulators: Dict[Tuple[str, int], StreamingTrial] = {}
    collected: Dict[Tuple[str, int], List[TrialData]] = {}
    reports = []
    with tel.span("shard.run_campaign", n_shards=sharded.n_shards,
                  n_jobs=len(jobs) * sharded.n_shards,
                  budget_bytes=limit, batch=batched,
                  plane_only=plane_only):
        for index in range(sharded.n_shards):
            with tel.span("shard.stream", shard=index,
                          rows=int(sharded.manifest.n_hosts[index])):
                world = sharded.shard_world(index)
                present = {p: len(world.hosts.for_protocol(p)) > 0
                           for p in protocols}
                live = [j for j in jobs if present[j.protocol]]
                if session is not None:
                    reduced, cached = _probe_plane_units(
                        live,
                        lambda job, trial: session.probe(
                            job.protocol, job.origin.name, trial,
                            shard_index=index))
                else:
                    reduced, cached = live, {}
                if reduced:
                    observations, report = backend.run_grid(world, reduced)
                    reports.append(report)
                    by_index = dict(zip((j.index for j in reduced),
                                        observations))
                else:
                    by_index = {}
                if session is not None:
                    # Per-job outputs, cache hits and fresh planes merged
                    # back into job-trial order; fresh units persist as
                    # they stream through.
                    by_index = _merge_plane_outputs(
                        live, by_index, cached,
                        store=lambda job, trial, plane: session.store(
                            job.protocol, job.origin.name, trial, plane,
                            shard_index=index))
                # One (origin name, output-or-None) list per cell; batch
                # jobs iterate origins in campaign order per protocol,
                # recovering exactly the per-cell grid's origin order.
                by_cell: Dict[Tuple[str, int], List] = {}
                if batched:
                    for job in jobs:
                        outputs = by_index.get(job.index)
                        for k, trial in enumerate(job.trials):
                            by_cell.setdefault(
                                (job.protocol, trial), []).append(
                                (job.origin.name,
                                 None if outputs is None else outputs[k]))
                else:
                    for job in jobs:
                        by_cell.setdefault(
                            (job.protocol, job.trial), []).append(
                            (job.origin.name, by_index.get(job.index)))
                for protocol, trial in cells:
                    members = by_cell[(protocol, trial)]
                    names = [name for name, _ in members]
                    acc = accumulators.get((protocol, trial))
                    if acc is None:
                        acc = StreamingTrial(protocol=protocol,
                                             trial=trial, n_ases=n_ases)
                        accumulators[(protocol, trial)] = acc
                    if plane_only:
                        _reduce_planes(acc, names,
                                       [s for _, s in members])
                        continue
                    obs = [o if o is not None else
                           _empty_observation(protocol, trial, name)
                           for name, o in members]
                    table = _stack(protocol, trial, names, obs,
                                   zmap.n_probes)
                    acc.add_shard(table)
                    if collect:
                        collected.setdefault((protocol, trial),
                                             []).append(table)
                tel.count("shard.shards_processed", 1)
                del world, by_index

    metadata = _merge_metadata(sharded, zmap, origins, n_trials, reports)
    metadata["batch"] = batched
    if session is not None:
        metadata["plane_cache"] = session.stats()
    result = StreamingCampaignResult(accumulators, metadata=metadata)
    if not collect:
        return result
    tables = [_concat_tables(parts)
              for parts in collected.values()]
    dataset = CampaignDataset(tables, metadata=dict(metadata))
    return result, dataset


def _reduce_planes(acc: StreamingTrial, names: List[str],
                   slices: List) -> None:
    """Stream one cell's plane slices into an accumulator.

    ``slices`` holds one :class:`~repro.sim.batch.PlaneSlice` per origin
    (campaign order), or ``None`` entries when the shard has no hosts of
    the protocol (reduced as zero rows, mirroring the empty-observation
    fill of the materialized path).
    """
    reference = next((s for s in slices if s is not None), None)
    if reference is None:
        acc.add_shard_planes(names, np.zeros(0, dtype=np.int64),
                             np.zeros((len(names), 0), dtype=bool))
        return
    for plane_slice in slices:
        if not np.array_equal(plane_slice.ip, reference.ip):
            raise AssertionError(
                "origins disagree on the scanned service set — churn or "
                "blocklists are origin-dependent, which violates the "
                "synchronized-campaign invariant")
    acc.add_shard_planes(names, reference.as_index,
                         np.stack([s.accessible for s in slices]))


def _concat_tables(parts):
    """Column-wise concatenation of one trial's per-shard tables."""
    from repro.core.dataset import TrialData

    first = next(p for p in parts)
    return TrialData(
        protocol=first.protocol, trial=first.trial,
        origins=list(first.origins),
        ip=np.concatenate([p.ip for p in parts]),
        as_index=np.concatenate([p.as_index for p in parts]),
        country_index=np.concatenate([p.country_index for p in parts]),
        geo_index=np.concatenate([p.geo_index for p in parts]),
        probe_mask=np.concatenate([p.probe_mask for p in parts], axis=1),
        l7=np.concatenate([p.l7 for p in parts], axis=1),
        time=np.concatenate([p.time for p in parts], axis=1),
        n_probes=first.n_probes)


def _merge_metadata(sharded: ShardedWorld, zmap: ZMapConfig,
                    origins: Sequence[Origin], n_trials: int,
                    reports) -> dict:
    """Campaign-style metadata folding every per-shard execution report."""
    execution: Dict[str, object] = {}
    if reports:
        execution = {
            "backend": reports[0].backend,
            "workers": reports[0].workers,
            "n_jobs": sum(r.n_jobs for r in reports),
            "wall_s": round(sum(r.wall_s for r in reports), 6),
            "busy_s": round(sum(r.busy_s for r in reports), 6),
            "n_shards": len(reports),
        }
        peaks = [r.peak_rss_bytes for r in reports if r.peak_rss_bytes]
        if peaks:
            execution["peak_rss_bytes"] = max(peaks)
    return {
        "seed": zmap.seed,
        "n_probes": zmap.n_probes,
        "probe_spacing_s": zmap.probe_spacing_s,
        "pps": zmap.pps,
        "scan_duration_s": zmap.scan_duration_s,
        "origins": [o.name for o in origins],
        "n_trials": n_trials,
        "sharded": sharded.manifest.to_meta(),
        "execution": execution,
    }
