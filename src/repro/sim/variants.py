"""World variants for design-validation ablations.

Each variant rebuilds the paper world with one mechanism class switched
off, so benchmarks can attribute observed effects to their causes:

* :func:`no_blocking_world` — every destination-side blocking system
  removed.  What remains of the origins' differences is pure path
  behaviour; Censys becomes an ordinary origin.
* :func:`uniform_loss_world` — the correlated loss channel replaced by
  an equal-rate independent one (and bursts/wobble disabled).  This is
  the world the original ZMap coverage estimate implicitly assumed; in
  it, two back-to-back probes really do fix most loss.

Both variants keep the same topology, host population, seeds, and scan
configuration as :func:`repro.sim.scenario.paper_scenario`, so results
are directly comparable.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from repro.conditions.loss import LossDraw, PathLossSpec
from repro.conditions.outages import BurstOutageSpec
from repro.origins import Origin, paper_origins
from repro.scanner.zmap import ZMapConfig
from repro.sim.scenario import (
    build_world_from_specs,
    paper_defaults,
    paper_specs,
)
from repro.sim.world import World
from repro.topology.asn import ASSpec


def _strip_blocking(spec: ASSpec) -> ASSpec:
    return dataclasses.replace(
        spec,
        reputation_firewall=None,
        static_block=None,
        regional_policy=None,
        rate_ids=None,
        temporal_rst=None,
        maxstartups=None)


def no_blocking_world(seed: int = 0, scale: float = 1.0
                      ) -> Tuple[World, Tuple[Origin, ...], ZMapConfig]:
    """The paper world with every blocking system removed."""
    specs = [_strip_blocking(s) for s in paper_specs(seed, scale)]
    defaults = dataclasses.replace(
        paper_defaults(),
        maxstartups=dataclasses.replace(paper_defaults().maxstartups,
                                        fraction=0.0))
    world = build_world_from_specs(specs, seed, defaults)
    return world, paper_origins(), ZMapConfig(seed=seed, pps=100_000.0,
                                              n_probes=2)


def _uniformize(spec_loss: PathLossSpec) -> PathLossSpec:
    """Move each draw's correlated mass into the independent component.

    Total per-probe loss is preserved (epoch + random becomes all
    random); persistent dead paths are dropped — uniform-random loss has
    no memory.
    """

    def flatten(draw: LossDraw) -> LossDraw:
        return LossDraw(
            epoch_rate=0.0,
            random_rate=min(0.5, draw.epoch_rate + draw.random_rate),
            persistent_fraction=0.0,
            variability=draw.variability)

    return PathLossSpec(
        default=flatten(spec_loss.default),
        per_origin={key: flatten(draw)
                    for key, draw in spec_loss.per_origin.items()})


def uniform_loss_world(seed: int = 0, scale: float = 1.0
                       ) -> Tuple[World, Tuple[Origin, ...], ZMapConfig]:
    """The paper world with uniform-random (memoryless) packet loss.

    Blocking systems stay in place; only the loss process changes, plus
    bursts and churner wobble (both correlated-loss phenomena) are
    disabled.
    """
    specs: List[ASSpec] = []
    for spec in paper_specs(seed, scale):
        if spec.path_loss is not None:
            spec = dataclasses.replace(
                spec, path_loss=_uniformize(spec.path_loss))
        specs.append(spec)
    base = paper_defaults()
    defaults = dataclasses.replace(
        base,
        path_loss=_uniformize(base.path_loss),
        burst_outages=BurstOutageSpec(events_per_origin_trial=0.0,
                                      shared_events_per_trial=0.0),
        churner_wobble=0.0)
    world = build_world_from_specs(specs, seed, defaults)
    return world, paper_origins(), ZMapConfig(seed=seed, pps=100_000.0,
                                              n_probes=2)
