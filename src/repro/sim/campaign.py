"""Synchronized multi-origin campaign execution.

A campaign is the paper's experimental unit: N trials × M protocols, all
origins scanning the same addresses at approximately the same time with a
shared ZMap seed.  The runner turns a :class:`~repro.sim.world.World` and a
set of origins into a :class:`~repro.core.dataset.CampaignDataset` ready
for the analysis pipeline.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.dataset import CampaignDataset, TrialData
from repro.origins import Origin
from repro.scanner.zmap import ZMapConfig, ZMapScanner
from repro.sim.world import Observation, World
from repro.topology.asn import PROTOCOLS


@dataclass
class Campaign:
    """A runnable campaign description."""

    world: World
    origins: Tuple[Origin, ...]
    zmap: ZMapConfig
    protocols: Tuple[str, ...] = PROTOCOLS
    n_trials: int = 3

    def __post_init__(self) -> None:
        if self.n_trials < 1:
            raise ValueError("a campaign needs at least one trial")
        names = [o.name for o in self.origins]
        if len(set(names)) != len(names):
            raise ValueError("origin names must be unique")

    def run(self) -> CampaignDataset:
        return run_campaign(self.world, self.origins, self.zmap,
                            self.protocols, self.n_trials)


def run_campaign(world: World, origins: Sequence[Origin],
                 zmap: ZMapConfig,
                 protocols: Sequence[str] = PROTOCOLS,
                 n_trials: int = 3) -> CampaignDataset:
    """Execute every (protocol, trial, origin) scan and collect results.

    Each trial re-seeds the shared permutation (``seed + trial``), exactly
    as independent scan waves would; within a trial every origin uses the
    same seed, as §2 specifies.
    """
    origin_names = tuple(o.name for o in origins)
    first_trials = {o.name: _first_trial(o, n_trials) for o in origins}

    tables: List[TrialData] = []
    for protocol in protocols:
        for trial in range(n_trials):
            config = dataclasses.replace(zmap, seed=zmap.seed + trial)
            scanner = ZMapScanner(config)
            observations: List[Observation] = []
            participating: List[str] = []
            for origin in origins:
                if not origin.participates(trial):
                    continue
                obs = world.observe(
                    protocol, trial, origin, scanner, origin_names,
                    first_trial=first_trials[origin.name])
                observations.append(obs)
                participating.append(origin.name)
            tables.append(_stack(protocol, trial, participating,
                                 observations, config.n_probes))

    metadata = {
        "seed": zmap.seed,
        "n_probes": zmap.n_probes,
        "probe_spacing_s": zmap.probe_spacing_s,
        "pps": zmap.pps,
        "scan_duration_s": zmap.scan_duration_s,
        "origins": list(origin_names),
        "n_trials": n_trials,
    }
    return CampaignDataset(tables, metadata=metadata)


def _first_trial(origin: Origin, n_trials: int) -> int:
    """The first trial this origin participates in."""
    for trial in range(n_trials):
        if origin.participates(trial):
            return trial
    raise ValueError(f"origin {origin.name} participates in no trial")


def _stack(protocol: str, trial: int, origins: List[str],
           observations: List[Observation], n_probes: int) -> TrialData:
    """Combine aligned per-origin observations into one TrialData."""
    if not observations:
        raise ValueError(f"no origin scanned {protocol} trial {trial}")
    reference = observations[0]
    for obs in observations[1:]:
        if not np.array_equal(obs.ip, reference.ip):
            raise AssertionError(
                "origins disagree on the scanned service set — churn or "
                "blocklists are origin-dependent, which violates the "
                "synchronized-campaign invariant")
    return TrialData(
        protocol=protocol,
        trial=trial,
        origins=origins,
        ip=reference.ip.copy(),
        as_index=reference.as_index.copy(),
        country_index=reference.country_index.copy(),
        geo_index=reference.geo_index.copy(),
        probe_mask=np.stack([o.probe_mask for o in observations]),
        l7=np.stack([o.l7 for o in observations]),
        time=np.stack([o.time for o in observations]),
        n_probes=n_probes)
