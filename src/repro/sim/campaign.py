"""Synchronized multi-origin campaign execution.

A campaign is the paper's experimental unit: N trials × M protocols, all
origins scanning the same addresses at approximately the same time with a
shared ZMap seed.  The runner turns a :class:`~repro.sim.world.World` and a
set of origins into a :class:`~repro.core.dataset.CampaignDataset` ready
for the analysis pipeline.

Execution is delegated to a pluggable backend (:mod:`repro.sim.executor`):
the (protocol, trial, origin) observation grid is flattened into
independent jobs, fanned out serially or across threads/processes, and
reassembled in deterministic grid order.  Every job carries its own
trial-reseeded config and the origin's ``first_trial``, so the output is
bit-identical regardless of backend or scheduling.
"""

from __future__ import annotations

import concurrent.futures
import contextlib
import dataclasses
import hashlib
import json
import os
import threading
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.dataset import CampaignDataset, TrialData
from repro.origins import Origin
from repro.scanner.zmap import ZMapConfig
from repro.sim.batch import batch_enabled
from repro.sim.executor import Executor, ObservationJob, ProgressCallback, \
    TrialBatchJob, make_executor
from repro.sim.world import Observation, World
from repro.telemetry.context import Telemetry, current as _telemetry, use
from repro.telemetry.manifest import build_manifest
from repro.telemetry.tracing import new_trace_id
from repro.topology.asn import PROTOCOLS


@dataclass
class Campaign:
    """A runnable campaign description.

    ``executor`` selects the execution backend (a name from
    :data:`repro.sim.executor.BACKENDS` or an :class:`Executor` instance);
    ``workers`` sizes the thread/process pool.  Both default to the
    ``REPRO_EXECUTOR`` / ``REPRO_WORKERS`` environment, then to serial.
    """

    world: World
    origins: Tuple[Origin, ...]
    zmap: ZMapConfig
    protocols: Tuple[str, ...] = PROTOCOLS
    n_trials: int = 3
    executor: Union[str, Executor, None] = None
    workers: Optional[int] = None
    #: Observe through compiled plans (:meth:`repro.sim.world.World.plan`).
    #: ``False`` forces the unplanned reference path — byte-identical
    #: output, used by the differential test suite.
    planned: bool = True
    #: Fused trial batching: ``None`` resolves via ``REPRO_BATCH`` (on by
    #: default), ``True``/``False`` force it.  Byte-identical output
    #: either way (see :mod:`repro.sim.batch`).
    batch: Optional[bool] = None
    #: Telemetry for the run: a journal path (a fresh collector is opened
    #: and closed around the run), an existing
    #: :class:`~repro.telemetry.context.Telemetry`, or ``None`` to use
    #: whatever context is ambient (usually none — zero overhead).
    telemetry: Union[str, os.PathLike, Telemetry, None] = None

    def __post_init__(self) -> None:
        if self.n_trials < 1:
            raise ValueError("a campaign needs at least one trial")
        names = [o.name for o in self.origins]
        if len(set(names)) != len(names):
            raise ValueError("origin names must be unique")

    def run(self) -> CampaignDataset:
        return run_campaign(self.world, self.origins, self.zmap,
                            self.protocols, self.n_trials,
                            executor=self.executor, workers=self.workers,
                            planned=self.planned, batch=self.batch,
                            telemetry=self.telemetry)


def _universe_names(origins: Sequence[Origin],
                    origin_universe: Optional[Sequence[str]]
                    ) -> Tuple[str, ...]:
    """The origin-name universe jobs observe under.

    Shared burst outages are drawn against the *full* origin-name list
    (:mod:`repro.conditions.outages`), so observing a subset of origins
    under the full universe — what the serving layer's ``origins``
    filter does — must pass that universe explicitly; otherwise the
    universe is simply the origins being run.
    """
    if origin_universe is None:
        return tuple(o.name for o in origins)
    universe = tuple(origin_universe)
    missing = [o.name for o in origins if o.name not in universe]
    if missing:
        raise ValueError(
            f"origins {missing} are not part of the origin universe "
            f"{list(universe)}")
    return universe


def build_observation_grid(origins: Sequence[Origin], zmap: ZMapConfig,
                           protocols: Sequence[str],
                           n_trials: int,
                           planned: bool = True,
                           origin_universe: Optional[Sequence[str]] = None
                           ) -> List[ObservationJob]:
    """Flatten the campaign into independent, self-contained jobs.

    Each job carries the trial-reseeded config (``seed + trial``) and the
    origin's precomputed ``first_trial`` — computed once here, not per
    worker, because a worker cannot recover it without the full origin
    participation schedule.
    """
    origin_names = _universe_names(origins, origin_universe)
    first_trials = {o.name: _first_trial(o, n_trials) for o in origins}

    jobs: List[ObservationJob] = []
    for protocol in protocols:
        for trial in range(n_trials):
            config = dataclasses.replace(zmap, seed=zmap.seed + trial)
            participating = [o for o in origins if o.participates(trial)]
            if not participating:
                raise ValueError(
                    f"no origin scanned {protocol} trial {trial}")
            for origin in participating:
                jobs.append(ObservationJob(
                    index=len(jobs), protocol=protocol, trial=trial,
                    origin=origin, config=config,
                    first_trial=first_trials[origin.name],
                    origin_names=origin_names,
                    planned=planned))
    return jobs


def build_trial_batches(origins: Sequence[Origin], zmap: ZMapConfig,
                        protocols: Sequence[str], n_trials: int,
                        planned: bool = True,
                        plane_only: bool = False,
                        origin_universe: Optional[Sequence[str]] = None
                        ) -> List[TrialBatchJob]:
    """Flatten the campaign into fused (protocol, origin) trial batches.

    The batched counterpart of :func:`build_observation_grid`: one job
    per (protocol, origin) carrying every trial the origin participates
    in, each with its trial-reseeded config (``seed + trial``).  Far
    fewer jobs cross the executor boundary (origins × protocols instead
    of the full grid), and each runs the fused kernel
    (:func:`repro.sim.batch.observe_trial_batch`) — the reassembled
    dataset is byte-identical to the per-cell grid's.
    """
    origin_names = _universe_names(origins, origin_universe)
    first_trials = {o.name: _first_trial(o, n_trials) for o in origins}

    jobs: List[TrialBatchJob] = []
    for protocol in protocols:
        for trial in range(n_trials):
            if not any(o.participates(trial) for o in origins):
                raise ValueError(
                    f"no origin scanned {protocol} trial {trial}")
        for origin in origins:
            trials = tuple(t for t in range(n_trials)
                           if origin.participates(t))
            configs = tuple(dataclasses.replace(zmap, seed=zmap.seed + t)
                            for t in trials)
            jobs.append(TrialBatchJob(
                index=len(jobs), protocol=protocol, origin=origin,
                trials=trials, configs=configs,
                first_trial=first_trials[origin.name],
                origin_names=origin_names, planned=planned,
                plane_only=plane_only))
    return jobs


def run_campaign(world: World, origins: Sequence[Origin],
                 zmap: ZMapConfig,
                 protocols: Sequence[str] = PROTOCOLS,
                 n_trials: int = 3,
                 executor: Union[str, Executor, None] = None,
                 workers: Optional[int] = None,
                 progress: Optional[ProgressCallback] = None,
                 planned: bool = True,
                 batch: Optional[bool] = None,
                 telemetry: Union[str, os.PathLike, Telemetry, None] = None,
                 origin_universe: Optional[Sequence[str]] = None
                 ) -> CampaignDataset:
    """Execute every (protocol, trial, origin) scan and collect results.

    Each trial re-seeds the shared permutation (``seed + trial``), exactly
    as independent scan waves would; within a trial every origin uses the
    same seed, as §2 specifies.

    ``executor`` picks the execution backend (``"serial"``, ``"thread"``,
    ``"process"``, or an :class:`Executor`); ``workers`` sizes its pool;
    ``progress`` is called as ``(jobs_done, jobs_total, job)`` after each
    observation completes.  Output is bit-identical across backends; the
    :class:`~repro.sim.executor.ExecutionReport` lands in
    ``metadata["execution"]`` (including per-stage observe timings when
    ``planned``).  ``planned=False`` routes every observation through the
    unplanned reference path — byte-identical results, no plan caching.

    ``batch`` selects the fused trial-batch granularity (one job per
    (protocol, origin) running :func:`repro.sim.batch.observe_trial_batch`
    over its whole trial axis) instead of per-cell jobs.  The default
    (``None``) is on unless ``REPRO_BATCH`` opts out; results are
    byte-identical either way, and the unplanned reference path
    (``planned=False``) always runs per cell.

    ``telemetry`` turns on run instrumentation: pass a journal path (an
    NDJSON journal plus run manifest is written there), a live
    :class:`~repro.telemetry.context.Telemetry` (the caller keeps
    ownership; the manifest is still emitted), or ``None`` to inherit the
    ambient context — usually the disabled no-op, which costs nothing.
    """
    owned: Optional[Telemetry] = None
    if telemetry is None:
        tel = _telemetry()
        activate = contextlib.nullcontext()
    elif isinstance(telemetry, Telemetry):
        tel = telemetry
        activate = use(tel)
    else:
        owned = tel = Telemetry(journal=telemetry)
        activate = use(tel)
    if tel.enabled and getattr(tel, "trace_id", None) is None:
        # Mint-if-absent: an offline campaign starts its own trace, but a
        # serve-set request trace on the collector is never overwritten.
        tel.trace_id = new_trace_id()
    try:
        with activate:
            return _run_campaign(world, origins, zmap, protocols, n_trials,
                                 executor, workers, progress, planned,
                                 batch, tel, origin_universe)
    finally:
        if owned is not None:
            owned.close()


def _run_campaign(world: World, origins: Sequence[Origin],
                  zmap: ZMapConfig, protocols: Sequence[str],
                  n_trials: int, executor, workers, progress, planned,
                  batch, tel,
                  origin_universe: Optional[Sequence[str]] = None
                  ) -> CampaignDataset:
    batched = batch_enabled(batch, planned)
    with tel.span("campaign.run", seed=zmap.seed,
                  protocols=list(protocols), n_trials=n_trials,
                  origins=[o.name for o in origins], batch=batched):
        if batched:
            jobs = build_trial_batches(origins, zmap, protocols, n_trials,
                                       planned=planned,
                                       origin_universe=origin_universe)
        else:
            jobs = build_observation_grid(origins, zmap, protocols,
                                          n_trials, planned=planned,
                                          origin_universe=origin_universe)
        backend = make_executor(executor, workers)
        observations, report = backend.run_grid(world, jobs,
                                                progress=progress)

        # One (origin name, observation) list per (protocol, trial) cell.
        # Batch jobs iterate origins in campaign order per protocol, so
        # flattening them recovers exactly the per-cell grid's origin
        # order (the origin list filtered by participation).
        by_cell: Dict[Tuple[str, int], List] = {}
        if batched:
            for job, per_trial in zip(jobs, observations):
                for trial, obs in zip(job.trials, per_trial):
                    by_cell.setdefault((job.protocol, trial), []).append(
                        (job.origin.name, obs))
        else:
            for job, obs in zip(jobs, observations):
                by_cell.setdefault((job.protocol, job.trial), []).append(
                    (job.origin.name, obs))

        # Cell order is fixed (protocol × ascending trial) regardless of
        # job granularity, so table order never depends on the path.
        cells = [(protocol, trial) for protocol in protocols
                 for trial in range(n_trials)]
        with tel.span("campaign.assemble", n_tables=len(cells)):
            tables: List[TrialData] = []
            for protocol, trial in cells:
                members = by_cell[(protocol, trial)]
                tables.append(_stack(
                    protocol, trial,
                    [name for name, _ in members],
                    [obs for _, obs in members],
                    zmap.n_probes))

        metadata: Dict[str, object] = {
            "seed": zmap.seed,
            "n_probes": zmap.n_probes,
            "probe_spacing_s": zmap.probe_spacing_s,
            "pps": zmap.pps,
            "scan_duration_s": zmap.scan_duration_s,
            "origins": [o.name for o in origins],
            "n_trials": n_trials,
            "batch": batched,
            "execution": report.to_metadata(),
        }
        if tel.enabled:
            manifest = build_manifest(world, zmap, origins, protocols,
                                      n_trials, report, tel)
            tel.emit({"t": "manifest", **manifest})
            metadata["telemetry"] = {"journal": tel.journal_path,
                                     "manifest": manifest}
    return CampaignDataset(tables, metadata=metadata)


def _probe_plane_units(jobs: Sequence[TrialBatchJob], probe):
    """Split batch jobs into cached units and a reduced live dispatch.

    ``probe(job, trial)`` returns the cached
    :class:`~repro.sim.batch.PlaneSlice` for one unit or ``None``.
    Returns ``(live, cached)``: ``live`` holds the jobs still worth
    dispatching — a job whose trials all hit disappears entirely, a
    partial hit is re-issued via :func:`dataclasses.replace` with only
    its missing trials (and their matching reseeded configs) while
    keeping its ``index`` (executors map results by index) and its
    origin's *true* ``first_trial`` (the scanned world's IDS/persistence
    state depends on it, not on which trials this dispatch happens to
    run).  ``cached`` maps ``job.index`` → ``{trial: PlaneSlice}``.
    """
    live: List[TrialBatchJob] = []
    cached: Dict[int, Dict[int, object]] = {}
    for job in jobs:
        hits: Dict[int, object] = {}
        for trial in job.trials:
            plane = probe(job, trial)
            if plane is not None:
                hits[trial] = plane
        cached[job.index] = hits
        if not hits:
            live.append(job)
            continue
        keep = [k for k, trial in enumerate(job.trials)
                if trial not in hits]
        if not keep:
            continue  # full hit: nothing to dispatch
        live.append(dataclasses.replace(
            job,
            trials=tuple(job.trials[k] for k in keep),
            configs=tuple(job.configs[k] for k in keep)))
    return live, cached


def _merge_plane_outputs(jobs: Sequence[TrialBatchJob],
                         by_index: Mapping[int, Sequence],
                         cached: Mapping[int, Dict[int, object]],
                         store=None) -> Dict[int, List]:
    """Reassemble cached hits + fresh planes per original job.

    Returns ``job.index`` → per-trial outputs in ``job.trials`` order —
    exactly the shape an un-cached dispatch produces — and hands every
    *fresh* unit to ``store(job, trial, plane)`` on the way through.
    """
    merged: Dict[int, List] = {}
    for job in jobs:
        hits = cached.get(job.index, {})
        fresh = by_index.get(job.index)
        fresh_by_trial: Dict[int, object] = {}
        if fresh is not None:
            missing = [t for t in job.trials if t not in hits]
            fresh_by_trial = dict(zip(missing, fresh))
        outputs: List = []
        for trial in job.trials:
            if trial in hits:
                outputs.append(hits[trial])
                continue
            plane = fresh_by_trial.get(trial)
            outputs.append(plane)
            if store is not None and plane is not None:
                store(job, trial, plane)
        merged[job.index] = outputs
    return merged


def run_plane_campaign(world: World, origins: Sequence[Origin],
                       zmap: ZMapConfig,
                       protocols: Sequence[str] = PROTOCOLS,
                       n_trials: int = 3,
                       executor: Union[str, Executor, None] = None,
                       workers: Optional[int] = None,
                       planned: bool = True,
                       batch: Optional[bool] = None,
                       origin_universe: Optional[Sequence[str]] = None,
                       plane_cache: Optional[bool] = None,
                       plane_extra: Optional[Mapping] = None,
                       plane_dir: Union[str, os.PathLike, None] = None,
                       telemetry: Union[str, os.PathLike, Telemetry,
                                        None] = None):
    """Run a monolithic campaign straight into streaming accumulators.

    The plane-granular counterpart of :func:`run_campaign`: fused
    trial-batch jobs run in *plane-only* mode and their
    :class:`~repro.sim.batch.PlaneSlice` columns stream into
    :class:`~repro.core.streaming.StreamingTrial` accumulators — no
    per-cell ``Observation``/``TrialData`` ever materializes — and the
    grid is decomposed into per-(protocol, origin, trial) units probed
    against the plane cache (:mod:`repro.serve.planecache`) so only
    missing units are dispatched.  ``plane_cache`` is tri-state:
    ``None`` defers to ``REPRO_PLANE_CACHE`` (on by default),
    ``False`` forces the non-incremental differential reference.  With
    batching disabled (``REPRO_BATCH=0`` / ``batch=False``) the per-cell
    grid runs instead and is reduced table-wise — byte-identical planes,
    no caching.

    Returns a :class:`~repro.core.streaming.StreamingCampaignResult`
    whose planes and report are byte-identical to a cold full
    recompute, regardless of which units were cached.
    """
    from repro.core.streaming import StreamingCampaignResult, StreamingTrial

    owned: Optional[Telemetry] = None
    if telemetry is None:
        tel = _telemetry()
        activate = contextlib.nullcontext()
    elif isinstance(telemetry, Telemetry):
        tel = telemetry
        activate = use(tel)
    else:
        owned = tel = Telemetry(journal=telemetry)
        activate = use(tel)
    if tel.enabled and getattr(tel, "trace_id", None) is None:
        tel.trace_id = new_trace_id()
    try:
        with activate:
            batched = batch_enabled(batch, planned)
            session = None
            if batched:
                from repro.serve import planecache
                session = planecache.session_for(
                    world, zmap,
                    _universe_names(origins, origin_universe),
                    enabled=plane_cache, directory=plane_dir,
                    extra=plane_extra)
            with tel.span("campaign.run_planes", seed=zmap.seed,
                          protocols=list(protocols), n_trials=n_trials,
                          origins=[o.name for o in origins],
                          batch=batched, plane_cache=session is not None):
                if batched:
                    jobs = build_trial_batches(
                        origins, zmap, protocols, n_trials,
                        planned=planned, plane_only=True,
                        origin_universe=origin_universe)
                else:
                    jobs = build_observation_grid(
                        origins, zmap, protocols, n_trials,
                        planned=planned, origin_universe=origin_universe)
                backend = make_executor(executor, workers)
                if session is not None:
                    live, cached = _probe_plane_units(
                        jobs, lambda job, trial: session.probe(
                            job.protocol, job.origin.name, trial))
                else:
                    live, cached = list(jobs), {}
                report = None
                if live:
                    observations, report = backend.run_grid(world, live)
                    by_index = dict(zip((j.index for j in live),
                                        observations))
                else:
                    by_index = {}
                if batched:
                    store = None
                    if session is not None:
                        store = lambda job, trial, plane: session.store(  # noqa: E731
                            job.protocol, job.origin.name, trial, plane)
                    outputs_by_job = _merge_plane_outputs(
                        jobs, by_index, cached, store=store)

                by_cell: Dict[Tuple[str, int], List] = {}
                if batched:
                    for job in jobs:
                        outputs = outputs_by_job[job.index]
                        for trial, plane in zip(job.trials, outputs):
                            by_cell.setdefault(
                                (job.protocol, trial), []).append(
                                (job.origin.name, plane))
                else:
                    for job in jobs:
                        by_cell.setdefault(
                            (job.protocol, job.trial), []).append(
                            (job.origin.name, by_index[job.index]))

                from repro.sim.shard import _reduce_planes
                n_ases = len(world.topology.ases)
                accumulators: Dict[Tuple[str, int], StreamingTrial] = {}
                for protocol in protocols:
                    for trial in range(n_trials):
                        members = by_cell[(protocol, trial)]
                        names = [name for name, _ in members]
                        acc = StreamingTrial(protocol=protocol,
                                             trial=trial, n_ases=n_ases)
                        accumulators[(protocol, trial)] = acc
                        if batched:
                            _reduce_planes(acc, names,
                                           [p for _, p in members])
                        else:
                            acc.add_shard(_stack(
                                protocol, trial, names,
                                [o for _, o in members], zmap.n_probes))

                metadata: Dict[str, object] = {
                    "seed": zmap.seed,
                    "n_probes": zmap.n_probes,
                    "probe_spacing_s": zmap.probe_spacing_s,
                    "pps": zmap.pps,
                    "scan_duration_s": zmap.scan_duration_s,
                    "origins": [o.name for o in origins],
                    "n_trials": n_trials,
                    "batch": batched,
                    "execution": report.to_metadata() if report is not None
                    else {},
                }
                if session is not None:
                    metadata["plane_cache"] = session.stats()
            return StreamingCampaignResult(accumulators, metadata=metadata)
    finally:
        if owned is not None:
            owned.close()


def campaign_fingerprint(world: World, zmap: ZMapConfig,
                         origins: Sequence[Origin],
                         protocols: Sequence[str] = PROTOCOLS,
                         n_trials: int = 3,
                         extra: Optional[Mapping] = None) -> str:
    """The content address of a campaign run (64 hex chars).

    Two :func:`run_campaign` invocations with equal fingerprints produce
    byte-identical datasets: the simulator is a pure function of the
    world, the scanner configuration, and the grid shape, and every
    component here pins one of those inputs — the ``config_hash`` /
    ``world_fingerprint`` pair the telemetry manifest already emits, the
    world's own seed, the origin set, and the (protocols × trials) grid.
    The serving layer keys its content-addressed result cache and its
    in-flight request deduplication on this value; ``extra`` folds in
    serving-side parameters (e.g. the analysis engine) that change the
    rendered output without changing the dataset.
    """
    from repro.telemetry.manifest import config_hash, world_fingerprint

    payload = {
        "config": config_hash(zmap),
        "seed": int(zmap.seed),
        "world": world_fingerprint(world),
        "world_seed": int(world.seed),
        "origins": [o.name for o in origins],
        "protocols": list(protocols),
        "n_trials": int(n_trials),
    }
    if extra:
        payload["extra"] = dict(extra)
    blob = json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


class SingleFlight:
    """Keyed single-flight execution: identical concurrent work runs once.

    ``begin(key)`` returns ``(future, leader)``: exactly one concurrent
    caller per key is the leader (``leader=True``) and must eventually
    call ``finish(key, ...)``; everyone else shares the same future and
    simply waits.  The synchronous :meth:`run` wraps the whole protocol
    for blocking callers; async callers (the serving layer) drive
    ``begin``/``finish`` themselves and await the future however suits
    their event loop.

    Thread-safe; keys are whatever hashable identity makes two requests
    "the same work" — the serving layer uses the canonical request spec,
    whose executions converge on :func:`campaign_fingerprint`-keyed
    cache entries.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: Dict[object, concurrent.futures.Future] = {}

    def begin(self, key) -> Tuple[concurrent.futures.Future, bool]:
        """Join or open the flight for ``key``; True means "you lead"."""
        with self._lock:
            future = self._flights.get(key)
            if future is not None:
                return future, False
            future = concurrent.futures.Future()
            self._flights[key] = future
            return future, True

    def finish(self, key, result=None,
               error: Optional[BaseException] = None) -> None:
        """Resolve ``key``'s flight, waking every joined waiter."""
        with self._lock:
            future = self._flights.pop(key)
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(result)

    def run(self, key, fn) -> Tuple[object, bool]:
        """Blocking convenience: ``(fn(), False)`` for the leader, or
        ``(shared result, True)`` after joining an in-flight call."""
        future, leader = self.begin(key)
        if not leader:
            return future.result(), True
        try:
            value = fn()
        except BaseException as exc:
            self.finish(key, error=exc)
            raise
        self.finish(key, result=value)
        return value, False

    def in_flight(self) -> int:
        with self._lock:
            return len(self._flights)


def _first_trial(origin: Origin, n_trials: int) -> int:
    """The first trial this origin participates in."""
    for trial in range(n_trials):
        if origin.participates(trial):
            return trial
    raise ValueError(f"origin {origin.name} participates in no trial")


def _stack(protocol: str, trial: int, origins: List[str],
           observations: List[Observation], n_probes: int) -> TrialData:
    """Combine aligned per-origin observations into one TrialData."""
    if not observations:
        raise ValueError(f"no origin scanned {protocol} trial {trial}")
    reference = observations[0]
    for obs in observations[1:]:
        if not np.array_equal(obs.ip, reference.ip):
            raise AssertionError(
                "origins disagree on the scanned service set — churn or "
                "blocklists are origin-dependent, which violates the "
                "synchronized-campaign invariant")
    return TrialData(
        protocol=protocol,
        trial=trial,
        origins=origins,
        ip=reference.ip.copy(),
        as_index=reference.as_index.copy(),
        country_index=reference.country_index.copy(),
        geo_index=reference.geo_index.copy(),
        probe_mask=np.stack([o.probe_mask for o in observations]),
        l7=np.stack([o.l7 for o in observations]),
        time=np.stack([o.time for o in observations]),
        n_probes=n_probes)
