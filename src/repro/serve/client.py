"""A small stdlib client for the campaign service.

Wraps ``http.client`` (no dependencies, like the server) with the
service's routes and error contract: non-2xx responses raise
:class:`ServeError` carrying the status code and the server's decoded
error body, so callers branch on ``error.status`` (429 back-off, 503
draining, 504 timed out) instead of parsing strings.

    from repro.serve.client import ServeClient

    client = ServeClient(port=8351)
    result = client.report(seed=3, scale=0.02)
    print(result.source, len(result.text))   # "miss" first, "hit" after
"""

from __future__ import annotations

import http.client
import json
from dataclasses import dataclass
from typing import Dict, Optional, Sequence


class ServeError(Exception):
    """A non-2xx response from the service."""

    def __init__(self, status: int, message: str,
                 body: Optional[dict] = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.body = body or {}


@dataclass(frozen=True)
class ReportResult:
    """A served report: the exact bytes plus serving metadata."""

    key: str
    source: str          # "hit" | "miss" | "repair"
    text: str
    #: The request's trace ID (``X-Repro-Trace`` response header).
    trace: str = ""


class ServeClient:
    """One service endpoint; each call is an independent connection.

    (The server speaks ``Connection: close``, so there is no pooling to
    manage — a client object is just an address plus a timeout.)
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8351,
                 timeout: float = 600.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------

    def healthz(self) -> dict:
        return json.loads(self._request("GET", "/healthz")[1])

    def metrics(self) -> dict:
        """The aggregated counters/histograms (JSON form)."""
        return json.loads(self._request("GET", "/metrics?format=json")[1])

    def metrics_text(self) -> str:
        """The Prometheus text exposition."""
        return self._request("GET", "/metrics")[1].decode("utf-8")

    def metrics_history(self, last: Optional[int] = None) -> dict:
        """The server's time-series window (``/metrics/history``)."""
        path = "/metrics/history"
        if last is not None:
            path += f"?last={int(last)}"
        return json.loads(self._request("GET", path)[1])

    def cache(self) -> list:
        return json.loads(self._request("GET", "/cache")[1])["entries"]

    def cache_planes(self) -> dict:
        """The plane-cache summary (count, bytes, per-world groups)."""
        return json.loads(self._request("GET", "/cache")[1]).get(
            "planes", {})

    def campaign(self, **spec) -> dict:
        """Run (or serve from cache) a campaign; JSON summary, no report."""
        _, body, _ = self._post("/campaign", spec)
        return json.loads(body)

    def report(self, **spec) -> ReportResult:
        """Run (or serve from cache) a campaign and fetch its report."""
        _, body, headers = self._post("/report", spec)
        return ReportResult(key=headers.get("x-repro-key", ""),
                            source=headers.get("x-repro-source", ""),
                            text=body.decode("utf-8"),
                            trace=headers.get("x-repro-trace", ""))

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _post(self, path: str, spec: dict):
        return self._request("POST", path, body=_spec_body(spec))

    def _request(self, method: str, path: str,
                 body: Optional[bytes] = None):
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            payload = response.read()
            header_map: Dict[str, str] = {
                k.lower(): v for k, v in response.getheaders()}
            if not 200 <= response.status < 300:
                try:
                    decoded = json.loads(payload)
                except ValueError:
                    decoded = {"error": payload.decode("utf-8", "replace")}
                raise ServeError(response.status,
                                 decoded.get("error", "request failed"),
                                 decoded)
            return response.status, payload, header_map
        finally:
            conn.close()


def _spec_body(spec: dict) -> bytes:
    spec = dict(spec)
    protocols: Optional[Sequence[str]] = spec.get("protocols")
    if protocols is not None:
        spec["protocols"] = list(protocols)
    return json.dumps(spec, sort_keys=True).encode("utf-8")
