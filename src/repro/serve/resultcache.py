"""Content-addressed cache of served campaign results.

The dominant serving workload is *re-running the same configuration*:
anyone comparing origins re-requests the identical (config, seed, world)
triple, so a finished result is worth far more on disk than the CPU it
took to compute.  This module memoizes rendered reports the same way
:mod:`repro.io.worldcache` memoizes compiled worlds — content-addressed
by :func:`repro.sim.campaign.campaign_fingerprint` (the ``config_hash``
/ seed / world-fingerprint triple the telemetry manifest emits, plus the
grid shape and analysis engine) and stored as columnar *result
snapshots* (:func:`repro.io.columnar.save_result`): the exact report
bytes next to the campaign's arrays, per-segment CRC-checked, written
with temp-file + atomic rename.

Durability properties the fault-injection suite pins:

* a killed or cancelled writer never publishes partial bytes (atomic
  rename, collision-free temp names);
* a truncated or bit-flipped entry is *detected* (CRC), surfaces as
  :class:`CorruptEntry`, and is recomputed and repaired by the caller —
  wrong bytes are never served;
* the cache is an accelerator, not a dependency: write failures are
  swallowed, reads fall back to recompute.

Environment:

* ``REPRO_RESULT_CACHE_DIR`` — cache root (default: ``results/`` under
  the world-cache root, i.e. ``$XDG_CACHE_HOME/repro/results``).
* ``REPRO_RESULT_CACHE=0`` — disable the result cache entirely.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import List, Mapping, Optional, Union

from repro.io.columnar import (ResultSnapshot, SnapshotError,
                               load_result, read_snapshot_manifest,
                               save_result)
from repro.telemetry.context import current as _telemetry

ENV_RESULT_CACHE_DIR = "REPRO_RESULT_CACHE_DIR"
ENV_RESULT_CACHE = "REPRO_RESULT_CACHE"

_SUFFIX = ".result"

PathLike = Union[str, os.PathLike]


class CorruptEntry(Exception):
    """A result-cache entry exists but fails validation (CRC, format).

    Raised instead of returning wrong bytes; the serving layer counts it
    (``serve.cache_repair``), recomputes, and overwrites the entry.
    """


def cache_enabled() -> bool:
    """Whether the result cache is on (``REPRO_RESULT_CACHE`` != 0)."""
    return os.environ.get(ENV_RESULT_CACHE, "1") != "0"


def cache_dir(directory: Optional[PathLike] = None) -> Path:
    """Resolve the cache root: argument > env > world-cache root/results."""
    if directory is not None:
        return Path(directory)
    env = os.environ.get(ENV_RESULT_CACHE_DIR)
    if env:
        return Path(env)
    from repro.io.worldcache import cache_dir as world_cache_dir
    return world_cache_dir() / "results"


def entry_path(key: str, directory: Optional[PathLike] = None) -> Path:
    return cache_dir(directory) / f"{key}{_SUFFIX}"


def store(key: str, report: str, dataset, meta: Optional[Mapping] = None,
          directory: Optional[PathLike] = None) -> Optional[Path]:
    """Write a result entry atomically; None when the write failed.

    Failures never propagate: the freshly computed result is already in
    hand, and the cache must stay an accelerator, not a dependency.
    """
    tel = _telemetry()
    path = entry_path(key, directory)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with tel.span("serve.result_save", key=key[:12]):
            save_result(path, report, dataset,
                        meta={**dict(meta or {}), "key": key})
    except (OSError, TypeError, ValueError):
        return None
    from repro.io import prune
    prune.maybe_prune()
    return path


def load(key: str,
         directory: Optional[PathLike] = None) -> Optional[ResultSnapshot]:
    """Load the entry for ``key``: None on miss, raises on corruption.

    A readable entry comes back as an mmap-backed
    :class:`~repro.io.columnar.ResultSnapshot` — the ~2 ms warm-hit path.
    An entry that exists but fails any check (truncation, flipped bits,
    stale format) raises :class:`CorruptEntry` so the caller recomputes
    and repairs rather than serving wrong bytes.
    """
    tel = _telemetry()
    path = entry_path(key, directory)
    if not path.exists():
        return None
    try:
        with tel.span("serve.result_load", key=key[:12]):
            return load_result(path)
    except (SnapshotError, OSError, ValueError, KeyError,
            UnicodeDecodeError) as error:
        raise CorruptEntry(f"{path}: {error}") from None


@dataclass(frozen=True)
class ResultEntry:
    """One cached result, as listed by :func:`list_entries`."""

    key: str
    path: Path
    nbytes: int
    meta: Optional[dict] = None
    valid: bool = True


def list_entries(directory: Optional[PathLike] = None) -> List[ResultEntry]:
    """Enumerate result entries (manifest-only reads; no array I/O)."""
    root = cache_dir(directory)
    entries: List[ResultEntry] = []
    if not root.is_dir():
        return entries
    for path in sorted(root.glob(f"*{_SUFFIX}")):
        nbytes = path.stat().st_size
        try:
            meta = read_snapshot_manifest(path)["meta"].get("result", {})
            entries.append(ResultEntry(key=path.stem, path=path,
                                       nbytes=nbytes, meta=meta))
        except SnapshotError:
            entries.append(ResultEntry(key=path.stem, path=path,
                                       nbytes=nbytes, valid=False))
    return entries


def clear(directory: Optional[PathLike] = None) -> int:
    """Delete every result entry; returns how many were removed."""
    removed = 0
    for entry in list_entries(directory):
        try:
            entry.path.unlink()
            removed += 1
        except OSError:
            pass
    return removed
