"""The campaign service: an asyncio HTTP/JSON front over the simulator.

One long-lived process owns a world LRU, a content-addressed result
cache, and a small compute pool; clients POST campaign specs and get
back rendered reports.  Three properties organize the design:

* **Compute never blocks the loop.**  Every campaign runs in a worker
  thread (``run_in_executor`` over the same pool machinery campaigns
  already use); the event loop only parses requests, joins flights, and
  streams bytes.
* **Identical concurrent requests run once.**  Requests are keyed by
  their canonical spec through
  :class:`repro.sim.campaign.SingleFlight`; joiners await the leader's
  future and are counted as ``serve.dedup_joined``.
* **Cancellation never corrupts state.**  The leader's compute runs in
  an *independent* loop task — a request that times out (504) or whose
  client disconnects abandons its wait, not the computation, so the
  cache write still lands atomically and the entry stays CRC-valid.

Observability rides the existing telemetry subsystem: compute threads
collect into job-local :class:`~repro.telemetry.context.Telemetry`
contexts whose snapshots the loop adopts (the collector itself is not
thread-safe), and ``GET /metrics`` renders the aggregate in Prometheus
text format.  All serving metrics live under the ``serve.`` namespace,
which is excluded from the cross-backend determinism contract.

Routes::

    GET  /healthz            liveness + drain state + queue occupancy
    GET  /metrics            Prometheus text (``?format=json`` for JSON)
    GET  /metrics/history    bounded time-series window (``?last=N``)
    GET  /cache              result-cache entries (manifest-only reads)
    POST /campaign           run/serve a campaign; JSON summary
    POST /report             run/serve a campaign; text/plain report

Every request carries a 128-bit trace ID — minted per request, or
honored from an ``X-Repro-Trace`` header — that is stamped on the
request span, the flight, the compute's whole span tree (executor jobs
across the pickle boundary, per-shard streams), the access log, and
the ``X-Repro-Trace`` response header; see ``repro.telemetry.tracing``.

Backpressure contract: ``queue_depth`` caps admitted-but-unfinished
requests (429 beyond it), and a draining server (SIGTERM) refuses new
work with 503 while in-flight requests run to completion.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import threading
import urllib.parse
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import os
import time

from repro.serve import resultcache
from repro.serve.handlers import (BadRequest, CampaignRequest, ResultPayload,
                                  ServeState, parse_request, run_request)
from repro.sim.campaign import SingleFlight
from repro.telemetry.context import Telemetry, use
from repro.telemetry.metrics import exposition_text, metrics_json
from repro.telemetry.timeseries import TimeSeriesRecorder
from repro.telemetry.tracing import new_trace_id, valid_trace_id

#: Sane cap on request bodies: specs are a few hundred bytes.
MAX_BODY_BYTES = 64 * 1024
MAX_HEADER_LINES = 64

REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one server instance."""

    host: str = "127.0.0.1"
    port: int = 0                  # 0 → ephemeral, read back from .port
    queue_depth: int = 8           # admitted-but-unfinished request cap
    request_timeout: float = 300.0  # per-request wall budget (s) → 504
    pool_size: int = 2             # compute threads (campaigns at once)
    executor: Optional[str] = None  # campaign backend (serial/thread/...)
    workers: Optional[int] = None  # campaign pool width
    batch: Optional[bool] = None   # trial-batched kernels (None → env/default)
    #: Plane-granular incremental recomputation on the grid-surface miss
    #: path (None → ``REPRO_PLANE_CACHE``; ``--no-plane-cache`` → False).
    plane_cache: Optional[bool] = None
    cache_dir: Optional[str] = None
    world_lru: int = 4
    journal: Optional[str] = None  # NDJSON telemetry journal path
    #: Size-based journal rotation budget (``.1``/``.2`` backups); a
    #: long-lived server must not grow an unbounded NDJSON file.
    journal_max_bytes: Optional[int] = None
    access_log: Optional[str] = None  # per-request NDJSON access log
    history_interval: float = 1.0  # /metrics/history sampling tick (s)
    history_samples: int = 512     # /metrics/history ring-buffer depth


class _AccessLog:
    """Append-only NDJSON access log with the journal's rotation scheme.

    One line per completed request — trace ID, route, status, cache
    source, queue wait, latency — written on the event loop (a few
    hundred bytes, no fsync).  When ``max_bytes`` is set, the file
    rotates through ``.1``/``.2`` backups exactly like the telemetry
    journal, so a long-lived server is bounded on both artifacts.
    """

    def __init__(self, path: str, max_bytes: Optional[int] = None,
                 backups: int = 2) -> None:
        self.path = path
        self.max_bytes = max_bytes
        self.backups = max(int(backups), 1)
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._handle = open(path, "a", encoding="utf-8")
        self._bytes = self._handle.tell()

    def write(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":")) + "\n"
        if self.max_bytes is not None and self._bytes \
                and self._bytes + len(line) > self.max_bytes:
            self._rotate()
        self._handle.write(line)
        self._handle.flush()
        self._bytes += len(line)

    def _rotate(self) -> None:
        self._handle.close()
        for index in range(self.backups, 0, -1):
            source = self.path if index == 1 else f"{self.path}.{index - 1}"
            try:
                os.replace(source, f"{self.path}.{index}")
            except FileNotFoundError:
                pass
        self._handle = open(self.path, "a", encoding="utf-8")
        self._bytes = 0

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


class ReproServer:
    """The serving core: routes, flights, telemetry, and lifecycle.

    ``runner`` is the blocking compute function (default
    :func:`repro.serve.handlers.run_request`); the fault-injection suite
    swaps in failing/hanging runners to drive the error paths without
    touching transport code.
    """

    def __init__(self, config: Optional[ServeConfig] = None,
                 state: Optional[ServeState] = None,
                 runner: Callable[[CampaignRequest, ServeState],
                                  ResultPayload] = run_request) -> None:
        self.config = config or ServeConfig()
        self.state = state or ServeState(
            cache_dir=self.config.cache_dir,
            executor=self.config.executor,
            workers=self.config.workers,
            batch=self.config.batch,
            plane_cache=self.config.plane_cache,
            world_lru=self.config.world_lru)
        self.runner = runner
        self.history = TimeSeriesRecorder(
            max_samples=self.config.history_samples,
            interval_s=self.config.history_interval)
        self.telemetry = Telemetry(
            journal=self.config.journal,
            max_journal_bytes=self.config.journal_max_bytes,
            timeseries=self.history)
        self.access_log: Optional[_AccessLog] = None
        if self.config.access_log:
            self.access_log = _AccessLog(
                self.config.access_log,
                max_bytes=self.config.journal_max_bytes)
        self.port: Optional[int] = None
        self._flights = SingleFlight()
        self._sampler: Optional[asyncio.Task] = None
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.config.pool_size,
            thread_name_prefix="repro-serve")
        self._server: Optional[asyncio.AbstractServer] = None
        self._flight_tasks: set = set()
        self._active = 0            # admitted POSTs not yet responded
        self._n_flights = 0
        self._draining = False
        self._closed = asyncio.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "ReproServer":
        """Bind the listener; ``self.port`` is the actual port."""
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._sampler = asyncio.ensure_future(self._sample_loop())
        return self

    async def _sample_loop(self) -> None:
        """Feed ``/metrics/history`` one sample per tick, with gauges.

        Span exits also sample opportunistically (the recorder
        rate-limits), but an idle server emits no spans — this tick
        keeps the window alive so ``repro top`` always has fresh rows.
        """
        while not self._draining:
            await asyncio.sleep(self.config.history_interval)
            self.history.sample(self.telemetry, active=self._active,
                                flights=self._flights.in_flight(),
                                queue_depth=self.config.queue_depth)

    async def drain(self) -> None:
        """Graceful shutdown: refuse new work, finish in-flight, close.

        Idempotent; ``wait_closed`` wakes once the listener is closed
        and every flight has resolved.
        """
        if self._draining:
            await self._closed.wait()
            return
        self._draining = True
        if self._sampler is not None:
            self._sampler.cancel()
            try:
                await self._sampler
            except asyncio.CancelledError:
                pass
        if self._flight_tasks:
            await asyncio.gather(*tuple(self._flight_tasks),
                                 return_exceptions=True)
        while self._active:  # let admitted requests flush their responses
            await asyncio.sleep(0.01)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Flights are resolved, so no worker is mid-campaign; don't wait
        # on thread join from the loop.
        self._pool.shutdown(wait=False)
        self.telemetry.close()
        if self.access_log is not None:
            self.access_log.close()
        self._closed.set()

    async def wait_closed(self) -> None:
        await self._closed.wait()

    @property
    def draining(self) -> bool:
        return self._draining

    # ------------------------------------------------------------------
    # Compute dispatch (single-flight + independent leader task)
    # ------------------------------------------------------------------

    def _job(self, request: CampaignRequest, trace: str,
             submitted: float) -> Tuple[ResultPayload, dict, float]:
        """Worker-thread body: run under a job-local telemetry context.

        The leading request's trace ID seeds the job-local collector, so
        every span the compute opens — ``serve.compute``, the executor
        grid, per-shard streams, worker jobs across the pickle boundary —
        carries it; the snapshot rides back for loop-side adoption.
        ``submitted`` times the queue wait (pool submit → thread start).
        """
        wait_s = time.monotonic() - submitted
        tel = Telemetry(trace_id=trace or None)
        tel.observe_value("serve.queue_wait", wait_s)
        with use(tel):
            payload = self.runner(request, self.state)
        payload.trace = trace
        return payload, tel.snapshot(), wait_s

    async def _finish_flight(self, spec: str, trace: str, started: float,
                             pending: concurrent.futures.Future) -> None:
        """Loop-side completion of one flight's compute.

        Runs as its own task, so a waiter's timeout or disconnect can
        never cancel the compute or lose its telemetry; counter adoption
        happens here, on the loop thread, keeping the collector
        single-threaded.
        """
        tel = self.telemetry
        try:
            payload, snap, wait_s = await asyncio.wrap_future(pending)
        except BaseException as error:  # noqa: BLE001 — forwarded to waiters
            tel.count("serve.error", kind=type(error).__name__)
            self._flights.finish(spec, error=error)
            return
        self._n_flights += 1
        tel.adopt(snap, prefix=f"f{self._n_flights}.")
        tel.count(f"serve.cache_{payload.source}")
        tel.span_event("serve.flight",
                       wall_s=asyncio.get_event_loop().time() - started,
                       trace=trace or None, key=payload.key[:12],
                       source=payload.source,
                       queue_wait_s=round(wait_s, 6))
        self._flights.finish(spec, result=payload)

    async def _serve_request(self, request: CampaignRequest,
                             trace: str = "") -> ResultPayload:
        """Join or lead the flight for ``request``; await its payload."""
        spec = request.canonical()
        fut, leader = self._flights.begin(spec)
        if leader:
            pending = self._pool.submit(self._job, request, trace,
                                        time.monotonic())
            task = asyncio.ensure_future(self._finish_flight(
                spec, trace, asyncio.get_event_loop().time(), pending))
            self._flight_tasks.add(task)
            task.add_done_callback(self._flight_tasks.discard)
        else:
            self.telemetry.count("serve.dedup_joined")
        # shield: a timeout abandons the wait, never the flight future
        # (a bare Future would otherwise be *cancelled*, wedging joiners).
        return await asyncio.wait_for(
            asyncio.shield(asyncio.wrap_future(fut)),
            self.config.request_timeout)

    # ------------------------------------------------------------------
    # HTTP plumbing (stdlib streams; HTTP/1.1, Connection: close)
    # ------------------------------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            await self._handle_one(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError):
            # Client went away mid-request/mid-stream; nothing to serve.
            self.telemetry.count("serve.client_disconnect")
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_one(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            return
        parts = request_line.split()
        if len(parts) != 3:
            await self._respond(writer, 400, {"error": "malformed request"})
            return
        method, target, _version = parts
        headers: Dict[str, str] = {}
        for _ in range(MAX_HEADER_LINES):
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", 0) or 0)
        if length > MAX_BODY_BYTES:
            await self._respond(writer, 413, {"error": "body too large"})
            return
        if length:
            body = await reader.readexactly(length)

        url = urllib.parse.urlsplit(target)
        query = dict(urllib.parse.parse_qsl(url.query))
        # Per-request trace identity: honor a well-formed upstream
        # X-Repro-Trace header, mint otherwise.  Every span, access-log
        # line, and response header of this request carries it.
        trace = headers.get("x-repro-trace", "")
        if not valid_trace_id(trace):
            trace = new_trace_id()
        info: Dict[str, object] = {}
        loop = asyncio.get_event_loop()
        t0 = loop.time()
        status = await self._route(method, url.path, query, body, writer,
                                   trace, info)
        wall = loop.time() - t0
        tel = self.telemetry
        tel.count("serve.request", route=url.path, status=status)
        tel.observe_value("serve.request_wall", wall, route=url.path)
        tel.span_event("serve.request", wall_s=wall, route=url.path,
                       status=status, trace=trace)
        if self.access_log is not None:
            record = {"ts": round(time.time(), 3), "trace": trace,
                      "route": url.path, "method": method, "status": status,
                      "wall_s": round(wall, 6), "active": self._active}
            record.update(info)
            self.access_log.write(record)

    async def _route(self, method: str, path: str, query: Dict[str, str],
                     body: bytes, writer: asyncio.StreamWriter,
                     trace: str = "",
                     info: Optional[dict] = None) -> int:
        info = info if info is not None else {}
        if path == "/healthz" and method == "GET":
            return await self._respond(writer, 200, {
                "status": "draining" if self._draining else "ok",
                "active": self._active,
                "flights": self._flights.in_flight(),
                "queue_depth": self.config.queue_depth,
            }, trace=trace)
        if path == "/metrics" and method == "GET":
            tel = self.telemetry
            if query.get("format") == "json":
                return await self._respond(
                    writer, 200, metrics_json(tel.counters, tel.histograms),
                    trace=trace)
            text = exposition_text(tel.counters, tel.histograms)
            return await self._respond(
                writer, 200, text.encode("utf-8"),
                content_type="text/plain; version=0.0.4", trace=trace)
        if path == "/metrics/history" and method == "GET":
            try:
                last = int(query["last"]) if "last" in query else None
            except ValueError:
                return await self._respond(
                    writer, 400, {"error": "last must be an integer"},
                    trace=trace)
            return await self._respond(
                writer, 200, self.history.as_dict(last), trace=trace)
        if path == "/cache" and method == "GET":
            from repro.serve import planecache
            entries = resultcache.list_entries(self.state.cache_dir)
            planes = planecache.list_entries(self.state.cache_dir)
            return await self._respond(writer, 200, {
                "entries": [{"key": e.key, "nbytes": e.nbytes,
                             "valid": e.valid} for e in entries],
                "planes": {"count": len(planes),
                           "nbytes": sum(p.nbytes for p in planes),
                           "worlds": planecache.by_world(planes)}},
                trace=trace)
        if path in ("/campaign", "/report"):
            if method != "POST":
                return await self._respond(
                    writer, 405, {"error": "POST required"}, trace=trace)
            return await self._campaign(path, body, writer, trace, info)
        return await self._respond(writer, 404,
                                   {"error": f"no route {path}"},
                                   trace=trace)

    async def _campaign(self, path: str, body: bytes,
                        writer: asyncio.StreamWriter, trace: str = "",
                        info: Optional[dict] = None) -> int:
        info = info if info is not None else {}
        if self._draining:
            return await self._respond(
                writer, 503, {"error": "server is draining"}, trace=trace)
        if self._active >= self.config.queue_depth:
            self.telemetry.count("serve.rejected")
            return await self._respond(
                writer, 429, {"error": "queue full",
                              "queue_depth": self.config.queue_depth},
                trace=trace)
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
            request = parse_request(payload)
        except (ValueError, UnicodeDecodeError) as error:
            return await self._respond(
                writer, 400, {"error": f"invalid JSON body: {error}"},
                trace=trace)
        except BadRequest as error:
            return await self._respond(writer, 400, {"error": str(error)},
                                       trace=trace)

        self._active += 1
        try:
            result = await self._serve_request(request, trace)
        except asyncio.TimeoutError:
            self.telemetry.count("serve.timeout")
            return await self._respond(
                writer, 504,
                {"error": "request timed out; compute continues and will "
                          "be cached", "timeout_s":
                          self.config.request_timeout}, trace=trace)
        except Exception as error:  # noqa: BLE001 — any compute failure
            return await self._respond(
                writer, 500, {"error": f"{type(error).__name__}: {error}"},
                trace=trace)
        finally:
            self._active -= 1

        info["key"] = result.key
        info["source"] = result.source
        extra = {"X-Repro-Key": result.key, "X-Repro-Source": result.source}
        if path == "/report":
            return await self._respond(
                writer, 200, result.report.encode("utf-8"),
                content_type="text/plain; charset=utf-8", extra=extra,
                trace=trace)
        return await self._respond(writer, 200, {
            "key": result.key, "source": result.source,
            "meta": result.meta}, extra=extra, trace=trace)

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       body, content_type: str = "application/json",
                       extra: Optional[Dict[str, str]] = None,
                       trace: str = "") -> int:
        if isinstance(body, dict):
            body = (json.dumps(body, sort_keys=True) + "\n").encode("utf-8")
        reason = REASONS.get(status, "")
        head = [f"HTTP/1.1 {status} {reason}",
                f"Content-Type: {content_type}",
                f"Content-Length: {len(body)}",
                "Connection: close"]
        if trace:
            head.append(f"X-Repro-Trace: {trace}")
        for name, value in (extra or {}).items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await writer.drain()
        return status


# ----------------------------------------------------------------------
# Foreground + background entry points
# ----------------------------------------------------------------------

async def serve_async(config: Optional[ServeConfig] = None,
                      state: Optional[ServeState] = None,
                      ready: Optional[Callable[[ReproServer], None]] = None
                      ) -> None:
    """Run a server until SIGTERM/SIGINT, then drain gracefully."""
    import signal

    server = ReproServer(config, state)
    await server.start()
    loop = asyncio.get_event_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(
                sig, lambda: asyncio.ensure_future(server.drain()))
        except (NotImplementedError, RuntimeError):
            pass  # non-Unix loop: Ctrl-C still raises KeyboardInterrupt
    if ready is not None:
        ready(server)
    await server.wait_closed()


@dataclass
class ThreadedServer:
    """A server on a background event-loop thread (tests, bench, examples).

    Usable as a context manager::

        with ThreadedServer(ServeConfig(queue_depth=4)) as ts:
            client = ServeClient(port=ts.port)
            ...
        # exit: graceful drain, loop stopped, thread joined
    """

    config: Optional[ServeConfig] = None
    state: Optional[ServeState] = None
    runner: Callable = run_request
    server: Optional[ReproServer] = None
    _thread: Optional[threading.Thread] = None
    _loop: Optional[asyncio.AbstractEventLoop] = None
    _ready: threading.Event = field(default_factory=threading.Event)
    _failure: Optional[BaseException] = None

    @property
    def port(self) -> int:
        assert self.server is not None and self.server.port is not None
        return self.server.port

    def start(self) -> "ThreadedServer":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve-loop")
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server failed to start within 30s")
        if self._failure is not None:
            raise RuntimeError("server failed to start") from self._failure
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)

        async def main() -> None:
            try:
                self.server = ReproServer(self.config, self.state,
                                          runner=self.runner)
                await self.server.start()
            except BaseException as error:
                self._failure = error
                raise
            finally:
                self._ready.set()
            await self.server.wait_closed()

        try:
            loop.run_until_complete(main())
        except BaseException:
            if self._failure is None and not self._ready.is_set():
                self._ready.set()
        finally:
            loop.close()

    def stop(self, timeout: float = 60.0) -> None:
        """Drain the server and join the loop thread."""
        if self._loop is None or self.server is None \
                or self._loop.is_closed():
            return
        try:
            future = asyncio.run_coroutine_threadsafe(self.server.drain(),
                                                      self._loop)
            future.result(timeout=timeout)
        except RuntimeError:
            pass  # loop shut down between the check and the submit
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "ThreadedServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
