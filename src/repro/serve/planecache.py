"""Plane-granular result cache: the unit is one trial of one batch job.

The whole-campaign result cache (:mod:`repro.serve.resultcache`) turns
exact re-requests into mmap reads, but the dominant *variation*
workload — the same world with one more origin, a longer trial run, one
extra protocol — used to be a 100 % miss that recomputed every
(protocol, origin) batch.  This module caches the output of one
:class:`~repro.sim.executor.TrialBatchJob` trial instead: the
:class:`~repro.sim.batch.PlaneSlice` columns the plane-only kernel
already emits, stored bit-packed as CRC-checked columnar snapshots
(:func:`repro.io.columnar.write_snapshot`) next to the ``.result``
entries.  A campaign runner decomposes its grid into these units,
probes per unit, dispatches only the missing batches, and reassembles
hits + fresh planes through the ordinary streaming accumulators — so
"add origin G" computes 1/24 of a 6-origin × 4-protocol grid and
"extend 20→30 trials" computes only trials 20–29 (counter-addressed
RNG makes trials independent by construction).

Unit identity is a SHA-256 over the world/shard fingerprint, the
per-protocol scan-config hash plus base seed, the (protocol, origin,
trial) coordinate, the shard coordinate, and the **origin-name
universe**: shared burst outages are drawn against the full origin
list (:mod:`repro.conditions.outages`), so a plane is only reusable
between runs that agree on every participating origin name — which is
exactly why the serving layer observes origin *subsets* under the
scenario's full universe.

The same durability rules as every other cache here apply: atomic
temp-file + rename writes, per-segment CRCs, corrupt entries surfacing
as a recompute-and-overwrite (``serve.plane_repair``), write failures
swallowed.  Counters (``serve.plane_hit`` / ``serve.plane_miss`` /
``serve.plane_store`` / ``serve.plane_repair``) live in the ``serve.``
namespace, excluded from the cross-backend determinism contract —
cache warmth is process-local state.

Environment:

* ``REPRO_PLANE_CACHE_DIR`` — cache root (default: the result-cache
  root, so plane entries live next to ``.result`` entries).
* ``REPRO_PLANE_CACHE=0`` — disable the plane cache entirely (the
  non-incremental differential reference path).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.io.columnar import (FORMAT_VERSION, SnapshotError,
                               read_snapshot, read_snapshot_manifest,
                               write_snapshot)
from repro.telemetry.context import current as _telemetry

ENV_PLANE_CACHE_DIR = "REPRO_PLANE_CACHE_DIR"
ENV_PLANE_CACHE = "REPRO_PLANE_CACHE"

#: Bump when the unit layout or keying changes meaning: old entries
#: must never satisfy new probes.
PLANE_VERSION = 1

_SUFFIX = ".planes"

PathLike = Union[str, os.PathLike]


def cache_enabled(override: Optional[bool] = None) -> bool:
    """Resolve the plane-cache toggle: explicit override > env > on."""
    if override is not None:
        return bool(override)
    return os.environ.get(ENV_PLANE_CACHE, "1") != "0"


def cache_dir(directory: Optional[PathLike] = None) -> Path:
    """Resolve the cache root: argument > env > result-cache root."""
    if directory is not None:
        return Path(directory)
    env = os.environ.get(ENV_PLANE_CACHE_DIR)
    if env:
        return Path(env)
    from repro.serve.resultcache import cache_dir as result_cache_dir
    return result_cache_dir()


def entry_path(key: str, directory: Optional[PathLike] = None) -> Path:
    return cache_dir(directory) / f"{key}{_SUFFIX}"


def world_digest(world_fingerprint: Mapping) -> str:
    """A short stable identity of a world fingerprint (16 hex chars)."""
    blob = json.dumps(dict(world_fingerprint), sort_keys=True,
                      default=str).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


@dataclass
class PlaneCacheSession:
    """Probe/store context for one campaign run.

    Precomputes everything shared by every unit key — the world
    fingerprint, the config hash, the origin universe, the shard count,
    serving-side ``extra`` parameters (e.g. the analysis engine) — so a
    runner only supplies the (protocol, origin, trial, shard)
    coordinate.  Tracks its own hit/miss/store/repair tallies for run
    metadata alongside the global ``serve.plane_*`` counters.
    """

    world_fp: Mapping
    config_hash: str
    seed: int
    universe: Sequence[str]
    n_shards: int = 1
    extra: Optional[Mapping] = None
    directory: Optional[PathLike] = None
    hits: int = 0
    misses: int = 0
    stores: int = 0
    repairs: int = 0
    _world_digest: str = field(default="", init=False)

    def __post_init__(self) -> None:
        self._world_digest = world_digest(self.world_fp)

    def key_for(self, protocol: str, origin: str, trial: int,
                shard_index: int = 0) -> str:
        payload = {
            "plane_version": PLANE_VERSION,
            "snapshot_format": FORMAT_VERSION,
            "world": dict(self.world_fp),
            "config": self.config_hash,
            "seed": int(self.seed),
            "protocol": protocol,
            "origin": origin,
            "trial": int(trial),
            "universe": list(self.universe),
            "shard": [int(shard_index), int(self.n_shards)],
        }
        if self.extra:
            payload["extra"] = dict(self.extra)
        blob = json.dumps(payload, sort_keys=True,
                          default=str).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def probe(self, protocol: str, origin: str, trial: int,
              shard_index: int = 0):
        """The cached :class:`~repro.sim.batch.PlaneSlice` or ``None``.

        ``None`` means *dispatch this unit*: either a clean miss
        (``serve.plane_miss``) or a corrupt entry (``serve.plane_repair``
        — the recompute's store overwrites it).  Wrong bytes are never
        returned: every segment is CRC-checked and the stored coordinate
        is cross-checked against the probe's.
        """
        from repro.sim.batch import PlaneSlice

        tel = _telemetry()
        key = self.key_for(protocol, origin, trial, shard_index)
        path = entry_path(key, self.directory)
        if not path.exists():
            self.misses += 1
            tel.count("serve.plane_miss", 1)
            return None
        try:
            snapshot = read_snapshot(path)
            if snapshot.kind != "planes":
                raise SnapshotError(f"{path}: snapshot holds a "
                                    f"{snapshot.kind!r}, not planes")
            meta = snapshot.meta
            if (meta.get("protocol"), meta.get("origin"),
                    meta.get("trial")) != (protocol, origin, int(trial)):
                raise SnapshotError(f"{path}: unit coordinate mismatch")
            n_rows = int(meta["n_rows"])
            accessible = np.unpackbits(
                snapshot.arrays["accessible"],
                count=n_rows).astype(bool)
            plane = PlaneSlice(
                protocol=protocol, trial=int(trial), origin=origin,
                ip=np.asarray(snapshot.arrays["ip"], dtype=np.uint32),
                as_index=np.asarray(snapshot.arrays["as_index"],
                                    dtype=np.int64),
                accessible=accessible)
        except (SnapshotError, OSError, ValueError, KeyError):
            self.repairs += 1
            tel.count("serve.plane_repair", 1)
            return None
        self.hits += 1
        tel.count("serve.plane_hit", 1)
        return plane

    def store(self, protocol: str, origin: str, trial: int, plane,
              shard_index: int = 0) -> Optional[Path]:
        """Persist one freshly computed plane unit; ``None`` on failure.

        Write failures never propagate — the plane is already in hand,
        and the cache must stay an accelerator, not a dependency.
        """
        tel = _telemetry()
        key = self.key_for(protocol, origin, trial, shard_index)
        path = entry_path(key, self.directory)
        meta = {
            "key": key,
            "protocol": protocol,
            "origin": origin,
            "trial": int(trial),
            "shard": [int(shard_index), int(self.n_shards)],
            "n_rows": int(len(plane.ip)),
            "world": self._world_digest,
            "universe": list(self.universe),
        }
        arrays = {
            "ip": np.asarray(plane.ip, dtype=np.uint32),
            "as_index": np.asarray(plane.as_index, dtype=np.int64),
            "accessible": np.packbits(
                np.asarray(plane.accessible, dtype=bool)),
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            write_snapshot(path, "planes", meta, arrays)
        except (OSError, TypeError, ValueError):
            return None
        self.stores += 1
        tel.count("serve.plane_store", 1)
        from repro.io import prune
        prune.maybe_prune()
        return path

    def stats(self) -> dict:
        """Run-metadata summary of this session's cache traffic."""
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "repairs": self.repairs}


def session_for(world, config, universe: Sequence[str],
                n_shards: int = 1,
                enabled: Optional[bool] = None,
                directory: Optional[PathLike] = None,
                extra: Optional[Mapping] = None
                ) -> Optional[PlaneCacheSession]:
    """A session for one run, or ``None`` when the cache is off.

    ``world`` is a monolithic :class:`~repro.sim.world.World` or a
    :class:`~repro.sim.shard.ShardedWorld` (anything
    :func:`~repro.telemetry.manifest.world_fingerprint` accepts);
    ``config`` is the campaign's *base* scan config — per-trial
    reseeding is captured by the trial index in each unit key.
    """
    if not cache_enabled(enabled):
        return None
    from repro.telemetry.manifest import config_hash, world_fingerprint

    return PlaneCacheSession(
        world_fp=world_fingerprint(world),
        config_hash=config_hash(config),
        seed=int(config.seed),
        universe=tuple(universe),
        n_shards=int(n_shards),
        extra=dict(extra) if extra else None,
        directory=directory)


# ----------------------------------------------------------------------
# Listing and maintenance
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PlaneEntry:
    """One cached plane unit, as listed by :func:`list_entries`."""

    key: str
    path: Path
    nbytes: int
    meta: Optional[dict] = None
    valid: bool = True


def list_entries(directory: Optional[PathLike] = None) -> List[PlaneEntry]:
    """Enumerate plane entries (manifest-only reads; no array I/O)."""
    root = cache_dir(directory)
    entries: List[PlaneEntry] = []
    if not root.is_dir():
        return entries
    for path in sorted(root.glob(f"*{_SUFFIX}")):
        nbytes = path.stat().st_size
        try:
            meta = read_snapshot_manifest(path)["meta"]
            entries.append(PlaneEntry(key=path.stem, path=path,
                                      nbytes=nbytes, meta=meta))
        except SnapshotError:
            entries.append(PlaneEntry(key=path.stem, path=path,
                                      nbytes=nbytes, valid=False))
    return entries


def by_world(entries: Sequence[PlaneEntry]) -> Dict[str, dict]:
    """Group plane entries by world digest → ``{count, nbytes}`` rows."""
    groups: Dict[str, dict] = {}
    for entry in entries:
        digest = (entry.meta or {}).get("world", "?")
        row = groups.setdefault(digest, {"count": 0, "nbytes": 0})
        row["count"] += 1
        row["nbytes"] += entry.nbytes
    return groups


def clear(directory: Optional[PathLike] = None) -> int:
    """Delete every plane entry; returns how many were removed."""
    removed = 0
    for entry in list_entries(directory):
        try:
            entry.path.unlink()
            removed += 1
        except OSError:
            pass
    return removed
