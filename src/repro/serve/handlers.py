"""Request model and compute path of the campaign service.

This module is the service's *logic* layer, deliberately free of any
transport detail: :func:`parse_request` turns a decoded JSON body into a
validated :class:`CampaignRequest`, and :func:`run_request` — the
blocking function the server dispatches to its worker pool — resolves
the request against the content-addressed result cache or computes it
with the existing pipeline (scenario build → ``run_campaign`` →
``full_report`` → cache write).  Keeping it transport-free is what lets
the fault-injection suite drive the exact production compute path with
injected failures, and the server swap in a faulty runner without
touching HTTP code.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.engine import ENGINES
from repro.core.report import full_report
from repro.origins import followup_origins, paper_origins
from repro.serve import resultcache
from repro.sim.campaign import (campaign_fingerprint, run_campaign,
                                run_plane_campaign)
from repro.sim.executor import BACKENDS
from repro.sim.scenario import (followup_scenario, paper_scenario,
                                paper_sharded_scenario)
from repro.sim.shard import run_sharded_campaign
from repro.telemetry.context import current as _telemetry
from repro.telemetry.manifest import config_hash, world_fingerprint
from repro.topology.asn import PROTOCOLS

#: Scenario name → (world, origins, config) builder.
SCENARIOS = {
    "paper": paper_scenario,
    "followup": followup_scenario,
}

#: Scenario name → its full origin-name universe, in scenario order.
#: Requests may select a *subset* of these, but the campaign is always
#: observed under the full universe — shared burst outages are drawn
#: against the complete origin list, so this is what makes a subset
#: request the exact restriction of the full campaign (and what lets
#: the plane cache reuse units across subsets).
SCENARIO_ORIGINS = {
    "paper": tuple(o.name for o in paper_origins()),
    "followup": tuple(o.name for o in followup_origins()),
}

#: Report surfaces: ``full`` renders :func:`repro.core.report.full_report`
#: from a materialized dataset; ``grid`` renders the streaming paper grid
#: (:meth:`~repro.core.streaming.StreamingCampaignResult.report`) and is
#: served incrementally through the plane cache.
REPORT_SURFACES = ("full", "grid")

#: Validation bounds: requests are untrusted input.
MAX_SEED = 2**32
MAX_TRIALS = 16
MIN_SCALE, MAX_SCALE = 1e-3, 2.0
MAX_SHARDS = 64


class BadRequest(Exception):
    """The request body is malformed or out of bounds (an HTTP 400)."""


@dataclass(frozen=True)
class CampaignRequest:
    """A validated campaign/report request.

    The *request spec* deliberately names scenario inputs (scenario,
    seed, scale) rather than raw worlds: the world itself is recovered
    through the content-addressed world cache, and the result key is
    then derived from the *built* world's fingerprint — so two specs
    that produce the same world share cache entries, and a spec whose
    world construction changed (new builder version) can never alias a
    stale result.
    """

    scenario: str = "paper"
    seed: int = 0
    scale: float = 0.05
    protocols: Tuple[str, ...] = PROTOCOLS
    n_trials: int = 3
    engine: Optional[str] = None
    #: ``> 1`` serves the campaign through the sharded streaming path
    #: (``paper_sharded_scenario`` + ``run_sharded_campaign``) — same
    #: bytes, bounded memory, one ``shard.stream`` span per shard.
    shards: int = 1
    #: ``None`` scans with every scenario origin; otherwise a subset of
    #: :data:`SCENARIO_ORIGINS` (normalized to scenario order).  Either
    #: way the campaign is observed under the full scenario universe.
    origins: Optional[Tuple[str, ...]] = None
    #: Report surface, one of :data:`REPORT_SURFACES`.
    report: str = "full"

    def canonical(self) -> str:
        """The canonical JSON identity (single-flight / memo key)."""
        return json.dumps({
            "scenario": self.scenario, "seed": self.seed,
            "scale": self.scale, "protocols": list(self.protocols),
            "n_trials": self.n_trials, "engine": self.engine,
            "shards": self.shards,
            "origins": list(self.origins) if self.origins else None,
            "report": self.report,
        }, sort_keys=True, separators=(",", ":"))

    def to_json(self) -> dict:
        return json.loads(self.canonical())


def parse_request(payload: object) -> CampaignRequest:
    """Validate an untrusted JSON body into a :class:`CampaignRequest`."""
    if not isinstance(payload, dict):
        raise BadRequest("request body must be a JSON object")
    unknown = set(payload) - {"scenario", "seed", "scale", "protocols",
                              "n_trials", "engine", "shards", "origins",
                              "report"}
    if unknown:
        raise BadRequest(f"unknown request fields: {sorted(unknown)}")

    scenario = payload.get("scenario", "paper")
    if scenario not in SCENARIOS:
        raise BadRequest(f"unknown scenario {scenario!r}; "
                         f"expected one of {sorted(SCENARIOS)}")

    seed = payload.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool) \
            or not 0 <= seed < MAX_SEED:
        raise BadRequest(f"seed must be an integer in [0, {MAX_SEED})")

    scale = payload.get("scale", 0.05)
    if isinstance(scale, int) and not isinstance(scale, bool):
        scale = float(scale)
    if not isinstance(scale, float) or not MIN_SCALE <= scale <= MAX_SCALE:
        raise BadRequest(
            f"scale must be a number in [{MIN_SCALE}, {MAX_SCALE}]")

    protocols = payload.get("protocols", list(PROTOCOLS))
    if not isinstance(protocols, (list, tuple)) or not protocols \
            or not all(p in PROTOCOLS for p in protocols) \
            or len(set(protocols)) != len(protocols):
        raise BadRequest(
            f"protocols must be a non-empty subset of {list(PROTOCOLS)}")
    # Normalize to canonical protocol order so request identity (and
    # therefore dedup/cache keys) ignores listing order.
    protocols = tuple(p for p in PROTOCOLS if p in protocols)

    n_trials = payload.get("n_trials", 3)
    if not isinstance(n_trials, int) or isinstance(n_trials, bool) \
            or not 1 <= n_trials <= MAX_TRIALS:
        raise BadRequest(f"n_trials must be an integer in [1, {MAX_TRIALS}]")

    engine = payload.get("engine")
    if engine is not None and engine not in ENGINES:
        raise BadRequest(f"unknown engine {engine!r}; "
                         f"expected one of {list(ENGINES)}")

    shards = payload.get("shards", 1)
    if not isinstance(shards, int) or isinstance(shards, bool) \
            or not 1 <= shards <= MAX_SHARDS:
        raise BadRequest(f"shards must be an integer in [1, {MAX_SHARDS}]")
    if shards > 1 and scenario != "paper":
        raise BadRequest("sharded serving is only available for the "
                         "'paper' scenario")

    origins = payload.get("origins")
    if origins is not None:
        universe = SCENARIO_ORIGINS[scenario]
        if not isinstance(origins, (list, tuple)) or not origins \
                or not all(o in universe for o in origins) \
                or len(set(origins)) != len(origins):
            raise BadRequest(
                f"origins must be a non-empty subset of {list(universe)}")
        # Normalize to scenario order: request identity (and cache keys)
        # must ignore listing order, like protocols.
        origins = tuple(o for o in universe if o in origins)
        if origins == universe:
            origins = None  # the full set is spelled "None"

    surface = payload.get("report", "full")
    if surface not in REPORT_SURFACES:
        raise BadRequest(f"unknown report surface {surface!r}; "
                         f"expected one of {list(REPORT_SURFACES)}")

    return CampaignRequest(scenario=scenario, seed=seed, scale=scale,
                           protocols=protocols, n_trials=n_trials,
                           engine=engine, shards=shards, origins=origins,
                           report=surface)


@dataclass
class ResultPayload:
    """What one compute produces: the report plus serving metadata.

    ``source`` records how the bytes were obtained — ``"hit"`` (cache
    read), ``"miss"`` (computed cold), or ``"repair"`` (corrupt entry
    detected, recomputed, overwritten).  The server maps these onto the
    ``serve.cache_*`` counters and response metadata.
    """

    key: str
    report: str
    meta: dict
    source: str
    #: Trace ID of the request whose compute produced these bytes (the
    #: server fills it in; cache hits reuse the requesting trace).
    trace: str = ""


@dataclass
class ServeState:
    """Shared, thread-safe compute-side state of one server instance.

    Holds a small LRU of built worlds (a warm request must not pay a
    world rebuild just to derive its cache key) and a memo from
    canonical request spec to result key (so a repeat request resolves
    its key without touching the world at all).  Both caches only ever
    *accelerate*: every value is a pure function of the spec.
    """

    cache_dir: Optional[str] = None
    executor: Optional[str] = None
    workers: Optional[int] = None
    #: Trial-batched observation kernels on the miss path.  ``None``
    #: defers to :func:`repro.sim.batch.batch_enabled` (on by default,
    #: ``REPRO_BATCH=0`` opts out).  Deliberately *not* part of the
    #: request spec: batching is an execution detail, so cache keys —
    #: and the served bytes — are identical either way.
    batch: Optional[bool] = None
    #: Plane-granular incremental recomputation on the ``grid``-surface
    #: miss path.  ``None`` defers to ``REPRO_PLANE_CACHE`` (on by
    #: default); ``False`` forces the non-incremental reference path.
    #: Like ``batch``, deliberately *not* part of the request spec —
    #: served bytes are identical either way.
    plane_cache: Optional[bool] = None
    world_lru: int = 4
    _worlds: "OrderedDict[str, tuple]" = field(default_factory=OrderedDict)
    _keys: Dict[str, str] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def __post_init__(self) -> None:
        if self.executor is not None and self.executor not in BACKENDS:
            raise ValueError(f"unknown executor backend {self.executor!r}; "
                             f"expected one of {BACKENDS}")

    def world_for(self, request: CampaignRequest) -> tuple:
        """(world, origins, config) for a request, via the world LRU.

        ``shards > 1`` builds a :class:`~repro.sim.shard.ShardedWorld`
        through :func:`~repro.sim.scenario.paper_sharded_scenario`
        instead of a monolithic world; the LRU key includes the shard
        count so the two never alias.
        """
        # sort_keys keeps the key canonical: semantically identical
        # requests must never split LRU slots on field ordering.
        lru_key = json.dumps(
            {"scenario": request.scenario, "seed": request.seed,
             "scale": request.scale, "shards": request.shards},
            sort_keys=True)
        with self._lock:
            hit = self._worlds.get(lru_key)
            if hit is not None:
                self._worlds.move_to_end(lru_key)
                return hit
        if request.shards > 1:
            built = paper_sharded_scenario(seed=request.seed,
                                           scale=request.scale,
                                           n_shards=request.shards)
        else:
            built = SCENARIOS[request.scenario](seed=request.seed,
                                                scale=request.scale)
        with self._lock:
            self._worlds[lru_key] = built
            while len(self._worlds) > self.world_lru:
                self._worlds.popitem(last=False)
        return built

    def result_key(self, request: CampaignRequest) -> str:
        """The content address of a request's result (memoized)."""
        spec = request.canonical()
        with self._lock:
            key = self._keys.get(spec)
        if key is not None:
            return key
        world, origins, config = self.world_for(request)
        selected, _ = _select_origins(request, origins)
        surface = "report" if request.report == "full" else "grid"
        key = campaign_fingerprint(
            world, config, selected, request.protocols, request.n_trials,
            extra={"engine": request.engine or "", "surface": surface})
        with self._lock:
            self._keys[spec] = key
        return key


def _select_origins(request: CampaignRequest, origins: tuple):
    """(selected origin subset, full universe names) for a request."""
    universe = tuple(o.name for o in origins)
    if request.origins is None:
        return tuple(origins), universe
    chosen = set(request.origins)
    return tuple(o for o in origins if o.name in chosen), universe


def run_request(request: CampaignRequest, state: ServeState) -> ResultPayload:
    """The blocking compute path: cache hit, or compute-and-repair.

    Runs on a worker thread under a request-local telemetry context (the
    server adopts its snapshot afterwards).  The served bytes are
    byte-identical between the hit and miss paths by construction: the
    miss path renders ``full_report`` once and stores those exact bytes;
    the hit path streams them back out of the CRC-checked snapshot.
    """
    tel = _telemetry()
    key = state.result_key(request)
    source = "miss"
    if resultcache.cache_enabled():
        try:
            entry = resultcache.load(key, state.cache_dir)
        except resultcache.CorruptEntry:
            source = "repair"
        else:
            if entry is not None:
                return ResultPayload(key=key, report=entry.report,
                                     meta=dict(entry.meta), source="hit")

    world, origins, config = state.world_for(request)
    selected, universe = _select_origins(request, origins)
    with tel.span("serve.compute", key=key[:12],
                  scenario=request.scenario, seed=request.seed,
                  shards=request.shards, surface=request.report):
        plane_stats = None
        if request.report == "grid":
            # Streaming grid surface: plane-granular and incremental —
            # the run probes the plane cache per (protocol, origin,
            # shard, trial) unit and dispatches only the misses.
            plane_extra = {"engine": request.engine or ""}
            dataset = None
            if request.shards > 1:
                result = run_sharded_campaign(
                    world, selected, config,
                    protocols=request.protocols,
                    n_trials=request.n_trials,
                    executor=state.executor, workers=state.workers,
                    batch=state.batch, origin_universe=universe,
                    plane_cache=state.plane_cache,
                    plane_extra=plane_extra, plane_dir=state.cache_dir)
            else:
                result = run_plane_campaign(
                    world, selected, config,
                    protocols=request.protocols,
                    n_trials=request.n_trials,
                    executor=state.executor, workers=state.workers,
                    batch=state.batch, origin_universe=universe,
                    plane_cache=state.plane_cache,
                    plane_extra=plane_extra, plane_dir=state.cache_dir)
            plane_stats = result.metadata.get("plane_cache")
            report = json.dumps(result.report(), sort_keys=True,
                                indent=2, default=str) + "\n"
        elif request.shards > 1:
            _, dataset = run_sharded_campaign(world, selected, config,
                                              protocols=request.protocols,
                                              n_trials=request.n_trials,
                                              executor=state.executor,
                                              workers=state.workers,
                                              batch=state.batch,
                                              origin_universe=universe,
                                              collect=True)
            report = full_report(dataset, engine=request.engine)
        else:
            dataset = run_campaign(world, selected, config,
                                   protocols=request.protocols,
                                   n_trials=request.n_trials,
                                   executor=state.executor,
                                   workers=state.workers,
                                   batch=state.batch,
                                   origin_universe=universe)
            report = full_report(dataset, engine=request.engine)
    meta = {
        "request": request.to_json(),
        "seed": int(config.seed),
        "config_hash": config_hash(config),
        "world": world_fingerprint(world),
        "origins": [o.name for o in selected],
        "protocols": list(request.protocols),
        "n_trials": request.n_trials,
        "engine": request.engine,
        "report_nbytes": len(report.encode("utf-8")),
    }
    if plane_stats is not None:
        meta["plane_cache"] = plane_stats
    if resultcache.cache_enabled():
        resultcache.store(key, report, dataset, meta=meta,
                          directory=state.cache_dir)
    return ResultPayload(key=key, report=report, meta=meta, source=source)
