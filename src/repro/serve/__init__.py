"""Campaign-as-a-service: the long-lived serving layer.

``repro serve`` runs campaigns behind an asyncio HTTP/JSON front with a
content-addressed result cache; see :mod:`repro.serve.server` for the
design and ``docs/SERVING.md`` for the operational story.  Submodules:

* :mod:`repro.serve.handlers` — request model + blocking compute path
* :mod:`repro.serve.resultcache` — content-addressed result cache
* :mod:`repro.serve.server` — asyncio server, flights, lifecycle
* :mod:`repro.serve.client` — stdlib client
"""

from repro.serve.handlers import (BadRequest, CampaignRequest,  # noqa: F401
                                  ServeState, parse_request, run_request)
from repro.serve.server import (ReproServer, ServeConfig,  # noqa: F401
                                ThreadedServer, serve_async)
