"""Shared bit-packing and popcount primitives for the analysis layer.

"Ten Years of ZMap" credits much of ZMap's practicality to treating the
address space as flat bit-addressable state; the analysis engine
(:mod:`repro.core.engine`) applies the same representation to presence
and accessibility sets.  This module is the single home of the byte
popcount table — previously a private copy in :mod:`repro.core.dataset`
— plus the pack/popcount helpers every bit-packed code path shares
(dataset probe-response counts, the packed multi-origin enumeration, the
/24 agreement statistic).

All helpers operate on uint8 *byte planes*: a boolean mask of n hosts
packs into ``ceil(n / 8)`` bytes (:func:`pack_bits`, big-endian bit
order as :func:`numpy.packbits` defines it), set algebra becomes
bytewise ``&``/``|``/``^``, and cardinalities come back via one table
lookup plus a sum (:func:`popcount_packed`).
"""

from __future__ import annotations

from typing import Union

import numpy as np

#: Popcount lookup for uint8 values: ``POPCOUNT[b]`` is the number of
#: set bits in byte ``b``.
POPCOUNT = np.array([bin(i).count("1") for i in range(256)],
                    dtype=np.uint8)

#: NumPy ≥ 2.0 ships a native popcount ufunc that beats the table
#: lookup ~6× on byte planes (it avoids the gather); fall back to the
#: table on older NumPy.
_BITWISE_COUNT = getattr(np, "bitwise_count", None)


def popcount_u8(values: np.ndarray) -> np.ndarray:
    """Per-byte set-bit counts (uint8 in, uint8 out, any shape).

    This is the raw table lookup — the right tool when the caller needs
    element-wise counts, e.g. SYN-ACKs per service from a probe mask.
    """
    return POPCOUNT[values]


def pack_bits(mask: np.ndarray) -> np.ndarray:
    """Pack a boolean mask into uint8 bit planes along the last axis.

    The last axis shrinks from ``n`` to ``ceil(n / 8)``; trailing pad
    bits are zero, so unions and popcounts over packed rows need no
    masking.
    """
    return np.packbits(np.asarray(mask, dtype=bool), axis=-1)


def popcount_packed(packed: np.ndarray) -> Union[int, np.ndarray]:
    """Total set bits along the last axis of a packed bit plane.

    Returns a Python int for 1-D input and an int64 array of the leading
    axes otherwise, so ``popcount_packed(pack_bits(mask))`` equals
    ``mask.sum()`` exactly for any boolean ``mask``.
    """
    if _BITWISE_COUNT is not None:
        per_byte = _BITWISE_COUNT(packed)
    else:
        per_byte = POPCOUNT[packed]
    counts = per_byte.sum(axis=-1, dtype=np.int64)
    if counts.ndim == 0:
        return int(counts)
    return counts


def count_true(mask: np.ndarray) -> int:
    """Cardinality of a boolean mask (any shape) via the popcount table."""
    return int(popcount_packed(pack_bits(
        np.asarray(mask, dtype=bool).ravel())))
