"""Miss classification: transient vs long-term vs unknown, host vs network.

Implements §3's taxonomy exactly:

* A host is **transiently** inaccessible from an origin in a trial when it
  was accessible from some other origin in the same trial (it is in ground
  truth) *and* accessible from this origin in another trial.
* A host inaccessible from the origin in *every* trial it appears in is
  **long-term** inaccessible (requires presence in ≥2 trials).
* A host present in only one trial cannot be told apart from churn →
  **unknown**.

Misses are further split into *network-level* and *host-level*: a /24 with
at least two ground-truth hosts whose present members all share the same
category in a trial counts as a single network-level unit; everything else
is host-level.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.dataset import CampaignDataset
from repro.core.engine import (
    AnalysisContext,
    classifications_for,
    presence_for,
)
from repro.core.ground_truth import PresenceMatrix
from repro.net.ipv4 import slash24_array


class MissCategory(enum.IntEnum):
    """Per-(host, trial) classification relative to one origin."""

    NOT_PRESENT = 0   # host absent from this trial's ground truth
    ACCESSIBLE = 1
    TRANSIENT = 2
    LONG_TERM = 3
    UNKNOWN = 4


@dataclass
class Classification:
    """Full per-trial classification of one origin's view of one protocol."""

    protocol: str
    origin: str
    trials: List[int]
    ips: np.ndarray              # uint32 (n,)
    as_index: np.ndarray         # int64 (n,)
    country_index: np.ndarray    # int64 (n,) true location
    geo_index: np.ndarray        # int64 (n,) observed GeoIP location
    category: np.ndarray         # uint8 (t, n) of MissCategory values
    present: np.ndarray          # bool (t, n)

    # ------------------------------------------------------------------
    # Per-trial views
    # ------------------------------------------------------------------

    def mask(self, trial_pos: int, category: MissCategory) -> np.ndarray:
        return self.category[trial_pos] == int(category)

    def counts(self, trial_pos: int) -> Dict[MissCategory, int]:
        row = self.category[trial_pos]
        return {cat: int((row == int(cat)).sum()) for cat in MissCategory}

    def missing_mask(self, trial_pos: int) -> np.ndarray:
        """Hosts present but not accessible in this trial."""
        row = self.category[trial_pos]
        return ((row == int(MissCategory.TRANSIENT))
                | (row == int(MissCategory.LONG_TERM))
                | (row == int(MissCategory.UNKNOWN)))

    # ------------------------------------------------------------------
    # Cross-trial views
    # ------------------------------------------------------------------

    def ever_category(self, category: MissCategory) -> np.ndarray:
        """Hosts with the category in at least one trial."""
        return np.any(self.category == int(category), axis=0)

    def long_term_mask(self) -> np.ndarray:
        """Hosts long-term inaccessible from this origin."""
        return self.ever_category(MissCategory.LONG_TERM)

    def network_split(self, trial_pos: int,
                      category: MissCategory) -> Dict[str, int]:
        """Split one category's hosts into network- vs host-level misses.

        A /24 counts as a network unit when it has ≥2 present ground-truth
        hosts in the trial and every one of them carries the same category.
        Hosts inside such /24s are "network" misses; the rest are "host"
        misses.  Counts are hosts, matching the paper's Figure 2 axes.
        """
        present_row = self.present[trial_pos]
        cat_row = self.category[trial_pos]
        target = cat_row == int(category)
        if not np.any(target):
            return {"host": 0, "network": 0}

        blocks = slash24_array(self.ips)
        present_idx = np.flatnonzero(present_row)
        if len(present_idx) == 0:
            return {"host": 0, "network": 0}
        block_of_present = blocks[present_idx]
        order = np.argsort(block_of_present, kind="stable")
        sorted_blocks = block_of_present[order]
        sorted_idx = present_idx[order]
        boundaries = np.flatnonzero(
            np.diff(sorted_blocks.astype(np.int64)) != 0) + 1
        starts = np.concatenate([[0], boundaries])
        ends = np.concatenate([boundaries, [len(sorted_blocks)]])

        network_hosts = 0
        host_hosts = 0
        for start, end in zip(starts, ends):
            members = sorted_idx[start:end]
            member_cats = cat_row[members]
            in_target = member_cats == int(category)
            n_target = int(in_target.sum())
            if n_target == 0:
                continue
            if len(members) >= 2 and np.all(member_cats == member_cats[0]):
                network_hosts += n_target
            else:
                host_hosts += n_target
        return {"host": host_hosts, "network": network_hosts}


def classify_misses(dataset: CampaignDataset, protocol: str, origin: str,
                    presence: Optional[PresenceMatrix] = None,
                    single_probe: bool = False,
                    context: Optional[AnalysisContext] = None
                    ) -> Classification:
    """Classify every (host, trial) for one origin per §3's rules.

    Pass ``presence`` (or a shared ``context``) when classifying several
    origins: with neither, every call rebuilds the aligned presence cube
    from scratch — the rebuild shows up in the
    ``analysis.presence_build`` telemetry counter.
    """
    presence = presence_for(dataset, protocol, single_probe=single_probe,
                            presence=presence, context=context)
    oi = presence.origin_row(origin)
    acc = presence.accessible[oi]          # (t, n)
    present = presence.present             # (t, n)
    participated = presence.participated[oi]

    # Only trials the origin actually scanned count toward its record.
    trial_rows = np.flatnonzero(participated)
    present_o = present[trial_rows]
    acc_o = acc[trial_rows]

    n_present = present_o.sum(axis=0)
    n_acc = acc_o.sum(axis=0)
    missed_everywhere = (n_acc == 0)

    t = len(trial_rows)
    n = presence.n_hosts()
    category = np.full((t, n), int(MissCategory.NOT_PRESENT),
                       dtype=np.uint8)
    for ti in range(t):
        row = category[ti]
        p = present_o[ti]
        a = acc_o[ti]
        row[p & a] = int(MissCategory.ACCESSIBLE)
        miss = p & ~a
        row[miss & (n_present == 1)] = int(MissCategory.UNKNOWN)
        multi = miss & (n_present >= 2)
        row[multi & missed_everywhere] = int(MissCategory.LONG_TERM)
        row[multi & ~missed_everywhere] = int(MissCategory.TRANSIENT)

    return Classification(
        protocol=protocol, origin=origin,
        trials=[presence.trials[i] for i in trial_rows],
        ips=presence.ips, as_index=presence.as_index,
        country_index=presence.country_index,
        geo_index=presence.geo_index,
        category=category, present=present_o)


def breakdown_by_origin(dataset: CampaignDataset, protocol: str,
                        origins: Optional[Sequence[str]] = None,
                        single_probe: bool = False,
                        presence: Optional[PresenceMatrix] = None,
                        context: Optional[AnalysisContext] = None
                        ) -> Dict[str, Classification]:
    """One classification per origin — the raw material of Figure 2.

    With a shared ``context``, the presence cube is built (and each
    origin classified) at most once per dataset, no matter how many
    analyses call this.
    """
    return classifications_for(dataset, protocol, origins=origins,
                               single_probe=single_probe,
                               presence=presence, context=context)


def longterm_l4_breakdown(dataset: CampaignDataset, protocol: str,
                          origins: Optional[Sequence[str]] = None,
                          presence: Optional[PresenceMatrix] = None,
                          context: Optional[AnalysisContext] = None
                          ) -> Dict[str, Dict[str, float]]:
    """How long-term misses look on the wire: silent vs L4-responsive.

    §4 reports that 92 % of long-term inaccessible HTTP(S) hosts are
    unresponsive at Layer 4 (firewalled/blocked) while only 34 % of SSH
    ones are (SSH blocking acts above TCP).  For each origin this returns
    the fractions of its long-term (host, trial) misses that were silent
    at L4 vs responded and failed at L7.
    """
    from repro.core.dataset import align_ips
    from repro.core.records import L7Status

    classifications = breakdown_by_origin(dataset, protocol,
                                          origins=origins,
                                          presence=presence,
                                          context=context)
    out: Dict[str, Dict[str, float]] = {}
    for origin, cls in classifications.items():
        silent = 0
        responsive = 0
        for ti, trial in enumerate(cls.trials):
            table = dataset.trial_data(protocol, trial)
            pos = align_ips(cls.ips, table.ip)
            mask = cls.mask(ti, MissCategory.LONG_TERM) & (pos >= 0)
            idx = pos[np.flatnonzero(mask)]
            row = table.origin_row(origin)
            l7 = table.l7[row][idx]
            silent += int((l7 == int(L7Status.NO_L4)).sum())
            responsive += int((l7 != int(L7Status.NO_L4)).sum())
        total = silent + responsive
        out[origin] = {
            "no_l4": silent / total if total else float("nan"),
            "l4_responsive": responsive / total if total else float("nan"),
        }
    return out


def figure2_rows(dataset: CampaignDataset, protocol: str,
                 origins: Optional[Sequence[str]] = None,
                 context: Optional[AnalysisContext] = None
                 ) -> List[Dict[str, object]]:
    """Figure 2's bars: per (origin, trial), miss counts by category×level."""
    rows: List[Dict[str, object]] = []
    for origin, cls in breakdown_by_origin(
            dataset, protocol, origins=origins, context=context).items():
        for trial_pos, trial in enumerate(cls.trials):
            transient = cls.network_split(trial_pos, MissCategory.TRANSIENT)
            long_term = cls.network_split(trial_pos, MissCategory.LONG_TERM)
            unknown = cls.counts(trial_pos)[MissCategory.UNKNOWN]
            rows.append({
                "origin": origin,
                "trial": trial,
                "transient_host": transient["host"],
                "transient_network": transient["network"],
                "long_term_host": long_term["host"],
                "long_term_network": long_term["network"],
                "unknown": unknown,
            })
    return rows
