"""SSH-specific analyses (§6, Figures 12–14).

SSH misses hosts for reasons HTTP(S) does not: Alibaba-style network-wide
temporal RST blocking and OpenSSH ``MaxStartups`` probabilistic refusal.
Both leave wire-visible signatures this module keys on:

* temporal blocking — the TCP handshake completes and the server
  immediately RSTs, network-wide, after some point in the scan;
* probabilistic blocking — a host explicitly closes after TCP for at least
  one origin while completing the SSH handshake for another in the same
  trial (the paper's operational definition).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.classification import (
    MissCategory,
    breakdown_by_origin,
)
from repro.core.dataset import CampaignDataset, TrialData, align_ips
from repro.core.records import L7Status

#: An AS is called "temporally blocking" for an (origin, trial) when at
#: least this fraction of its L4-responsive SSH hosts RST after the TCP
#: handshake — the network-wide signature, far above per-host noise.
TEMPORAL_AS_RST_THRESHOLD = 0.25
#: ... and it has at least this many observed hosts.
TEMPORAL_AS_MIN_HOSTS = 30


def rst_after_handshake(trial_data: TrialData, origin: str) -> np.ndarray:
    """Hosts answering this origin with RST right after the handshake."""
    row = trial_data.origin_row(origin)
    return trial_data.l7[row] == int(L7Status.L4_CLOSE_RST)


def explicit_close(trial_data: TrialData, origin: str) -> np.ndarray:
    """Hosts explicitly closing (RST or FIN-ACK) after TCP completes."""
    row = trial_data.origin_row(origin)
    l7 = trial_data.l7[row]
    return ((l7 == int(L7Status.L4_CLOSE_RST))
            | (l7 == int(L7Status.L4_CLOSE_FIN)))


def temporal_blocking_ases(trial_data: TrialData, origin: str,
                           min_hosts: int = TEMPORAL_AS_MIN_HOSTS,
                           threshold: float = TEMPORAL_AS_RST_THRESHOLD
                           ) -> List[int]:
    """ASes showing the network-wide *temporal* RST signature.

    Two conditions distinguish an Alibaba-style block from per-host
    MaxStartups refusals (which also produce RSTs, but uniformly over the
    scan):

    * at least ``threshold`` of the AS's L4-responsive hosts RST, and
    * the RSTs have a temporal onset — hosts probed late in the scan RST
      far more often than hosts probed early (Figure 12's step shape).
    """
    rst = rst_after_handshake(trial_data, origin)
    responsive = trial_data.l4_responsive(origin)
    row = trial_data.origin_row(origin)
    times = trial_data.time[row]
    n_as = int(trial_data.as_index.max()) + 1 \
        if len(trial_data.as_index) else 0
    rst_counts = np.bincount(trial_data.as_index[rst], minlength=n_as)
    resp_counts = np.bincount(trial_data.as_index[responsive],
                              minlength=n_as)
    out = []
    for a in np.flatnonzero(rst_counts):
        if resp_counts[a] < min_hosts:
            continue
        if rst_counts[a] / resp_counts[a] < threshold:
            continue
        members = responsive & (trial_data.as_index == a)
        member_times = times[members]
        member_rst = rst[members]
        cutoff = np.median(member_times)
        early = member_rst[member_times <= cutoff]
        late = member_rst[member_times > cutoff]
        if len(early) == 0 or len(late) == 0:
            continue
        early_rate = float(early.mean())
        late_rate = float(late.mean())
        if late_rate >= 2.0 * max(early_rate, 0.05):
            out.append(int(a))
    return out


def temporal_blocking_timeseries(trial_data: TrialData,
                                 as_indices: Sequence[int],
                                 bin_s: float = 3600.0
                                 ) -> Dict[str, np.ndarray]:
    """Figure 12: per-origin hourly RST fraction within the given ASes."""
    member = np.isin(trial_data.as_index, np.asarray(list(as_indices)))
    out: Dict[str, np.ndarray] = {}
    for origin in trial_data.origins:
        row = trial_data.origin_row(origin)
        times = trial_data.time[row][member]
        l7 = trial_data.l7[row][member]
        responsive = l7 != int(L7Status.NO_L4)
        rst = l7 == int(L7Status.L4_CLOSE_RST)
        if not np.any(responsive):
            out[origin] = np.array([])
            continue
        bins = (times / bin_s).astype(np.int64)
        n_bins = int(bins.max()) + 1
        rst_counts = np.bincount(bins[rst], minlength=n_bins)
        resp_counts = np.bincount(bins[responsive], minlength=n_bins)
        with np.errstate(divide="ignore", invalid="ignore"):
            out[origin] = np.where(resp_counts > 0,
                                   rst_counts / np.maximum(resp_counts, 1),
                                   np.nan)
    return out


def probabilistic_blocking_ips(trial_data: TrialData,
                               origins: Optional[Sequence[str]] = None
                               ) -> np.ndarray:
    """IPs showing the §6 probabilistic-blocking signature in one trial.

    Operational definition: the host explicitly closed after the TCP
    handshake for ≥1 origin *and* completed the SSH handshake for ≥1
    other origin — ruling out both dead hosts and network-wide blocks.
    Returns a boolean mask over ``trial_data.ip``.
    """
    chosen = [o for o in (origins or trial_data.origins)
              if trial_data.has_origin(o)]
    closed = np.zeros(len(trial_data.ip), dtype=bool)
    succeeded = np.zeros(len(trial_data.ip), dtype=bool)
    for origin in chosen:
        closed |= explicit_close(trial_data, origin)
        succeeded |= trial_data.accessible(origin)
    return closed & succeeded


@dataclass
class SSHBreakdown:
    """Figure 14: why each origin misses SSH hosts, per trial."""

    origins: List[str]
    trials: List[int]
    #: counts[origin][trial] → {"temporal", "probabilistic", "transient",
    #: "long_term", "unknown"} host counts.
    counts: Dict[str, Dict[int, Dict[str, int]]]

    def totals(self, origin: str) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for per_trial in self.counts[origin].values():
            for key, value in per_trial.items():
                out[key] = out.get(key, 0) + value
        return out


def ssh_breakdown(dataset: CampaignDataset,
                  origins: Optional[Sequence[str]] = None,
                  protocol: str = "ssh",
                  temporal_min_hosts: int = TEMPORAL_AS_MIN_HOSTS,
                  context: Optional["AnalysisContext"] = None
                  ) -> SSHBreakdown:
    """Attribute every missing SSH (host, trial) to its §6 mechanism.

    Precedence: temporal (network-wide RST signature) > probabilistic
    (explicit close + success elsewhere) > the §3 classification.
    """
    classifications = breakdown_by_origin(dataset, protocol,
                                          origins=origins, context=context)
    chosen = list(classifications.keys())
    first = classifications[chosen[0]]
    trials = first.trials

    counts: Dict[str, Dict[int, Dict[str, int]]] = {o: {} for o in chosen}
    for ti, trial in enumerate(trials):
        table = dataset.trial_data(protocol, trial)
        pos = align_ips(first.ips, table.ip)
        in_table = pos >= 0
        prob_mask_table = probabilistic_blocking_ips(table)
        for origin in chosen:
            cls = classifications[origin]
            missing = cls.missing_mask(ti) & in_table
            idx = np.flatnonzero(missing)
            table_pos = pos[idx]

            temporal_as = set(temporal_blocking_ases(
                table, origin, min_hosts=temporal_min_hosts))
            rst = rst_after_handshake(table, origin)
            is_temporal = np.array(
                [int(cls.as_index[i]) in temporal_as and rst[p]
                 for i, p in zip(idx, table_pos)], dtype=bool) \
                if len(idx) else np.zeros(0, dtype=bool)

            closed_here = explicit_close(table, origin)
            is_prob = np.array(
                [prob_mask_table[p] and closed_here[p]
                 for p in table_pos], dtype=bool) \
                if len(idx) else np.zeros(0, dtype=bool)
            is_prob &= ~is_temporal

            rest = ~(is_temporal | is_prob)
            row = cls.category[ti][idx]
            bucket = {
                "temporal": int(is_temporal.sum()),
                "probabilistic": int(is_prob.sum()),
                "transient": int(
                    (rest & (row == int(MissCategory.TRANSIENT))).sum()),
                "long_term": int(
                    (rest & (row == int(MissCategory.LONG_TERM))).sum()),
                "unknown": int(
                    (rest & (row == int(MissCategory.UNKNOWN))).sum()),
            }
            counts[origin][trial] = bucket
    return SSHBreakdown(origins=chosen, trials=list(trials), counts=counts)


def close_style_shares(dataset: CampaignDataset, protocol: str,
                       origins: Optional[Sequence[str]] = None,
                       exclude_as: Sequence[int] = ()
                       ) -> Dict[str, float]:
    """Among transient misses, shares by observed wire behaviour (§6).

    Returns fractions of transiently missed (host, trial, origin)
    observations that were silent drops after TCP, explicit closes, or
    fully unresponsive at L4.  The paper: 57 % of transiently missed SSH
    hosts close explicitly (excluding Alibaba) vs. 70 % of HTTP(S) misses
    dropping silently.
    """
    classifications = breakdown_by_origin(dataset, protocol,
                                          origins=origins)
    chosen = list(classifications.keys())
    first = classifications[chosen[0]]
    excluded = set(int(a) for a in exclude_as)

    drop = close = no_l4 = 0
    for ti, trial in enumerate(first.trials):
        table = dataset.trial_data(protocol, trial)
        pos = align_ips(first.ips, table.ip)
        for origin in chosen:
            cls = classifications[origin]
            mask = cls.mask(ti, MissCategory.TRANSIENT) & (pos >= 0)
            if excluded:
                keep = np.array([int(a) not in excluded
                                 for a in cls.as_index])
                mask &= keep
            idx = pos[np.flatnonzero(mask)]
            row = table.origin_row(origin)
            l7 = table.l7[row][idx]
            drop += int((l7 == int(L7Status.L4_DROP)).sum())
            close += int(((l7 == int(L7Status.L4_CLOSE_FIN))
                          | (l7 == int(L7Status.L4_CLOSE_RST))).sum())
            no_l4 += int((l7 == int(L7Status.NO_L4)).sum())
    total = drop + close + no_l4
    if total == 0:
        return {"drop": float("nan"), "close": float("nan"),
                "no_l4": float("nan")}
    return {"drop": drop / total, "close": close / total,
            "no_l4": no_l4 / total}


def probabilistic_longterm_fraction(dataset: CampaignDataset,
                                    origins: Optional[Sequence[str]] = None,
                                    protocol: str = "ssh") -> float:
    """Fraction of probabilistic-blocking IPs that *look* long-term (§6).

    The paper estimates ~30 %: their refusal probability is high enough to
    miss an origin in every trial, masquerading as long-term blocking.
    """
    classifications = breakdown_by_origin(dataset, protocol,
                                          origins=origins)
    chosen = list(classifications.keys())
    first = classifications[chosen[0]]

    prob_universe = np.zeros(len(first.ips), dtype=bool)
    for trial in first.trials:
        table = dataset.trial_data(protocol, trial)
        mask = probabilistic_blocking_ips(table)
        pos = align_ips(first.ips, table.ip)
        found = pos >= 0
        prob_universe[found] |= mask[pos[found]]

    if not np.any(prob_universe):
        return float("nan")
    long_term_any = np.zeros(len(first.ips), dtype=bool)
    for origin in chosen:
        long_term_any |= classifications[origin].long_term_mask()
    return float((prob_universe & long_term_any).sum()
                 / prob_universe.sum())
