"""Bootstrap confidence intervals for coverage statistics.

The paper reports point estimates over a full-Internet sample, where
binomial noise is negligible.  Users running this pipeline on smaller
datasets (a sampled scan, a single /8, our 1/1000-scale world) need error
bars: this module provides host-resampling bootstrap CIs for per-origin
coverage and for coverage *differences* between origins — the quantity
that decides "is origin A actually better than origin B here?".

Resampling is driven by the deterministic counter RNG, so intervals are
reproducible for a given seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.dataset import TrialData
from repro.rng import CounterRNG


@dataclass(frozen=True)
class Interval:
    """A bootstrap percentile interval around a point estimate."""

    point: float
    low: float
    high: float
    confidence: float

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def width(self) -> float:
        return self.high - self.low


def _resample_indices(rng: CounterRNG, n: int, replicate: int
                      ) -> np.ndarray:
    """Indices for one bootstrap replicate (sample n with replacement)."""
    draws = rng.bits_array(np.arange(n, dtype=np.uint64), replicate)
    return (draws % np.uint64(n)).astype(np.int64)


def coverage_interval(trial_data: TrialData, origin: str,
                      replicates: int = 500,
                      confidence: float = 0.95,
                      seed: int = 0,
                      single_probe: bool = False) -> Interval:
    """Bootstrap CI for one origin's coverage of one trial's ground truth.

    Hosts (the ground-truth universe) are resampled with replacement;
    each replicate recomputes coverage over the resampled universe.
    """
    if replicates < 10:
        raise ValueError("need at least 10 replicates")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    truth = trial_data.ground_truth(single_probe=single_probe)
    seen = trial_data.accessible(origin, single_probe=single_probe)[truth]
    n = int(truth.sum())
    if n == 0:
        return Interval(float("nan"), float("nan"), float("nan"),
                        confidence)
    point = float(seen.mean())

    rng = CounterRNG(seed, "bootstrap-coverage", origin,
                     trial_data.protocol, trial_data.trial)
    stats = np.empty(replicates)
    for r in range(replicates):
        idx = _resample_indices(rng, n, r)
        stats[r] = seen[idx].mean()
    alpha = (1.0 - confidence) / 2.0
    low, high = np.percentile(stats, [100 * alpha, 100 * (1 - alpha)])
    return Interval(point=point, low=float(low), high=float(high),
                    confidence=confidence)


def coverage_difference_interval(trial_data: TrialData, origin_a: str,
                                 origin_b: str, replicates: int = 500,
                                 confidence: float = 0.95,
                                 seed: int = 0) -> Interval:
    """Bootstrap CI for coverage(A) − coverage(B) on paired hosts.

    Pairing by host preserves the correlation between the origins'
    outcomes, giving much tighter intervals than differencing two
    independent CIs — the right tool for "did origin A really beat B?".
    An interval excluding 0 is a significant difference.
    """
    truth = trial_data.ground_truth()
    a = trial_data.accessible(origin_a)[truth].astype(np.float64)
    b = trial_data.accessible(origin_b)[truth].astype(np.float64)
    n = int(truth.sum())
    if n == 0:
        return Interval(float("nan"), float("nan"), float("nan"),
                        confidence)
    delta = a - b
    point = float(delta.mean())

    rng = CounterRNG(seed, "bootstrap-diff", origin_a, origin_b,
                     trial_data.protocol, trial_data.trial)
    stats = np.empty(replicates)
    for r in range(replicates):
        idx = _resample_indices(rng, n, r)
        stats[r] = delta[idx].mean()
    alpha = (1.0 - confidence) / 2.0
    low, high = np.percentile(stats, [100 * alpha, 100 * (1 - alpha)])
    return Interval(point=point, low=float(low), high=float(high),
                    confidence=confidence)


def coverage_intervals(trial_data: TrialData,
                       origins: Optional[Sequence[str]] = None,
                       replicates: int = 500, confidence: float = 0.95,
                       seed: int = 0) -> Dict[str, Interval]:
    """Per-origin coverage CIs for one trial."""
    chosen = [o for o in (origins or trial_data.origins)
              if trial_data.has_origin(o)]
    return {origin: coverage_interval(trial_data, origin,
                                      replicates=replicates,
                                      confidence=confidence, seed=seed)
            for origin in chosen}
