"""Bootstrap confidence intervals for coverage statistics.

The paper reports point estimates over a full-Internet sample, where
binomial noise is negligible.  Users running this pipeline on smaller
datasets (a sampled scan, a single /8, our 1/1000-scale world) need error
bars: this module provides host-resampling bootstrap CIs for per-origin
coverage and for coverage *differences* between origins — the quantity
that decides "is origin A actually better than origin B here?".

Resampling is driven by the deterministic counter RNG, so intervals are
reproducible for a given seed.  The ``packed`` engine pre-derives one
stream key per replicate and evaluates each replicate's draw vector
through preallocated buffers (:func:`repro.rng.keyed_bits_into`): no
per-replicate allocations, no redundant copies, and a working set that
stays cache-resident — the win over the reference per-replicate loop
is pure overhead elimination, since both perform the same splitmix64
arithmetic.  Both produce bit-identical intervals: every replicate
statistic reduces the same values in the same order, and the boolean
case is an exact small-integer count in float64.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.dataset import TrialData
from repro.core.engine import resolve_engine
from repro.rng import CounterRNG, keyed_bits_into


@dataclass(frozen=True)
class Interval:
    """A bootstrap percentile interval around a point estimate."""

    point: float
    low: float
    high: float
    confidence: float

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def width(self) -> float:
        return self.high - self.low


def _resample_indices(rng: CounterRNG, n: int, replicate: int
                      ) -> np.ndarray:
    """Indices for one bootstrap replicate (sample n with replacement)."""
    draws = rng.bits_array(np.arange(n, dtype=np.uint64), replicate)
    return (draws % np.uint64(n)).astype(np.int64)


def _replicate_stats(rng: CounterRNG, values: np.ndarray, n: int,
                     replicates: int, engine: str) -> np.ndarray:
    """Per-replicate resampled means of ``values`` (length n).

    The packed engine derives one stream key per replicate — the same
    fold of the replicate counter the reference path performs — then
    draws each replicate's index vector through two preallocated uint64
    buffers (:func:`repro.rng.keyed_bits_into`), reduces in place, and
    never allocates inside the loop.  Bit-identical to the reference:
    same draws, same reduction order (boolean values reduce to an exact
    integer count; float values reduce with the same pairwise sum
    ``mean()`` uses), same final division by ``n``.
    """
    stats = np.empty(replicates)
    if engine == "reference":
        for r in range(replicates):
            idx = _resample_indices(rng, n, r)
            stats[r] = values[idx].mean()
        return stats
    keys = np.array([rng.derive(r).key for r in range(replicates)],
                    dtype=np.uint64)
    counters = np.arange(n, dtype=np.uint64)
    draws = np.empty(n, dtype=np.uint64)
    scratch = np.empty(n, dtype=np.uint64)
    # After the modulo every draw is < n < 2**63, so reading the buffer
    # as int64 is free and skips the uint64→intp cast fancy indexing
    # would otherwise make per replicate.
    index_view = draws.view(np.int64)
    n_u64 = np.uint64(n)
    boolean = values.dtype == np.bool_
    for r, key in enumerate(keys):
        keyed_bits_into(key, counters, draws, scratch)
        np.mod(draws, n_u64, out=draws)
        if boolean:
            stats[r] = np.count_nonzero(values[index_view])
        else:
            stats[r] = values[index_view].sum()
    stats /= n
    return stats


def _percentile_interval(point: float, stats: np.ndarray,
                         confidence: float) -> Interval:
    alpha = (1.0 - confidence) / 2.0
    low, high = np.percentile(stats, [100 * alpha, 100 * (1 - alpha)])
    return Interval(point=point, low=float(low), high=float(high),
                    confidence=confidence)


def coverage_interval(trial_data: TrialData, origin: str,
                      replicates: int = 500,
                      confidence: float = 0.95,
                      seed: int = 0,
                      single_probe: bool = False,
                      engine: Optional[str] = None) -> Interval:
    """Bootstrap CI for one origin's coverage of one trial's ground truth.

    Hosts (the ground-truth universe) are resampled with replacement;
    each replicate recomputes coverage over the resampled universe.
    """
    if replicates < 10:
        raise ValueError("need at least 10 replicates")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    engine = resolve_engine(engine)
    truth = trial_data.ground_truth(single_probe=single_probe)
    seen = trial_data.accessible(origin, single_probe=single_probe)[truth]
    n = int(truth.sum())
    if n == 0:
        return Interval(float("nan"), float("nan"), float("nan"),
                        confidence)
    point = float(seen.mean())

    rng = CounterRNG(seed, "bootstrap-coverage", origin,
                     trial_data.protocol, trial_data.trial)
    stats = _replicate_stats(rng, seen, n, replicates, engine)
    return _percentile_interval(point, stats, confidence)


def coverage_difference_interval(trial_data: TrialData, origin_a: str,
                                 origin_b: str, replicates: int = 500,
                                 confidence: float = 0.95,
                                 seed: int = 0,
                                 engine: Optional[str] = None) -> Interval:
    """Bootstrap CI for coverage(A) − coverage(B) on paired hosts.

    Pairing by host preserves the correlation between the origins'
    outcomes, giving much tighter intervals than differencing two
    independent CIs — the right tool for "did origin A really beat B?".
    An interval excluding 0 is a significant difference.
    """
    engine = resolve_engine(engine)
    truth = trial_data.ground_truth()
    a = trial_data.accessible(origin_a)[truth].astype(np.float64)
    b = trial_data.accessible(origin_b)[truth].astype(np.float64)
    n = int(truth.sum())
    if n == 0:
        return Interval(float("nan"), float("nan"), float("nan"),
                        confidence)
    delta = a - b
    point = float(delta.mean())

    rng = CounterRNG(seed, "bootstrap-diff", origin_a, origin_b,
                     trial_data.protocol, trial_data.trial)
    stats = _replicate_stats(rng, delta, n, replicates, engine)
    return _percentile_interval(point, stats, confidence)


def coverage_intervals(trial_data: TrialData,
                       origins: Optional[Sequence[str]] = None,
                       replicates: int = 500, confidence: float = 0.95,
                       seed: int = 0,
                       engine: Optional[str] = None) -> Dict[str, Interval]:
    """Per-origin coverage CIs for one trial."""
    chosen = [o for o in (origins or trial_data.origins)
              if trial_data.has_origin(o)]
    return {origin: coverage_interval(trial_data, origin,
                                      replicates=replicates,
                                      confidence=confidence, seed=seed,
                                      engine=engine)
            for origin in chosen}
