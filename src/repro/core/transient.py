"""Transient-inaccessibility analyses (§5, Figures 8–9, Table 3).

All rates here are per (origin, destination AS): the fraction of an AS's
present ground-truth hosts an origin transiently missed, averaged or
compared across trials.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.classification import MissCategory, breakdown_by_origin
from repro.core.dataset import CampaignDataset
from repro.core.engine import AnalysisContext


@dataclass
class TransientRates:
    """Per-(origin, AS, trial) transient loss rates for one protocol."""

    protocol: str
    origins: List[str]
    n_trials: int
    #: rates[o, t, a] — transient misses / present hosts for AS a.
    rates: np.ndarray
    #: present[t, a] — classifiable present hosts of AS a in trial t.
    present: np.ndarray
    #: missing[o, t, a] — transient miss counts.
    missing: np.ndarray

    def n_as(self) -> int:
        return self.rates.shape[2]

    def mean_rates(self) -> np.ndarray:
        """(o, a) trial-averaged transient rates."""
        return self.rates.mean(axis=1)

    def as_spread(self, min_hosts: int = 2) -> np.ndarray:
        """Per-AS spread (max − min over origins) of mean transient rates.

        ASes with fewer than ``min_hosts`` mean present hosts get NaN.
        """
        mean = self.mean_rates()
        spread = mean.max(axis=0) - mean.min(axis=0)
        small = self.present.mean(axis=0) < min_hosts
        spread = spread.astype(np.float64)
        spread[small] = np.nan
        return spread


def transient_rates(dataset: CampaignDataset, protocol: str,
                    origins: Optional[Sequence[str]] = None,
                    context: Optional[AnalysisContext] = None
                    ) -> TransientRates:
    """Compute the (origin × trial × AS) transient-rate cube."""
    classifications = breakdown_by_origin(dataset, protocol,
                                          origins=origins, context=context)
    chosen = list(classifications.keys())
    first = classifications[chosen[0]]
    n_trials = len(first.trials)
    n_as = int(first.as_index.max()) + 1 if len(first.as_index) else 0

    present = np.zeros((n_trials, n_as))
    for ti in range(n_trials):
        idx = first.as_index[first.present[ti] & (first.as_index >= 0)]
        present[ti] = np.bincount(idx, minlength=n_as)

    rates = np.zeros((len(chosen), n_trials, n_as))
    missing = np.zeros((len(chosen), n_trials, n_as))
    for oi, origin in enumerate(chosen):
        cls = classifications[origin]
        for ti in range(n_trials):
            mask = cls.mask(ti, MissCategory.TRANSIENT) \
                & (cls.as_index >= 0)
            idx = cls.as_index[mask]
            missing[oi, ti] = np.bincount(idx, minlength=n_as)
            with np.errstate(divide="ignore", invalid="ignore"):
                rates[oi, ti] = np.where(
                    present[ti] > 0,
                    missing[oi, ti] / np.maximum(present[ti], 1), 0.0)
    return TransientRates(protocol=protocol, origins=chosen,
                          n_trials=n_trials, rates=rates,
                          present=present, missing=missing)


def transient_overlap_histogram(dataset: CampaignDataset, protocol: str,
                                origins: Optional[Sequence[str]] = None,
                                context: Optional[AnalysisContext] = None
                                ) -> Dict[int, int]:
    """Figure 8: how many origins each transient (host, trial) miss hits.

    For each host and trial, count the origins that transiently missed it;
    histogram over hosts-with-at-least-one-transient-miss, aggregated
    across trials.
    """
    classifications = breakdown_by_origin(dataset, protocol,
                                          origins=origins, context=context)
    chosen = list(classifications.keys())
    first = classifications[chosen[0]]
    n_trials = len(first.trials)
    histogram: Dict[int, int] = {k: 0 for k in range(1, len(chosen) + 1)}
    for ti in range(n_trials):
        stack = np.stack([classifications[o].mask(ti, MissCategory.TRANSIENT)
                          for o in chosen])
        counts = stack.sum(axis=0)
        for k in range(1, len(chosen) + 1):
            histogram[k] += int((counts == k).sum())
    return histogram


def loss_spread_cdf(rates: TransientRates, min_hosts: int = 2
                    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Figure 9: CDF of the per-AS origin spread in transient loss.

    Returns (sorted spreads, plain CDF, host-weighted CDF).
    """
    spread = rates.as_spread(min_hosts=min_hosts)
    weights = rates.present.mean(axis=0)
    keep = ~np.isnan(spread)
    spread = spread[keep]
    weights = weights[keep]
    order = np.argsort(spread)
    spread = spread[order]
    weights = weights[order]
    n = len(spread)
    cdf = np.arange(1, n + 1) / n if n else np.array([])
    weighted = np.cumsum(weights) / weights.sum() if n else np.array([])
    return spread, cdf, weighted


@dataclass
class TransientRangeRow:
    """One row of Table 3."""

    as_index: int
    delta: float      # max − min mean transient rate across origins (%)
    diff_hosts: int   # host-count gap between worst and best origin
    ratio: float      # max/min rate ratio


def largest_range_ases(rates: TransientRates, top: int = 6,
                       min_hosts: int = 20) -> List[TransientRangeRow]:
    """Table 3: ASes whose transient loss differs most across origins.

    Ranked by the absolute host-count difference, as the paper's Diff
    column is (all its rows are top-100 ASes by host count).
    """
    mean = rates.mean_rates()                      # (o, a)
    mean_missing = rates.missing.mean(axis=1)      # (o, a)
    present_mean = rates.present.mean(axis=0)      # (a,)

    rows: List[TransientRangeRow] = []
    for a in range(rates.n_as()):
        if present_mean[a] < min_hosts:
            continue
        column = mean[:, a]
        high, low = column.max(), column.min()
        if high <= 0:
            continue
        diff = mean_missing[:, a].max() - mean_missing[:, a].min()
        ratio = high / low if low > 0 else float("inf")
        rows.append(TransientRangeRow(
            as_index=a, delta=float((high - low) * 100.0),
            diff_hosts=int(round(diff)), ratio=float(ratio)))
    rows.sort(key=lambda r: -r.diff_hosts)
    return rows[:top]
