"""Burst-outage detection in scan results (§5.3).

The paper detects short-lived outages as outliers in the hourly time
series of transiently missed hosts per (origin, destination AS): the
series is smoothed with a rolling window (4 h minimizes mean squared
error), the smoothed series subtracted, and hours whose residual exceeds
two standard deviations are bursts.  We implement the same detector over
simulated (or loaded) scan data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.classification import (
    MissCategory,
    breakdown_by_origin,
)
from repro.core.engine import AnalysisContext
from repro.core.dataset import CampaignDataset, align_ips

#: Detector parameters from §5.3.
BIN_SECONDS = 3600.0
SMOOTH_WINDOW_BINS = 4
SIGMA_THRESHOLD = 2.0


def rolling_mean(series: np.ndarray, window: int) -> np.ndarray:
    """Centered rolling mean with edge shrinkage (window ≥ 1)."""
    if window < 1:
        raise ValueError("window must be >= 1")
    series = np.asarray(series, dtype=np.float64)
    n = len(series)
    out = np.empty(n)
    half = window // 2
    for i in range(n):
        lo = max(0, i - half)
        hi = min(n, i + window - half)
        out[i] = series[lo:hi].mean()
    return out


def detect_burst_bins(series: np.ndarray,
                      window: int = SMOOTH_WINDOW_BINS,
                      sigma: float = SIGMA_THRESHOLD) -> np.ndarray:
    """Indices of bins whose noise residual exceeds ``sigma`` deviations."""
    series = np.asarray(series, dtype=np.float64)
    if len(series) < 2 or series.sum() == 0:
        return np.array([], dtype=np.int64)
    noise = series - rolling_mean(series, window)
    spread = noise.std()
    if spread == 0:
        return np.array([], dtype=np.int64)
    return np.flatnonzero(noise > sigma * spread)


@dataclass
class BurstEvent:
    """One detected burst: an (origin, AS, trial, hour bin) outlier."""

    origin: str
    as_index: int
    trial_pos: int
    bin_index: int
    lost_hosts: int


@dataclass
class BurstReport:
    """Aggregate §5.3 statistics for one protocol."""

    protocol: str
    origins: List[str]
    events: List[BurstEvent]
    #: transient_total[o, t] and burst_coincident[o, t] host counts.
    transient_total: np.ndarray
    burst_coincident: np.ndarray
    #: ASes with ≥1 transient missing host / with ≥1 detected burst.
    ases_with_transient: int
    ases_with_burst: int

    def coincident_fraction(self) -> np.ndarray:
        """(o, t) fraction of transient loss inside detected burst hours."""
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(self.transient_total > 0,
                            self.burst_coincident
                            / np.maximum(self.transient_total, 1), 0.0)

    def simultaneity_histogram(self) -> Dict[int, int]:
        """#bursts by how many origins burst in the same (AS, trial, hour)."""
        groups: Dict[Tuple[int, int, int], set] = {}
        for event in self.events:
            key = (event.as_index, event.trial_pos, event.bin_index)
            groups.setdefault(key, set()).add(event.origin)
        histogram: Dict[int, int] = {}
        for members in groups.values():
            histogram[len(members)] = histogram.get(len(members), 0) + 1
        return histogram

    def single_origin_burst_shares(self) -> Dict[str, float]:
        """Among single-origin bursts, each origin's share (paper: AU wins)."""
        groups: Dict[Tuple[int, int, int], List[str]] = {}
        for event in self.events:
            key = (event.as_index, event.trial_pos, event.bin_index)
            groups.setdefault(key, []).append(event.origin)
        solo = [members[0] for members in groups.values()
                if len(set(members)) == 1]
        total = len(solo)
        return {origin: solo.count(origin) / total if total else 0.0
                for origin in self.origins}


def burst_report(dataset: CampaignDataset, protocol: str,
                 origins: Optional[Sequence[str]] = None,
                 min_misses: int = 5,
                 context: Optional[AnalysisContext] = None) -> BurstReport:
    """Run the §5.3 detector over every (origin, AS, trial).

    ``min_misses`` skips (origin, AS, trial) series with too few transient
    misses to support an hourly outlier search.
    """
    classifications = breakdown_by_origin(dataset, protocol,
                                          origins=origins, context=context)
    chosen = list(classifications.keys())
    first = classifications[chosen[0]]
    trials = dataset.trials_for(protocol)
    n_trials = len(first.trials)
    duration = float(dataset.metadata.get("scan_duration_s", 0.0))

    events: List[BurstEvent] = []
    transient_total = np.zeros((len(chosen), n_trials))
    burst_coincident = np.zeros((len(chosen), n_trials))
    transient_as: set = set()
    burst_as: set = set()

    for ti in range(n_trials):
        table = dataset.trial_data(protocol, trials[ti])
        pos = align_ips(first.ips, table.ip)
        n_bins_hint = int(duration // BIN_SECONDS) + 1 if duration else None
        for oi, origin in enumerate(chosen):
            cls = classifications[origin]
            mask = cls.mask(ti, MissCategory.TRANSIENT)
            transient_total[oi, ti] = int(mask.sum())
            picked = np.flatnonzero(mask & (pos >= 0))
            if len(picked) == 0:
                continue
            as_of = cls.as_index[picked]
            transient_as.update(int(a) for a in np.unique(as_of) if a >= 0)
            row = table.origin_row(origin)
            times = table.time[row][pos[picked]]
            bins = (times / BIN_SECONDS).astype(np.int64)
            n_bins = n_bins_hint or int(bins.max()) + 1
            for as_index in np.unique(as_of):
                if as_index < 0:
                    continue
                members = as_of == as_index
                if int(members.sum()) < min_misses:
                    continue
                member_bins = bins[members]
                series = np.bincount(
                    np.clip(member_bins, 0, n_bins - 1),
                    minlength=n_bins)
                hot = detect_burst_bins(series)
                if len(hot) == 0:
                    continue
                burst_as.add(int(as_index))
                hot_set = set(int(h) for h in hot)
                coincident = sum(int(series[h]) for h in hot_set)
                burst_coincident[oi, ti] += coincident
                for h in hot_set:
                    events.append(BurstEvent(
                        origin=origin, as_index=int(as_index),
                        trial_pos=ti, bin_index=h,
                        lost_hosts=int(series[h])))

    return BurstReport(
        protocol=protocol, origins=chosen, events=events,
        transient_total=transient_total,
        burst_coincident=burst_coincident,
        ases_with_transient=len(transient_as),
        ases_with_burst=len(burst_as))
