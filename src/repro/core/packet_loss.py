"""Packet-drop estimation from 1-vs-2 probe responses (§5.2).

ZMap cannot distinguish a dead host from a dropped probe; the paper
estimates *random* drop by counting, among hosts that completed an L7
handshake with at least one origin, how many answered one versus both SYN
probes.  Under independent per-probe drop q, E[one-answer] /
(E[one-answer] + 2·E[both-answer]) = q — and under the correlated loss the
paper actually finds, this estimator only sees the independent residual,
which is why it correlates weakly with transient host loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dataset import CampaignDataset, TrialData
from repro.core.stats import spearman
from repro.core.transient import TransientRates


def estimate_drop_rate(one_response: int, both_responses: int) -> float:
    """The §5.2 estimator: q̂ = n₁ / (n₁ + 2·n₂)."""
    if one_response < 0 or both_responses < 0:
        raise ValueError("counts must be non-negative")
    denominator = one_response + 2 * both_responses
    if denominator == 0:
        return 0.0
    return one_response / denominator


def origin_drop_rate(trial_data: TrialData, origin: str) -> float:
    """Global estimated drop rate for one origin in one trial.

    Restricted, as the paper is, to hosts in the trial's ground truth (an
    L7 handshake completed with ≥1 origin), counting this origin's
    responses among them.
    """
    truth = trial_data.ground_truth()
    responses = trial_data.response_counts(origin)[truth]
    n1 = int((responses == 1).sum())
    n2 = int((responses == 2).sum())
    return estimate_drop_rate(n1, n2)


def per_as_drop_rates(trial_data: TrialData, origin: str,
                      n_as: Optional[int] = None) -> np.ndarray:
    """Estimated drop rate per destination AS for one origin."""
    truth = trial_data.ground_truth()
    responses = trial_data.response_counts(origin)
    as_index = trial_data.as_index
    if n_as is None:
        n_as = int(as_index.max()) + 1 if len(as_index) else 0
    one = np.bincount(as_index[truth & (responses == 1)], minlength=n_as)
    two = np.bincount(as_index[truth & (responses == 2)], minlength=n_as)
    denominator = one + 2 * two
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(denominator > 0,
                        one / np.maximum(denominator, 1), 0.0)


@dataclass
class DropSummary:
    """Global per-(origin, trial) drop estimates for one protocol."""

    protocol: str
    origins: List[str]
    trials: List[int]
    #: rates[o, t]
    rates: np.ndarray

    def range_global(self) -> Tuple[float, float]:
        """(min, max) across origins and trials — paper: 0.44–1.6 %."""
        return float(self.rates.min()), float(self.rates.max())

    def mean_for(self, origin: str) -> float:
        return float(self.rates[self.origins.index(origin)].mean())

    def worst_origin(self) -> str:
        """Origin with the highest mean estimated drop (paper: AU)."""
        means = self.rates.mean(axis=1)
        return self.origins[int(np.argmax(means))]


def drop_summary(dataset: CampaignDataset, protocol: str,
                 origins: Optional[Sequence[str]] = None) -> DropSummary:
    """Global drop estimates for every (origin, trial)."""
    trials = dataset.trials_for(protocol)
    chosen = list(origins) if origins is not None \
        else dataset.origins_for(protocol)
    rates = np.zeros((len(chosen), len(trials)))
    for ti, trial in enumerate(trials):
        table = dataset.trial_data(protocol, trial)
        for oi, origin in enumerate(chosen):
            rates[oi, ti] = origin_drop_rate(table, origin)
    return DropSummary(protocol=protocol, origins=chosen,
                       trials=list(trials), rates=rates)


def both_probe_loss_fraction(trial_data: TrialData, origin: str) -> float:
    """Among ≥1-probe losses, the fraction losing *both* probes (§7).

    Restricted to hosts in ground truth that are not wholly invisible to
    the origin for non-loss reasons: hosts the origin saw at L4 (lost at
    most one probe) or that it saw in no probe but completed L7 elsewhere.
    The paper reports >93 % — the signature of correlated loss.
    """
    truth = trial_data.ground_truth()
    responses = trial_data.response_counts(origin)[truth]
    n_probes = trial_data.n_probes
    lost_some = responses < n_probes
    lost_all = responses == 0
    denom = int(lost_some.sum())
    if denom == 0:
        return float("nan")
    return float(lost_all.sum() / denom)


def drop_vs_transient_correlation(rates: TransientRates,
                                  dataset: CampaignDataset,
                                  protocol: str,
                                  min_hosts: int = 10
                                  ) -> Dict[str, Tuple[float, float]]:
    """Per-origin Spearman between per-AS drop and transient loss (§5.2).

    The paper reports weak correlations (ρ = 0.40–0.52): random drop alone
    does not explain which networks an origin transiently misses.
    """
    trials = dataset.trials_for(protocol)
    out: Dict[str, Tuple[float, float]] = {}
    present_mean = rates.present.mean(axis=0)
    eligible = present_mean >= min_hosts
    n_as = rates.n_as()
    for oi, origin in enumerate(rates.origins):
        drop = np.zeros(n_as)
        for trial in trials:
            table = dataset.trial_data(protocol, trial)
            drop += per_as_drop_rates(table, origin, n_as=n_as)
        drop /= max(len(trials), 1)
        transient = rates.mean_rates()[oi]
        out[origin] = spearman(drop[eligible], transient[eligible])
    return out
