"""Per-origin ground-truth coverage (Figure 1, Table 4).

Coverage of an origin in a trial is the fraction of that trial's ground
truth the origin completed an L7 handshake with.  The module also computes
the all-origin intersection and union (Table 4's ∩ / ∪ columns) and the
cross-trial means.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.dataset import CampaignDataset, TrialData


def coverage_by_origin(trial_data: TrialData,
                       origins: Optional[Sequence[str]] = None,
                       single_probe: bool = False) -> Dict[str, float]:
    """Origin → fraction of this trial's ground truth it saw."""
    chosen = list(origins) if origins is not None else trial_data.origins
    truth = trial_data.ground_truth(single_probe=single_probe)
    total = int(truth.sum())
    out: Dict[str, float] = {}
    for origin in chosen:
        if not trial_data.has_origin(origin):
            continue
        seen = trial_data.accessible(origin, single_probe=single_probe)
        out[origin] = float((seen & truth).sum() / total) if total else 0.0
    return out


@dataclass
class CoverageTable:
    """The shape of the paper's Table 4: per-trial coverage plus ∩ / ∪."""

    protocol: str
    origins: List[str]
    trials: List[int]
    #: coverage[trial][origin] → fraction.
    coverage: Dict[int, Dict[str, float]]
    #: Fraction of ground truth seen by *every* origin, per trial.
    intersection: Dict[int, float]
    #: Ground-truth size per trial.
    union_size: Dict[int, int]

    def mean_coverage(self, origin: str) -> float:
        values = [cov[origin] for cov in self.coverage.values()
                  if origin in cov]
        return float(np.mean(values)) if values else float("nan")

    def mean_intersection(self) -> float:
        return float(np.mean(list(self.intersection.values())))

    def rows(self) -> List[List[str]]:
        """Render-ready rows (one per trial plus a mean row)."""
        out = []
        for trial in self.trials:
            row = [str(trial + 1)]
            row += [f"{self.coverage[trial].get(o, float('nan')):.1%}"
                    for o in self.origins]
            row += [f"{self.intersection[trial]:.1%}",
                    f"{self.union_size[trial]:,}"]
            out.append(row)
        mean_row = ["mean"]
        mean_row += [f"{self.mean_coverage(o):.1%}" for o in self.origins]
        mean_row += [f"{self.mean_intersection():.1%}",
                     f"{np.mean(list(self.union_size.values())):,.0f}"]
        out.append(mean_row)
        return out


def coverage_table(dataset: CampaignDataset, protocol: str,
                   origins: Optional[Sequence[str]] = None,
                   single_probe: bool = False) -> CoverageTable:
    """Compute the Table 4 analog for one protocol."""
    trials = dataset.trials_for(protocol)
    chosen = list(origins) if origins is not None \
        else dataset.origins_for(protocol)
    coverage: Dict[int, Dict[str, float]] = {}
    intersection: Dict[int, float] = {}
    union_size: Dict[int, int] = {}
    for trial in trials:
        table = dataset.trial_data(protocol, trial)
        coverage[trial] = coverage_by_origin(
            table, origins=chosen, single_probe=single_probe)
        truth = table.ground_truth(single_probe=single_probe)
        total = int(truth.sum())
        union_size[trial] = total
        seen_by_all = truth.copy()
        for origin in chosen:
            if table.has_origin(origin):
                seen_by_all &= table.accessible(
                    origin, single_probe=single_probe)
        intersection[trial] = float(seen_by_all.sum() / total) \
            if total else 0.0
    return CoverageTable(protocol=protocol, origins=chosen,
                         trials=list(trials), coverage=coverage,
                         intersection=intersection, union_size=union_size)


def median_single_origin_coverage(dataset: CampaignDataset, protocol: str,
                                  single_probe: bool = False) -> float:
    """Median per-(origin, trial) coverage — the paper's headline number.

    §7 reports 96.3 % (1 probe) and 97.6 % (2 probes) for the median origin.
    """
    values: List[float] = []
    for trial in dataset.trials_for(protocol):
        table = dataset.trial_data(protocol, trial)
        cov = coverage_by_origin(
            table, origins=dataset.origins_for(protocol),
            single_probe=single_probe)
        values.extend(cov.values())
    return float(np.median(values)) if values else float("nan")
