"""Exclusive (in)accessibility analyses (Figure 3, Table 1, §4.4).

Two symmetric questions about the cross-trial ground-truth universe:

* **Exclusively inaccessible** — hosts long-term inaccessible from exactly
  one origin (Figure 3 histograms how many origins each long-term host is
  inaccessible from; Table 1's "Inacc." rows attribute the exactly-one
  bucket to origins).
* **Exclusively accessible** — hosts that only one origin ever completed a
  handshake with, in any trial (Table 1's "Acc." rows, and the per-country
  view of Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.classification import breakdown_by_origin
from repro.core.dataset import CampaignDataset
from repro.core.engine import AnalysisContext, presence_for
from repro.core.ground_truth import PresenceMatrix


@dataclass
class ExclusivityReport:
    """Everything Table 1 / Figure 3 need, for one protocol."""

    protocol: str
    origins: List[str]
    ips: np.ndarray
    as_index: np.ndarray
    country_index: np.ndarray
    geo_index: np.ndarray
    #: long_term[o, i] — host i is long-term inaccessible from origin o.
    long_term: np.ndarray
    #: ever_accessible[o, i] — origin o saw host i in some trial.
    ever_accessible: np.ndarray

    # ------------------------------------------------------------------
    # Figure 3
    # ------------------------------------------------------------------

    def longterm_overlap_histogram(
            self, exclude: Sequence[str] = ()) -> Dict[int, int]:
        """#long-term hosts by how many origins miss them long-term.

        ``exclude`` removes origins from the count (the paper excludes
        Censys from this figure since its blocking dwarfs the rest).
        """
        rows = [i for i, o in enumerate(self.origins) if o not in exclude]
        counts = self.long_term[rows].sum(axis=0)
        histogram: Dict[int, int] = {}
        for k in range(1, len(rows) + 1):
            histogram[k] = int((counts == k).sum())
        return histogram

    # ------------------------------------------------------------------
    # Table 1
    # ------------------------------------------------------------------

    def exclusively_inaccessible_mask(self, origin: str) -> np.ndarray:
        """Hosts long-term inaccessible from ``origin`` and nobody else."""
        oi = self.origins.index(origin)
        totals = self.long_term.sum(axis=0)
        return self.long_term[oi] & (totals == 1)

    def exclusively_accessible_mask(self, origin: str) -> np.ndarray:
        """Hosts only ``origin`` ever completed a handshake with."""
        oi = self.origins.index(origin)
        totals = self.ever_accessible.sum(axis=0)
        return self.ever_accessible[oi] & (totals == 1)

    def table1(self) -> Dict[str, Dict[str, float]]:
        """Origin → {"accessible": %, "inaccessible": %} of the exclusive
        pools, exactly as Table 1 reports them."""
        acc_masks = {o: self.exclusively_accessible_mask(o)
                     for o in self.origins}
        inacc_masks = {o: self.exclusively_inaccessible_mask(o)
                       for o in self.origins}
        acc_total = sum(int(m.sum()) for m in acc_masks.values())
        inacc_total = sum(int(m.sum()) for m in inacc_masks.values())
        out: Dict[str, Dict[str, float]] = {}
        for origin in self.origins:
            out[origin] = {
                "accessible": (acc_masks[origin].sum() / acc_total
                               if acc_total else 0.0),
                "inaccessible": (inacc_masks[origin].sum() / inacc_total
                                 if inacc_total else 0.0),
            }
        return out


def exclusivity_report(dataset: CampaignDataset, protocol: str,
                       origins: Optional[Sequence[str]] = None,
                       presence: Optional[PresenceMatrix] = None,
                       context: Optional[AnalysisContext] = None
                       ) -> ExclusivityReport:
    """Build the exclusivity report for one protocol."""
    presence = presence_for(dataset, protocol, origins=origins,
                            presence=presence, context=context)
    classifications = breakdown_by_origin(
        dataset, protocol, origins=presence.origins,
        # With a context, let its classification memo serve the call;
        # the explicit presence only backs context-less invocations.
        presence=None if context is not None else presence,
        context=context)
    chosen = presence.origins
    n = presence.n_hosts()
    long_term = np.zeros((len(chosen), n), dtype=bool)
    ever_accessible = np.zeros((len(chosen), n), dtype=bool)
    for oi, origin in enumerate(chosen):
        cls = classifications[origin]
        long_term[oi] = cls.long_term_mask()
        ever_accessible[oi] = np.any(presence.accessible[oi], axis=0)
    return ExclusivityReport(
        protocol=protocol, origins=list(chosen), ips=presence.ips,
        as_index=presence.as_index, country_index=presence.country_index,
        geo_index=presence.geo_index,
        long_term=long_term, ever_accessible=ever_accessible)


def single_origin_longterm_share(report: ExclusivityReport,
                                 exclude: Sequence[str] = ("CEN",)
                                 ) -> float:
    """Fraction of long-term hosts inaccessible from only one origin.

    The paper reports ≈47 % when Censys is excluded (§4, Figure 3).
    """
    histogram = report.longterm_overlap_histogram(exclude=exclude)
    total = sum(histogram.values())
    return histogram.get(1, 0) / total if total else 0.0
