"""Multi-origin and multi-probe coverage (§7, Figures 15, 17, 18).

For every k-subset of origins, the union coverage of each trial's ground
truth — the paper's headline remedy: two diverse origins lift median
single-probe HTTP coverage from 95.5 % to 98.3 %, three to 99.1 % with
σ = 0.08 %.

Two engines compute the same numbers (``engine=``, env default
``REPRO_ANALYSIS_ENGINE``): the ``packed`` engine enumerates k-subsets
by OR-ing bit-packed accessibility rows and popcounting
(:class:`repro.core.engine.PackedTrial`) — no Python sets, one fused
gather/OR/popcount per subset size — while ``reference`` keeps the
original boolean-union loop as the differential baseline.  Both are
byte-identical (``tests/test_engine_equivalence.py``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dataset import CampaignDataset, TrialData
from repro.core.engine import (
    AnalysisContext,
    PackedTrial,
    get_context,
    resolve_engine,
)


@dataclass
class ComboCoverage:
    """Coverage of one origin subset in one trial."""

    combo: Tuple[str, ...]
    trial: int
    coverage: float


@dataclass
class KOriginSummary:
    """Distribution of coverage over all k-subsets and trials."""

    k: int
    median: float
    q1: float
    q3: float
    minimum: float
    maximum: float
    std: float
    samples: List[ComboCoverage]


def _packed_combo_coverages(trial_data: TrialData, k: int,
                            chosen: Sequence[str], single_probe: bool,
                            context: Optional[AnalysisContext]
                            ) -> List[ComboCoverage]:
    """Packed-engine subset enumeration: OR rows, popcount, divide."""
    if context is not None:
        packed = context.packed_trial(trial_data.trial,
                                      single_probe=single_probe)
    else:
        packed = PackedTrial(trial_data, single_probe=single_probe)
    rows = packed.rows_for(chosen)
    combos = list(itertools.combinations(range(len(chosen)), k))
    subsets = rows[np.array(combos, dtype=np.intp)]       # (m, k)
    counts = packed.union_counts(subsets)                 # (m,)
    total = packed.total
    coverages = counts / total if total else np.zeros(len(combos))
    return [ComboCoverage(combo=tuple(chosen[i] for i in combo),
                          trial=trial_data.trial,
                          coverage=float(coverage))
            for combo, coverage in zip(combos, coverages)]


def combo_coverages(trial_data: TrialData, k: int,
                    origins: Optional[Sequence[str]] = None,
                    single_probe: bool = False,
                    engine: Optional[str] = None,
                    context: Optional[AnalysisContext] = None
                    ) -> List[ComboCoverage]:
    """Union coverage of every k-subset of origins for one trial."""
    chosen = [o for o in (origins or trial_data.origins)
              if trial_data.has_origin(o)]
    if k < 1 or k > len(chosen):
        raise ValueError(f"k must be in [1, {len(chosen)}]")
    if resolve_engine(engine) == "packed":
        return _packed_combo_coverages(trial_data, k, chosen,
                                       single_probe, context)
    truth = trial_data.ground_truth(single_probe=single_probe)
    total = int(truth.sum())
    masks = {o: trial_data.accessible(o, single_probe=single_probe) & truth
             for o in chosen}
    out: List[ComboCoverage] = []
    for combo in itertools.combinations(chosen, k):
        union = np.zeros(len(truth), dtype=bool)
        for origin in combo:
            union |= masks[origin]
        coverage = float(union.sum() / total) if total else 0.0
        out.append(ComboCoverage(combo=combo, trial=trial_data.trial,
                                 coverage=coverage))
    return out


def _context_for(dataset: CampaignDataset, protocol: str, engine: str,
                 context: Optional[AnalysisContext]
                 ) -> Optional[AnalysisContext]:
    """The shared context for dataset-level packed runs (None otherwise)."""
    if context is not None:
        return context
    if engine == "packed":
        return get_context(dataset, protocol)
    return None


def k_origin_summary(dataset: CampaignDataset, protocol: str, k: int,
                     origins: Optional[Sequence[str]] = None,
                     single_probe: bool = False,
                     engine: Optional[str] = None,
                     context: Optional[AnalysisContext] = None
                     ) -> KOriginSummary:
    """Coverage distribution over all k-subsets, pooled across trials."""
    engine = resolve_engine(engine)
    context = _context_for(dataset, protocol, engine, context)
    chosen = list(origins) if origins is not None \
        else dataset.origins_for(protocol)
    samples: List[ComboCoverage] = []
    for trial in dataset.trials_for(protocol):
        table = dataset.trial_data(protocol, trial)
        samples.extend(combo_coverages(table, k, origins=chosen,
                                       single_probe=single_probe,
                                       engine=engine, context=context))
    values = np.array([s.coverage for s in samples])
    return KOriginSummary(
        k=k,
        median=float(np.median(values)),
        q1=float(np.percentile(values, 25)),
        q3=float(np.percentile(values, 75)),
        minimum=float(values.min()),
        maximum=float(values.max()),
        std=float(values.std()),
        samples=samples)


def multi_origin_table(dataset: CampaignDataset, protocol: str,
                       origins: Optional[Sequence[str]] = None,
                       single_probe: bool = False,
                       max_k: Optional[int] = None,
                       engine: Optional[str] = None,
                       context: Optional[AnalysisContext] = None
                       ) -> Dict[int, KOriginSummary]:
    """Figure 15/17's data: one summary per subset size."""
    engine = resolve_engine(engine)
    context = _context_for(dataset, protocol, engine, context)
    chosen = list(origins) if origins is not None \
        else dataset.origins_for(protocol)
    limit = max_k if max_k is not None else len(chosen)
    return {k: k_origin_summary(dataset, protocol, k, origins=chosen,
                                single_probe=single_probe,
                                engine=engine, context=context)
            for k in range(1, limit + 1)}


def best_combination(dataset: CampaignDataset, protocol: str, k: int,
                     origins: Optional[Sequence[str]] = None,
                     single_probe: bool = False,
                     engine: Optional[str] = None,
                     context: Optional[AnalysisContext] = None
                     ) -> Tuple[Tuple[str, ...], float]:
    """The k-subset with the highest mean coverage across trials."""
    summary = k_origin_summary(dataset, protocol, k, origins=origins,
                               single_probe=single_probe,
                               engine=engine, context=context)
    by_combo: Dict[Tuple[str, ...], List[float]] = {}
    for sample in summary.samples:
        by_combo.setdefault(sample.combo, []).append(sample.coverage)
    means = {combo: float(np.mean(vals))
             for combo, vals in by_combo.items()}
    best = max(means, key=means.get)
    return best, means[best]


def combo_mean_coverage(dataset: CampaignDataset, protocol: str,
                        combo: Sequence[str],
                        single_probe: bool = False,
                        engine: Optional[str] = None,
                        context: Optional[AnalysisContext] = None
                        ) -> float:
    """Mean coverage across trials for one specific origin subset."""
    engine = resolve_engine(engine)
    context = _context_for(dataset, protocol, engine, context)
    values = []
    for trial in dataset.trials_for(protocol):
        table = dataset.trial_data(protocol, trial)
        if engine == "packed":
            packed = context.packed_trial(trial, single_probe=single_probe) \
                if context is not None \
                else PackedTrial(table, single_probe=single_probe)
            present = [o for o in combo if table.has_origin(o)]
            if present and packed.total:
                rows = packed.rows_for(present)
                count = int(packed.union_counts(rows[None, :])[0])
                values.append(count / packed.total)
            else:
                values.append(0.0)
            continue
        truth = table.ground_truth(single_probe=single_probe)
        total = int(truth.sum())
        union = np.zeros(len(truth), dtype=bool)
        for origin in combo:
            if table.has_origin(origin):
                union |= table.accessible(origin,
                                          single_probe=single_probe)
        values.append(float((union & truth).sum() / total) if total else 0.0)
    return float(np.mean(values)) if values else float("nan")


def probe_origin_tradeoff(dataset: CampaignDataset, protocol: str,
                          origins: Optional[Sequence[str]] = None,
                          engine: Optional[str] = None,
                          context: Optional[AnalysisContext] = None
                          ) -> Dict[str, float]:
    """§7's bandwidth trade-off: probes vs origins.

    Returns the median coverages of: 1 probe × 1 origin, 2 probes × 1
    origin, 1 probe × 2 origins, 2 probes × 2 origins, 1 probe × 3
    origins.  The paper finds one probe from two origins beats two probes
    from one, and one probe from three origins beats two probes from two
    while costing less bandwidth.
    """
    engine = resolve_engine(engine)
    context = _context_for(dataset, protocol, engine, context)

    def median(k: int, single_probe: bool) -> float:
        return k_origin_summary(dataset, protocol, k, origins,
                                single_probe=single_probe,
                                engine=engine, context=context).median

    return {
        "1probe_1origin": median(1, True),
        "2probe_1origin": median(1, False),
        "1probe_2origin": median(2, True),
        "2probe_2origin": median(2, False),
        "1probe_3origin": median(3, True),
    }
