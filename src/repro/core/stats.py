"""Statistical machinery used throughout the paper's analyses.

* McNemar's test over paired seen/not-seen outcomes per origin pair (§3),
  with Bonferroni correction for the multiple-comparison sweep.
* Spearman rank correlation (§4.4's country-size correlation, §5.2's
  drop-vs-loss correlations).

McNemar and Spearman are implemented directly (the math is a dozen lines
each); only the chi-squared and t survival functions come from scipy.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats as _scipy_stats

from repro.core.dataset import CampaignDataset, TrialData


@dataclass(frozen=True)
class McNemarResult:
    """Result of one paired test between two origins."""

    origin_a: str
    origin_b: str
    #: Hosts seen by A but not B / by B but not A.
    b: int
    c: int
    statistic: float
    p_value: float

    def significant(self, alpha: float = 0.001) -> bool:
        return self.p_value < alpha


def mcnemar(b: int, c: int) -> Tuple[float, float]:
    """McNemar's chi-squared test with continuity correction.

    ``b`` and ``c`` are the discordant-pair counts.  Returns (statistic,
    p-value).  With no discordant pairs the test is degenerate and p = 1.
    """
    if b < 0 or c < 0:
        raise ValueError("discordant counts must be non-negative")
    n = b + c
    if n == 0:
        return 0.0, 1.0
    statistic = (abs(b - c) - 1) ** 2 / n
    p_value = float(_scipy_stats.chi2.sf(statistic, df=1))
    return statistic, p_value


def mcnemar_exact(b: int, c: int) -> float:
    """Exact binomial McNemar p-value (for small discordant counts)."""
    n = b + c
    if n == 0:
        return 1.0
    k = min(b, c)
    # Two-sided exact binomial test at p = 0.5.
    cdf = float(_scipy_stats.binom.cdf(k, n, 0.5))
    return min(1.0, 2.0 * cdf)


def pairwise_origin_tests(trial_data: TrialData,
                          origins: Optional[Sequence[str]] = None,
                          ) -> List[McNemarResult]:
    """McNemar over every origin pair's paired host outcomes (§3).

    For each pair, hosts in the trial's ground truth form the paired
    sample: seen/not-seen by each origin.
    """
    chosen = [o for o in (origins or trial_data.origins)
              if trial_data.has_origin(o)]
    truth = trial_data.ground_truth()
    results: List[McNemarResult] = []
    masks = {o: trial_data.accessible(o) & truth for o in chosen}
    for origin_a, origin_b in itertools.combinations(chosen, 2):
        a = masks[origin_a]
        b_mask = masks[origin_b]
        b = int((a & ~b_mask).sum())
        c = int((~a & b_mask).sum())
        statistic, p_value = mcnemar(b, c)
        results.append(McNemarResult(origin_a, origin_b, b, c,
                                     statistic, p_value))
    return results


def bonferroni(p_values: Sequence[float]) -> List[float]:
    """Bonferroni-corrected p-values (clamped at 1)."""
    m = len(p_values)
    return [min(1.0, p * m) for p in p_values]


def all_pairs_significant(dataset: CampaignDataset, protocol: str,
                          alpha: float = 0.001) -> bool:
    """§3's claim: every origin pair differs significantly in every trial,
    after Bonferroni correction across the whole sweep."""
    all_results: List[McNemarResult] = []
    for trial in dataset.trials_for(protocol):
        table = dataset.trial_data(protocol, trial)
        all_results.extend(pairwise_origin_tests(
            table, origins=dataset.origins_for(protocol)))
    corrected = bonferroni([r.p_value for r in all_results])
    return bool(all_results) and all(p < alpha for p in corrected)


def spearman(x: np.ndarray, y: np.ndarray) -> Tuple[float, float]:
    """Spearman rank correlation (ρ, p) implemented via rank + Pearson.

    Ties receive average ranks; the p-value uses the t-distribution
    approximation, adequate for the sample sizes in these analyses.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError("x and y must have the same shape")
    n = len(x)
    if n < 3:
        return float("nan"), float("nan")
    rx = _average_ranks(x)
    ry = _average_ranks(y)
    rx -= rx.mean()
    ry -= ry.mean()
    denom = np.sqrt((rx * rx).sum() * (ry * ry).sum())
    if denom == 0:
        return float("nan"), float("nan")
    rho = float((rx * ry).sum() / denom)
    # t-approximation for the null distribution.
    rho_clamped = min(max(rho, -0.9999999), 0.9999999)
    t = rho_clamped * np.sqrt((n - 2) / (1.0 - rho_clamped ** 2))
    p = float(2.0 * _scipy_stats.t.sf(abs(t), df=n - 2))
    return rho, p


def _average_ranks(values: np.ndarray) -> np.ndarray:
    """Ranks with ties averaged (1-based)."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(len(values), dtype=np.float64)
    ranks[order] = np.arange(1, len(values) + 1, dtype=np.float64)
    # Average the ranks of tied groups.
    sorted_vals = values[order]
    i = 0
    while i < len(sorted_vals):
        j = i
        while j + 1 < len(sorted_vals) and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        if j > i:
            ranks[order[i:j + 1]] = ranks[order[i:j + 1]].mean()
        i = j + 1
    return ranks
