"""Temporal analyses: diurnal patterns and scanner asynchrony.

§5.3 checks whether any origin's coverage varies with local time of day
(it doesn't, consistently); §2 reports the maximum asynchrony between
origins' L7 responses (2 h for HTTP at trial end, caused by the AU/BR
scanners falling behind).  Both are direct computations over the
timestamps the dataset carries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.dataset import CampaignDataset, TrialData

#: Offset (hours) of each origin's local midnight from scan-start, used
#: to fold scan time into local time of day.  Scan start is taken as
#: 00:00 UTC; the offsets approximate the paper's origin time zones.
DEFAULT_UTC_OFFSETS = {
    "AU": 10.0, "BR": -3.0, "DE": 1.0, "JP": 9.0,
    "US1": -8.0, "US64": -8.0, "CEN": -8.0, "CARINET": -8.0,
    "HE": -6.0, "NTT": -6.0, "TELIA": -6.0,
}


@dataclass
class DiurnalProfile:
    """Per-origin miss rate by local hour of day."""

    protocol: str
    origins: List[str]
    #: miss_rate[o, h] — fraction of GT hosts probed in local hour h that
    #: the origin missed, pooled across trials.
    miss_rate: np.ndarray
    #: samples[o, h] — number of observations behind each cell.
    samples: np.ndarray

    def peak_to_trough(self, origin: str) -> float:
        """Max−min hourly miss rate for one origin (0 = perfectly flat)."""
        row = self.miss_rate[self.origins.index(origin)]
        valid = row[~np.isnan(row)]
        if len(valid) == 0:
            return float("nan")
        return float(valid.max() - valid.min())


def diurnal_profile(dataset: CampaignDataset, protocol: str,
                    origins: Optional[Sequence[str]] = None,
                    utc_offsets: Optional[Dict[str, float]] = None
                    ) -> DiurnalProfile:
    """Fold each origin's misses into local hour of day (§5.3)."""
    offsets = dict(DEFAULT_UTC_OFFSETS)
    if utc_offsets:
        offsets.update(utc_offsets)
    chosen = list(origins) if origins is not None \
        else dataset.origins_for(protocol)

    misses = np.zeros((len(chosen), 24))
    samples = np.zeros((len(chosen), 24))
    for trial in dataset.trials_for(protocol):
        table = dataset.trial_data(protocol, trial)
        truth = table.ground_truth()
        for oi, origin in enumerate(chosen):
            if not table.has_origin(origin):
                continue
            row = table.origin_row(origin)
            times_h = table.time[row][truth] / 3600.0
            local_hour = ((times_h + offsets.get(origin, 0.0)) % 24
                          ).astype(np.int64)
            missed = ~table.accessible(origin)[truth]
            samples[oi] += np.bincount(local_hour, minlength=24)
            misses[oi] += np.bincount(local_hour[missed], minlength=24)

    with np.errstate(divide="ignore", invalid="ignore"):
        rate = np.where(samples > 0, misses / np.maximum(samples, 1),
                        np.nan)
    return DiurnalProfile(protocol=protocol, origins=chosen,
                          miss_rate=rate, samples=samples)


@dataclass
class AsynchronyReport:
    """How far origins drift apart on the shared scan schedule (§2)."""

    protocol: str
    trial: int
    origins: List[str]
    #: max_lag_s[o] — the origin's largest schedule lag behind the
    #: earliest origin, over all shared hosts.
    max_lag_s: Dict[str, float]

    def overall_max(self) -> float:
        return max(self.max_lag_s.values()) if self.max_lag_s else 0.0

    def laggards(self, threshold_s: float = 600.0) -> List[str]:
        return [o for o, lag in self.max_lag_s.items()
                if lag >= threshold_s]


def asynchrony_report(trial_data: TrialData,
                      origins: Optional[Sequence[str]] = None
                      ) -> AsynchronyReport:
    """Per-origin maximum lag behind the fastest origin's schedule."""
    chosen = [o for o in (origins or trial_data.origins)
              if trial_data.has_origin(o)]
    if not chosen:
        raise ValueError("no origins to compare")
    times = np.stack([trial_data.time[trial_data.origin_row(o)]
                      for o in chosen])
    earliest = times.min(axis=0)
    lags = {origin: float((times[i] - earliest).max())
            for i, origin in enumerate(chosen)}
    return AsynchronyReport(protocol=trial_data.protocol,
                            trial=trial_data.trial, origins=chosen,
                            max_lag_s=lags)
