"""The campaign dataset: everything every origin observed.

A :class:`CampaignDataset` is the neutral interchange format between data
sources (the simulator, or real ZMap/ZGrab output loaded via
:mod:`repro.io`) and the analyses.  It holds one :class:`TrialData` per
(protocol, trial): aligned columns over the services observed in that
trial, with per-origin observation matrices.

Alignment rules:

* Within a trial, all origins share the same IP rows (sorted ascending).
* Across trials, IP sets differ (churn); analyses align them with
  :func:`align_ips`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.bits import popcount_u8
from repro.core.records import L7Status


@dataclass
class TrialData:
    """Observations of one (protocol, trial) from every participating origin.

    ``probe_mask``, ``l7`` and ``time`` are (n_origins, n_services)
    matrices, row-aligned with ``origins`` and column-aligned with ``ip``.
    """

    protocol: str
    trial: int
    origins: List[str]
    ip: np.ndarray             # uint32, sorted ascending
    as_index: np.ndarray       # int64
    country_index: np.ndarray  # int64 (true location)
    geo_index: np.ndarray      # int64 (observed GeoIP location)
    probe_mask: np.ndarray     # uint8 (o, n)
    l7: np.ndarray             # uint8 (o, n)
    time: np.ndarray           # float32 (o, n)
    n_probes: int = 2

    def __post_init__(self) -> None:
        n = len(self.ip)
        o = len(self.origins)
        for name in ("probe_mask", "l7", "time"):
            mat = getattr(self, name)
            if mat.shape != (o, n):
                raise ValueError(
                    f"{name} must be shaped ({o}, {n}), got {mat.shape}")
        if (len(self.as_index) != n or len(self.country_index) != n
                or len(self.geo_index) != n):
            raise ValueError("attribution columns must match ip length")
        if n > 1 and np.any(self.ip[1:] <= self.ip[:-1]):
            raise ValueError("ip column must be sorted strictly ascending")

    # ------------------------------------------------------------------
    # Row addressing
    # ------------------------------------------------------------------

    def origin_row(self, origin: str) -> int:
        try:
            return self.origins.index(origin)
        except ValueError:
            raise KeyError(
                f"origin {origin!r} not present in trial {self.trial} "
                f"({self.protocol})") from None

    def has_origin(self, origin: str) -> bool:
        return origin in self.origins

    # ------------------------------------------------------------------
    # Accessibility predicates
    # ------------------------------------------------------------------

    def accessible(self, origin: str,
                   single_probe: bool = False) -> np.ndarray:
        """Services whose L7 handshake completed for ``origin``.

        With ``single_probe=True``, additionally require the *first* probe
        to have been answered — the paper's single-probe-scan simulation
        (§5): a 1-probe scanner would only have reached hosts whose first
        SYN got through.
        """
        row = self.origin_row(origin)
        ok = self.l7[row] == int(L7Status.SUCCESS)
        if single_probe:
            ok = ok & ((self.probe_mask[row] & 1) == 1)
        return ok

    def l4_responsive(self, origin: str) -> np.ndarray:
        """Services that completed the TCP handshake for ``origin``."""
        row = self.origin_row(origin)
        return self.l7[row] != int(L7Status.NO_L4)

    def response_counts(self, origin: str) -> np.ndarray:
        """SYN-ACKs received per service (0..n_probes)."""
        row = self.origin_row(origin)
        return popcount_u8(self.probe_mask[row])

    def ground_truth(self, origins: Optional[Sequence[str]] = None,
                     single_probe: bool = False) -> np.ndarray:
        """Mask of services accessible from at least one origin."""
        chosen = list(origins) if origins is not None else self.origins
        truth = np.zeros(len(self.ip), dtype=bool)
        for origin in chosen:
            if self.has_origin(origin):
                truth |= self.accessible(origin, single_probe=single_probe)
        return truth


class CampaignDataset:
    """All trials of a campaign, addressable by (protocol, trial)."""

    def __init__(self, trials: Iterable[TrialData],
                 metadata: Optional[Mapping] = None) -> None:
        self._data: Dict[Tuple[str, int], TrialData] = {}
        for trial_data in trials:
            key = (trial_data.protocol, trial_data.trial)
            if key in self._data:
                raise ValueError(f"duplicate trial data for {key}")
            self._data[key] = trial_data
        if not self._data:
            raise ValueError("a campaign needs at least one trial")
        self.metadata = dict(metadata or {})

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------

    @property
    def protocols(self) -> List[str]:
        seen: List[str] = []
        for protocol, _ in self._data:
            if protocol not in seen:
                seen.append(protocol)
        return seen

    def trials_for(self, protocol: str) -> List[int]:
        return sorted(t for p, t in self._data if p == protocol)

    def trial_data(self, protocol: str, trial: int) -> TrialData:
        return self._data[(protocol, trial)]

    def __iter__(self):
        return iter(self._data.values())

    def __len__(self) -> int:
        return len(self._data)

    # ------------------------------------------------------------------
    # Origin bookkeeping
    # ------------------------------------------------------------------

    def origins_for(self, protocol: str) -> List[str]:
        """Origins present in *every* trial of ``protocol``.

        The paper excludes Carinet (which only scanned trial 1) from
        aggregate statistics; this is the same rule.
        """
        trials = self.trials_for(protocol)
        if not trials:
            return []
        common = None
        for trial in trials:
            present = set(self.trial_data(protocol, trial).origins)
            common = present if common is None else common & present
        # Preserve first-trial ordering.
        first = self.trial_data(protocol, trials[0]).origins
        return [o for o in first if o in (common or set())]

    def all_origins(self, protocol: str) -> List[str]:
        """Origins present in *any* trial of ``protocol``."""
        seen: List[str] = []
        for trial in self.trials_for(protocol):
            for origin in self.trial_data(protocol, trial).origins:
                if origin not in seen:
                    seen.append(origin)
        return seen


def align_ips(reference: np.ndarray, other: np.ndarray) -> np.ndarray:
    """Positions of ``reference`` IPs inside sorted ``other`` (-1 if absent).

    Both arrays must be sorted ascending uint32, as TrialData guarantees.
    """
    reference = np.asarray(reference, dtype=np.uint32)
    other = np.asarray(other, dtype=np.uint32)
    pos = np.searchsorted(other, reference)
    pos_clipped = np.clip(pos, 0, max(len(other) - 1, 0))
    if len(other) == 0:
        return np.full(reference.shape, -1, dtype=np.int64)
    found = other[pos_clipped] == reference
    return np.where(found, pos_clipped, -1).astype(np.int64)


def union_ip_universe(tables: Sequence[TrialData]) -> np.ndarray:
    """Sorted union of the IP columns of several trials."""
    if not tables:
        return np.array([], dtype=np.uint32)
    return np.unique(np.concatenate([t.ip for t in tables]))
