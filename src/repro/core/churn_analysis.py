"""Temporal-churn diagnostics across trials (§2 Limitations).

The paper's three trials span eight weeks, and each trial's ground truth
is "a snapshot of the protocol ecosystem on the day the scan was
conducted" (Table 4a).  These diagnostics quantify that churn — how much
of the universe is stable, how much appears/disappears between trials —
which bounds how much of the "unknown" classification bucket is
ecosystem turnover rather than measurement noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.dataset import CampaignDataset
from repro.core.ground_truth import build_presence


@dataclass
class ChurnReport:
    """Cross-trial ground-truth turnover for one protocol."""

    protocol: str
    trials: List[int]
    #: Ground-truth size per trial.
    sizes: List[int]
    #: jaccard[(i, j)] — |GT_i ∩ GT_j| / |GT_i ∪ GT_j| by trial position.
    jaccard: Dict[Tuple[int, int], float]
    #: Hosts present in every trial / in exactly one trial.
    stable_hosts: int
    single_trial_hosts: int
    universe: int

    def stable_fraction(self) -> float:
        return self.stable_hosts / self.universe if self.universe else 0.0

    def single_trial_fraction(self) -> float:
        return self.single_trial_hosts / self.universe \
            if self.universe else 0.0

    def min_jaccard(self) -> float:
        return min(self.jaccard.values()) if self.jaccard else 1.0


def churn_report(dataset: CampaignDataset, protocol: str,
                 origins: Optional[Sequence[str]] = None) -> ChurnReport:
    """Measure ground-truth turnover between trials."""
    presence = build_presence(dataset, protocol, origins=origins)
    present = presence.present             # (t, n)
    t = present.shape[0]

    jaccard: Dict[Tuple[int, int], float] = {}
    for i in range(t):
        for j in range(i + 1, t):
            union = (present[i] | present[j]).sum()
            inter = (present[i] & present[j]).sum()
            jaccard[(i, j)] = float(inter / union) if union else 1.0

    counts = present.sum(axis=0)
    return ChurnReport(
        protocol=protocol, trials=list(presence.trials),
        sizes=[int(row.sum()) for row in present],
        jaccard=jaccard,
        stable_hosts=int((counts == t).sum()),
        single_trial_hosts=int((counts == 1).sum()),
        universe=presence.n_hosts())


def unknown_budget(dataset: CampaignDataset, protocol: str,
                   origins: Optional[Sequence[str]] = None) -> float:
    """Upper bound on the unknown-classification rate from churn alone.

    A (host, trial) can only land in the unknown bucket when the host is
    present in exactly one trial; this returns the fraction of
    (host, present-trial) pairs that are single-trial appearances — the
    ceiling on unknown's share of *observations* regardless of how lossy
    any origin is.
    """
    presence = build_presence(dataset, protocol, origins=origins)
    counts = presence.present.sum(axis=0)
    total_pairs = int(presence.present.sum())
    if total_pairs == 0:
        return float("nan")
    single = int((counts == 1).sum())
    return single / total_pairs
