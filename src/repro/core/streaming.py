"""Streaming (out-of-core) analysis over per-shard packed planes.

The packed engine (:mod:`repro.core.engine`) represents presence as bit
planes, and every statistic the paper grid needs — per-origin coverage,
the all-origin intersection, k-subset union coverage, bootstrap CIs —
is OR/AND/popcount algebra over those planes.  Bitwise algebra is
associative across any host partition, so a sharded campaign
(:mod:`repro.sim.shard`) never has to materialize a full
:class:`~repro.core.dataset.CampaignDataset`: each shard's trial table
is reduced into this module's accumulators the moment it is observed,
and the raw observation arrays are dropped.  Resident state is one
shard's tables plus the accumulated planes — bits per host, not bytes.

The numbers are *byte-identical* to the monolithic path: packing a
concatenation equals concatenating packings (the
:class:`BitPlaneWriter` carries the sub-byte remainder across shard
boundaries), popcounts of equal planes are equal, and every derived
statistic below performs the same reductions in the same order as its
dataset-level counterpart (``tests/test_shard_world.py`` pins this).

What streams: per-origin/intersection coverage tables
(:class:`~repro.core.coverage.CoverageTable`), multi-origin k-subset
tables, best combinations, per-origin bootstrap intervals, and per-AS
coverage rates.  What does not: analyses needing raw per-host columns
(miss taxonomy, burst reconstruction, SSH retries) still require a
materialized dataset — see ``docs/SCALING.md``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.bootstrap import (Interval, _percentile_interval,
                                  _replicate_stats)
from repro.core.coverage import CoverageTable
from repro.core.dataset import TrialData
from repro.core.engine import PackedTrial, resolve_engine
from repro.core.multi_origin import ComboCoverage, KOriginSummary
from repro.rng import CounterRNG
from repro import telemetry


class BitPlaneWriter:
    """Incrementally pack boolean masks into one uint8 bit plane.

    Appending masks ``m1, m2, ...`` and finishing yields exactly
    ``np.packbits(concatenate([m1, m2, ...]))``: the sub-byte remainder
    of each append is carried into the next, so shard lengths need not
    be multiples of eight for the final plane to match a monolithic
    ``pack_bits`` byte for byte.
    """

    __slots__ = ("_chunks", "_rem", "n_bits")

    def __init__(self) -> None:
        self._chunks: List[np.ndarray] = []
        self._rem = np.zeros(0, dtype=bool)
        self.n_bits = 0

    def append(self, mask: np.ndarray) -> None:
        mask = np.asarray(mask, dtype=bool)
        self.n_bits += len(mask)
        data = np.concatenate([self._rem, mask]) if len(self._rem) \
            else mask
        n_full = (len(data) // 8) * 8
        if n_full:
            self._chunks.append(np.packbits(data[:n_full]))
        self._rem = data[n_full:]

    def finish(self) -> np.ndarray:
        """The packed plane (callable once; trailing pad bits are zero)."""
        chunks = list(self._chunks)
        if len(self._rem):
            chunks.append(np.packbits(self._rem))
        if not chunks:
            return np.zeros(0, dtype=np.uint8)
        return np.concatenate(chunks)


@dataclass
class StreamingTrial:
    """Accumulated planes and per-AS counts for one (protocol, trial).

    Shards must be fed in shard order (:meth:`add_shard`), mirroring how
    their host ranges concatenate to the monolithic table; ``finish()``
    freezes the accumulation into a :class:`PackedTrial`.
    """

    protocol: str
    trial: int
    n_ases: int
    origins: List[str] = field(default_factory=list)
    _truth_writer: BitPlaneWriter = field(default_factory=BitPlaneWriter)
    _origin_writers: List[BitPlaneWriter] = field(default_factory=list)
    total: int = 0
    n_hosts: int = 0
    truth_by_as: Optional[np.ndarray] = None
    seen_by_as: Optional[np.ndarray] = None
    _packed: Optional[PackedTrial] = None
    _truth_plane: Optional[np.ndarray] = None

    def add_shard(self, table: TrialData) -> None:
        """Reduce one shard's trial table into the accumulators."""
        if self._packed is not None:
            raise RuntimeError("accumulation already finished")
        if not self.origins:
            self.origins = list(table.origins)
            self._origin_writers = [BitPlaneWriter() for _ in self.origins]
            self.truth_by_as = np.zeros(self.n_ases, dtype=np.int64)
            self.seen_by_as = np.zeros((len(self.origins), self.n_ases),
                                       dtype=np.int64)
        elif list(table.origins) != self.origins:
            raise ValueError(
                f"shard origins {table.origins} disagree with "
                f"{self.origins} — shards of one campaign share a grid")
        truth = table.ground_truth()
        self._truth_writer.append(truth)
        self.total += int(truth.sum())
        self.n_hosts += len(truth)
        self.truth_by_as += np.bincount(table.as_index[truth],
                                        minlength=self.n_ases)
        for oi, origin in enumerate(self.origins):
            seen = table.accessible(origin) & truth
            self._origin_writers[oi].append(seen)
            self.seen_by_as[oi] += np.bincount(table.as_index[seen],
                                               minlength=self.n_ases)
        # Deterministic by construction — shard order and row counts are
        # fixed by the manifest — so this stays outside EXCLUDED_PREFIXES.
        telemetry.count("streaming.rows_reduced", len(truth),
                        protocol=self.protocol)

    def add_shard_planes(self, origins: Sequence[str],
                         as_index: np.ndarray,
                         accessible: np.ndarray) -> None:
        """Reduce one shard's pre-sliced success planes.

        The plane-only fast path: ``accessible`` is an
        ``(n_origins, n_rows)`` boolean matrix (row order matching
        ``origins``) of per-origin L7 success — exactly what
        :class:`repro.sim.batch.PlaneSlice` carries — so a plane-only
        trial batch streams into the accumulators without ever
        materializing ``Observation`` rows or a ``TrialData``.  Performs
        the same reductions in the same order as :meth:`add_shard`
        (truth is the OR of the rows), so the finished planes and per-AS
        counts are byte-identical to the materialized path's.
        """
        if self._packed is not None:
            raise RuntimeError("accumulation already finished")
        origins = list(origins)
        accessible = np.asarray(accessible, dtype=bool)
        as_index = np.asarray(as_index, dtype=np.int64)
        if not self.origins:
            self.origins = origins
            self._origin_writers = [BitPlaneWriter() for _ in self.origins]
            self.truth_by_as = np.zeros(self.n_ases, dtype=np.int64)
            self.seen_by_as = np.zeros((len(self.origins), self.n_ases),
                                       dtype=np.int64)
        elif origins != self.origins:
            raise ValueError(
                f"shard origins {origins} disagree with "
                f"{self.origins} — shards of one campaign share a grid")
        truth = np.zeros(accessible.shape[1], dtype=bool)
        for row in accessible:
            truth |= row
        self._truth_writer.append(truth)
        self.total += int(truth.sum())
        self.n_hosts += len(truth)
        self.truth_by_as += np.bincount(as_index[truth],
                                        minlength=self.n_ases)
        for oi in range(len(self.origins)):
            seen = accessible[oi] & truth
            self._origin_writers[oi].append(seen)
            self.seen_by_as[oi] += np.bincount(as_index[seen],
                                               minlength=self.n_ases)
        telemetry.count("streaming.rows_reduced", len(truth),
                        protocol=self.protocol)

    def finish(self) -> PackedTrial:
        """Freeze into a :class:`PackedTrial` (idempotent)."""
        if self._packed is None:
            if not self.origins:
                raise RuntimeError("no shards were accumulated")
            planes = np.stack([w.finish() for w in self._origin_writers])
            self._truth_plane = self._truth_writer.finish()
            self._packed = PackedTrial.from_parts(
                self.protocol, self.trial, self.origins, planes,
                self.total, self.n_hosts)
        return self._packed

    @property
    def truth_plane(self) -> np.ndarray:
        """The packed ground-truth plane (after :meth:`finish`)."""
        self.finish()
        return self._truth_plane


class StreamingCampaignResult:
    """The reduced output of a sharded campaign run.

    Holds one :class:`StreamingTrial` per (protocol, trial) plus run
    metadata; exposes the paper-grid analyses computed purely from the
    accumulated planes.  Total size is a few bits per (host, origin,
    trial) — megabytes at 10× scale, never the raw dataset.
    """

    def __init__(self, trials: Dict[Tuple[str, int], StreamingTrial],
                 metadata: Optional[dict] = None) -> None:
        self.trials = trials
        self.metadata = metadata or {}

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------

    def protocols(self) -> List[str]:
        seen: List[str] = []
        for protocol, _ in self.trials:
            if protocol not in seen:
                seen.append(protocol)
        return seen

    def trials_for(self, protocol: str) -> List[int]:
        return sorted(t for p, t in self.trials if p == protocol)

    def streaming_trial(self, protocol: str, trial: int) -> StreamingTrial:
        return self.trials[(protocol, trial)]

    def packed_trial(self, protocol: str, trial: int) -> PackedTrial:
        return self.trials[(protocol, trial)].finish()

    def origins_for(self, protocol: str) -> List[str]:
        """Origins present in every trial, in first-trial order (the
        paper's aggregate-statistics rule — drops late joiners)."""
        trials = self.trials_for(protocol)
        if not trials:
            return []
        first = self.trials[(protocol, trials[0])].origins
        everywhere = set(first)
        for trial in trials[1:]:
            everywhere &= set(self.trials[(protocol, trial)].origins)
        return [o for o in first if o in everywhere]

    # ------------------------------------------------------------------
    # Coverage (Table 4)
    # ------------------------------------------------------------------

    def coverage_table(self, protocol: str,
                       origins: Optional[Sequence[str]] = None
                       ) -> CoverageTable:
        """The Table 4 analog, byte-identical to
        :func:`repro.core.coverage.coverage_table` on the materialized
        dataset (same popcounts, same division order)."""
        from repro.core.bits import popcount_packed

        trials = self.trials_for(protocol)
        chosen = list(origins) if origins is not None \
            else self.origins_for(protocol)
        coverage: Dict[int, Dict[str, float]] = {}
        intersection: Dict[int, float] = {}
        union_size: Dict[int, int] = {}
        for trial in trials:
            streaming = self.trials[(protocol, trial)]
            packed = streaming.finish()
            total = packed.total
            union_size[trial] = total
            per_origin: Dict[str, float] = {}
            present = [o for o in chosen if o in packed._rows]
            for origin in present:
                count = int(popcount_packed(
                    packed.packed[packed._rows[origin]]))
                per_origin[origin] = float(count / total) if total else 0.0
            coverage[trial] = per_origin
            # Fold from the truth plane so an empty origin list yields
            # the reference path's truth/truth = 1.0, not 0.0.
            everyone = streaming.truth_plane.copy()
            for origin in present:
                everyone &= packed.packed[packed._rows[origin]]
            intersection[trial] = float(
                int(popcount_packed(everyone)) / total) if total else 0.0
        return CoverageTable(protocol=protocol, origins=chosen,
                             trials=list(trials), coverage=coverage,
                             intersection=intersection,
                             union_size=union_size)

    # ------------------------------------------------------------------
    # Multi-origin (Figures 15/17)
    # ------------------------------------------------------------------

    def _combo_samples(self, protocol: str, trial: int, k: int,
                       origins: Sequence[str]) -> List[ComboCoverage]:
        packed = self.packed_trial(protocol, trial)
        chosen = [o for o in origins if o in packed._rows]
        if k < 1 or k > len(chosen):
            raise ValueError(f"k must be in [1, {len(chosen)}]")
        rows = packed.rows_for(chosen)
        combos = list(itertools.combinations(range(len(chosen)), k))
        subsets = rows[np.array(combos, dtype=np.intp)]
        counts = packed.union_counts(subsets)
        total = packed.total
        coverages = counts / total if total else np.zeros(len(combos))
        return [ComboCoverage(combo=tuple(chosen[i] for i in combo),
                              trial=trial, coverage=float(coverage))
                for combo, coverage in zip(combos, coverages)]

    def k_origin_summary(self, protocol: str, k: int,
                         origins: Optional[Sequence[str]] = None
                         ) -> KOriginSummary:
        """Packed-engine k-subset distribution over the planes —
        identical floats to :func:`repro.core.multi_origin.k_origin_summary`
        with ``engine="packed"``."""
        chosen = list(origins) if origins is not None \
            else self.origins_for(protocol)
        samples: List[ComboCoverage] = []
        for trial in self.trials_for(protocol):
            samples.extend(self._combo_samples(protocol, trial, k, chosen))
        values = np.array([s.coverage for s in samples])
        return KOriginSummary(
            k=k, median=float(np.median(values)),
            q1=float(np.percentile(values, 25)),
            q3=float(np.percentile(values, 75)),
            minimum=float(values.min()), maximum=float(values.max()),
            std=float(values.std()), samples=samples)

    def multi_origin_table(self, protocol: str,
                           origins: Optional[Sequence[str]] = None,
                           max_k: Optional[int] = None
                           ) -> Dict[int, KOriginSummary]:
        chosen = list(origins) if origins is not None \
            else self.origins_for(protocol)
        limit = max_k if max_k is not None else len(chosen)
        return {k: self.k_origin_summary(protocol, k, origins=chosen)
                for k in range(1, limit + 1)}

    def best_combination(self, protocol: str, k: int,
                         origins: Optional[Sequence[str]] = None
                         ) -> Tuple[Tuple[str, ...], float]:
        summary = self.k_origin_summary(protocol, k, origins=origins)
        by_combo: Dict[Tuple[str, ...], List[float]] = {}
        for sample in summary.samples:
            by_combo.setdefault(sample.combo, []).append(sample.coverage)
        means = {combo: float(np.mean(vals))
                 for combo, vals in by_combo.items()}
        best = max(means, key=means.get)
        return best, means[best]

    # ------------------------------------------------------------------
    # Bootstrap CIs
    # ------------------------------------------------------------------

    def coverage_interval(self, protocol: str, trial: int, origin: str,
                          replicates: int = 500, confidence: float = 0.95,
                          seed: int = 0,
                          engine: Optional[str] = None) -> Interval:
        """Bootstrap CI from the planes: same draws, same reduction, so
        the interval equals
        :func:`repro.core.bootstrap.coverage_interval` on the
        materialized trial exactly."""
        if replicates < 10:
            raise ValueError("need at least 10 replicates")
        if not 0.0 < confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")
        engine = resolve_engine(engine)
        streaming = self.trials[(protocol, trial)]
        packed = streaming.finish()
        truth = np.unpackbits(
            streaming.truth_plane,
            count=packed.n_hosts).astype(bool)
        accessible = np.unpackbits(
            packed.packed[packed._rows[origin]],
            count=packed.n_hosts).astype(bool)
        seen = accessible[truth]
        n = packed.total
        if n == 0:
            return Interval(float("nan"), float("nan"), float("nan"),
                            confidence)
        point = float(seen.mean())
        rng = CounterRNG(seed, "bootstrap-coverage", origin, protocol,
                         int(trial))
        stats = _replicate_stats(rng, seen, n, replicates, engine)
        return _percentile_interval(point, stats, confidence)

    # ------------------------------------------------------------------
    # Per-AS rates (the scale-invariance observable)
    # ------------------------------------------------------------------

    def per_as_coverage(self, protocol: str, origin: str
                        ) -> Tuple[np.ndarray, np.ndarray]:
        """``(truth, seen)`` int64 vectors over dense AS indices, summed
        across trials: per-AS coverage rate is ``seen / truth`` where
        truth > 0."""
        trials = self.trials_for(protocol)
        first = self.trials[(protocol, trials[0])]
        truth = np.zeros(first.n_ases, dtype=np.int64)
        seen = np.zeros(first.n_ases, dtype=np.int64)
        for trial in trials:
            streaming = self.trials[(protocol, trial)]
            truth += streaming.truth_by_as
            if origin in streaming.origins:
                seen += streaming.seen_by_as[
                    streaming.origins.index(origin)]
        return truth, seen

    # ------------------------------------------------------------------
    # The paper grid, in one call
    # ------------------------------------------------------------------

    def report(self, max_k: Optional[int] = None,
               replicates: int = 200, seed: int = 0) -> dict:
        """The full streamed paper grid as one JSON-able dict.

        Per protocol: the coverage table rows (Table 4), the k-origin
        summaries (Figures 15/17), the best 2- and 3-origin
        combinations, and per-(origin, trial) bootstrap intervals.
        """
        out: Dict[str, object] = {}
        for protocol in self.protocols():
            origins = self.origins_for(protocol)
            table = self.coverage_table(protocol)
            multi = self.multi_origin_table(protocol, max_k=max_k)
            intervals = {
                origin: {
                    trial: self.coverage_interval(
                        protocol, trial, origin, replicates=replicates,
                        seed=seed).__dict__
                    for trial in self.trials_for(protocol)}
                for origin in origins}
            best = {}
            for k in (2, 3):
                if k <= len(origins):
                    combo, mean = self.best_combination(protocol, k)
                    best[k] = {"combo": list(combo), "coverage": mean}
            out[protocol] = {
                "origins": origins,
                "coverage_rows": table.rows(),
                "mean_intersection": table.mean_intersection(),
                "multi_origin": {
                    k: {"median": s.median, "q1": s.q1, "q3": s.q3,
                        "min": s.minimum, "max": s.maximum, "std": s.std}
                    for k, s in multi.items()},
                "best_combination": best,
                "bootstrap": intervals,
            }
        return out
