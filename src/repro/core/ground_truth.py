"""Ground-truth estimation (§2, Limitations).

There is no known ground truth for live Internet hosts; the paper defines
it per trial as the set of hosts completing an application-layer handshake
with *any* scan origin.  Cross-trial analyses work over the union of all
trials' ground truths, with per-trial presence tracked separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.dataset import CampaignDataset, TrialData, align_ips
from repro.telemetry.context import current as _telemetry


def ground_truth_ips(trial_data: TrialData,
                     origins: Optional[Sequence[str]] = None,
                     single_probe: bool = False) -> np.ndarray:
    """Sorted IPs accessible from at least one origin in one trial."""
    mask = trial_data.ground_truth(origins=origins,
                                   single_probe=single_probe)
    return trial_data.ip[mask]


def union_ground_truth(dataset: CampaignDataset, protocol: str,
                       origins: Optional[Sequence[str]] = None,
                       single_probe: bool = False) -> np.ndarray:
    """Sorted union of per-trial ground truths across all trials."""
    parts = [ground_truth_ips(dataset.trial_data(protocol, trial),
                              origins=origins, single_probe=single_probe)
             for trial in dataset.trials_for(protocol)]
    if not parts:
        return np.array([], dtype=np.uint32)
    return np.unique(np.concatenate(parts))


@dataclass
class PresenceMatrix:
    """Per-trial ground-truth presence and per-origin accessibility.

    Everything is aligned to ``ips`` (the cross-trial ground-truth
    universe):

    * ``present[t, i]`` — host *i* is in trial *t*'s ground truth;
    * ``accessible[o, t, i]`` — origin *o* completed the handshake with
      host *i* in trial *t*;
    * ``participated[o, t]`` — origin *o* scanned in trial *t* at all.
    """

    protocol: str
    origins: List[str]
    trials: List[int]
    ips: np.ndarray               # uint32 (n,)
    present: np.ndarray           # bool (t, n)
    accessible: np.ndarray        # bool (o, t, n)
    participated: np.ndarray      # bool (o, t)
    as_index: np.ndarray          # int64 (n,) attribution from any trial
    country_index: np.ndarray     # int64 (n,) true location
    geo_index: np.ndarray         # int64 (n,) observed GeoIP location

    def n_hosts(self) -> int:
        return len(self.ips)

    def origin_row(self, origin: str) -> int:
        return self.origins.index(origin)

    def present_trial_counts(self) -> np.ndarray:
        """Number of trials each host appears in ground truth."""
        return self.present.sum(axis=0)


def build_presence(dataset: CampaignDataset, protocol: str,
                   origins: Optional[Sequence[str]] = None,
                   single_probe: bool = False) -> PresenceMatrix:
    """Assemble the aligned presence/accessibility cube for one protocol.

    ``origins`` defaults to the origins present in every trial (the
    paper's aggregate-statistics rule, which drops Carinet).  Ground truth
    is always computed over *all* participating origins, even excluded
    ones — an excluded origin still contributes evidence that a host is
    alive.
    """
    tel = _telemetry()
    if tel.enabled:
        # Every alignment pass is counted: the report path asserts one
        # build per (dataset, protocol) via this counter (the repeated
        # silent-rebuild bug is exactly what it makes visible).
        tel.count("analysis.presence_build", 1, protocol=protocol)
    with tel.span("analysis.presence_build", protocol=protocol,
                  single_probe=bool(single_probe)):
        return _build_presence(dataset, protocol, origins=origins,
                               single_probe=single_probe)


def _build_presence(dataset: CampaignDataset, protocol: str,
                    origins: Optional[Sequence[str]] = None,
                    single_probe: bool = False) -> PresenceMatrix:
    trials = dataset.trials_for(protocol)
    tables = [dataset.trial_data(protocol, t) for t in trials]
    chosen = list(origins) if origins is not None \
        else dataset.origins_for(protocol)

    # Universe: union of per-trial ground truths (not all responders).
    universe = union_ground_truth(dataset, protocol,
                                  single_probe=single_probe)
    n = len(universe)
    present = np.zeros((len(trials), n), dtype=bool)
    accessible = np.zeros((len(chosen), len(trials), n), dtype=bool)
    participated = np.zeros((len(chosen), len(trials)), dtype=bool)
    as_index = np.full(n, -1, dtype=np.int64)
    country_index = np.full(n, -1, dtype=np.int64)
    geo_index = np.full(n, -1, dtype=np.int64)

    for ti, table in enumerate(tables):
        pos = align_ips(universe, table.ip)
        found = pos >= 0
        pos_found = pos[found]
        truth = table.ground_truth(single_probe=single_probe)
        present[ti, found] = truth[pos_found]
        # Attribution: take it from any trial that has the host.
        need = found & (as_index < 0)
        as_index[need] = table.as_index[pos[need]]
        country_index[need] = table.country_index[pos[need]]
        geo_index[need] = table.geo_index[pos[need]]
        for oi, origin in enumerate(chosen):
            if not table.has_origin(origin):
                continue
            participated[oi, ti] = True
            acc = table.accessible(origin, single_probe=single_probe)
            accessible[oi, ti, found] = acc[pos_found]

    # Presence means "in ground truth", so accessibility implies presence.
    accessible &= present[np.newaxis, :, :]
    return PresenceMatrix(
        protocol=protocol, origins=chosen, trials=list(trials),
        ips=universe, present=present, accessible=accessible,
        participated=participated, as_index=as_index,
        country_index=country_index, geo_index=geo_index)
