"""Campaign-to-campaign comparison.

The paper itself does this twice: the September-2020 follow-up compares
against the 2019 main experiment (Censys' fresh IP range recovered >5 %
HTTP coverage; Table 4b), and §7 compares multi-probe against
multi-origin configurations.  This module provides the general tool:
given two campaigns (different dates, different source ranges, different
scanner configs), line up their per-origin coverage and per-AS visibility
and report what changed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.by_as import counts_by_as
from repro.core.coverage import coverage_table
from repro.core.dataset import CampaignDataset
from repro.core.ground_truth import build_presence


@dataclass
class CoverageDelta:
    """Per-origin mean-coverage change between two campaigns."""

    protocol: str
    #: origin → (before, after, delta); only origins present in both.
    by_origin: Dict[str, Tuple[float, float, float]]

    def biggest_gain(self) -> Optional[str]:
        if not self.by_origin:
            return None
        return max(self.by_origin,
                   key=lambda o: self.by_origin[o][2])

    def biggest_loss(self) -> Optional[str]:
        if not self.by_origin:
            return None
        return min(self.by_origin,
                   key=lambda o: self.by_origin[o][2])


def compare_coverage(before: CampaignDataset, after: CampaignDataset,
                     protocol: str) -> CoverageDelta:
    """Mean-coverage deltas for the origins both campaigns share."""
    table_before = coverage_table(before, protocol)
    table_after = coverage_table(after, protocol)
    shared = [o for o in table_before.origins
              if o in table_after.origins]
    by_origin = {}
    for origin in shared:
        b = table_before.mean_coverage(origin)
        a = table_after.mean_coverage(origin)
        by_origin[origin] = (b, a, a - b)
    return CoverageDelta(protocol=protocol, by_origin=by_origin)


@dataclass
class VisibilityDelta:
    """Per-AS visibility change for one origin between two campaigns.

    Visibility = fraction of the AS's classifiable ground-truth hosts the
    origin was ever able to reach.  ASes are matched by *ASN*, which is
    stable across datasets, unlike dense indices.
    """

    protocol: str
    origin: str
    #: asn → (before, after) visibility fractions.
    by_asn: Dict[int, Tuple[float, float]]

    def recovered(self, threshold: float = 0.5) -> List[int]:
        """ASNs that went from mostly-blocked to mostly-visible."""
        return [asn for asn, (b, a) in self.by_asn.items()
                if b < 1.0 - threshold and a >= threshold]

    def lost(self, threshold: float = 0.5) -> List[int]:
        """ASNs that went from mostly-visible to mostly-blocked."""
        return [asn for asn, (b, a) in self.by_asn.items()
                if b >= threshold and a < 1.0 - threshold]


def _per_asn_visibility(dataset: CampaignDataset, protocol: str,
                        origin: str,
                        asn_of_index: Dict[int, int],
                        min_hosts: int = 2) -> Dict[int, float]:
    presence = build_presence(dataset, protocol)
    if origin not in presence.origins:
        return {}
    oi = presence.origin_row(origin)
    classifiable = presence.present_trial_counts() >= 1
    ever_seen = np.any(presence.accessible[oi], axis=0)
    totals = counts_by_as(presence.as_index, classifiable)
    seen = counts_by_as(presence.as_index, ever_seen & classifiable,
                        n_as=len(totals))
    out: Dict[int, float] = {}
    for index in np.flatnonzero(totals >= min_hosts):
        asn = asn_of_index.get(int(index))
        if asn is None:
            continue
        out[asn] = float(seen[index] / totals[index])
    return out


def compare_visibility(before: CampaignDataset, after: CampaignDataset,
                       protocol: str, origin: str,
                       asn_of_index_before: Dict[int, int],
                       asn_of_index_after: Dict[int, int],
                       min_hosts: int = 2) -> VisibilityDelta:
    """Per-AS visibility changes for one origin.

    The ``asn_of_index`` maps translate each dataset's dense AS indices
    to stable AS numbers (for simulated data:
    ``{s.index: s.asn for s in world.topology.ases}``).
    """
    vis_before = _per_asn_visibility(before, protocol, origin,
                                     asn_of_index_before, min_hosts)
    vis_after = _per_asn_visibility(after, protocol, origin,
                                    asn_of_index_after, min_hosts)
    shared = set(vis_before) & set(vis_after)
    return VisibilityDelta(
        protocol=protocol, origin=origin,
        by_asn={asn: (vis_before[asn], vis_after[asn])
                for asn in sorted(shared)})
