"""Per-country analyses (§4.4, Tables 2 and 5, Figures 6 and 16).

Geolocation uses the *observed* (GeoIP) country, exactly as the paper
relies on MaxMind — including its anycast misattributions, which is how the
Cloudflare misconfiguration shows up as "hosts exclusively accessible from
Australia that geolocate elsewhere".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.by_as import counts_by_as
from repro.core.classification import breakdown_by_origin
from repro.core.dataset import CampaignDataset
from repro.core.exclusivity import ExclusivityReport
from repro.core.stats import spearman


def counts_by_country(geo_index: np.ndarray, mask: np.ndarray,
                      n_countries: Optional[int] = None) -> np.ndarray:
    """Host counts per observed country for the rows in ``mask``."""
    geo_index = np.asarray(geo_index, dtype=np.int64)
    if n_countries is None:
        n_countries = int(geo_index.max()) + 1 if len(geo_index) else 0
    picked = geo_index[np.asarray(mask, dtype=bool)]
    picked = picked[picked >= 0]
    return np.bincount(picked, minlength=n_countries)


@dataclass
class CountryInaccessibility:
    """Table 2 / Table 5 contents for one protocol."""

    protocol: str
    origins: List[str]
    #: country index → total classifiable hosts.
    totals: np.ndarray
    #: fraction[o, c] — share of country c long-term missing from origin o.
    fraction: np.ndarray
    #: concentration[o, c] — number of ASes needed to cover the majority of
    #: (o, c)'s missing hosts (the paper's red/orange/yellow colouring).
    concentration: np.ndarray

    def for_origin(self, origin: str) -> np.ndarray:
        return self.fraction[self.origins.index(origin)]

    def worst_cases(self, top: int = 10) -> List[Tuple[str, int, float]]:
        """(origin, country index, fraction) of the largest losses."""
        flat = []
        for oi, origin in enumerate(self.origins):
            for ci in np.argsort(self.fraction[oi])[::-1][:top]:
                if self.fraction[oi, ci] > 0:
                    flat.append((origin, int(ci),
                                 float(self.fraction[oi, ci])))
        flat.sort(key=lambda item: -item[2])
        return flat[:top]


def country_inaccessibility(dataset: CampaignDataset, protocol: str,
                            origins: Optional[Sequence[str]] = None,
                            context: Optional["AnalysisContext"] = None,
                            ) -> CountryInaccessibility:
    """Per-(origin, country) long-term inaccessibility (Tables 2 / 5)."""
    classifications = breakdown_by_origin(dataset, protocol,
                                          origins=origins, context=context)
    chosen = list(classifications.keys())
    first = classifications[chosen[0]]
    classifiable = first.present.sum(axis=0) >= 2
    n_countries = int(first.geo_index.max()) + 1 if len(first.geo_index) \
        else 0
    totals = counts_by_country(first.geo_index, classifiable, n_countries)

    fraction = np.zeros((len(chosen), n_countries))
    concentration = np.zeros((len(chosen), n_countries), dtype=np.int64)
    for oi, origin in enumerate(chosen):
        cls = classifications[origin]
        missing = cls.long_term_mask() & classifiable
        counts = counts_by_country(cls.geo_index, missing, n_countries)
        with np.errstate(divide="ignore", invalid="ignore"):
            fraction[oi] = np.where(totals > 0,
                                    counts / np.maximum(totals, 1), 0.0)
        # AS concentration of each country's missing hosts.
        for ci in np.flatnonzero(counts):
            in_country = missing & (cls.geo_index == ci)
            by_as = counts_by_as(cls.as_index, in_country)
            ranked = np.sort(by_as[by_as > 0])[::-1]
            target = counts[ci] / 2.0
            cum = 0
            needed = 0
            for value in ranked:
                cum += value
                needed += 1
                if cum > target:
                    break
            concentration[oi, ci] = needed
    return CountryInaccessibility(
        protocol=protocol, origins=chosen, totals=totals,
        fraction=fraction, concentration=concentration)


def country_size_correlation(report: CountryInaccessibility
                             ) -> Tuple[float, float]:
    """Spearman ρ between country size and inaccessible-host count (§4.4).

    The paper reports ρ = 0.92 (p < 0.001): big countries lose the most
    hosts simply because they have the most hosts.
    """
    totals = report.totals.astype(np.float64)
    missing = (report.fraction * totals[np.newaxis, :]).sum(axis=0)
    keep = totals > 0
    return spearman(totals[keep], missing[keep])


@dataclass
class ExclusiveByCountry:
    """Figure 6 / 16: exclusively accessible hosts bucketed by country."""

    protocol: str
    origin_labels: List[str]
    #: counts[label][country index] — exclusive hosts per observed country.
    counts: Dict[str, np.ndarray]
    #: Per origin label: fraction of the matching country's hosts that are
    #: exclusively accessible from within it (the paper's dark-green bars).
    within_country_fraction: Dict[str, float]


def exclusive_accessible_by_country(
        report: ExclusivityReport, totals: np.ndarray,
        origin_country: Dict[str, int],
        merge: Sequence[Sequence[str]] = (("US1", "CEN"),),
        exclude: Sequence[str] = ("US64", "CARINET"),
) -> ExclusiveByCountry:
    """Figure 6's analysis on top of an exclusivity report.

    ``origin_country`` maps origin name → its country index; ``merge``
    groups origins sharing a country (the paper combines US1 and Censys and
    drops US64 so "exclusively accessible from the US" is meaningful).
    """
    merged_away = {name for group in merge for name in group[1:]}
    labels: List[str] = []
    members: Dict[str, List[str]] = {}
    for origin in report.origins:
        if origin in exclude or origin in merged_away:
            continue
        group = next((g for g in merge if g[0] == origin), (origin,))
        label = "+".join(group)
        labels.append(label)
        members[label] = [o for o in group if o in report.origins]

    n_countries = len(totals)
    counts: Dict[str, np.ndarray] = {}
    within: Dict[str, float] = {}
    ever = report.ever_accessible
    rows = {o: i for i, o in enumerate(report.origins)}
    considered = [o for o in report.origins if o not in exclude]
    considered_rows = [rows[o] for o in considered]
    ever_considered = ever[considered_rows]

    for label in labels:
        group_rows = [considered.index(o) for o in members[label]]
        in_group = np.any(ever_considered[group_rows], axis=0)
        outside = np.delete(ever_considered, group_rows, axis=0)
        exclusive = in_group & ~np.any(outside, axis=0)
        counts[label] = counts_by_country(report.geo_index, exclusive,
                                          n_countries)
        home = origin_country.get(members[label][0], -1)
        if 0 <= home < n_countries and totals[home] > 0:
            home_mask = exclusive & (report.geo_index == home)
            within[label] = float(home_mask.sum() / totals[home])
        else:
            within[label] = 0.0
    return ExclusiveByCountry(
        protocol=report.protocol, origin_labels=labels, counts=counts,
        within_country_fraction=within)
