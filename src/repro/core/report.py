"""One-shot campaign report: every §3–§7 analysis as readable text.

``full_report`` runs the whole analysis pipeline over a campaign dataset
and renders the results in the order the paper presents them.  It is the
backing of ``python -m repro report`` and a convenient smoke test that a
dataset (simulated or loaded from disk) is analyzable end-to-end.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.bursts import burst_report
from repro.core.classification import figure2_rows, longterm_l4_breakdown
from repro.core.coverage import coverage_table
from repro.core.dataset import CampaignDataset
from repro.core.engine import AnalysisContext, get_context
from repro.core.exclusivity import (
    exclusivity_report,
    single_origin_longterm_share,
)
from repro.core.multi_origin import multi_origin_table
from repro.core.packet_loss import drop_summary
from repro.core.slash24 import mean_agreement
from repro.core.ssh import ssh_breakdown
from repro.core.stats import bonferroni, pairwise_origin_tests
from repro.core.timing import asynchrony_report, diurnal_profile
from repro.core.transient import transient_overlap_histogram
from repro.reporting.figures import render_bars, render_grouped_bars
from repro.reporting.tables import render_table


def full_report(dataset: CampaignDataset,
                as_name: Optional[Callable[[int], str]] = None,
                engine: Optional[str] = None) -> str:
    """Render the complete analysis suite for ``dataset`` as text.

    ``as_name`` optionally maps AS indices to display names (available
    when the dataset came from a simulation whose world is at hand).
    ``engine`` selects the analysis engine (``packed``/``reference``;
    default from ``REPRO_ANALYSIS_ENGINE``) for the analyses that have
    one.  One shared :class:`~repro.core.engine.AnalysisContext` per
    protocol backs every section, so the whole report performs exactly
    one presence-alignment pass per protocol (observable via the
    ``analysis.presence_build`` telemetry counter).
    """
    sections: List[str] = []
    protocols = dataset.protocols
    contexts: Dict[str, AnalysisContext] = {
        protocol: get_context(dataset, protocol) for protocol in protocols}

    # --- Coverage (Figure 1 / Table 4) --------------------------------
    for protocol in protocols:
        table = coverage_table(dataset, protocol)
        sections.append(render_table(
            ["trial"] + table.origins + ["∩", "∪"], table.rows(),
            title=f"[coverage] {protocol}"))

    # --- Missing-host breakdown (Figure 2) ----------------------------
    for protocol in protocols:
        rows = figure2_rows(dataset, protocol, context=contexts[protocol])
        groups = {}
        for row in rows:
            key = row["origin"]
            bucket = groups.setdefault(
                key, {"transient": 0, "long_term": 0, "unknown": 0})
            bucket["transient"] += row["transient_host"] \
                + row["transient_network"]
            bucket["long_term"] += row["long_term_host"] \
                + row["long_term_network"]
            bucket["unknown"] += row["unknown"]
        sections.append(render_grouped_bars(
            groups, title=f"[missing hosts, all trials] {protocol}"))

    # --- Exclusivity (Figure 3 / Table 1) ------------------------------
    for protocol in protocols:
        report = exclusivity_report(dataset, protocol,
                                    context=contexts[protocol])
        table1 = report.table1()
        rows = [[o, f"{v['accessible']:.1%}", f"{v['inaccessible']:.1%}"]
                for o, v in table1.items()]
        share = single_origin_longterm_share(report, exclude=())
        sections.append(render_table(
            ["origin", "excl. accessible", "excl. inaccessible"], rows,
            title=f"[exclusivity] {protocol} "
                  f"(single-origin long-term share {share:.0%})"))

    # --- Wire view of long-term losses (§4) ----------------------------
    for protocol in protocols:
        breakdown = longterm_l4_breakdown(dataset, protocol,
                                          context=contexts[protocol])
        rows = [[o, f"{v['no_l4']:.0%}", f"{v['l4_responsive']:.0%}"]
                for o, v in breakdown.items()]
        sections.append(render_table(
            ["origin", "silent at L4", "L4-responsive"], rows,
            title=f"[long-term misses on the wire] {protocol}"))

    # --- Transient overlap (Figure 8) ----------------------------------
    for protocol in protocols:
        histogram = transient_overlap_histogram(
            dataset, protocol, context=contexts[protocol])
        sections.append(render_bars(
            {f"{k} origin(s)": v for k, v in histogram.items()},
            fmt="{:,.0f}",
            title=f"[transient overlap] {protocol}"))

    # --- Packet loss (§5.2) --------------------------------------------
    for protocol in protocols:
        summary = drop_summary(dataset, protocol)
        lo, hi = summary.range_global()
        sections.append(
            f"[drop estimates] {protocol}: {lo:.2%}–{hi:.2%}, worst "
            f"origin {summary.worst_origin()}")

    # --- Bursts (§5.3) ---------------------------------------------------
    for protocol in protocols:
        report = burst_report(dataset, protocol,
                              context=contexts[protocol])
        fractions = report.coincident_fraction()
        affected = report.transient_total > 0
        mean_fraction = float(fractions[affected].mean()) \
            if affected.any() else 0.0
        sections.append(
            f"[bursts] {protocol}: {mean_fraction:.0%} of transient loss "
            f"coincides with detected bursts "
            f"({report.ases_with_burst}/{report.ases_with_transient} "
            f"affected ASes show one)")

    # --- SSH mechanisms (§6) ---------------------------------------------
    if "ssh" in protocols:
        breakdown = ssh_breakdown(dataset, context=contexts["ssh"])
        totals = {o: breakdown.totals(o) for o in breakdown.origins}
        sections.append(render_grouped_bars(
            totals, title="[ssh mechanisms, all trials]"))

    # --- Multi-origin (§7 / Figure 15) -----------------------------------
    for protocol in protocols:
        n_origins = len(dataset.origins_for(protocol))
        table = multi_origin_table(dataset, protocol,
                                   max_k=min(3, n_origins),
                                   single_probe=True, engine=engine,
                                   context=contexts[protocol])
        rows = [[k, f"{s.median:.2%}", f"{s.std:.3%}"]
                for k, s in table.items()]
        sections.append(render_table(
            ["#origins", "median (1 probe)", "σ"], rows,
            title=f"[multi-origin coverage] {protocol}"))

    # --- Statistics (§3) ---------------------------------------------------
    for protocol in protocols:
        results = []
        for trial in dataset.trials_for(protocol):
            results.extend(pairwise_origin_tests(
                dataset.trial_data(protocol, trial),
                origins=dataset.origins_for(protocol)))
        corrected = bonferroni([r.p_value for r in results])
        significant = sum(p < 0.001 for p in corrected)
        sections.append(
            f"[mcnemar] {protocol}: {significant}/{len(results)} origin "
            f"pairs differ (p<0.001, Bonferroni)")

    # --- /24 agreement (§8, Heidemann comparison) ------------------------
    for protocol in protocols:
        agreement = mean_agreement(dataset, protocol)
        sections.append(
            f"[/24 agreement] {protocol}: {agreement:.0%} of blocks "
            f"within 5% response rate across origin pairs "
            f"(2008 same-country baseline: 96%; paper: 87%)")

    # --- Timing (§2 asynchrony, §5.3 diurnal) -----------------------------
    for protocol in protocols:
        trial = dataset.trials_for(protocol)[0]
        asynchrony = asynchrony_report(dataset.trial_data(protocol,
                                                          trial))
        laggards = asynchrony.laggards()
        sections.append(
            f"[asynchrony] {protocol} trial {trial + 1}: max lag "
            f"{asynchrony.overall_max() / 3600:.2f} h"
            + (f" (laggards: {', '.join(laggards)})" if laggards else ""))
    for protocol in protocols:
        profile = diurnal_profile(dataset, protocol)
        spans = {o: profile.peak_to_trough(o) for o in profile.origins}
        worst = max(spans, key=spans.get)
        sections.append(
            f"[diurnal] {protocol}: largest local-hour miss-rate span "
            f"{spans[worst]:.1%} ({worst}) — no origin shows a strong "
            f"time-of-day pattern" if spans[worst] < 0.1 else
            f"[diurnal] {protocol}: {worst} varies {spans[worst]:.1%} "
            f"by local hour")

    return "\n\n".join(sections)
