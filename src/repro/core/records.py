"""Shared observation vocabulary for scan results.

These codes describe what one origin observed for one service in one trial.
They match what a real ZMap + ZGrab pipeline can see on the wire, which is
exactly the signal set the paper's analyses key on (e.g. §6 distinguishes
hosts that *drop* vs *explicitly close* after the TCP handshake).
"""

from __future__ import annotations

import enum

import numpy as np


class L7Status(enum.IntEnum):
    """Outcome of the application-layer follow-up for one service."""

    #: No SYN-ACK was received: firewalled, path-lost, or not listening.
    NO_L4 = 0
    #: TCP completed; the application handshake timed out (silent drop).
    L4_DROP = 1
    #: TCP completed; the server closed (FIN-ACK) before the handshake.
    L4_CLOSE_FIN = 2
    #: TCP completed; the server sent RST immediately after the handshake —
    #: the Alibaba network-wide SSH blocking signature.
    L4_CLOSE_RST = 3
    #: The application handshake completed.
    SUCCESS = 4


#: Statuses that count as "the origin saw this host" for ground truth and
#: coverage purposes (the paper requires a completed L7 handshake).
ACCESSIBLE_STATUSES = (L7Status.SUCCESS,)

#: Statuses where the TCP handshake completed (L4-responsive).
L4_RESPONSIVE_STATUSES = (
    L7Status.L4_DROP,
    L7Status.L4_CLOSE_FIN,
    L7Status.L4_CLOSE_RST,
    L7Status.SUCCESS,
)

#: Statuses where the server explicitly closed after the TCP handshake —
#: the behaviour §6 uses to identify probabilistic temporary blocking.
EXPLICIT_CLOSE_STATUSES = (
    L7Status.L4_CLOSE_FIN,
    L7Status.L4_CLOSE_RST,
)


def accessible_mask(l7: np.ndarray) -> np.ndarray:
    """Boolean mask of services whose L7 handshake completed."""
    return np.asarray(l7) == int(L7Status.SUCCESS)


def l4_responsive_mask(l7: np.ndarray) -> np.ndarray:
    """Boolean mask of services that completed the TCP handshake."""
    arr = np.asarray(l7)
    return arr != int(L7Status.NO_L4)


def explicit_close_mask(l7: np.ndarray) -> np.ndarray:
    """Boolean mask of services that closed explicitly after TCP."""
    arr = np.asarray(l7)
    return ((arr == int(L7Status.L4_CLOSE_FIN))
            | (arr == int(L7Status.L4_CLOSE_RST)))
