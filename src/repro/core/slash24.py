"""Per-/24 response-rate agreement between origins (§8).

Heidemann et al. (2008) compared two U.S. ICMP census origins and found
their response rates within 5 % of each other for 96 % of /24 blocks; the
paper repeats the comparison across its seven diverse origins and finds
only 87 % agreement — geographic/topological diversity makes origins
disagree more.

This module computes that statistic: for each /24 with ground-truth
hosts, each origin's response rate, and per-origin-pair the fraction of
blocks whose rates agree within a tolerance.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.bits import count_true
from repro.core.dataset import CampaignDataset, TrialData
from repro.net.ipv4 import slash24_array


@dataclass
class Slash24Rates:
    """Per-/24 response rates for every origin in one trial."""

    protocol: str
    trial: int
    origins: List[str]
    blocks: np.ndarray        # uint32 /24 network addresses (sorted)
    totals: np.ndarray        # ground-truth hosts per block
    #: rates[o, b] — fraction of the block's ground-truth hosts origin o
    #: completed a handshake with.
    rates: np.ndarray


def slash24_rates(trial_data: TrialData,
                  origins: Optional[Sequence[str]] = None,
                  min_hosts: int = 2) -> Slash24Rates:
    """Response rates per /24 block with ≥ ``min_hosts`` GT hosts."""
    chosen = [o for o in (origins or trial_data.origins)
              if trial_data.has_origin(o)]
    truth = trial_data.ground_truth()
    blocks_of = slash24_array(trial_data.ip)

    gt_blocks = blocks_of[truth]
    unique_blocks, inverse = np.unique(gt_blocks, return_inverse=True)
    totals = np.bincount(inverse)
    keep = totals >= min_hosts

    rates = np.zeros((len(chosen), len(unique_blocks)))
    for oi, origin in enumerate(chosen):
        seen = trial_data.accessible(origin) & truth
        seen_blocks = blocks_of[seen]
        pos = np.searchsorted(unique_blocks, seen_blocks)
        counts = np.bincount(pos, minlength=len(unique_blocks))
        rates[oi] = counts / np.maximum(totals, 1)

    return Slash24Rates(
        protocol=trial_data.protocol, trial=trial_data.trial,
        origins=chosen, blocks=unique_blocks[keep],
        totals=totals[keep], rates=rates[:, keep])


def pairwise_agreement(rates: Slash24Rates,
                       tolerance: float = 0.05
                       ) -> Dict[Tuple[str, str], float]:
    """Per origin pair: fraction of /24s with rates within ``tolerance``.

    The paper's Heidemann comparison: averaged over its origin pairs,
    87 % of blocks agree within 5 % (vs 96 % for the 2008 same-country
    pair).
    """
    out: Dict[Tuple[str, str], float] = {}
    for a, b in itertools.combinations(range(len(rates.origins)), 2):
        delta = np.abs(rates.rates[a] - rates.rates[b])
        agree = (count_true(delta <= tolerance) / len(delta)
                 if len(delta) else 0.0)
        out[(rates.origins[a], rates.origins[b])] = agree
    return out


def mean_agreement(dataset: CampaignDataset, protocol: str,
                   tolerance: float = 0.05,
                   origins: Optional[Sequence[str]] = None,
                   min_hosts: int = 2) -> float:
    """Mean pairwise /24 agreement across all trials and origin pairs."""
    values: List[float] = []
    for trial in dataset.trials_for(protocol):
        table = dataset.trial_data(protocol, trial)
        rates = slash24_rates(table, origins=origins, min_hosts=min_hosts)
        values.extend(pairwise_agreement(rates, tolerance).values())
    return float(np.mean(values)) if values else float("nan")
