"""Vantage-point planning: turn §7's advice into an operator API.

Given a measured (or simulated) campaign, recommend which origins to keep
when only k can be afforded — greedy marginal-coverage selection, which
is what "each additional origin should maximize the number of new hosts
that become visible" (§7) operationalizes.  Greedy is within (1 − 1/e) of
optimal for coverage (a submodular objective) and exact answers for small
k are available via :func:`repro.core.multi_origin.best_combination`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dataset import CampaignDataset


@dataclass
class PlanStep:
    """One greedy selection step."""

    origin: str
    coverage_after: float
    marginal_gain: float


@dataclass
class Plan:
    """A recommended origin ordering with cumulative coverage."""

    protocol: str
    steps: List[PlanStep]

    def origins(self, k: Optional[int] = None) -> List[str]:
        chosen = [step.origin for step in self.steps]
        return chosen if k is None else chosen[:k]

    def coverage_at(self, k: int) -> float:
        if not 1 <= k <= len(self.steps):
            raise ValueError(f"k must be in [1, {len(self.steps)}]")
        return self.steps[k - 1].coverage_after


def recommend_origins(dataset: CampaignDataset, protocol: str,
                      origins: Optional[Sequence[str]] = None,
                      single_probe: bool = False) -> Plan:
    """Greedy max-marginal-coverage origin ordering, pooled over trials.

    The first step picks the best single origin; each later step adds the
    origin revealing the most hosts the current set misses (averaged
    across trials).
    """
    trials = dataset.trials_for(protocol)
    chosen_universe = list(origins) if origins is not None \
        else dataset.origins_for(protocol)
    if not chosen_universe:
        raise ValueError("no origins available to plan over")

    # Per trial: (origin → seen mask over GT hosts) and GT size.
    per_trial: List[Tuple[Dict[str, np.ndarray], int]] = []
    for trial in trials:
        table = dataset.trial_data(protocol, trial)
        truth = table.ground_truth(single_probe=single_probe)
        masks = {o: (table.accessible(o, single_probe=single_probe)
                     & truth)
                 for o in chosen_universe if table.has_origin(o)}
        per_trial.append((masks, int(truth.sum())))

    selected: List[str] = []
    covered = [np.zeros_like(next(iter(masks.values())))
               for masks, _ in per_trial]
    steps: List[PlanStep] = []
    previous_coverage = 0.0

    remaining = list(chosen_universe)
    while remaining:
        best_origin = None
        best_coverage = -1.0
        for candidate in remaining:
            total = 0.0
            for ti, (masks, gt_size) in enumerate(per_trial):
                if candidate not in masks or gt_size == 0:
                    continue
                union = covered[ti] | masks[candidate]
                total += union.sum() / gt_size
            mean_coverage = total / len(per_trial)
            if mean_coverage > best_coverage:
                best_coverage = mean_coverage
                best_origin = candidate
        assert best_origin is not None
        remaining.remove(best_origin)
        selected.append(best_origin)
        for ti, (masks, _) in enumerate(per_trial):
            if best_origin in masks:
                covered[ti] |= masks[best_origin]
        steps.append(PlanStep(
            origin=best_origin, coverage_after=best_coverage,
            marginal_gain=best_coverage - previous_coverage))
        previous_coverage = best_coverage

    return Plan(protocol=protocol, steps=steps)


def diminishing_returns_k(plan: Plan, threshold: float = 0.005) -> int:
    """Smallest k after which adding an origin gains < ``threshold``.

    §7's practical answer: for the paper's origins this lands at 2–3.
    """
    for i, step in enumerate(plan.steps[1:], start=1):
        if step.marginal_gain < threshold:
            return i
    return len(plan.steps)
