"""The bit-packed analysis engine: shared context, packed bitsets, engines.

The paper's headline analyses — Table 1 exclusivity, the k-origin
coverage curve, bootstrap error bars — are all set algebra over
(trial × origin × host) presence cubes.  This module gives that layer
the same treatment :mod:`repro.sim.plan` gave the simulator:

* An :class:`AnalysisContext` is built once per (dataset, protocol) and
  memoized on the dataset fingerprint (:func:`dataset_fingerprint`,
  which folds in the run manifest emitted by
  :mod:`repro.telemetry.manifest` when the dataset carries one).  It
  holds the aligned :class:`~repro.core.ground_truth.PresenceMatrix`
  and, per trial, bit-packed (:func:`numpy.packbits`) per-origin
  accessibility bitsets (:class:`PackedTrial`) sharing the popcount
  table in :mod:`repro.core.bits`.
* Every analysis that gained an ``engine=`` parameter runs in one of
  two modes: ``"packed"`` (the bit-packed/vectorized rewrite) or
  ``"reference"`` (the original set-algebra code).  The two are
  byte-identical — ``tests/test_engine_equivalence.py`` proves it —
  and the env default is ``REPRO_ANALYSIS_ENGINE``.

Telemetry mirrors the plan cache: ``cache.context_hit`` /
``cache.context_miss`` counters around :func:`get_context`, a
``cache.context_build`` span around construction, and
``cache.presence_hit`` / ``cache.presence_miss`` around the context's
presence memo.  Actual alignment passes show up as
``analysis.presence_build`` (counted inside
:func:`~repro.core.ground_truth.build_presence`), which is how the
one-build-per-report guarantee is asserted.
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.bits import pack_bits, popcount_packed
from repro.core.dataset import CampaignDataset, TrialData
from repro.core.ground_truth import PresenceMatrix, build_presence
from repro.telemetry.context import current as _telemetry

#: The two analysis engines.  ``packed`` is the default production path;
#: ``reference`` keeps the original per-set Python implementations alive
#: as the differential baseline (the planned/unplanned pattern of PR 2).
ENGINES = ("packed", "reference")

#: Environment variable overriding the default engine.
ENV_ENGINE = "REPRO_ANALYSIS_ENGINE"

#: Maximum number of memoized contexts (FIFO eviction beyond this).
CONTEXT_CACHE_SIZE = 8


def resolve_engine(engine: Optional[str] = None) -> str:
    """Normalize an ``engine=`` argument against the environment default.

    ``None`` defers to ``REPRO_ANALYSIS_ENGINE``, then to ``"packed"``.
    """
    if engine is None:
        engine = os.environ.get(ENV_ENGINE) or "packed"
    if engine not in ENGINES:
        raise ValueError(
            f"unknown analysis engine {engine!r}; choose from {ENGINES}")
    return engine


def dataset_fingerprint(dataset: CampaignDataset) -> str:
    """A stable content identity for a campaign dataset.

    Folds the run manifest (seed, config hash, world fingerprint — the
    reproducibility header :mod:`repro.telemetry.manifest` stamps into
    ``metadata["telemetry"]``) together with a structural digest of every
    trial's analysis-relevant columns, so datasets with equal bytes share
    cached contexts while any divergence — different seed, mutated
    matrix, extra trial — misses.
    """
    digest = hashlib.sha256()
    manifest = (dataset.metadata or {}).get("telemetry", {}).get("manifest")
    if manifest:
        pinned = {key: manifest.get(key)
                  for key in ("seed", "config_hash", "world", "origins",
                              "protocols", "n_trials")}
        digest.update(repr(sorted(pinned.items())).encode())
    for table in dataset:
        digest.update(f"{table.protocol}:{table.trial}:"
                      f"{','.join(table.origins)}:{table.n_probes}"
                      .encode())
        for column in (table.ip, table.as_index, table.country_index,
                       table.geo_index, table.probe_mask, table.l7):
            digest.update(np.ascontiguousarray(column).tobytes())
    return digest.hexdigest()[:16]


class PackedTrial:
    """Bit-packed per-origin accessibility bitsets for one trial.

    ``packed[o]`` is origin *o*'s ``accessible & ground_truth`` mask for
    the trial, packed 8 hosts per byte; ``total`` is the ground-truth
    popcount.  OR-ing rows and popcounting the result reproduces the
    union coverage of any origin subset without materializing boolean
    arrays — the packed multi-origin path.
    """

    __slots__ = ("protocol", "trial", "single_probe", "origins", "packed",
                 "total", "n_hosts", "_rows")

    def __init__(self, trial_data: TrialData,
                 single_probe: bool = False) -> None:
        self.protocol = trial_data.protocol
        self.trial = trial_data.trial
        self.single_probe = bool(single_probe)
        self.origins = list(trial_data.origins)
        truth = trial_data.ground_truth(single_probe=single_probe)
        masks = np.empty((len(self.origins), len(truth)), dtype=bool)
        for oi, origin in enumerate(self.origins):
            masks[oi] = trial_data.accessible(
                origin, single_probe=single_probe) & truth
        self.packed = pack_bits(masks)
        self.total = int(truth.sum())
        self.n_hosts = len(truth)
        self._rows = {origin: oi for oi, origin in enumerate(self.origins)}

    @classmethod
    def from_parts(cls, protocol: str, trial: int, origins: Sequence[str],
                   packed: np.ndarray, total: int, n_hosts: int,
                   single_probe: bool = False) -> "PackedTrial":
        """Adopt pre-packed planes without a backing :class:`TrialData`.

        The streaming reducer (:mod:`repro.core.streaming`) accumulates
        per-shard bit planes and assembles the final packed trial here;
        the result is indistinguishable from one built on the
        concatenated dataset because OR/popcount are associative across
        the shard boundary.
        """
        self = cls.__new__(cls)
        self.protocol = protocol
        self.trial = int(trial)
        self.single_probe = bool(single_probe)
        self.origins = list(origins)
        self.packed = packed
        self.total = int(total)
        self.n_hosts = int(n_hosts)
        self._rows = {origin: oi for oi, origin in enumerate(self.origins)}
        return self

    def rows_for(self, origins: Sequence[str]) -> np.ndarray:
        """Packed-row indices of ``origins`` (KeyError when absent)."""
        return np.array([self._rows[o] for o in origins], dtype=np.intp)

    def union_counts(self, subsets: np.ndarray) -> np.ndarray:
        """Popcount of the OR over each row subset.

        ``subsets`` is an (m, k) matrix of packed-row indices; the return
        is the (m,) int64 vector of union cardinalities — one fused
        gather/OR/popcount for all m subsets.
        """
        unions = np.bitwise_or.reduce(self.packed[subsets], axis=1)
        return np.asarray(popcount_packed(unions), dtype=np.int64)


class AnalysisContext:
    """Shared, memoized state for every analysis of one (dataset, protocol).

    Constructed (cheaply — members build lazily) once per dataset
    fingerprint via :func:`get_context` and threaded through
    classification, exclusivity, per-AS, transient, burst, SSH and
    report code so a full report performs exactly one alignment pass.
    """

    def __init__(self, dataset: CampaignDataset, protocol: str,
                 fingerprint: Optional[str] = None) -> None:
        self.dataset = dataset
        self.protocol = protocol
        self.fingerprint = fingerprint if fingerprint is not None \
            else dataset_fingerprint(dataset)
        self._presence: Dict[Tuple[Tuple[str, ...], bool],
                             PresenceMatrix] = {}
        self._packed: Dict[Tuple[int, bool], PackedTrial] = {}
        self._classifications: Dict[Tuple[Tuple[str, ...], bool],
                                    Dict[str, object]] = {}

    # ------------------------------------------------------------------
    # Presence
    # ------------------------------------------------------------------

    def _presence_key(self, origins: Optional[Sequence[str]],
                      single_probe: bool) -> Tuple[Tuple[str, ...], bool]:
        chosen = tuple(origins) if origins is not None \
            else tuple(self.dataset.origins_for(self.protocol))
        return (chosen, bool(single_probe))

    def presence(self, origins: Optional[Sequence[str]] = None,
                 single_probe: bool = False) -> PresenceMatrix:
        """The aligned presence cube, built at most once per variant.

        ``origins=None`` normalizes to the paper's aggregate origin set
        (``origins_for``), so explicit-default and defaulted requests
        share one matrix.
        """
        key = self._presence_key(origins, single_probe)
        cached = self._presence.get(key)
        tel = _telemetry()
        if cached is not None:
            if tel.enabled:
                tel.count("cache.presence_hit", 1, protocol=self.protocol)
            return cached
        if tel.enabled:
            tel.count("cache.presence_miss", 1, protocol=self.protocol)
        built = build_presence(self.dataset, self.protocol,
                               origins=list(key[0]),
                               single_probe=key[1])
        self._presence[key] = built
        return built

    # ------------------------------------------------------------------
    # Packed trials
    # ------------------------------------------------------------------

    def packed_trial(self, trial: int,
                     single_probe: bool = False) -> PackedTrial:
        """The packed accessibility bitsets of one trial (memoized)."""
        key = (int(trial), bool(single_probe))
        cached = self._packed.get(key)
        if cached is not None:
            return cached
        built = PackedTrial(
            self.dataset.trial_data(self.protocol, trial),
            single_probe=single_probe)
        self._packed[key] = built
        return built

    # ------------------------------------------------------------------
    # Classifications
    # ------------------------------------------------------------------

    def classifications(self, origins: Optional[Sequence[str]] = None,
                        single_probe: bool = False) -> Dict[str, object]:
        """Per-origin §3 classifications over the shared presence cube.

        Memoized like :meth:`presence`; the half-dozen report sections
        that each called ``breakdown_by_origin`` now classify each
        origin once.  Returns ``{origin: Classification}``.
        """
        from repro.core.classification import classify_misses

        key = self._presence_key(origins, single_probe)
        cached = self._classifications.get(key)
        if cached is not None:
            return dict(cached)
        presence = self.presence(origins=key[0], single_probe=key[1])
        built = {origin: classify_misses(self.dataset, self.protocol,
                                         origin, presence=presence)
                 for origin in presence.origins}
        self._classifications[key] = built
        return dict(built)


#: The process-wide context memo, keyed by (fingerprint, protocol).
_CONTEXTS: "OrderedDict[Tuple[str, str], AnalysisContext]" = OrderedDict()


def get_context(dataset: CampaignDataset,
                protocol: str) -> AnalysisContext:
    """The memoized :class:`AnalysisContext` for one (dataset, protocol).

    Keyed on :func:`dataset_fingerprint`, so re-running an analysis —
    in the same process, on a reloaded copy of the same campaign —
    reuses the aligned presence cube instead of rebuilding it.  Cache
    traffic is reported like the plan cache (``cache.context_hit`` /
    ``cache.context_miss``).
    """
    tel = _telemetry()
    key = (dataset_fingerprint(dataset), protocol)
    context = _CONTEXTS.get(key)
    if context is not None:
        if tel.enabled:
            tel.count("cache.context_hit", 1, protocol=protocol)
        _CONTEXTS.move_to_end(key)
        return context
    if tel.enabled:
        tel.count("cache.context_miss", 1, protocol=protocol)
    with tel.span("cache.context_build", protocol=protocol):
        context = AnalysisContext(dataset, protocol, fingerprint=key[0])
    _CONTEXTS[key] = context
    while len(_CONTEXTS) > CONTEXT_CACHE_SIZE:
        _CONTEXTS.popitem(last=False)
    return context


def clear_context_cache() -> None:
    """Drop every memoized context (tests and long-lived processes)."""
    _CONTEXTS.clear()


def presence_for(dataset: CampaignDataset, protocol: str,
                 origins: Optional[Sequence[str]] = None,
                 single_probe: bool = False,
                 presence: Optional[PresenceMatrix] = None,
                 context: Optional[AnalysisContext] = None
                 ) -> PresenceMatrix:
    """Resolve the presence cube an analysis should run over.

    Precedence: an explicit ``presence``, then the shared ``context``
    (memoized), then a direct build — the one code path every
    context-threading analysis shares, so none of them silently rebuilds.
    """
    if presence is not None:
        return presence
    if context is not None:
        return context.presence(origins=origins, single_probe=single_probe)
    return build_presence(dataset, protocol, origins=origins,
                          single_probe=single_probe)


def classifications_for(dataset: CampaignDataset, protocol: str,
                        origins: Optional[Sequence[str]] = None,
                        single_probe: bool = False,
                        presence: Optional[PresenceMatrix] = None,
                        context: Optional[AnalysisContext] = None
                        ) -> Dict[str, object]:
    """Resolve per-origin classifications, preferring the shared context."""
    from repro.core.classification import classify_misses

    if presence is None and context is not None:
        return context.classifications(origins=origins,
                                       single_probe=single_probe)
    resolved = presence_for(dataset, protocol, origins=origins,
                            single_probe=single_probe, presence=presence,
                            context=context)
    return {origin: classify_misses(dataset, protocol, origin,
                                    presence=resolved)
            for origin in resolved.origins}
