"""Best/worst-origin stability per destination AS (§5.1, Figure 11).

For each destination AS and trial, rank origins by transient loss rate.
The paper's findings: fewer than 5 % of ASes keep the same best origin
across trials, ~10 % keep a consistent worst (and it's Australia 72 % of
the time), and for ~23 % of ASes the best origin of one trial is the worst
of another — even for Amazon, Google, and Digital Ocean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.transient import TransientRates


@dataclass
class StabilityReport:
    """Figure 11 contents for one protocol."""

    protocol: str
    origins: List[str]
    n_eligible: int
    #: AS indices with the same unique best origin in all trials.
    consistent_best: Dict[int, str]
    #: AS indices with the same unique worst origin in all trials.
    consistent_worst: Dict[int, str]
    #: AS indices where a trial's best origin is another trial's worst.
    flip_ases: List[int]

    def consistent_best_fraction(self) -> float:
        return len(self.consistent_best) / self.n_eligible \
            if self.n_eligible else 0.0

    def consistent_worst_fraction(self) -> float:
        return len(self.consistent_worst) / self.n_eligible \
            if self.n_eligible else 0.0

    def flip_fraction(self) -> float:
        return len(self.flip_ases) / self.n_eligible \
            if self.n_eligible else 0.0

    def worst_origin_histogram(self) -> Dict[str, int]:
        """How often each origin is the consistent worst."""
        out = {origin: 0 for origin in self.origins}
        for origin in self.consistent_worst.values():
            out[origin] += 1
        return out

    def dominant_worst_origin(self) -> Optional[str]:
        histogram = self.worst_origin_histogram()
        if not any(histogram.values()):
            return None
        return max(histogram, key=histogram.get)


def stability_report(rates: TransientRates,
                     min_hosts: int = 20) -> StabilityReport:
    """Evaluate best/worst stability on a transient-rate cube.

    Only ASes with ≥ ``min_hosts`` mean present hosts are eligible — tiny
    networks make "best origin" meaningless.  Ties for best/worst make a
    trial's extreme non-unique and disqualify consistency for that AS.
    """
    n_as = rates.n_as()
    present_mean = rates.present.mean(axis=0)
    eligible = np.flatnonzero(present_mean >= min_hosts)

    consistent_best: Dict[int, str] = {}
    consistent_worst: Dict[int, str] = {}
    flip_ases: List[int] = []

    for a in eligible:
        per_trial = rates.rates[:, :, a]    # (o, t)
        best: List[Optional[int]] = []
        worst: List[Optional[int]] = []
        for t in range(rates.n_trials):
            column = per_trial[:, t]
            lo, hi = column.min(), column.max()
            if hi == lo:
                best.append(None)
                worst.append(None)
                continue
            best_idx = np.flatnonzero(column == lo)
            worst_idx = np.flatnonzero(column == hi)
            best.append(int(best_idx[0]) if len(best_idx) == 1 else None)
            worst.append(int(worst_idx[0]) if len(worst_idx) == 1 else None)
        if all(b is not None for b in best) and len(set(best)) == 1:
            consistent_best[int(a)] = rates.origins[best[0]]
        if all(w is not None for w in worst) and len(set(worst)) == 1:
            consistent_worst[int(a)] = rates.origins[worst[0]]
        defined_best = {b for b in best if b is not None}
        defined_worst = {w for w in worst if w is not None}
        if defined_best & defined_worst:
            flip_ases.append(int(a))

    return StabilityReport(
        protocol=rates.protocol, origins=list(rates.origins),
        n_eligible=len(eligible), consistent_best=consistent_best,
        consistent_worst=consistent_worst, flip_ases=flip_ases)
