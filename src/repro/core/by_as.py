"""Per-AS aggregations (Figures 4, 5, and 7).

These analyses attribute hosts to autonomous systems and measure how
concentrated each origin's inaccessibility is: Figure 4 shows that three
ASes hold 67 % of Censys' long-term-missing HTTP hosts; Figure 5 counts
whole ASes that are ≥50 / ≥75 / 100 % inaccessible per origin (Brazil loses
the most); Figure 7 attributes exclusively accessible hosts to the ASes
providing them (Bekkoame, NTT, WebCentral, WA K-20...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.classification import breakdown_by_origin
from repro.core.dataset import CampaignDataset
from repro.core.engine import AnalysisContext, presence_for
from repro.core.exclusivity import ExclusivityReport
from repro.core.ground_truth import PresenceMatrix


def counts_by_as(as_index: np.ndarray, mask: np.ndarray,
                 n_as: Optional[int] = None) -> np.ndarray:
    """Host counts per AS index for the rows selected by ``mask``."""
    as_index = np.asarray(as_index, dtype=np.int64)
    if n_as is None:
        n_as = int(as_index.max()) + 1 if len(as_index) else 0
    picked = as_index[np.asarray(mask, dtype=bool)]
    picked = picked[picked >= 0]
    return np.bincount(picked, minlength=n_as)


@dataclass
class ASConcentration:
    """Concentration of one origin's long-term missing hosts over ASes."""

    origin: str
    #: AS index → missing host count, descending.
    ranked: List[Tuple[int, int]]
    total_missing: int

    def top_share(self, k: int) -> float:
        """Fraction of missing hosts in the top-k ASes (Figure 4)."""
        if self.total_missing == 0:
            return 0.0
        return sum(count for _, count in self.ranked[:k]) \
            / self.total_missing

    def cumulative_shares(self, k_max: int = 50) -> List[float]:
        return [self.top_share(k) for k in range(1, k_max + 1)]


def longterm_as_concentration(dataset: CampaignDataset, protocol: str,
                              origins: Optional[Sequence[str]] = None,
                              context: Optional[AnalysisContext] = None
                              ) -> Dict[str, ASConcentration]:
    """Per-origin Figure 4 data: long-term missing hosts ranked by AS."""
    classifications = breakdown_by_origin(dataset, protocol,
                                          origins=origins, context=context)
    out: Dict[str, ASConcentration] = {}
    for origin, cls in classifications.items():
        long_term = cls.long_term_mask()
        counts = counts_by_as(cls.as_index, long_term)
        order = np.argsort(counts)[::-1]
        ranked = [(int(i), int(counts[i])) for i in order if counts[i] > 0]
        out[origin] = ASConcentration(origin=origin, ranked=ranked,
                                      total_missing=int(long_term.sum()))
    return out


@dataclass
class LostASCounts:
    """Figure 5: #ASes at least X% long-term inaccessible, per origin."""

    origin: str
    fully: int          # 100 % of ground-truth hosts long-term missing
    at_least_75: int
    at_least_50: int


def lost_as_counts(dataset: CampaignDataset, protocol: str,
                   origins: Optional[Sequence[str]] = None,
                   min_hosts: int = 2,
                   context: Optional[AnalysisContext] = None
                   ) -> Dict[str, LostASCounts]:
    """Count (nearly) fully lost ASes per origin (Figure 5).

    Only ASes with at least ``min_hosts`` classifiable ground-truth hosts
    (present in ≥2 trials) are considered, mirroring the paper's refusal to
    call a one-host network "fully inaccessible".
    """
    presence = presence_for(dataset, protocol, origins=origins,
                            context=context)
    classifications = breakdown_by_origin(dataset, protocol,
                                          origins=presence.origins,
                                          context=context)
    classifiable = presence.present_trial_counts() >= 2
    denominators = counts_by_as(presence.as_index, classifiable)
    eligible = denominators >= min_hosts

    out: Dict[str, LostASCounts] = {}
    for origin, cls in classifications.items():
        lost = counts_by_as(cls.as_index, cls.long_term_mask() & classifiable,
                            n_as=len(denominators))
        with np.errstate(divide="ignore", invalid="ignore"):
            fraction = np.where(denominators > 0,
                                lost / np.maximum(denominators, 1), 0.0)
        out[origin] = LostASCounts(
            origin=origin,
            fully=int(np.sum(eligible & (fraction >= 1.0))),
            at_least_75=int(np.sum(eligible & (fraction >= 0.75))),
            at_least_50=int(np.sum(eligible & (fraction >= 0.5))))
    return out


def as_host_count_ranks(presence: PresenceMatrix) -> np.ndarray:
    """Rank of each AS by classifiable ground-truth host count (1 = biggest).

    Table 3's footnote — every AS with a large transient range is within
    the top-100 ASes by host count — needs this ranking.
    """
    classifiable = presence.present_trial_counts() >= 2
    counts = counts_by_as(presence.as_index, classifiable)
    order = np.argsort(counts)[::-1]
    ranks = np.empty(len(counts), dtype=np.int64)
    ranks[order] = np.arange(1, len(counts) + 1)
    return ranks


def exclusive_accessible_by_as(report: ExclusivityReport, origin: str,
                               top: int = 10) -> List[Tuple[int, int]]:
    """Figure 7: ASes providing an origin's exclusively accessible hosts."""
    mask = report.exclusively_accessible_mask(origin)
    counts = counts_by_as(report.as_index, mask)
    order = np.argsort(counts)[::-1]
    return [(int(i), int(counts[i])) for i in order[:top] if counts[i] > 0]
