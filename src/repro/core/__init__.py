"""The paper's analysis pipeline (simulation-agnostic).

Everything in this package operates on :class:`repro.core.dataset.
CampaignDataset` — per (protocol, trial, origin) observations of which IPs
responded at L4/L7, how many probe responses arrived, the observed close
type, and when.  Datasets can come from the simulator
(:mod:`repro.sim`) or from real ZMap/ZGrab output (:mod:`repro.io`).
"""

from repro.core.records import L7Status, ACCESSIBLE_STATUSES
from repro.core.bits import count_true, pack_bits, popcount_packed, popcount_u8
from repro.core.dataset import CampaignDataset, TrialData, align_ips
from repro.core.engine import (
    ENGINES,
    AnalysisContext,
    PackedTrial,
    clear_context_cache,
    dataset_fingerprint,
    get_context,
    resolve_engine,
)
from repro.core.ground_truth import (
    PresenceMatrix,
    build_presence,
    ground_truth_ips,
    union_ground_truth,
)
from repro.core.coverage import (
    CoverageTable,
    coverage_by_origin,
    coverage_table,
    median_single_origin_coverage,
)
from repro.core.classification import (
    Classification,
    MissCategory,
    breakdown_by_origin,
    classify_misses,
    figure2_rows,
    longterm_l4_breakdown,
)
from repro.core.exclusivity import (
    ExclusivityReport,
    exclusivity_report,
    single_origin_longterm_share,
)
from repro.core.by_as import (
    ASConcentration,
    LostASCounts,
    exclusive_accessible_by_as,
    longterm_as_concentration,
    lost_as_counts,
)
from repro.core.countries import (
    CountryInaccessibility,
    country_inaccessibility,
    country_size_correlation,
    exclusive_accessible_by_country,
)
from repro.core.transient import (
    TransientRates,
    largest_range_ases,
    loss_spread_cdf,
    transient_overlap_histogram,
    transient_rates,
)
from repro.core.packet_loss import (
    DropSummary,
    both_probe_loss_fraction,
    drop_summary,
    drop_vs_transient_correlation,
    estimate_drop_rate,
    origin_drop_rate,
    per_as_drop_rates,
)
from repro.core.bursts import BurstReport, burst_report, detect_burst_bins
from repro.core.best_worst import StabilityReport, stability_report
from repro.core.multi_origin import (
    KOriginSummary,
    best_combination,
    combo_mean_coverage,
    k_origin_summary,
    multi_origin_table,
    probe_origin_tradeoff,
)
from repro.core.ssh import (
    SSHBreakdown,
    close_style_shares,
    probabilistic_blocking_ips,
    probabilistic_longterm_fraction,
    ssh_breakdown,
    temporal_blocking_ases,
    temporal_blocking_timeseries,
)
from repro.core.slash24 import (
    Slash24Rates,
    mean_agreement,
    pairwise_agreement,
    slash24_rates,
)
from repro.core.timing import (
    AsynchronyReport,
    DiurnalProfile,
    asynchrony_report,
    diurnal_profile,
)
from repro.core.report import full_report
from repro.core.bootstrap import (
    Interval,
    coverage_difference_interval,
    coverage_interval,
    coverage_intervals,
)
from repro.core.churn_analysis import churn_report, unknown_budget
from repro.core.compare import (
    CoverageDelta,
    VisibilityDelta,
    compare_coverage,
    compare_visibility,
)
from repro.core.planning import (
    Plan,
    diminishing_returns_k,
    recommend_origins,
)
from repro.core.stats import (
    McNemarResult,
    all_pairs_significant,
    bonferroni,
    mcnemar,
    pairwise_origin_tests,
    spearman,
)

__all__ = [
    "L7Status", "ACCESSIBLE_STATUSES",
    "count_true", "pack_bits", "popcount_packed", "popcount_u8",
    "CampaignDataset", "TrialData", "align_ips",
    "ENGINES", "AnalysisContext", "PackedTrial", "clear_context_cache",
    "dataset_fingerprint", "get_context", "resolve_engine",
    "PresenceMatrix", "build_presence", "ground_truth_ips",
    "union_ground_truth",
    "CoverageTable", "coverage_by_origin", "coverage_table",
    "median_single_origin_coverage",
    "Classification", "MissCategory", "breakdown_by_origin",
    "classify_misses", "figure2_rows",
    "ExclusivityReport", "exclusivity_report",
    "single_origin_longterm_share",
    "ASConcentration", "LostASCounts", "exclusive_accessible_by_as",
    "longterm_as_concentration", "lost_as_counts",
    "CountryInaccessibility", "country_inaccessibility",
    "country_size_correlation", "exclusive_accessible_by_country",
    "TransientRates", "largest_range_ases", "loss_spread_cdf",
    "transient_overlap_histogram", "transient_rates",
    "DropSummary", "both_probe_loss_fraction", "drop_summary",
    "drop_vs_transient_correlation", "estimate_drop_rate",
    "origin_drop_rate", "per_as_drop_rates",
    "BurstReport", "burst_report", "detect_burst_bins",
    "StabilityReport", "stability_report",
    "KOriginSummary", "best_combination", "combo_mean_coverage",
    "k_origin_summary", "multi_origin_table", "probe_origin_tradeoff",
    "SSHBreakdown", "close_style_shares", "probabilistic_blocking_ips",
    "probabilistic_longterm_fraction", "ssh_breakdown",
    "temporal_blocking_ases", "temporal_blocking_timeseries",
    "McNemarResult", "all_pairs_significant", "bonferroni", "mcnemar",
    "pairwise_origin_tests", "spearman",
    "Slash24Rates", "mean_agreement", "pairwise_agreement",
    "slash24_rates",
    "AsynchronyReport", "DiurnalProfile", "asynchrony_report",
    "diurnal_profile",
    "full_report", "longterm_l4_breakdown",
    "Interval", "coverage_difference_interval", "coverage_interval",
    "coverage_intervals",
    "churn_report", "unknown_budget",
    "CoverageDelta", "VisibilityDelta", "compare_coverage",
    "compare_visibility",
    "Plan", "diminishing_returns_k", "recommend_origins",
]
