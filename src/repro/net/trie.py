"""Longest-prefix-match radix trie over IPv4 prefixes.

This plays the role of the routing-table snapshot and the GeoIP database in
the paper: mapping an IP address to its most specific covering prefix's
value (an AS, a country, a policy...).

The trie supports fast scalar lookups and can be *compiled* into a sorted
interval table for vectorized lookups over numpy arrays, which is how the
simulator attributes hundreds of thousands of hosts to ASes and countries
in one shot.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

import numpy as np

from repro.net.ipv4 import IPv4Network


class _Node:
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: List[Optional["_Node"]] = [None, None]
        self.value: Any = None
        self.has_value = False


class PrefixTrie:
    """A binary radix trie mapping CIDR prefixes to values.

    >>> trie = PrefixTrie()
    >>> trie.insert(IPv4Network.from_cidr("10.0.0.0/8"), "corp")
    >>> trie.insert(IPv4Network.from_cidr("10.1.0.0/16"), "lab")
    >>> trie.lookup(parse_ipv4("10.1.2.3"))
    'lab'
    """

    def __init__(self) -> None:
        self._root = _Node()
        self._size = 0
        # Compiled interval table (lazily rebuilt after mutation).
        self._starts: Optional[np.ndarray] = None
        self._ends: Optional[np.ndarray] = None
        self._values: List[Any] = []
        self._value_idx: Optional[np.ndarray] = None
        # Bumped on every mutation so callers caching derived structures
        # (e.g. GeoIPDatabase's translation tables) can invalidate.
        self._version = 0

    @property
    def version(self) -> int:
        """Mutation counter; changes whenever the trie's content does."""
        return self._version

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(self, network: IPv4Network, value: Any) -> None:
        """Associate ``value`` with ``network``.

        Inserting the same prefix twice replaces the value.
        """
        node = self._root
        for depth in range(network.prefix_len):
            bit = (network.address >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                child = _Node()
                node.children[bit] = child
            node = child
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True
        self._starts = None  # invalidate compiled form
        self._version += 1

    # ------------------------------------------------------------------
    # Scalar lookup
    # ------------------------------------------------------------------

    def lookup(self, ip: int, default: Any = None) -> Any:
        """The value of the longest prefix covering ``ip``."""
        ip = int(ip)
        node = self._root
        best = node.value if node.has_value else default
        for depth in range(32):
            bit = (ip >> (31 - depth)) & 1
            node = node.children[bit]  # type: ignore[assignment]
            if node is None:
                break
            if node.has_value:
                best = node.value
        return best

    def lookup_prefix(self, ip: int) -> Optional[IPv4Network]:
        """The longest matching prefix itself (not its value)."""
        ip = int(ip)
        node = self._root
        best_len = 0 if node.has_value else -1
        for depth in range(32):
            bit = (ip >> (31 - depth)) & 1
            node = node.children[bit]  # type: ignore[assignment]
            if node is None:
                break
            if node.has_value:
                best_len = depth + 1
        if best_len < 0:
            return None
        return IPv4Network(ip, best_len)

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------

    def items(self) -> Iterator[Tuple[IPv4Network, Any]]:
        """Yield all (prefix, value) pairs in address order."""

        def walk(node: _Node, base: int, depth: int):
            if node.has_value:
                yield IPv4Network(base, depth), node.value
            for bit in (0, 1):
                child = node.children[bit]
                if child is not None:
                    child_base = base | (bit << (31 - depth))
                    yield from walk(child, child_base, depth + 1)

        yield from walk(self._root, 0, 0)

    # ------------------------------------------------------------------
    # Vectorized lookup via compiled interval table
    # ------------------------------------------------------------------

    def _compile(self) -> None:
        """Flatten the trie into disjoint [start, end] → value intervals."""
        starts: List[int] = []
        ends: List[int] = []
        value_idx: List[int] = []
        values: List[Any] = []
        value_ids: dict = {}

        def value_id(value: Any) -> int:
            key = id(value) if not _hashable(value) else ("v", value)
            if key not in value_ids:
                value_ids[key] = len(values)
                values.append(value)
            return value_ids[key]

        def emit(start: int, end: int, value: Any) -> None:
            vid = value_id(value)
            # Merge with the previous interval when contiguous + same value.
            if starts and value_idx[-1] == vid and ends[-1] == start - 1:
                ends[-1] = end
            else:
                starts.append(start)
                ends.append(end)
                value_idx.append(vid)

        def walk(node: _Node, base: int, depth: int, inherited: Any,
                 has_inherited: bool) -> None:
            effective = node.value if node.has_value else inherited
            has_effective = node.has_value or has_inherited
            if node.children[0] is None and node.children[1] is None:
                if has_effective:
                    emit(base, base + (1 << (32 - depth)) - 1, effective)
                return
            half = 1 << (31 - depth)
            for bit in (0, 1):
                child_base = base + bit * half
                child = node.children[bit]
                if child is None:
                    if has_effective:
                        emit(child_base, child_base + half - 1, effective)
                else:
                    walk(child, child_base, depth + 1,
                         effective, has_effective)

        walk(self._root, 0, 0, None, False)
        self._starts = np.array(starts, dtype=np.uint32)
        self._ends = np.array(ends, dtype=np.uint32)
        self._value_idx = np.array(value_idx, dtype=np.int64)
        self._values = values

    def lookup_array(self, ips: np.ndarray, default: Any = None) -> list:
        """Longest-prefix-match values for a uint32 array of addresses."""
        idx = self.lookup_index_array(ips)
        return [self._values[i] if i >= 0 else default for i in idx]

    def lookup_index_array(self, ips: np.ndarray) -> np.ndarray:
        """Vectorized LPM returning indices into :meth:`compiled_values`.

        Addresses covered by no prefix map to -1.
        """
        if self._starts is None:
            self._compile()
        assert self._starts is not None and self._ends is not None
        assert self._value_idx is not None
        ips = np.asarray(ips, dtype=np.uint32)
        if len(self._starts) == 0:
            return np.full(ips.shape, -1, dtype=np.int64)
        pos = np.searchsorted(self._starts, ips, side="right") - 1
        pos_clipped = np.clip(pos, 0, len(self._starts) - 1)
        inside = (pos >= 0) & (ips <= self._ends[pos_clipped])
        out = np.where(inside, self._value_idx[pos_clipped], -1)
        return out.astype(np.int64)

    def compiled_values(self) -> list:
        """The value table referenced by :meth:`lookup_index_array`."""
        if self._starts is None:
            self._compile()
        return list(self._values)


def _hashable(value: Any) -> bool:
    try:
        hash(value)
    except TypeError:
        return False
    return True
