"""Minimal, fast IPv4 primitives.

Addresses are plain Python ints (or numpy uint32 arrays) throughout the
library; this module provides parsing, formatting, and an immutable
``IPv4Network`` value type.  We implement these from scratch rather than
wrapping :mod:`ipaddress` because the simulator manipulates hundreds of
thousands of addresses in numpy arrays and needs int-native semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple, Union

import numpy as np

#: Number of addresses in the full IPv4 space.
ADDRESS_SPACE_SIZE = 1 << 32

_MASK32 = ADDRESS_SPACE_SIZE - 1


def parse_ipv4(text: str) -> int:
    """Parse dotted-quad ``text`` into a 32-bit integer.

    >>> parse_ipv4("10.0.0.1")
    167772161
    """
    parts = text.strip().split(".")
    if len(parts) != 4:
        raise ValueError(f"invalid IPv4 address: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise ValueError(f"invalid IPv4 address: {text!r}")
        octet = int(part)
        if octet > 255 or (len(part) > 1 and part[0] == "0"):
            raise ValueError(f"invalid IPv4 address: {text!r}")
        value = (value << 8) | octet
    return value


def format_ipv4(value: int) -> str:
    """Format a 32-bit integer as a dotted quad.

    >>> format_ipv4(167772161)
    '10.0.0.1'
    """
    value = int(value)
    if not 0 <= value <= _MASK32:
        raise ValueError(f"address out of range: {value}")
    return ".".join(
        str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0)
    )


def prefix_mask(prefix_len: int) -> int:
    """The 32-bit netmask for a prefix of the given length."""
    if not 0 <= prefix_len <= 32:
        raise ValueError(f"invalid prefix length: {prefix_len}")
    if prefix_len == 0:
        return 0
    return (_MASK32 << (32 - prefix_len)) & _MASK32


def slash24(ip: int) -> int:
    """The network address of the /24 containing ``ip``."""
    return int(ip) & 0xFFFFFF00


def slash24_array(ips: np.ndarray) -> np.ndarray:
    """Vectorized :func:`slash24` over a uint32 array."""
    return np.asarray(ips, dtype=np.uint32) & np.uint32(0xFFFFFF00)


@dataclass(frozen=True, order=True)
class IPv4Network:
    """An immutable CIDR network, e.g. ``IPv4Network.from_cidr("10.0.0.0/8")``.

    The ``address`` is always stored masked to the prefix, so two networks
    constructed from any address inside the same CIDR block compare equal.
    """

    address: int
    prefix_len: int

    def __post_init__(self) -> None:
        mask = prefix_mask(self.prefix_len)
        object.__setattr__(self, "address", int(self.address) & mask)

    @classmethod
    def from_cidr(cls, text: str) -> "IPv4Network":
        """Parse ``"a.b.c.d/len"`` notation."""
        addr_text, _, len_text = text.partition("/")
        if not len_text:
            raise ValueError(f"missing prefix length in {text!r}")
        return cls(parse_ipv4(addr_text), int(len_text))

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------

    @property
    def netmask(self) -> int:
        return prefix_mask(self.prefix_len)

    @property
    def broadcast(self) -> int:
        """The highest address in the network."""
        return self.address | (~self.netmask & _MASK32)

    @property
    def num_addresses(self) -> int:
        return 1 << (32 - self.prefix_len)

    # ------------------------------------------------------------------
    # Membership and relations
    # ------------------------------------------------------------------

    def contains(self, ip: int) -> bool:
        """True when ``ip`` falls inside this network."""
        return (int(ip) & self.netmask) == self.address

    def contains_array(self, ips: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`contains` over a uint32 array."""
        masked = np.asarray(ips, dtype=np.uint32) & np.uint32(self.netmask)
        return masked == np.uint32(self.address)

    def contains_network(self, other: "IPv4Network") -> bool:
        """True when ``other`` is fully inside this network."""
        return (other.prefix_len >= self.prefix_len
                and self.contains(other.address))

    def overlaps(self, other: "IPv4Network") -> bool:
        """True when the two networks share any address."""
        return self.contains(other.address) or other.contains(self.address)

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------

    def subnets(self, new_prefix_len: int) -> Iterator["IPv4Network"]:
        """Yield the subnets of this network at ``new_prefix_len``."""
        if new_prefix_len < self.prefix_len:
            raise ValueError("new prefix must not be shorter than current")
        step = 1 << (32 - new_prefix_len)
        for base in range(self.address, self.broadcast + 1, step):
            yield IPv4Network(base, new_prefix_len)

    def supernet(self) -> "IPv4Network":
        """The network one prefix length shorter."""
        if self.prefix_len == 0:
            raise ValueError("cannot take the supernet of 0.0.0.0/0")
        return IPv4Network(self.address, self.prefix_len - 1)

    def hosts_array(self) -> np.ndarray:
        """All addresses in the network as a uint32 array."""
        return np.arange(self.address, self.broadcast + 1, dtype=np.uint64) \
            .astype(np.uint32)

    def __contains__(self, ip: Union[int, np.integer]) -> bool:
        return self.contains(int(ip))

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.address, self.broadcast + 1))

    def __str__(self) -> str:
        return f"{format_ipv4(self.address)}/{self.prefix_len}"

    def key(self) -> Tuple[int, int]:
        """A hashable (address, prefix_len) tuple."""
        return (self.address, self.prefix_len)


def summarize_range(first: int, last: int) -> Iterator[IPv4Network]:
    """Yield the minimal list of CIDR blocks covering [first, last].

    Equivalent to :func:`ipaddress.summarize_address_range`, implemented
    directly over ints.
    """
    if last < first:
        raise ValueError("last must be >= first")
    first, last = int(first), int(last)
    while first <= last:
        # The largest block starting at `first`, limited by both alignment
        # and the remaining span.
        align = (first & -first).bit_length() - 1 if first else 32
        span = (last - first + 1).bit_length() - 1
        bits = min(align, span)
        yield IPv4Network(first, 32 - bits)
        first += 1 << bits
