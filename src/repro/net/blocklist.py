"""Scan exclusion blocklists.

The paper's scanners honour a synchronized blocklist: the union of all IP
ranges that ever requested exclusion from any origin (17.8 M addresses,
0.5 % of public IPv4).  This module models that artifact: a set of CIDR
ranges with fast scalar and vectorized membership tests, union semantics,
and a parser for the ZMap-style blocklist file format (one CIDR per line,
``#`` comments, optional trailing reason).
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator, List, Tuple

import numpy as np

from repro.net.ipv4 import IPv4Network


class Blocklist:
    """An immutable-ish set of excluded CIDR ranges.

    Ranges are kept as merged, sorted, disjoint [start, end] intervals so
    membership tests are a binary search.
    """

    def __init__(self, networks: Iterable[IPv4Network] = ()) -> None:
        intervals = [(n.address, n.broadcast) for n in networks]
        self._starts, self._ends = _merge_intervals(intervals)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_cidrs(cls, cidrs: Iterable[str]) -> "Blocklist":
        """Build from an iterable of CIDR strings."""
        return cls(IPv4Network.from_cidr(c) for c in cidrs)

    @classmethod
    def from_text(cls, text: str) -> "Blocklist":
        """Parse the ZMap blocklist file format.

        Blank lines and ``#`` comments are ignored; each remaining line is
        ``<cidr>`` optionally followed by whitespace and a free-form reason.
        A bare address is treated as a /32.
        """
        networks = []
        for raw in text.splitlines():
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            token = line.split()[0]
            if "/" not in token:
                token += "/32"
            networks.append(IPv4Network.from_cidr(token))
        return cls(networks)

    def union(self, other: "Blocklist") -> "Blocklist":
        """The merged blocklist covering both operands.

        This is the paper's "synchronized blocklist" operation: every origin
        honours exclusions requested at any origin.
        """
        merged = Blocklist()
        intervals = list(zip(self._starts, self._ends))
        intervals += list(zip(other._starts, other._ends))
        merged._starts, merged._ends = _merge_intervals(
            [(int(a), int(b)) for a, b in intervals])
        return merged

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def contains(self, ip: int) -> bool:
        """True when ``ip`` is excluded."""
        if len(self._starts) == 0:
            return False
        pos = int(np.searchsorted(self._starts, np.uint32(int(ip)),
                                  side="right")) - 1
        return pos >= 0 and int(ip) <= int(self._ends[pos])

    def contains_array(self, ips: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`contains` over a uint32 array."""
        ips = np.asarray(ips, dtype=np.uint32)
        if len(self._starts) == 0:
            return np.zeros(ips.shape, dtype=bool)
        pos = np.searchsorted(self._starts, ips, side="right") - 1
        pos_clipped = np.clip(pos, 0, len(self._starts) - 1)
        return (pos >= 0) & (ips <= self._ends[pos_clipped])

    def total_excluded(self) -> int:
        """Total number of excluded addresses."""
        if len(self._starts) == 0:
            return 0
        return int(np.sum(self._ends.astype(np.uint64)
                          - self._starts.astype(np.uint64) + 1))

    def intervals(self) -> Iterator[Tuple[int, int]]:
        """Yield the merged (start, end) intervals in address order."""
        for start, end in zip(self._starts, self._ends):
            yield int(start), int(end)

    def __len__(self) -> int:
        return len(self._starts)

    def __bool__(self) -> bool:
        # An empty blocklist is falsy even though __len__ already covers
        # this; defined explicitly for clarity at call sites.
        return len(self._starts) > 0

    def __eq__(self, other: object) -> bool:
        # Value equality over the merged intervals, so configs embedding a
        # blocklist (ZMapConfig) compare equal across pickle boundaries.
        if not isinstance(other, Blocklist):
            return NotImplemented
        return np.array_equal(self._starts, other._starts) \
            and np.array_equal(self._ends, other._ends)

    def __hash__(self) -> int:
        return hash((self._starts.tobytes(), self._ends.tobytes()))

    def __repr__(self) -> str:
        # Value-determined, never the default address-based repr:
        # config_hash keys scan configs on the repr of every field, so
        # equal blocklists must repr equal across processes or no cache
        # entry would ever be shareable between runs.
        digest = hashlib.sha256(
            self._starts.tobytes() + self._ends.tobytes()).hexdigest()[:16]
        return f"Blocklist(n={len(self._starts)}, digest={digest})"


def _merge_intervals(
        intervals: List[Tuple[int, int]]) -> Tuple[np.ndarray, np.ndarray]:
    """Merge possibly-overlapping [start, end] intervals."""
    if not intervals:
        empty = np.array([], dtype=np.uint32)
        return empty, empty.copy()
    intervals.sort()
    starts: List[int] = []
    ends: List[int] = []
    for start, end in intervals:
        if starts and start <= ends[-1] + 1:
            ends[-1] = max(ends[-1], end)
        else:
            starts.append(start)
            ends.append(end)
    return (np.array(starts, dtype=np.uint32),
            np.array(ends, dtype=np.uint32))
