"""IPv4 addressing substrate: addresses, networks, tries, blocklists."""

from repro.net.ipv4 import (
    IPv4Network,
    format_ipv4,
    parse_ipv4,
    slash24,
    slash24_array,
)
from repro.net.trie import PrefixTrie
from repro.net.blocklist import Blocklist

__all__ = [
    "IPv4Network",
    "format_ipv4",
    "parse_ipv4",
    "slash24",
    "slash24_array",
    "PrefixTrie",
    "Blocklist",
]
