"""Correlated packet-loss model for origin → destination-AS paths.

The paper's central observation about loss (§5.2, §7) is that it is *not*
uniform random: in more than 93 % of cases where one of two back-to-back
probes is dropped, both are dropped.  We model each path with three
components:

* **Epoch loss** — the path alternates between good and bad windows
  ("epochs").  Within a bad epoch a host's probes share fate, so
  back-to-back probes are lost together while probes separated by more than
  an epoch are nearly independent.  This is a discretized Gilbert–Elliott
  channel.
* **Random loss** — a small independent per-probe drop probability.  This is
  the only component visible to the paper's 1-vs-2-probe loss estimator,
  which is why estimated packet drop correlates weakly with transient host
  loss.
* **Persistent host loss** — a fraction of the AS's hosts are behind
  quasi-dead sub-paths from a given origin in every trial (the
  Germany → Telecom Italia case: >40 % loss, "persistent lack of
  connectivity rather than explicit blocking").

All draws are counter-addressed on (origin, AS, trial, host, epoch, probe),
so outcomes are order-independent and identical between the vectorized and
scalar evaluation paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.rng import CounterRNG, keyed_uniform_lattice, stream_keys

#: Loss probability inside a bad epoch.  High enough that shared-fate loss
#: dominates the independent residual.
BAD_EPOCH_LOSS = 0.97

#: Fraction of the epoch-loss rate attributed to *destination-side*
#: congestion, visible to every origin simultaneously.  The remainder is
#: path-specific.  This is what makes a minority of missing hosts overlap
#: across origins (the paper's all-origin intersection is well above
#: 1 - 7 × per-origin loss).
SHARED_EPOCH_WEIGHT = 0.3

#: Within the path-specific remainder, the fraction shared by origins in
#: the same physical location (same ``path_group``).  Colocated Tier-1
#: origins share most — not all — of their path fate: their first hops
#: differ until the routes converge, which is why the paper's colocated
#: triad is the worst triad yet only ~0.4 % behind the median.
GROUP_EPOCH_WEIGHT = 0.65


@dataclass(frozen=True)
class LossDraw:
    """Per-origin loss parameters for one destination AS."""

    #: Long-run fraction of time/hosts affected by bad epochs (≈ the
    #: correlated loss rate of the path).
    epoch_rate: float = 0.002
    #: Independent per-probe drop probability.
    random_rate: float = 0.001
    #: Fraction of the AS's hosts persistently unreachable from this origin.
    persistent_fraction: float = 0.0
    #: Multiplier applied to the trial-to-trial variability of epoch_rate.
    variability: float = 1.0

    def __post_init__(self) -> None:
        for name in ("epoch_rate", "random_rate", "persistent_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class PathLossSpec:
    """Loss configuration for one destination AS.

    ``default`` applies to every origin without an explicit entry in
    ``per_origin`` (keyed by origin name, e.g. ``"DE"``).
    """

    default: LossDraw = field(default_factory=LossDraw)
    per_origin: Dict[str, LossDraw] = field(default_factory=dict)

    def for_origin(self, origin_name: str,
                   state_group: str = "") -> LossDraw:
        """Parameters for one origin.

        Falls back to the origin's ``state_group`` entry (colocated origins
        share path characteristics) before the default.
        """
        draw = self.per_origin.get(origin_name)
        if draw is not None:
            return draw
        if state_group:
            draw = self.per_origin.get(state_group)
            if draw is not None:
                return draw
        return self.default


class PathLossModel:
    """Evaluates probe delivery for one (origin, AS) path.

    One instance serves a single origin; the per-AS parameters are passed as
    arrays aligned with the hosts being evaluated.
    """

    def __init__(self, rng: CounterRNG, origin_name: str,
                 state_group: str = "",
                 epoch_seconds: float = 60.0) -> None:
        if epoch_seconds <= 0:
            raise ValueError("epoch_seconds must be positive")
        self.origin_name = origin_name
        self.state_group = state_group or origin_name
        self.epoch_seconds = epoch_seconds
        # Path *state* (congestion epochs, dead sub-paths) is a property of
        # the physical location, shared by colocated origins; the residual
        # random component differs per origin (distinct first hops).
        self._state_rng = rng.derive("path-loss-state", self.state_group)
        # Destination-side congestion: identical draws for every origin.
        self._shared_rng = rng.derive("path-loss-destination")
        self._rng = rng.derive("path-loss", origin_name)

    # ------------------------------------------------------------------
    # Vectorized evaluation
    # ------------------------------------------------------------------

    def trial_epoch_rates(self, epoch_rates: np.ndarray,
                          variability: np.ndarray, as_idx: np.ndarray,
                          trial: int) -> np.ndarray:
        """Per-host effective epoch-loss rate for one trial.

        Trial-to-trial variability is modelled as a lognormal multiplier
        drawn per (AS, trial); this produces the large swings the paper
        observes (e.g. Australia's +275 % HTTPS transient loss between
        trials 1 and 2).
        """
        u = self._state_rng.uniform_array(as_idx, "trial-mult", trial)
        # Inverse-transform a lognormal with sigma scaled by variability.
        z = _norm_ppf(u)
        mult = np.exp(z * 0.5 * np.asarray(variability, dtype=np.float64))
        return np.clip(epoch_rates * mult, 0.0, 0.9)

    def trial_epoch_rate_matrix(self, epoch_rates: np.ndarray,
                                variability: np.ndarray,
                                as_idx: np.ndarray,
                                trials) -> np.ndarray:
        """:meth:`trial_epoch_rates` for a whole trial axis at once.

        Returns an ``(n_trials, len(as_idx))`` matrix whose row *t* is
        bit-identical to ``trial_epoch_rates(..., trials[t])``: the
        per-trial stream keys are pre-derived and the lognormal
        multiplier draw runs as one lattice call.
        """
        keys = stream_keys(self._state_rng,
                           [("trial-mult", int(t)) for t in trials])
        u = keyed_uniform_lattice(keys, np.asarray(as_idx, dtype=np.uint64))
        z = _norm_ppf(u)
        mult = np.exp(z * 0.5 * np.asarray(variability, dtype=np.float64))
        return np.clip(np.asarray(epoch_rates, dtype=np.float64) * mult,
                       0.0, 0.9)

    def delivered_lattice(self, host_ids: np.ndarray, as_idx: np.ndarray,
                          times: np.ndarray, trials, probe_no: int,
                          epoch_rates: np.ndarray, random_rates: np.ndarray,
                          persistent_fractions: np.ndarray,
                          persist_u: np.ndarray,
                          epoch_memo: Optional[dict] = None) -> np.ndarray:
        """:meth:`probe_delivered` batched over the trial axis.

        ``times`` and ``epoch_rates`` are ``(n_trials, n_hosts)``
        matrices (per-trial probe schedules and per-trial effective
        epoch rates); ``host_ids``/``as_idx``/``random_rates``/
        ``persistent_fractions``/``persist_u`` are shared ``(n_hosts,)``
        vectors.  Row *t* of the result is bit-identical to
        ``probe_delivered(..., trial=trials[t], ...)``: every component
        draw uses a pre-derived per-trial stream key against the same
        counter addresses the scalar-trial path folds, so batching is
        exact.  ``epoch_memo`` memoizes the epoch-loss lattice across
        back-to-back probes exactly as in :meth:`probe_delivered`.
        """
        host_ids = np.asarray(host_ids, dtype=np.uint64)
        effective = np.asarray(epoch_rates, dtype=np.float64)
        epochs = (np.asarray(times, dtype=np.float64)
                  // self.epoch_seconds).astype(np.int64)

        memo_key = epochs.tobytes() if epoch_memo is not None else None
        epoch_lost = epoch_memo.get(memo_key) \
            if epoch_memo is not None else None
        if epoch_lost is None:
            epoch_key = (np.asarray(as_idx, dtype=np.uint64)[np.newaxis, :]
                         * np.uint64(0x9E3779B1) + epochs.astype(np.uint64))
            own = effective * (1.0 - SHARED_EPOCH_WEIGHT)
            group_rate = own * GROUP_EPOCH_WEIGHT
            origin_rate = own * (1.0 - GROUP_EPOCH_WEIGHT)
            shared_rate = effective * SHARED_EPOCH_WEIGHT
            state_keys = stream_keys(
                self._state_rng, [("epoch-state", int(t)) for t in trials])
            origin_keys = stream_keys(
                self._rng,
                [("epoch-state-origin", int(t)) for t in trials])
            shared_keys = stream_keys(
                self._shared_rng,
                [("epoch-state", int(t)) for t in trials])
            bad_epoch = (keyed_uniform_lattice(state_keys, epoch_key)
                         < group_rate) \
                | (keyed_uniform_lattice(origin_keys, epoch_key)
                   < origin_rate) \
                | (keyed_uniform_lattice(shared_keys, epoch_key)
                   < shared_rate)
            fate_key = host_ids[np.newaxis, :] * np.uint64(1000003) \
                + epochs.astype(np.uint64)
            fate_keys = stream_keys(
                self._state_rng, [("epoch-fate", int(t)) for t in trials])
            host_fate_lost = keyed_uniform_lattice(fate_keys, fate_key) \
                < BAD_EPOCH_LOSS
            epoch_lost = bad_epoch & host_fate_lost
            if epoch_memo is not None:
                epoch_memo[memo_key] = epoch_lost

        rand_keys = stream_keys(
            self._rng, [("random", int(t), probe_no) for t in trials])
        random_lost = keyed_uniform_lattice(rand_keys, host_ids) \
            < np.asarray(random_rates, dtype=np.float64)

        persistent_lost = np.asarray(persist_u, dtype=np.float64) \
            < np.asarray(persistent_fractions, dtype=np.float64)

        return ~(epoch_lost | random_lost
                 | persistent_lost[np.newaxis, :])

    def probe_delivered(self, host_ids: np.ndarray, as_idx: np.ndarray,
                        times: np.ndarray, trial: int, probe_no: int,
                        epoch_rates: np.ndarray, random_rates: np.ndarray,
                        persistent_fractions: np.ndarray,
                        persist_u: Optional[np.ndarray] = None,
                        epoch_memo: Optional[dict] = None) -> np.ndarray:
        """Boolean delivery mask for one probe to each host.

        ``times`` are the probe transmission times (seconds into the scan);
        probes in the same epoch share the bad/good path state *and* the
        per-host fate draw, so consecutive probes live or die together.
        ``epoch_rates`` should already include trial modulation when desired
        (see :meth:`trial_epoch_rates`); ``persist_u`` may carry precomputed
        per-host persistent-path draws to avoid recomputation across probes.

        ``epoch_memo`` (a caller-owned dict scoped to one observation) lets
        back-to-back probes that land in the same loss epochs reuse the
        epoch-loss mask: the mask is a pure function of the per-host epoch
        numbers, which are identical for probes separated by far less than
        an epoch, so the reuse is bit-exact.
        """
        host_ids = np.asarray(host_ids, dtype=np.uint64)
        effective = np.asarray(epoch_rates, dtype=np.float64)
        epochs = (np.asarray(times, dtype=np.float64)
                  // self.epoch_seconds).astype(np.int64)

        memo_key = epochs.tobytes() if epoch_memo is not None else None
        epoch_lost = epoch_memo.get(memo_key) \
            if epoch_memo is not None else None
        if epoch_lost is None:
            # Component 1: bad epoch on the (AS, epoch) path segment.
            # Split between a path-specific part and a destination-side
            # part shared by all origins probing the AS in the same window.
            epoch_key = (np.asarray(as_idx, dtype=np.uint64)
                         * np.uint64(0x9E3779B1) + epochs.astype(np.uint64))
            own = effective * (1.0 - SHARED_EPOCH_WEIGHT)
            group_rate = own * GROUP_EPOCH_WEIGHT
            origin_rate = own * (1.0 - GROUP_EPOCH_WEIGHT)
            shared_rate = effective * SHARED_EPOCH_WEIGHT
            bad_epoch = (self._state_rng.uniform_array(
                epoch_key, "epoch-state", trial) < group_rate) \
                | (self._rng.uniform_array(
                    epoch_key, "epoch-state-origin", trial) < origin_rate) \
                | (self._shared_rng.uniform_array(
                    epoch_key, "epoch-state", trial) < shared_rate)
            # Within a bad epoch each host draws one shared fate for all
            # probes.
            fate_key = host_ids * np.uint64(1000003) \
                + epochs.astype(np.uint64)
            host_fate_lost = self._state_rng.uniform_array(
                fate_key, "epoch-fate", trial) < BAD_EPOCH_LOSS
            epoch_lost = bad_epoch & host_fate_lost
            if epoch_memo is not None:
                epoch_memo[memo_key] = epoch_lost

        # Component 2: independent residual loss per probe.
        random_lost = self._rng.uniform_array(
            host_ids, "random", trial, probe_no) < random_rates

        # Component 3: persistently dead sub-paths (stable across trials).
        if persist_u is None:
            persist_u = self.persistent_draws(host_ids)
        persistent_lost = persist_u < persistent_fractions

        return ~(epoch_lost | random_lost | persistent_lost)

    def persistent_draws(self, host_ids: np.ndarray) -> np.ndarray:
        """Per-host uniforms for the persistent-path component.

        Deliberately *not* keyed by trial: a host behind a dead sub-path
        stays dead in every trial, which is what makes this component
        long-term rather than transient.
        """
        return self._state_rng.uniform_array(
            np.asarray(host_ids, dtype=np.uint64), "persistent")

    # ------------------------------------------------------------------
    # Scalar evaluation (must agree with the vectorized path)
    # ------------------------------------------------------------------

    def probe_delivered_one(self, host_id: int, as_index: int, time: float,
                            trial: int, probe_no: int,
                            draw: LossDraw) -> bool:
        """Scalar version of :meth:`probe_delivered` for one host."""
        result = self.probe_delivered(
            np.array([host_id], dtype=np.uint64),
            np.array([as_index], dtype=np.int64),
            np.array([time], dtype=np.float64),
            trial, probe_no,
            np.array([draw.epoch_rate]),
            np.array([draw.random_rate]),
            np.array([draw.persistent_fraction]))
        return bool(result[0])


def _norm_ppf(u: np.ndarray) -> np.ndarray:
    """Inverse standard-normal CDF (Acklam's rational approximation).

    Implemented directly so the loss model does not drag scipy into the hot
    path; accuracy (~1e-9) is far beyond what the simulation needs.
    """
    u = np.clip(np.asarray(u, dtype=np.float64), 1e-12, 1.0 - 1e-12)
    a = [-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00]
    b = [-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00]
    d = [7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00]
    p_low, p_high = 0.02425, 1 - 0.02425
    out = np.empty_like(u)

    lo = u < p_low
    if np.any(lo):
        q = np.sqrt(-2 * np.log(u[lo]))
        out[lo] = ((((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q
                     + c[4]) * q + c[5])
                   / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1))

    hi = u > p_high
    if np.any(hi):
        q = np.sqrt(-2 * np.log(1 - u[hi]))
        out[hi] = -((((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q
                      + c[4]) * q + c[5])
                    / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1))

    mid = ~(lo | hi)
    if np.any(mid):
        q = u[mid] - 0.5
        r = q * q
        out[mid] = ((((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r
                      + a[4]) * r + a[5]) * q
                    / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r
                        + b[4]) * r + 1))
    return out
