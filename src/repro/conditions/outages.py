"""Short-lived, localized burst outages (§5.3).

The paper finds that 14–36 % of transient host loss coincides with burst
outages: windows of complete loss between one origin and one destination AS,
detectable as outliers in the per-hour time series of transiently missing
hosts.  We model these directly: for each (origin, destination AS, trial) a
Poisson number of outage windows is drawn, each with an exponential duration,
during which every probe on that path is lost.

Roughly 60 % of bursts affect a single origin; the remainder are drawn from
a shared "event pool" visible to a random subset of origins, reproducing the
paper's finding that ≥91 % of bursts hit three origins or fewer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Sequence

import numpy as np

from repro.rng import CounterRNG


@dataclass(frozen=True)
class BurstOutageSpec:
    """Burst-outage configuration for one destination AS."""

    #: Expected number of single-origin outage windows per (origin, trial).
    events_per_origin_trial: float = 0.02
    #: Expected number of shared events per trial (visible to 2-3 origins).
    shared_events_per_trial: float = 0.005
    #: Mean outage duration in seconds.
    duration_mean_s: float = 1800.0
    #: Per-origin multipliers on the single-origin event rate.  The paper
    #: finds Australia is the single-origin burst victim 30–40 % of the
    #: time; scenarios express that here.
    origin_multipliers: Mapping[str, float] = field(
        default_factory=lambda: {})

    def __post_init__(self) -> None:
        if self.duration_mean_s <= 0:
            raise ValueError("duration_mean_s must be positive")
        if self.events_per_origin_trial < 0 or self.shared_events_per_trial < 0:
            raise ValueError("event rates must be non-negative")

    def rate_for(self, origin_name: str) -> float:
        """Single-origin event rate for one origin."""
        return self.events_per_origin_trial \
            * self.origin_multipliers.get(origin_name, 1.0)


@dataclass(frozen=True)
class Outage:
    """One outage window on an (origin, AS) path."""

    as_index: int
    origin_name: str
    trial: int
    start: float
    end: float

    def covers(self, time: float) -> bool:
        return self.start <= time < self.end


class BurstOutageModel:
    """Draws and evaluates outage windows for a whole campaign.

    Windows are drawn lazily per (AS, trial) and cached; evaluation produces
    a per-host lost mask given probe times.
    """

    def __init__(self, rng: CounterRNG, origin_names: Sequence[str],
                 scan_duration_s: float) -> None:
        if scan_duration_s <= 0:
            raise ValueError("scan_duration_s must be positive")
        self._rng = rng.derive("burst-outages")
        self.origin_names = list(origin_names)
        self.scan_duration_s = scan_duration_s
        self._cache: dict = {}

    # ------------------------------------------------------------------
    # Window generation
    # ------------------------------------------------------------------

    def windows(self, as_index: int, spec: BurstOutageSpec,
                trial: int) -> List[Outage]:
        """All outage windows for one AS in one trial (all origins)."""
        key = (as_index, trial)
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        out: List[Outage] = []
        # Single-origin events.
        for oi, origin in enumerate(self.origin_names):
            sub = self._rng.derive("single", as_index, trial, origin)
            count = _poisson(sub, spec.rate_for(origin))
            for k in range(count):
                start = sub.uniform("start", k) * self.scan_duration_s
                length = sub.exponential(spec.duration_mean_s, "len", k)
                out.append(Outage(as_index, origin, trial, start,
                                  min(start + length, self.scan_duration_s)))
        # Shared events visible to 2-3 origins.
        sub = self._rng.derive("shared", as_index, trial)
        count = _poisson(sub, spec.shared_events_per_trial)
        for k in range(count):
            start = sub.uniform("start", k) * self.scan_duration_s
            length = sub.exponential(spec.duration_mean_s, "len", k)
            width = 2 + (sub.bits("width", k) % 2)  # 2 or 3 origins
            chosen = sub.shuffled(self.origin_names, k)[:width]
            for origin in chosen:
                out.append(Outage(as_index, origin, trial, start,
                                  min(start + length, self.scan_duration_s)))
        self._cache[key] = out
        return out

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def active_windows(self, origin_name: str, trial: int,
                       specs_by_as: dict) -> dict:
        """AS index → [(start, end), ...] windows hitting this origin.

        Computed once per (origin, trial) and cached; only a small fraction
        of ASes have any windows, so downstream evaluation loops stay
        short.
        """
        key = ("active", origin_name, trial, id(specs_by_as))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        active: dict = {}
        for as_index, spec in specs_by_as.items():
            relevant = [(w.start, w.end)
                        for w in self.windows(int(as_index), spec, trial)
                        if w.origin_name == origin_name]
            if relevant:
                active[int(as_index)] = relevant
        self._cache[key] = active
        return active

    def lost_mask(self, origin_name: str, trial: int, as_idx: np.ndarray,
                  times: np.ndarray, specs_by_as: dict) -> np.ndarray:
        """Boolean mask of probes lost to a burst outage.

        ``specs_by_as`` maps AS index → :class:`BurstOutageSpec`; ASes absent
        from the map have no burst behaviour.
        """
        as_idx = np.asarray(as_idx, dtype=np.int64)
        times = np.asarray(times, dtype=np.float64)
        lost = np.zeros(as_idx.shape, dtype=bool)
        active = self.active_windows(origin_name, trial, specs_by_as)
        for as_index, windows in active.items():
            members = as_idx == as_index
            if not np.any(members):
                continue
            member_times = times[members]
            hit = np.zeros(member_times.shape, dtype=bool)
            for start, end in windows:
                hit |= (member_times >= start) & (member_times < end)
            lost[members] = hit
        return lost

    def lost_one(self, origin_name: str, trial: int, as_index: int,
                 time: float, spec: BurstOutageSpec) -> bool:
        """Scalar counterpart of :meth:`lost_mask` for one probe."""
        return any(w.covers(time)
                   for w in self.windows(as_index, spec, trial)
                   if w.origin_name == origin_name)


def _poisson(rng: CounterRNG, lam: float) -> int:
    """A small-λ Poisson variate via inversion (λ ≤ ~30 in practice)."""
    if lam <= 0:
        return 0
    u = rng.uniform("poisson")
    p = float(np.exp(-lam))
    cdf = p
    k = 0
    while u > cdf and k < 1000:
        k += 1
        p *= lam / k
        cdf += p
    return k
