"""Network path conditions between scan origins and destination ASes."""

from repro.conditions.loss import PathLossSpec, PathLossModel, LossDraw
from repro.conditions.outages import BurstOutageSpec, BurstOutageModel, Outage

__all__ = [
    "PathLossSpec",
    "PathLossModel",
    "LossDraw",
    "BurstOutageSpec",
    "BurstOutageModel",
    "Outage",
]
