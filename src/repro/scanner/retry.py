"""Targeted handshake re-probing (the §6 retry experiment).

The paper's follow-up experiment iteratively re-scans candidate
sub-networks while increasing the maximum number of SSH handshake retries,
showing that up to eight retries reach ~90 % of the probabilistically
refusing hosts in EGI Hosting and Psychz Networks.  :class:`RetryProber`
drives that loop against a simulated world.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.origins import Origin


@dataclass
class RetryCurve:
    """Success fraction as a function of the retry budget."""

    label: str
    max_attempts: List[int]
    success_fraction: List[float]

    def as_dict(self) -> Dict[int, float]:
        return dict(zip(self.max_attempts, self.success_fraction))


class RetryProber:
    """Re-probes SSH hosts with an increasing retry budget."""

    def __init__(self, world, origin: Origin, trial: int = 0) -> None:
        self.world = world
        self.origin = origin
        self.trial = trial

    def curve(self, ips: np.ndarray, label: str,
              attempts: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8)
              ) -> RetryCurve:
        """Success fraction of ``ips`` for each retry budget.

        Mirrors Figure 13: the x-axis is the maximum number of handshake
        attempts, the y-axis the fraction of responding IPs that completed
        an SSH handshake within the budget.
        """
        ips = np.asarray(ips, dtype=np.uint32)
        if len(ips) == 0:
            raise ValueError("no target IPs to probe")
        fractions = []
        for budget in attempts:
            if budget < 1:
                raise ValueError("retry budgets must be >= 1")
            success = self.world.ssh_retry_success(
                ips, self.origin, self.trial, budget)
            fractions.append(float(success.mean()))
        return RetryCurve(label=label, max_attempts=list(attempts),
                          success_fraction=fractions)
