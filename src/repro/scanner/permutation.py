"""Full-cycle pseudorandom permutations of the scan address space.

ZMap iterates a multiplicative cyclic group modulo a prime just above 2³²,
which visits every address exactly once in pseudorandom order while keeping
only O(1) state.  We provide that construction faithfully
(:class:`CyclicGroupPermutation`) plus an affine (full-period LCG)
permutation (:class:`AffinePermutation`) whose *inverse* is closed-form —
the property the vectorized simulator needs to compute when a given live
address gets probed without iterating billions of steps.

Both are full-cycle pseudorandom permutations; the ablation bench
``test_abl_permutation`` shows campaign results are invariant to the
choice, as expected since all origins share the same permutation.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.rng import CounterRNG


class AffinePermutation:
    """``perm(i) = (a*i + b) mod 2**m`` with a full period.

    ``a ≡ 1 (mod 4)`` and odd ``b`` guarantee the map is a bijection with a
    single cycle over the power-of-two domain (Hull–Dobell).  Positions are
    recovered with the modular inverse of ``a``.
    """

    def __init__(self, domain_bits: int, seed: int) -> None:
        if not 1 <= domain_bits <= 64:
            raise ValueError("domain_bits must be in [1, 64]")
        self.domain_bits = domain_bits
        self.size = 1 << domain_bits
        self._mask = self.size - 1
        rng = CounterRNG(seed, "affine-perm", domain_bits)
        # a ≡ 1 mod 4 keeps the full period; mixing in high bits keeps the
        # multiplier large so consecutive positions land far apart.
        self._a = ((rng.bits(0) & self._mask) | 1) & ~2 & self._mask
        if self._a == 1 and domain_bits > 2:
            self._a = 5
        self._b = (rng.bits(1) & self._mask) | 1
        self._a_inv = pow(self._a, -1, self.size)

    def address_at(self, position: int) -> int:
        """The address visited at ``position`` in scan order."""
        return (self._a * (position % self.size) + self._b) & self._mask

    def position_of(self, address: int) -> int:
        """The scan-order position at which ``address`` is visited."""
        return (self._a_inv * ((address - self._b) % self.size)) & self._mask

    def position_of_array(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`position_of` over a uint32/uint64 array."""
        addr = np.asarray(addresses, dtype=np.uint64)
        diff = (addr - np.uint64(self._b)) & np.uint64(self._mask)
        return (np.uint64(self._a_inv) * diff) & np.uint64(self._mask)

    def __iter__(self) -> Iterator[int]:
        for position in range(self.size):
            yield self.address_at(position)


class CyclicGroupPermutation:
    """ZMap's construction: iterate ``x ← g·x mod p`` over (Z/pZ)*.

    ``p`` must be prime; the walk visits 1..p-1 exactly once when ``g``
    is a primitive root.  Addresses ≥ ``domain_size`` are skipped during
    iteration, exactly as ZMap skips the handful of values above 2³².

    ``position_of`` solves a discrete log with baby-step giant-step —
    O(√p) time and memory — fine for the small domains used in tests and
    far too slow for 2³², which is why the simulator defaults to
    :class:`AffinePermutation`.
    """

    def __init__(self, p: int, seed: int,
                 domain_size: Optional[int] = None) -> None:
        if p < 3 or not _is_prime(p):
            raise ValueError(f"p must be a prime >= 3, got {p}")
        self.p = p
        self.domain_size = domain_size if domain_size is not None else p - 1
        rng = CounterRNG(seed, "cyclic-perm", p)
        self.generator = _find_primitive_root(p, rng)
        # A seed-dependent starting point spreads different scans' orders.
        self.start = 1 + rng.bits("start") % (p - 1)
        self._bsgs_table: Optional[dict] = None

    def __iter__(self) -> Iterator[int]:
        """Yield addresses < domain_size in scan order."""
        x = self.start
        for _ in range(self.p - 1):
            value = x - 1  # map group element 1..p-1 onto addresses 0..p-2
            if value < self.domain_size:
                yield value
            x = (x * self.generator) % self.p

    def address_at(self, position: int) -> int:
        """Group element (minus one) at ``position`` ignoring skips."""
        x = (self.start * pow(self.generator, position, self.p)) % self.p
        return x - 1

    def position_of(self, address: int) -> int:
        """Scan-order position of ``address`` (ignoring skips); O(√p)."""
        target = (address + 1) % self.p
        if target == 0:
            raise ValueError("address outside the group")
        # Solve g^k = target / start (mod p) with baby-step giant-step.
        ratio = (target * pow(self.start, -1, self.p)) % self.p
        m = int(np.ceil(np.sqrt(self.p)))
        if self._bsgs_table is None:
            table = {}
            e = 1
            for j in range(m):
                table.setdefault(e, j)
                e = (e * self.generator) % self.p
            self._bsgs_table = table
        factor = pow(self.generator, (self.p - 1 - m) % (self.p - 1), self.p)
        gamma = ratio
        for i in range(m + 1):
            j = self._bsgs_table.get(gamma)
            if j is not None:
                return (i * m + j) % (self.p - 1)
            gamma = (gamma * factor) % self.p
        raise ArithmeticError("discrete log not found (p not prime?)")


def _is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin for 64-bit integers."""
    if n < 2:
        return False
    for small in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % small == 0:
            return n == small
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def _factorize(n: int) -> list:
    """Prime factors of ``n`` (trial division; n is at most p-1 here)."""
    factors = []
    d = 2
    while d * d <= n:
        if n % d == 0:
            factors.append(d)
            while n % d == 0:
                n //= d
        d += 1 if d == 2 else 2
    if n > 1:
        factors.append(n)
    return factors


def _find_primitive_root(p: int, rng: CounterRNG) -> int:
    """A primitive root mod prime ``p``, chosen seed-dependently."""
    if p == 3:
        return 2
    order_factors = _factorize(p - 1)
    for attempt in range(10_000):
        candidate = 2 + rng.bits("root", attempt) % (p - 3)
        if all(pow(candidate, (p - 1) // q, p) != 1 for q in order_factors):
            return candidate
    raise ArithmeticError(f"no primitive root found for p={p}")
