"""ZGrab-analog application-layer handshakes.

The paper's follow-up handshakes are deliberately minimal: an HTTP
``GET /``, a TLS 1.2 handshake with modern-Chrome cipher suites, and a
partial SSH handshake terminating after the protocol version exchange.
This module carries those definitions — ports, handshake phases, and the
timeout that separates a "drop" from a "close" observation — so scanners,
the simulator, and the loaders agree on what each protocol means.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class HandshakeSpec:
    """What the L7 follow-up does for one protocol."""

    protocol: str
    port: int
    #: Human-readable description of the handshake performed.
    handshake: str
    #: Ordered phases; a connection can fail at any boundary.
    phases: Tuple[str, ...]
    #: Seconds the scanner waits before declaring a silent drop.
    timeout_s: float = 10.0

    def __post_init__(self) -> None:
        if not 0 < self.port < 65536:
            raise ValueError(f"invalid port {self.port}")
        if not self.phases:
            raise ValueError("a handshake needs at least one phase")


#: The three protocols of the study, exactly as §2 configures them.
HANDSHAKES: Dict[str, HandshakeSpec] = {
    "http": HandshakeSpec(
        protocol="http", port=80,
        handshake="HTTP GET /",
        phases=("tcp", "request", "response")),
    "https": HandshakeSpec(
        protocol="https", port=443,
        handshake="TLS 1.2 handshake (modern Chrome cipher suites)",
        phases=("tcp", "client_hello", "server_hello", "key_exchange")),
    "ssh": HandshakeSpec(
        protocol="ssh", port=22,
        handshake="SSH protocol version exchange (partial handshake)",
        phases=("tcp", "version_exchange")),
}


def port_for(protocol: str) -> int:
    """The TCP port scanned for ``protocol``."""
    return HANDSHAKES[protocol].port


def protocol_for_port(port: int) -> str:
    """Inverse of :func:`port_for` (used by the data loaders)."""
    for spec in HANDSHAKES.values():
        if spec.port == port:
            return spec.protocol
    raise KeyError(f"no studied protocol uses port {port}")
