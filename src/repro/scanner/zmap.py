"""The ZMap-analog stateless SYN scanner.

A scanner instance owns the shared scan schedule: the address permutation
(one per seed, shared by every synchronized origin, exactly as the paper
starts all origins with the same ZMap seed), the probe plan (how many SYNs
per address and their spacing), the send rate, and the exclusion blocklist.

The scanner does not decide outcomes — the simulated world does — it
answers *when* each address is probed and *whether* it is probed at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.net.blocklist import Blocklist
from repro.net.ipv4 import ADDRESS_SPACE_SIZE
from repro.origins import Origin
from repro.scanner.permutation import AffinePermutation

#: Spacing between back-to-back SYNs to the same address.  ZMap emits them
#: consecutively at line rate; 200 µs is a generous upper bound and keeps
#: both probes inside the same loss epoch, as on the real wire.
BACK_TO_BACK_SPACING_S = 2e-4


@dataclass(frozen=True)
class ZMapConfig:
    """Configuration of one scan wave (shared across origins)."""

    seed: int = 0
    #: Aggregate probes per second per origin.
    pps: float = 100_000.0
    #: SYN probes per destination address.
    n_probes: int = 2
    #: Seconds between probes to the same address.  The default models
    #: ZMap's back-to-back retransmission; raising it to minutes models the
    #: Bano et al. delayed-probe recommendation the paper endorses (§7).
    probe_spacing_s: float = BACK_TO_BACK_SPACING_S
    #: Size of the scanned address space.
    domain_size: int = ADDRESS_SPACE_SIZE
    blocklist: Blocklist = field(default_factory=Blocklist)
    #: ZMap-style sharding: this scanner covers positions ≡ ``shard``
    #: (mod ``n_shards``) of the shared permutation.  Shards partition
    #: the address space exactly, so ``n_shards`` cooperating scanners
    #: with the same seed cover it once with no overlap.
    shard: int = 0
    n_shards: int = 1

    def __post_init__(self) -> None:
        if self.n_probes < 1:
            raise ValueError("n_probes must be >= 1")
        if self.pps <= 0:
            raise ValueError("pps must be positive")
        if self.probe_spacing_s < 0:
            raise ValueError("probe_spacing_s must be >= 0")
        if not (self.domain_size & (self.domain_size - 1) == 0
                and self.domain_size >= 2):
            raise ValueError("domain_size must be a power of two >= 2")
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if not 0 <= self.shard < self.n_shards:
            raise ValueError("shard must be in [0, n_shards)")

    @property
    def scan_duration_s(self) -> float:
        """Nominal wall-clock duration of one full pass of this shard."""
        addresses = self.domain_size // self.n_shards
        return addresses * self.n_probes / self.pps


class ZMapScanner:
    """Probe scheduling for one scan wave."""

    def __init__(self, config: ZMapConfig) -> None:
        self.config = config
        bits = int(config.domain_size).bit_length() - 1
        self.permutation = AffinePermutation(bits, config.seed)

    # ------------------------------------------------------------------
    # Eligibility
    # ------------------------------------------------------------------

    def eligible_mask(self, ips: np.ndarray) -> np.ndarray:
        """False for blocklisted addresses and other shards' targets."""
        mask = ~self.config.blocklist.contains_array(ips)
        if self.config.n_shards > 1:
            mask = mask & self.shard_mask(ips)
        return mask

    def shard_mask(self, ips: np.ndarray) -> np.ndarray:
        """True for addresses this scanner's shard is responsible for.

        ZMap shards split the *permutation sequence* round-robin, so the
        addresses at positions ≡ shard (mod n_shards) belong to us.
        """
        positions = self.permutation.position_of_array(
            np.asarray(ips, dtype=np.uint64))
        return (positions % np.uint64(self.config.n_shards)) \
            == np.uint64(self.config.shard)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def first_probe_times(self, ips: np.ndarray,
                          origin: Optional[Origin] = None) -> np.ndarray:
        """Seconds into the scan when each address's first SYN is sent.

        All origins share the permutation, so positions are identical; an
        origin's ``drift`` stretches its schedule (the AU/BR lag).
        """
        positions = self.permutation.position_of_array(
            np.asarray(ips, dtype=np.uint64))
        if self.config.n_shards > 1:
            # Within a shard, the k-th owned position is sent k-th.
            positions = positions // np.uint64(self.config.n_shards)
        per_address_s = self.config.n_probes / self.config.pps
        times = positions.astype(np.float64) * per_address_s
        if origin is not None and origin.drift:
            times = times * (1.0 + origin.drift)
        return times

    def probe_times(self, ips: np.ndarray, origin: Optional[Origin] = None
                    ) -> np.ndarray:
        """(n_probes, n) matrix of every probe's send time."""
        first = self.first_probe_times(ips, origin)
        offsets = (np.arange(self.config.n_probes, dtype=np.float64)
                   * self.config.probe_spacing_s)
        return first[np.newaxis, :] + offsets[:, np.newaxis]

    def probes_into_as_per_second(self, as_total_addresses: int,
                                  origin: Origin) -> float:
        """Average probe rate one AS receives from one of the origin's IPs.

        Rate IDSes watch per-source-IP rates into their own space; under a
        uniform permutation an AS holding a fraction f of the scanned space
        receives f of each source IP's probes.
        """
        share = as_total_addresses / self.config.domain_size
        return origin.per_ip_pps * share

    def scan_duration_for(self, origin: Optional[Origin] = None) -> float:
        """Scan duration including the origin's drift."""
        base = self.config.scan_duration_s
        if origin is not None:
            base *= (1.0 + origin.drift)
        return base
