"""Scanner analogs: ZMap-style SYN scanning, ZGrab handshakes, baselines."""

from repro.scanner.permutation import (
    AffinePermutation,
    CyclicGroupPermutation,
)
from repro.scanner.zmap import ZMapConfig, ZMapScanner
from repro.scanner.zgrab import HandshakeSpec, HANDSHAKES
from repro.scanner.masscan import masscan_config
from repro.scanner.retry import RetryProber

__all__ = [
    "AffinePermutation",
    "CyclicGroupPermutation",
    "ZMapConfig",
    "ZMapScanner",
    "HandshakeSpec",
    "HANDSHAKES",
    "masscan_config",
    "RetryProber",
]
