"""Masscan-style baseline scanner configuration.

Masscan is the other widely used Internet-wide scanner (§1).  For the
purposes the paper studies it differs from ZMap in its retransmission
policy: instead of emitting SYNs back-to-back, it retries unanswered
probes after a multi-second timeout.  That spacing happens to be the
property §7 recommends (delayed probes escape the loss epoch that killed
the first probe), so the baseline doubles as the "multiple probes with
delay" ablation.
"""

from __future__ import annotations

from repro.net.blocklist import Blocklist
from repro.net.ipv4 import ADDRESS_SPACE_SIZE
from repro.scanner.zmap import ZMapConfig

#: Masscan's default retransmit interval.
MASSCAN_RETRY_SPACING_S = 10.0


def masscan_config(seed: int = 0, pps: float = 100_000.0,
                   n_probes: int = 2,
                   domain_size: int = ADDRESS_SPACE_SIZE,
                   blocklist: Blocklist = None) -> ZMapConfig:
    """A scan configuration with Masscan's delayed-retransmit behaviour.

    Returns a :class:`~repro.scanner.zmap.ZMapConfig` because the two tools
    share the scheduling abstraction; only the probe spacing differs.
    """
    return ZMapConfig(
        seed=seed,
        pps=pps,
        n_probes=n_probes,
        probe_spacing_s=MASSCAN_RETRY_SPACING_S,
        domain_size=domain_size,
        blocklist=blocklist if blocklist is not None else Blocklist())
