"""Command-line interface: ``python -m repro <command>``.

Three commands mirror the library's workflow:

* ``simulate`` — build a scenario world, run a synchronized campaign, and
  write the dataset as ndjson (or a columnar snapshot with
  ``--format columnar``);
* ``report`` — load a dataset (either format) and print the full §3–§7
  analysis report;
* ``coverage`` — load a dataset (either format) and print/export the
  coverage tables;
* ``trace`` — summarize a telemetry journal written by
  ``simulate --telemetry`` or ``serve --journal`` (span tree, manifest,
  top counters), or export it (``--export chrome`` for
  chrome://tracing / Perfetto, ``--export collapsed`` for flamegraphs);
  ``--last`` picks the newest journal without an explicit path;
* ``cache`` — inspect or clear the content-addressed world cache that
  accelerates repeated scenario builds;
* ``serve`` — run the long-lived campaign service (asyncio HTTP/JSON
  front with a content-addressed result cache; see docs/SERVING.md);
* ``top`` — live console over a running server's ``/metrics/history``;
* ``bench`` — the perf-regression sentinel (``bench diff`` compares the
  newest ``BENCH_<n>.json`` against the trajectory; non-zero exit on
  regression).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.coverage import coverage_table
from repro.core.engine import ENGINES
from repro.core.planning import diminishing_returns_k, recommend_origins
from repro.core.report import full_report
from repro.io import load_any_campaign
from repro.io.columnar import save_campaign as save_campaign_columnar
from repro.io.csv import write_coverage_csv
from repro.io.ndjson import load_campaign, save_campaign
from repro.reporting.tables import render_table
from repro.sim.campaign import run_campaign
from repro.sim.executor import BACKENDS
from repro.sim.scenario import followup_scenario, paper_scenario
from repro.sim.validation import validate_scan_rates
from repro.topology.asn import PROTOCOLS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolkit for 'On the Origin of "
                    "Scanning' (IMC 2020)")
    commands = parser.add_subparsers(dest="command", required=True)

    simulate = commands.add_parser(
        "simulate", help="run a synchronized campaign and save it")
    simulate.add_argument("output",
                          help="ndjson dataset directory, or snapshot "
                               "file with --format columnar")
    simulate.add_argument("--format", dest="format",
                          default="ndjson", choices=("ndjson", "columnar"),
                          help="on-disk campaign format: ndjson directory "
                               "(interoperable) or binary columnar "
                               "snapshot (fast)")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--scale", type=float, default=0.2,
                          help="world size multiplier (1.0 ≈ 58k HTTP "
                               "hosts)")
    simulate.add_argument("--trials", type=int, default=3)
    simulate.add_argument("--protocols", nargs="+", default=list(PROTOCOLS),
                          choices=list(PROTOCOLS))
    simulate.add_argument("--scenario", default="paper",
                          choices=("paper", "followup"))
    simulate.add_argument("--executor", default=None, choices=BACKENDS,
                          help="execution backend for the observation grid "
                               "(default: REPRO_EXECUTOR env or serial); "
                               "output is bit-identical across backends")
    simulate.add_argument("--workers", type=int, default=None,
                          help="pool size for thread/process backends "
                               "(default: REPRO_WORKERS env or CPU count)")
    simulate.add_argument("--batch", action=argparse.BooleanOptionalAction,
                          default=None,
                          help="fused trial-batched observation kernels "
                               "(default on; REPRO_BATCH=0 also disables)")
    simulate.add_argument("--telemetry", default=None, metavar="PATH",
                          help="write an NDJSON telemetry journal (spans, "
                               "counters, run manifest) to this file; "
                               "inspect it with 'repro trace PATH'")

    trace = commands.add_parser(
        "trace", help="summarize or export a telemetry journal "
                      "(simulate --telemetry / serve --journal)")
    trace.add_argument("journal", nargs="?", default=None,
                       help="NDJSON journal file (omit with --last)")
    trace.add_argument("--last", action="store_true",
                       help="use the newest journal under the journal "
                            "dir (REPRO_JOURNAL_DIR or the cache root)")
    trace.add_argument("--export", choices=("chrome", "collapsed"),
                       default=None,
                       help="export instead of summarizing: 'chrome' "
                            "writes trace-event JSON (chrome://tracing, "
                            "Perfetto), 'collapsed' writes flamegraph "
                            "collapsed stacks")
    trace.add_argument("--out", default=None, metavar="PATH",
                       help="export destination (default: stdout)")
    trace.add_argument("--depth", type=int, default=6,
                       help="maximum span-tree depth to render")
    trace.add_argument("--top", type=int, default=20,
                       help="number of counters to show")

    report = commands.add_parser(
        "report", help="print the full analysis report for a dataset")
    report.add_argument("dataset",
                        help="directory or snapshot written by 'simulate'")
    report.add_argument("--engine", choices=list(ENGINES), default=None,
                        help="analysis engine (default: "
                             "$REPRO_ANALYSIS_ENGINE or 'packed')")

    coverage = commands.add_parser(
        "coverage", help="print per-origin coverage tables")
    coverage.add_argument("dataset",
                          help="directory or snapshot written by "
                               "'simulate'")
    coverage.add_argument("--csv", help="also export rows to this CSV file")

    plan = commands.add_parser(
        "plan", help="recommend origins by marginal coverage (§7)")
    plan.add_argument("dataset",
                      help="directory or snapshot written by 'simulate'")
    plan.add_argument("--protocol", default="http")
    plan.add_argument("--single-probe", action="store_true")

    validate = commands.add_parser(
        "validate", help="§2 pre-campaign scan-rate validation")
    validate.add_argument("--seed", type=int, default=0)
    validate.add_argument("--scale", type=float, default=0.1)
    validate.add_argument("--sample", type=float, default=0.25,
                          help="fraction of the world to probe")

    cache = commands.add_parser(
        "cache", help="inspect, clear, or prune the world, shard, "
                      "result, and plane caches (REPRO_CACHE_DIR)")
    cache.add_argument("action", choices=("ls", "clear", "prune"),
                       help="'ls' lists cached worlds, shard segments, "
                            "served results, and plane units; 'clear' "
                            "deletes worlds and shard segments; 'prune' "
                            "evicts oldest entries across every cache "
                            "until the total fits the byte budget")
    cache.add_argument("--results", action="store_true",
                       help="with 'clear': also delete result-cache "
                            "entries (REPRO_RESULT_CACHE_DIR) and plane "
                            "units")
    cache.add_argument("--max-bytes", type=int, default=None,
                       help="with 'prune': total cache byte budget "
                            "(default: REPRO_CACHE_MAX_BYTES)")

    serve = commands.add_parser(
        "serve", help="run the campaign service (HTTP/JSON + result "
                      "cache); stop with SIGTERM/Ctrl-C for a graceful "
                      "drain")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8351,
                       help="listen port (0 picks an ephemeral port)")
    serve.add_argument("--queue-depth", type=int, default=8,
                       help="admitted-request cap; beyond it requests "
                            "get 429")
    serve.add_argument("--timeout", type=float, default=300.0,
                       help="per-request wall budget in seconds (504 "
                            "past it; compute continues and is cached)")
    serve.add_argument("--pool-size", type=int, default=2,
                       help="campaigns computed concurrently")
    serve.add_argument("--executor", default=None, choices=BACKENDS,
                       help="campaign execution backend "
                            "(default: REPRO_EXECUTOR env or serial)")
    serve.add_argument("--workers", type=int, default=None,
                       help="campaign pool width for thread/process "
                            "backends")
    serve.add_argument("--batch", action=argparse.BooleanOptionalAction,
                       default=None,
                       help="fused trial-batched kernels on the compute "
                            "path (default on; REPRO_BATCH=0 also "
                            "disables)")
    serve.add_argument("--plane-cache",
                       action=argparse.BooleanOptionalAction,
                       default=None,
                       help="plane-granular incremental recomputation on "
                            "the grid-surface miss path (default on; "
                            "REPRO_PLANE_CACHE=0 also disables)")
    serve.add_argument("--cache-dir", default=None,
                       help="result-cache root (default: "
                            "REPRO_RESULT_CACHE_DIR or the world-cache "
                            "root /results)")
    serve.add_argument("--journal", default=None, metavar="PATH",
                       help="write the server's NDJSON telemetry journal "
                            "here (inspect with 'repro trace')")
    serve.add_argument("--journal-max-bytes", type=int, default=None,
                       help="rotate the journal and access log past this "
                            "size (.1/.2 backups)")
    serve.add_argument("--access-log", default=None, metavar="PATH",
                       help="write one NDJSON line per request (trace "
                            "ID, route, status, cache source, latency)")

    top = commands.add_parser(
        "top", help="live console over a running server's "
                    "/metrics/history window")
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=8351)
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between polls")
    top.add_argument("--once", action="store_true",
                     help="print one snapshot and exit (no screen "
                          "clearing; scripting/tests)")

    bench = commands.add_parser(
        "bench", help="benchmark-trajectory tooling (regression sentinel)")
    bench.add_argument("action", choices=("diff",),
                       help="'diff' compares the newest BENCH_<n>.json "
                            "against TRAJECTORY.json history")
    bench.add_argument("--dir", default="bench_artifacts",
                       help="artifact directory (default: bench_artifacts)")
    bench.add_argument("--tolerance", type=float, default=None,
                       help="relative slowdown tolerated before failing "
                            "(default 0.25 = ±25%%)")
    bench.add_argument("--min-history", type=int, default=None,
                       help="comparable artifacts required before a "
                            "benchmark can regress (default 2)")
    bench.add_argument("--json", action="store_true",
                       help="print the machine-readable verdict instead "
                            "of the table")
    bench.add_argument("--output", default=None, metavar="PATH",
                       help="also write the JSON verdict to this file")

    profile = commands.add_parser(
        "profile", help="profile the observe() hot path (warm plan)")
    profile.add_argument("--seed", type=int, default=1)
    profile.add_argument("--scale", type=float, default=1.0,
                         help="world size multiplier (1.0 ≈ 58k HTTP "
                              "hosts, the paper scale)")
    profile.add_argument("--protocol", default="http",
                         choices=list(PROTOCOLS))
    profile.add_argument("--rounds", type=int, default=10,
                         help="observations to run under the profiler")
    profile.add_argument("--unplanned", action="store_true",
                         help="profile the unplanned reference path "
                              "instead of the compiled plan")
    profile.add_argument("--batched", action="store_true",
                         help="profile the fused trial-batch kernel "
                              "(per-stage breakdown over --trials trials)")
    profile.add_argument("--trials", type=int, default=3,
                         help="trials per batch in --batched mode")
    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    scenario = paper_scenario if args.scenario == "paper" \
        else followup_scenario
    world, origins, config = scenario(seed=args.seed, scale=args.scale)
    print(f"world: {world.hosts.counts_by_protocol()} services in "
          f"{len(world.topology.ases)} ASes", file=sys.stderr)
    dataset = run_campaign(world, origins, config,
                           protocols=tuple(args.protocols),
                           n_trials=args.trials,
                           executor=args.executor, workers=args.workers,
                           batch=args.batch,
                           telemetry=args.telemetry)
    execution = dataset.metadata["execution"]
    print(f"executed {execution['n_jobs']} observation jobs via "
          f"{execution['backend']}×{execution['workers']} in "
          f"{execution['wall_s']:.2f}s "
          f"(speedup {execution['speedup']:.2f}×)", file=sys.stderr)
    if args.format == "columnar":
        nbytes = save_campaign_columnar(dataset, args.output)
        print(f"wrote {len(dataset)} trials to columnar snapshot "
              f"{args.output} ({nbytes:,} bytes)", file=sys.stderr)
    else:
        save_campaign(dataset, args.output)
        print(f"wrote {len(dataset)} trial files to {args.output}/",
              file=sys.stderr)
    if args.telemetry:
        print(f"telemetry journal: {args.telemetry} "
              f"(inspect with 'repro trace {args.telemetry}')",
              file=sys.stderr)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json as _json

    from repro.telemetry import (chrome_trace, collapsed_stacks,
                                 default_journal_dir, find_latest_journal,
                                 read_journal, render_trace)
    path = args.journal
    if path is None:
        if not args.last:
            print("trace: give a journal path or --last", file=sys.stderr)
            return 2
        path = find_latest_journal()
        if path is None:
            print(f"trace: no journals under {default_journal_dir()}",
                  file=sys.stderr)
            return 1
        print(f"trace: using {path}", file=sys.stderr)
    try:
        journal = read_journal(path)
    except OSError as error:
        print(f"cannot read journal: {error}", file=sys.stderr)
        return 1
    if args.export == "chrome":
        rendered = _json.dumps(chrome_trace(journal), indent=1,
                               sort_keys=True) + "\n"
    elif args.export == "collapsed":
        rendered = "\n".join(collapsed_stacks(journal)) + "\n"
    else:
        rendered = render_trace(journal, max_depth=args.depth,
                                top=args.top)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(rendered, end="" if rendered.endswith("\n") else "\n")
    if journal.skipped:
        print(f"({journal.skipped} malformed record(s) skipped)",
              file=sys.stderr)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    dataset = load_any_campaign(args.dataset)
    print(full_report(dataset, engine=args.engine))
    return 0


def _cmd_coverage(args: argparse.Namespace) -> int:
    dataset = load_any_campaign(args.dataset)
    for protocol in dataset.protocols:
        table = coverage_table(dataset, protocol)
        print(render_table(["trial"] + table.origins + ["∩", "∪"],
                           table.rows(), title=f"coverage — {protocol}"))
        print()
    if args.csv:
        write_coverage_csv(dataset, args.csv)
        print(f"exported {args.csv}", file=sys.stderr)
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    dataset = load_any_campaign(args.dataset)
    plan = recommend_origins(dataset, args.protocol,
                             single_probe=args.single_probe)
    rows = [[i + 1, step.origin, f"{step.coverage_after:.2%}",
             f"+{step.marginal_gain:.2%}"]
            for i, step in enumerate(plan.steps)]
    print(render_table(["k", "add origin", "coverage", "gain"], rows,
                       title=f"greedy origin plan — {args.protocol}"))
    print(f"diminishing returns after k = "
          f"{diminishing_returns_k(plan)} origins")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    world, origins, config = paper_scenario(seed=args.seed,
                                            scale=args.scale)
    validation = validate_scan_rates(world, origins, config,
                                     sample_fraction=args.sample)
    rows = []
    for origin, series in validation.drop.items():
        rows.append([origin]
                    + [f"{series[r]:.3%}" for r in validation.rates_pps]
                    + ["yes" if validation.is_rate_safe(origin)
                       else "NO"])
    headers = ["origin"] + [f"{int(r):,} pps"
                            for r in validation.rates_pps] + ["safe?"]
    print(render_table(headers, rows,
                       title="§2 rate validation — estimated drop"))
    return 0 if validation.all_safe() else 1


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.io import worldcache
    from repro.serve import planecache, resultcache

    root = worldcache.cache_dir()
    result_root = resultcache.cache_dir()
    if args.action == "clear":
        removed = worldcache.clear()
        shards = worldcache.clear_shards()
        print(f"removed {removed} cached world(s) and {shards} shard "
              f"segment(s) from {root}")
        if args.results:
            results = resultcache.clear()
            planes = planecache.clear()
            print(f"removed {results} cached result(s) and {planes} "
                  f"plane unit(s) from {result_root}")
        return 0

    if args.action == "prune":
        from repro.io import prune
        budget = args.max_bytes if args.max_bytes is not None \
            else prune.max_bytes_env()
        if budget is None:
            print("repro cache prune: no byte budget — pass --max-bytes "
                  f"or set {prune.ENV_CACHE_MAX_BYTES}", file=sys.stderr)
            return 2
        report = prune.prune(budget)
        print(f"pruned {report.removed} of {report.scanned} cache "
              f"entr{'y' if report.scanned == 1 else 'ies'} "
              f"({report.freed_bytes:,} bytes freed); "
              f"{report.kept} kept ({report.kept_bytes:,} bytes) against "
              f"a {report.max_bytes:,}-byte budget")
        return 0

    printed = False
    entries = worldcache.list_entries()
    if entries:
        printed = True
        rows = []
        for entry in entries:
            rows.append([entry.key[:16], entry.seed if entry.valid else "?",
                         f"{entry.n_services:,}" if entry.n_services
                         is not None else "?",
                         f"{entry.n_ases:,}" if entry.n_ases is not None
                         else "?",
                         f"{entry.nbytes:,}",
                         "ok" if entry.valid else "CORRUPT"])
        print(render_table(["key", "seed", "services", "ases", "bytes",
                            "state"], rows,
                           title=f"world cache — {root}"))
    shard_entries = worldcache.list_shard_entries()
    if shard_entries:
        printed = True
        rows = [[entry.key[:16],
                 f"{entry.n_services:,}" if entry.n_services is not None
                 else "?",
                 f"{entry.nbytes:,}",
                 "ok" if entry.valid else "CORRUPT"]
                for entry in shard_entries]
        print(render_table(["key", "services", "bytes", "state"], rows,
                           title=f"shard segments — {root}"))
    result_entries = resultcache.list_entries()
    if result_entries:
        printed = True
        rows = []
        for entry in result_entries:
            meta = entry.meta or {}
            fingerprint = meta.get("key", entry.key)
            rows.append([fingerprint[:16],
                         str(meta.get("engine", "?")),
                         f"{entry.nbytes:,}",
                         "ok" if entry.valid else "CORRUPT"])
        print(render_table(["fingerprint", "engine", "bytes", "state"],
                           rows,
                           title=f"result cache — {result_root}"))
    plane_entries = planecache.list_entries()
    if plane_entries:
        printed = True
        rows = [[digest, f"{group['count']:,}", f"{group['nbytes']:,}"]
                for digest, group
                in sorted(planecache.by_world(plane_entries).items())]
        total = sum(e.nbytes for e in plane_entries)
        rows.append(["total", f"{len(plane_entries):,}", f"{total:,}"])
        print(render_table(["world", "units", "bytes"], rows,
                           title=f"plane cache — "
                                 f"{planecache.cache_dir()}"))
    if not printed:
        print(f"caches at {root} and {result_root} are empty")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.server import ServeConfig, serve_async

    config = ServeConfig(host=args.host, port=args.port,
                         queue_depth=args.queue_depth,
                         request_timeout=args.timeout,
                         pool_size=args.pool_size,
                         executor=args.executor, workers=args.workers,
                         batch=args.batch,
                         plane_cache=args.plane_cache,
                         cache_dir=args.cache_dir,
                         journal=args.journal,
                         journal_max_bytes=args.journal_max_bytes,
                         access_log=args.access_log)

    def ready(server) -> None:
        print(f"repro serve: listening on "
              f"http://{config.host}:{server.port} "
              f"(queue_depth={config.queue_depth}, "
              f"timeout={config.request_timeout:g}s)", file=sys.stderr)

    try:
        asyncio.run(serve_async(config, ready=ready))
    except KeyboardInterrupt:
        pass
    print("repro serve: drained, bye", file=sys.stderr)
    return 0


def _render_top(history: dict, health: dict) -> str:
    """One ``repro top`` frame from a /metrics/history window."""
    samples = history.get("samples") or []
    lines = [f"repro top — {health.get('status', '?')}, "
             f"active={health.get('active', 0)} "
             f"flights={health.get('flights', 0)} "
             f"queue_depth={health.get('queue_depth', 0)} "
             f"({len(samples)}/{history.get('max_samples', 0)} samples, "
             f"every {history.get('interval_s', 0)}s)"]
    if not samples:
        lines.append("  (no samples yet)")
        return "\n".join(lines) + "\n"
    latest = samples[-1]
    previous = samples[-2] if len(samples) > 1 else None
    rss = latest.get("rss_bytes") or 0
    lines.append(f"uptime {latest.get('uptime_s', 0.0):.0f}s   "
                 f"peak rss {rss / 2**20:.1f} MiB")
    gauges = latest.get("gauges") or {}
    if gauges:
        lines.append("  " + "  ".join(f"{name}={value:g}"
                                      for name, value in gauges.items()))
    counters = latest.get("counters") or {}
    rates = []
    for label, hit_name, miss_name in (
            ("result", "serve.cache_hit", "serve.cache_miss"),
            ("plane", "serve.plane_hit", "serve.plane_miss")):
        hit = counters.get(hit_name, 0)
        total = hit + counters.get(miss_name, 0)
        if total:
            rates.append(f"{label} {hit / total:.1%} ({hit:g}/{total:g})")
    if rates:
        lines.append("  cache hit-rate: " + "   ".join(rates))
    if counters:
        dt = (latest.get("uptime_s", 0.0)
              - (previous or {}).get("uptime_s", 0.0)) or None
        lines.append(f"  {'counter':<32} {'total':>12} {'rate/s':>10}")
        for name, value in counters.items():
            if previous is not None and dt:
                delta = value - (previous.get("counters") or {}).get(name, 0)
                rate = f"{delta / dt:10.2f}"
            else:
                rate = f"{'—':>10}"
            lines.append(f"  {name:<32} {value:>12g} {rate}")
    hists = latest.get("hists") or {}
    if hists:
        lines.append(f"  {'histogram':<32} {'count':>8} {'p50':>10} "
                     f"{'p95':>10} {'p99':>10}")
        for name, summary in hists.items():
            if not summary:
                continue
            lines.append(f"  {name:<32} {summary['count']:>8} "
                         f"{summary['p50']:>10.4g} {summary['p95']:>10.4g} "
                         f"{summary['p99']:>10.4g}")
    return "\n".join(lines) + "\n"


def _cmd_top(args: argparse.Namespace) -> int:
    import time as _time

    from repro.serve.client import ServeClient, ServeError

    client = ServeClient(host=args.host, port=args.port)
    try:
        while True:
            try:
                history = client.metrics_history()
                health = client.healthz()
            except (ServeError, OSError) as error:
                print(f"repro top: {args.host}:{args.port} unreachable: "
                      f"{error}", file=sys.stderr)
                return 1
            frame = _render_top(history, health)
            if args.once:
                print(frame, end="")
                return 0
            # ANSI clear + home: a live console without a curses dep.
            print("\x1b[2J\x1b[H" + frame, end="", flush=True)
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        print()
        return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json as _json

    from repro.telemetry.regress import (DEFAULT_MIN_HISTORY,
                                         DEFAULT_TOLERANCE, bench_diff,
                                         render_diff)

    report = bench_diff(
        args.dir,
        tolerance=args.tolerance if args.tolerance is not None
        else DEFAULT_TOLERANCE,
        min_history=args.min_history if args.min_history is not None
        else DEFAULT_MIN_HISTORY)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            _json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.json:
        print(_json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_diff(report), end="")
    return 1 if report["verdict"] == "regression" else 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import cProfile
    import pstats
    import time

    from repro.scanner.zmap import ZMapScanner
    from repro.sim.plan import ObserveProfile

    world, origins, config = paper_scenario(seed=args.seed,
                                            scale=args.scale)
    scanner = ZMapScanner(config)
    names = tuple(o.name for o in origins)
    origin = origins[0]
    n = len(world.hosts.for_protocol(args.protocol).ip)

    if args.batched:
        from dataclasses import replace

        from repro.sim.batch import observe_trial_batch

        trials = tuple(range(args.trials))
        scanners = tuple(ZMapScanner(replace(config, seed=config.seed + t))
                         for t in trials)
        print(f"profiling batched kernel: {args.protocol}, {n} services "
              f"× {len(trials)} trials, {args.rounds} rounds from "
              f"{origin.name}", file=sys.stderr)
        observe_trial_batch(world, args.protocol, origin, trials,
                            scanners, names)  # warm caches
        stage_profile = ObserveProfile()
        profiler = cProfile.Profile()
        start = time.perf_counter()
        profiler.enable()
        for _ in range(args.rounds):
            observe_trial_batch(world, args.protocol, origin, trials,
                                scanners, names, profile=stage_profile)
        profiler.disable()
        wall = time.perf_counter() - start
        pstats.Stats(profiler, stream=sys.stdout) \
            .sort_stats("cumulative").print_stats(20)
        print(stage_profile.render())
        print(f"{wall / args.rounds * 1000.0:.2f} ms per batch of "
              f"{len(trials)} trials "
              f"({args.rounds} rounds, profiler overhead included)")
        return 0

    plan_arg = False if args.unplanned else None
    mode = "unplanned (reference)" if args.unplanned else "planned"
    print(f"profiling {mode} observe(): {args.protocol}, {n} services, "
          f"{args.rounds} rounds from {origin.name}", file=sys.stderr)

    # Warm every cross-call cache (plan compilation, per-AS parameter
    # tables, loss-model state) so the profile shows the steady state.
    world.observe(args.protocol, 0, origin, scanner, names, plan=plan_arg)

    stage_profile = ObserveProfile()
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    for _ in range(args.rounds):
        world.observe(args.protocol, 0, origin, scanner, names,
                      plan=plan_arg, profile=stage_profile)
    profiler.disable()
    wall = time.perf_counter() - start

    pstats.Stats(profiler, stream=sys.stdout) \
        .sort_stats("cumulative").print_stats(20)
    if not args.unplanned:
        print(stage_profile.render())
    print(f"{wall / args.rounds * 1000.0:.2f} ms per observation "
          f"({args.rounds} rounds, profiler overhead included)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "simulate": _cmd_simulate,
        "trace": _cmd_trace,
        "report": _cmd_report,
        "coverage": _cmd_coverage,
        "plan": _cmd_plan,
        "validate": _cmd_validate,
        "cache": _cmd_cache,
        "serve": _cmd_serve,
        "top": _cmd_top,
        "bench": _cmd_bench,
        "profile": _cmd_profile,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
