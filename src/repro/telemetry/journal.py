"""Reading telemetry run journals (NDJSON).

Writing is the job of :class:`repro.telemetry.context.Telemetry` (records
stream to the journal as they are emitted); this module is the read side
used by ``repro trace`` and the tests.  Parsing is tolerant by contract:
a journal may be truncated mid-line by a crash — which is exactly when
you need it most — so malformed lines are skipped and counted, never
fatal.  The raw line-level tolerance lives in
:func:`repro.io.ndjson.read_ndjson_records` so real scan data and
telemetry share one reader.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

#: Record types a journal may contain.
RECORD_TYPES = ("run", "span", "event", "counter", "hist", "manifest")


@dataclass
class Journal:
    """A parsed run journal, grouped by record type."""

    path: str
    records: List[dict]
    #: Malformed / non-object lines skipped by the tolerant reader.
    skipped: int = 0
    header: Optional[dict] = None
    manifest: Optional[dict] = None
    spans: List[dict] = field(default_factory=list)
    events: List[dict] = field(default_factory=list)
    counters: List[dict] = field(default_factory=list)
    hists: List[dict] = field(default_factory=list)
    #: Records with an unknown/missing ``t`` (forward compatibility).
    unknown: int = 0

    def counter_totals(self) -> Dict[Tuple[str, Tuple], float]:
        """Aggregated counter totals keyed like :class:`CounterSet`."""
        totals: Dict[Tuple[str, Tuple], float] = {}
        for record in self.counters:
            key = (record.get("name", "?"),
                   tuple(sorted((record.get("attrs") or {}).items())))
            totals[key] = totals.get(key, 0) + record.get("value", 0)
        return totals

    def span_name_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.spans:
            name = record.get("name", "?")
            counts[name] = counts.get(name, 0) + 1
        return counts


def default_journal_dir() -> str:
    """Where journals land when no explicit path is given.

    ``$REPRO_JOURNAL_DIR`` wins; otherwise a ``journals/`` directory
    next to the world cache, so all run artifacts live under one root.
    """
    env = os.environ.get("REPRO_JOURNAL_DIR")
    if env:
        return env
    from repro.io.worldcache import cache_dir

    return os.path.join(cache_dir(), "journals")


def find_latest_journal(directory: Optional[Union[str, os.PathLike]] = None
                        ) -> Optional[str]:
    """The most recently modified ``*.ndjson`` journal, or ``None``.

    Backs ``repro trace --last``: rotation backups (``*.ndjson.1``) are
    ignored so the live segment always wins, and ties break toward the
    lexicographically last name for determinism.
    """
    root = os.fspath(directory) if directory is not None \
        else default_journal_dir()
    if not os.path.isdir(root):
        return None
    best: Optional[Tuple[float, str, str]] = None
    for name in os.listdir(root):
        if not name.endswith(".ndjson"):
            continue
        path = os.path.join(root, name)
        try:
            mtime = os.path.getmtime(path)
        except OSError:
            continue
        key = (mtime, name, path)
        if best is None or key > best:
            best = key
    return best[2] if best else None


def read_journal(path: Union[str, os.PathLike]) -> Journal:
    """Parse a journal file, skipping (and counting) malformed lines."""
    from repro.io.ndjson import read_ndjson_records

    records, skipped = read_ndjson_records(path)
    journal = Journal(path=os.fspath(path), records=records,
                      skipped=skipped)
    for record in records:
        kind = record.get("t")
        if kind == "run" and journal.header is None:
            journal.header = record
        elif kind == "span":
            journal.spans.append(record)
        elif kind == "event":
            journal.events.append(record)
        elif kind == "counter":
            journal.counters.append(record)
        elif kind == "hist":
            journal.hists.append(record)
        elif kind == "manifest":
            journal.manifest = record
        else:
            journal.unknown += 1
    return journal
