"""Run manifests: the reproducibility header of a telemetry journal.

A manifest pins everything needed to re-run (or refuse to compare) a
campaign: the seed, a stable hash of the scanner configuration, a world
fingerprint, the execution backend and worker count, the code version
(``git describe`` when available), and a compact per-trial span tree so a
journal is self-describing even after the dataset moved elsewhere.
"""

from __future__ import annotations

import dataclasses
import hashlib
import subprocess
from typing import Dict, List, Optional, Tuple

#: Manifest schema tag.
MANIFEST_SCHEMA = "repro-manifest-v1"


def config_hash(config) -> str:
    """Stable short hash of a scanner configuration.

    Hashes the sorted ``(field, repr(value))`` pairs of the dataclass, so
    two configs hash equal exactly when their fields compare equal via
    repr — value objects like :class:`~repro.net.blocklist.Blocklist`
    included.
    """
    pairs = tuple(sorted(
        (f.name, repr(getattr(config, f.name)))
        for f in dataclasses.fields(config)))
    return hashlib.sha256(repr(pairs).encode()).hexdigest()[:16]


def world_fingerprint(world) -> Dict[str, object]:
    """A small structural identity for a simulated world.

    Worlds that know their own identity (``ShardedWorld`` folds its
    shard-manifest digest in) provide ``fingerprint_payload``; plain
    worlds are fingerprinted structurally.
    """
    payload = getattr(world, "fingerprint_payload", None)
    if payload is not None:
        return payload()
    return {
        "seed": world.seed,
        "n_ases": len(world.topology.ases),
        "services": dict(world.hosts.counts_by_protocol()),
    }


def git_describe() -> Optional[str]:
    """``git describe --always --dirty`` of the working tree, if any."""
    try:
        result = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            capture_output=True, text=True, timeout=5)
    except (OSError, subprocess.SubprocessError):
        return None
    if result.returncode != 0:
        return None
    return result.stdout.strip() or None


def per_trial_span_tree(records: List[dict]) -> List[dict]:
    """Aggregate span records by the (protocol, trial) of their job.

    Walks each span's parent chain up to the nearest span carrying
    ``protocol`` plus either ``trial`` (a per-cell executor job) or
    ``trials`` (a fused trial-batch job / ``batch.stream`` span, which
    covers several grid cells at once) and folds wall time and counts
    per span name under each covered trial.  A batch span counts once
    under every trial it covers; its wall time is split evenly so the
    per-trial totals still sum to the measured wall.
    """
    by_id = {r["id"]: r for r in records
             if r.get("t") == "span" and r.get("id")}

    def trials_of(record: dict) -> List[Tuple[str, int]]:
        seen = 0
        while record is not None and seen < 64:
            attrs = record.get("attrs") or {}
            if "protocol" in attrs and "trial" in attrs:
                return [(str(attrs["protocol"]), int(attrs["trial"]))]
            if "protocol" in attrs and "trials" in attrs:
                return [(str(attrs["protocol"]), int(t))
                        for t in attrs["trials"]]
            record = by_id.get(record.get("parent"))
            seen += 1
        return []

    trials: Dict[Tuple[str, int], Dict[str, List[float]]] = {}
    for record in by_id.values():
        keys = trials_of(record)
        if not keys:
            continue
        share = record.get("wall_s", 0.0) / len(keys)
        for key in keys:
            spans = trials.setdefault(key, {})
            entry = spans.setdefault(record["name"], [0, 0.0])
            entry[0] += 1
            entry[1] += share

    return [
        {"protocol": protocol, "trial": trial,
         "spans": {name: {"count": count, "wall_s": round(wall, 6)}
                   for name, (count, wall) in sorted(spans.items())}}
        for (protocol, trial), spans in sorted(trials.items())
    ]


def build_manifest(world, zmap, origins, protocols, n_trials,
                   report, telemetry) -> Dict[str, object]:
    """The run manifest for one campaign execution.

    ``report`` is the :class:`~repro.sim.executor.ExecutionReport`;
    ``telemetry`` the collector whose records describe the run (its
    adopted per-job spans feed the per-trial tree).
    """
    return {
        "schema": MANIFEST_SCHEMA,
        "seed": zmap.seed,
        "config_hash": config_hash(zmap),
        "world": world_fingerprint(world),
        "origins": [o.name for o in origins],
        "protocols": list(protocols),
        "n_trials": n_trials,
        "backend": report.backend,
        "workers": report.workers,
        "n_jobs": report.n_jobs,
        "wall_s": round(report.wall_s, 6),
        "git": git_describe(),
        "trials": per_trial_span_tree(telemetry.records),
    }
