"""The telemetry runtime: spans, the active context, and the no-op path.

A :class:`Telemetry` object is one run's collector: it keeps every
span/event record in memory (the test-friendly collector), aggregates
counters and histograms, and — when given a journal path — streams each
record to an NDJSON file as it is emitted.  The *active* telemetry is
carried in a :class:`contextvars.ContextVar`, so instrumented library
code (``World.observe``, the executor) never threads a handle through its
signatures: it asks :func:`current` and gets either the active collector
or the shared :data:`NULL` no-op.

The disabled fast path is load-bearing: with no active telemetry,
``current().enabled`` is a plain attribute read on a singleton and
``span()`` returns one shared re-entrant null context manager — no
allocation, no clock reads.  The benchmark guard
(``benchmarks/test_perf_telemetry.py``) holds instrumentation overhead on
the planned observe path to ≤5 %, and that is only achievable because the
default path does essentially nothing.

Context propagation across workers is explicit, not ambient: each
executor job runs under a fresh job-local ``Telemetry`` (thread workers
set the contextvar in their own thread; process workers get a
``collect`` flag through the pool initializer), and the parent adopts
each job's snapshot in job-index order — so journals and counter totals
are deterministic regardless of scheduling (see
:mod:`repro.telemetry.metrics` for the determinism contract).

Distributed tracing rides the same machinery: a collector may carry a
128-bit ``trace_id`` (:mod:`repro.telemetry.tracing`), which stamps a
``"trace"`` field onto every span/event it emits, travels inside
:meth:`Telemetry.snapshot` across the executor's pickle boundary, and is
re-stamped by :meth:`Telemetry.adopt` — so one served request's spans
correlate into a single trace no matter how many collectors, threads, or
processes produced them.  Adoption also rebases adopted span start
offsets into the adopter's timeline (each snapshot records its
collector's wall-clock origin), keeping merged journals time-coherent
for the Chrome trace exporter.
"""

from __future__ import annotations

import contextlib
import json
import os
import sys
import time
from contextvars import ContextVar
from typing import Dict, Iterator, List, Optional, Union

from repro.telemetry.metrics import CounterSet, HistogramSet

#: Schema tag stamped on every journal's leading ``run`` record.
SCHEMA = "repro-telemetry-v1"

try:
    import resource as _resource
except ImportError:  # non-Unix platform
    _resource = None


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes (0 if unknown).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalized
    here so gauges and reports are always bytes.
    """
    if _resource is None:
        return 0
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(peak)
    return int(peak) * 1024


class _NullSpan:
    """Shared no-op span: one instance serves every disabled call site."""

    __slots__ = ()
    #: Null spans have no identity; adopters/parents treat this as "root".
    span_id = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """The disabled telemetry: every operation is a cheap no-op."""

    __slots__ = ()
    enabled = False
    journal_path = None
    trace_id = None

    def span(self, name: str, **attrs: object) -> _NullSpan:
        return _NULL_SPAN

    def span_event(self, name: str, wall_s: float, cpu_s: float = 0.0,
                   trace: Optional[str] = None, **attrs: object) -> None:
        pass

    def count(self, name: str, value: float = 1, **attrs: object) -> None:
        pass

    def observe_value(self, name: str, value: float,
                      **attrs: object) -> None:
        pass

    def event(self, name: str, **attrs: object) -> None:
        pass


#: The process-wide disabled singleton.
NULL = NullTelemetry()

_ACTIVE: ContextVar[Union[NullTelemetry, "Telemetry"]] = \
    ContextVar("repro_telemetry", default=NULL)


def current() -> Union[NullTelemetry, "Telemetry"]:
    """The active telemetry context (the no-op singleton when none)."""
    return _ACTIVE.get()


def disabled() -> bool:
    """True when no telemetry is active — the zero-overhead fast path."""
    return not _ACTIVE.get().enabled


@contextlib.contextmanager
def use(telemetry: Union[NullTelemetry, "Telemetry"]) -> Iterator:
    """Activate a telemetry context for the duration of the block.

    Setting the contextvar in a worker thread affects only that thread,
    which is exactly the isolation job-local collectors need.
    """
    token = _ACTIVE.set(telemetry)
    try:
        yield telemetry
    finally:
        _ACTIVE.reset(token)


class _Span:
    """An open tracing span; closing it emits one ``span`` record."""

    __slots__ = ("_tel", "name", "attrs", "span_id", "parent_id",
                 "_start", "_cpu0", "_offset")

    def __init__(self, tel: "Telemetry", name: str,
                 attrs: Dict[str, object]) -> None:
        self._tel = tel
        self.name = name
        self.attrs = attrs
        self.span_id: Optional[str] = None
        self.parent_id: Optional[str] = None

    def __enter__(self) -> "_Span":
        tel = self._tel
        self.span_id = tel._new_span_id()
        self.parent_id = tel._stack[-1] if tel._stack else None
        tel._stack.append(self.span_id)
        self._offset = time.perf_counter() - tel._t0
        self._start = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def set(self, **attrs: object) -> None:
        """Attach attributes discovered after the span opened."""
        self.attrs.update(attrs)

    def __exit__(self, exc_type, exc, tb) -> bool:
        tel = self._tel
        wall = time.perf_counter() - self._start
        cpu = time.process_time() - self._cpu0
        tel._stack.pop()
        record: dict = {
            "t": "span", "name": self.name, "id": self.span_id,
            "parent": self.parent_id,
            "start_s": round(self._offset, 6),
            "wall_s": round(wall, 6), "cpu_s": round(cpu, 6),
        }
        if tel.trace_id is not None:
            record["trace"] = tel.trace_id
        if self.attrs:
            record["attrs"] = self.attrs
        if exc_type is not None:
            record["error"] = exc_type.__name__
        tel.emit(record)
        # High-water memory gauge: sampling at every span exit makes the
        # max track the run's hot phases with no dedicated poller.  The
        # ``runtime.`` prefix keeps it out of the cross-backend
        # determinism contract (it is genuinely process-local).
        rss = peak_rss_bytes()
        if rss:
            tel.observe_value("runtime.peak_rss_bytes", rss)
        if tel.timeseries is not None:
            tel.timeseries.maybe_sample(tel)
        return False


class Telemetry:
    """One run's telemetry: in-memory collector plus optional journal.

    Usable as a context manager::

        with Telemetry(journal="run.ndjson") as tel:
            run_campaign(...)          # instrumentation finds `tel`
        # exit: counters flushed, journal closed, context restored

    ``records`` holds span/event records in emission order; counters and
    histograms aggregate separately and are appended to the journal as
    records at flush time.
    """

    enabled = True

    def __init__(self, journal: Union[str, os.PathLike, None] = None,
                 meta: Optional[Dict[str, object]] = None,
                 trace_id: Optional[str] = None,
                 max_journal_bytes: Optional[int] = None,
                 journal_backups: int = 2,
                 timeseries=None) -> None:
        self.records: List[dict] = []
        self.counters = CounterSet()
        self.histograms = HistogramSet()
        self._stack: List[str] = []
        self._n_spans = 0
        self._t0 = time.perf_counter()
        self._unix0 = time.time()
        self._closed = False
        self._use_cm = None
        #: Trace identity stamped onto every span/event this collector
        #: emits (see :mod:`repro.telemetry.tracing`).  ``None`` means
        #: untraced; :func:`repro.sim.campaign.run_campaign` mints one
        #: when absent, the serving layer mints one per request.
        self.trace_id = trace_id
        #: Optional :class:`~repro.telemetry.timeseries.TimeSeriesRecorder`
        #: sampled (rate-limited) at every span exit.
        self.timeseries = timeseries
        self.journal_path: Optional[str] = None
        self._handle = None
        self._max_journal_bytes = max_journal_bytes
        self._journal_backups = max(int(journal_backups), 1)
        self._journal_bytes = 0
        self._header: Optional[dict] = None
        if journal is not None:
            path = os.fspath(journal)
            parent = os.path.dirname(path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self.journal_path = path
            self._handle = open(path, "w")
            header: dict = {"t": "run", "schema": SCHEMA,
                            "pid": os.getpid(),
                            "unix_time": round(time.time(), 3)}
            if trace_id is not None:
                header["trace_id"] = trace_id
            if meta:
                header["meta"] = dict(meta)
            self._header = header
            self._write(header)

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------

    def _new_span_id(self) -> str:
        self._n_spans += 1
        return str(self._n_spans)

    def span(self, name: str, **attrs: object) -> _Span:
        return _Span(self, name, attrs)

    def span_event(self, name: str, wall_s: float, cpu_s: float = 0.0,
                   trace: Optional[str] = None, **attrs: object) -> None:
        """A completed child span, recorded without entering the stack.

        This is how per-stage timings become spans: the stage boundary
        stamps a duration, and the record slots in as a child of the
        enclosing span.  ``trace`` overrides the collector's own trace
        ID — the serving layer's shared collector uses it to stamp each
        request span with that request's trace.
        """
        record: dict = {
            "t": "span", "name": name, "id": self._new_span_id(),
            "parent": self._stack[-1] if self._stack else None,
            "wall_s": round(wall_s, 6), "cpu_s": round(cpu_s, 6),
        }
        trace = trace if trace is not None else self.trace_id
        if trace is not None:
            record["trace"] = trace
        if attrs:
            record["attrs"] = attrs
        self.emit(record)
        if self.timeseries is not None:
            self.timeseries.maybe_sample(self)

    def count(self, name: str, value: float = 1, **attrs: object) -> None:
        self.counters.add(name, value, **attrs)

    def observe_value(self, name: str, value: float,
                      **attrs: object) -> None:
        self.histograms.observe(name, value, **attrs)

    def event(self, name: str, **attrs: object) -> None:
        record: dict = {"t": "event", "name": name,
                        "parent": self._stack[-1] if self._stack else None}
        if self.trace_id is not None:
            record["trace"] = self.trace_id
        if attrs:
            record["attrs"] = attrs
        self.emit(record)

    def emit(self, record: dict) -> None:
        """Append a finished record and stream it to the journal."""
        self.records.append(record)
        if self._handle is not None:
            self._write(record)

    def _write(self, record: dict) -> None:
        line = json.dumps(record, separators=(",", ":"), sort_keys=True,
                          default=str) + "\n"
        self._handle.write(line)
        self._journal_bytes += len(line)
        # The second clause keeps a pathological budget (smaller than a
        # single record) from rotating on every write, recursively.
        if self._max_journal_bytes is not None \
                and self._journal_bytes >= self._max_journal_bytes \
                and self._journal_bytes > len(line):
            self._rotate_journal()

    def _rotate_journal(self) -> None:
        """Size-based journal rotation: ``p`` → ``p.1`` → ``p.2`` → gone.

        Long-lived collectors (the serving layer's) would otherwise grow
        an unbounded NDJSON file.  The active journal restarts with a
        fresh ``run`` header (stamped ``rotated``), so every segment —
        current or suffixed — parses standalone with
        :func:`~repro.telemetry.journal.read_journal`.
        """
        self._handle.close()
        path = self.journal_path
        for index in range(self._journal_backups, 0, -1):
            source = path if index == 1 else f"{path}.{index - 1}"
            try:
                os.replace(source, f"{path}.{index}")
            except FileNotFoundError:
                pass
        self._handle = open(path, "w")
        self._journal_bytes = 0
        if self._header is not None:
            header = dict(self._header)
            header["rotated"] = header.get("rotated", 0) + 1
            self._header = header
            self._write(header)

    # ------------------------------------------------------------------
    # Worker-snapshot merging
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-data dump of this collector, for crossing pool boundaries.

        Carries the collector's trace ID (so a worker's spans stay
        correlated after the pickle boundary) and its wall-clock origin
        (so :meth:`adopt` can rebase span offsets into the adopter's
        timeline).
        """
        return {
            "records": self.records,
            "counters": self.counters.items(),
            "hists": self.histograms.items(),
            "trace_id": self.trace_id,
            "unix0": self._unix0,
        }

    def adopt(self, snap: dict, prefix: str,
              parent_id: Optional[str] = None) -> None:
        """Merge a job-local snapshot into this collector.

        Span/event ids are re-namespaced under ``prefix`` (job index), and
        the job's root spans are re-parented under ``parent_id``, so the
        merged journal is one coherent tree.  Callers adopt snapshots in
        job-index order, making the merged stream deterministic no matter
        which worker ran what.

        Records missing a trace are stamped with the snapshot's trace ID
        (falling back to the adopter's), and span start offsets are
        rebased from the snapshot collector's time origin onto this
        collector's — so the merged journal is both trace-correlated and
        time-coherent.
        """
        trace = snap.get("trace_id") or self.trace_id
        shift = None
        unix0 = snap.get("unix0")
        if unix0 is not None:
            shift = unix0 - self._unix0
        for record in snap["records"]:
            record = dict(record)
            if record.get("id"):
                record["id"] = prefix + record["id"]
            if record.get("parent"):
                record["parent"] = prefix + record["parent"]
            elif "parent" in record or record.get("t") == "span":
                record["parent"] = parent_id
            if trace is not None and record.get("t") in ("span", "event") \
                    and "trace" not in record:
                record["trace"] = trace
            if shift is not None and "start_s" in record:
                record["start_s"] = round(record["start_s"] + shift, 6)
            self.emit(record)
        self.counters.merge_items(snap["counters"])
        self.histograms.merge_items(snap["hists"])

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def metric_records(self) -> List[dict]:
        """Counter + histogram records as they would appear in the journal."""
        return self.counters.records() + self.histograms.records()

    def flush(self) -> List[dict]:
        """Write aggregated metrics to the journal (records returned)."""
        metrics = self.metric_records()
        if self._handle is not None:
            for record in metrics:
                self._write(record)
            self._handle.flush()
        return metrics

    def close(self) -> None:
        """Flush metrics and close the journal (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.flush()
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Telemetry":
        self._use_cm = use(self)
        self._use_cm.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        try:
            self.close()
        finally:
            cm, self._use_cm = self._use_cm, None
            cm.__exit__(exc_type, exc, tb)
        return False
