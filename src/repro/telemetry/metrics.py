"""Counters and histograms for the telemetry subsystem.

Both metric kinds aggregate under a key of ``(name, sorted attributes)``,
so ``count("observe.hosts_blocked", 3, cause="ids", origin="DE")`` and a
later call with the same name/attributes fold into one total.  Aggregation
is commutative (sums, min/max, bucket counts), which is what makes
worker-local metric sets mergeable in any order without changing totals —
the executor still merges them in job-index order so the *record stream*
is deterministic too.

Determinism contract
--------------------
Metric (and span) names under the :data:`EXCLUDED_PREFIXES` namespaces —
``cache.``, ``runtime.``, and ``serve.`` — are *process-local
diagnostics*: plan-cache hits depend on how many workers rebuilt a plan,
worker-labelled job counts depend on scheduling, wall-time histograms
depend on the hardware, and serving counters (hits, misses, joined
requests) depend on request arrival order and cache warmth.
Everything else is a pure function of ``(seed, campaign definition)`` and
is byte-identical across serial/thread/process execution (tested in
``tests/test_executor_equivalence.py``).  Use
:func:`is_deterministic_name` / :meth:`CounterSet.deterministic_totals`
to select the comparable subset.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Metric/span name prefixes excluded from the cross-backend determinism
#: contract (see module docstring).
EXCLUDED_PREFIXES = ("cache.", "runtime.", "serve.")

#: Aggregation key: (name, ((attr, value), ...)) with attrs sorted.
MetricKey = Tuple[str, Tuple[Tuple[str, object], ...]]


def is_deterministic_name(name: str) -> bool:
    """Whether a metric/span name is part of the determinism contract."""
    return not name.startswith(EXCLUDED_PREFIXES)


def metric_key(name: str, attrs: Dict[str, object]) -> MetricKey:
    return (name, tuple(sorted(attrs.items())))


class CounterSet:
    """Monotonic counters keyed by (name, attributes)."""

    __slots__ = ("_data",)

    def __init__(self) -> None:
        self._data: Dict[MetricKey, float] = {}

    def add(self, name: str, value: float = 1, **attrs: object) -> None:
        key = metric_key(name, attrs)
        # Coerce numpy scalars up front so snapshots pickle/JSON cleanly.
        value = value if isinstance(value, (int, float)) else float(value)
        self._data[key] = self._data.get(key, 0) + value

    def merge_items(self,
                    items: Iterable[Tuple[MetricKey, float]]) -> None:
        for key, value in items:
            self._data[key] = self._data.get(key, 0) + value

    def items(self) -> List[Tuple[MetricKey, float]]:
        """Snapshot of the raw aggregation, suitable for pickling."""
        return list(self._data.items())

    def totals(self) -> Dict[MetricKey, float]:
        """All counters, sorted by (name, attributes)."""
        return {key: self._data[key] for key in sorted(self._data)}

    def deterministic_totals(self) -> Dict[MetricKey, float]:
        """Counters covered by the cross-backend determinism contract."""
        return {key: value for key, value in self.totals().items()
                if is_deterministic_name(key[0])}

    def total(self, name: str) -> float:
        """Sum of one counter over every attribute combination."""
        return sum(value for (n, _), value in self._data.items()
                   if n == name)

    def by_name(self) -> Dict[str, float]:
        """Totals folded over attributes, keyed by bare counter name."""
        out: Dict[str, float] = {}
        for (name, _), value in sorted(self._data.items()):
            out[name] = out.get(name, 0) + value
        return out

    def records(self) -> List[dict]:
        """One JSON-able ``{"t": "counter", ...}`` record per counter."""
        out = []
        for (name, attrs), value in self.totals().items():
            record: dict = {"t": "counter", "name": name,
                            "value": _plain(value)}
            if attrs:
                record["attrs"] = {k: _plain(v) for k, v in attrs}
            out.append(record)
        return out


#: Geometric bucket bounds shared by every histogram: wide enough for
#: microsecond stage times and hundred-second campaign walls alike.
HISTOGRAM_BOUNDS = tuple(10.0 ** e for e in range(-6, 7))


class HistogramSet:
    """Fixed-bucket histograms keyed by (name, attributes).

    State per key is ``[count, total, min, max, bucket_counts]`` where
    ``bucket_counts[i]`` counts values ≤ ``HISTOGRAM_BOUNDS[i]`` (last
    bucket is the overflow).  Merging sums counts and widens min/max, so
    worker-local histograms combine exactly.
    """

    __slots__ = ("_data",)

    def __init__(self) -> None:
        self._data: Dict[MetricKey, list] = {}

    def observe(self, name: str, value: float, **attrs: object) -> None:
        key = metric_key(name, attrs)
        value = float(value)
        state = self._data.get(key)
        if state is None:
            state = [0, 0.0, value, value,
                     [0] * (len(HISTOGRAM_BOUNDS) + 1)]
            self._data[key] = state
        state[0] += 1
        state[1] += value
        state[2] = min(state[2], value)
        state[3] = max(state[3], value)
        state[4][_bucket_of(value)] += 1

    def merge_items(self, items: Iterable[Tuple[MetricKey, list]]) -> None:
        for key, other in items:
            state = self._data.get(key)
            if state is None:
                self._data[key] = [other[0], other[1], other[2], other[3],
                                   list(other[4])]
                continue
            state[0] += other[0]
            state[1] += other[1]
            state[2] = min(state[2], other[2])
            state[3] = max(state[3], other[3])
            state[4] = [a + b for a, b in zip(state[4], other[4])]

    def items(self) -> List[Tuple[MetricKey, list]]:
        return [(key, [s[0], s[1], s[2], s[3], list(s[4])])
                for key, s in self._data.items()]

    def _merged_state(self, name: str) -> Optional[list]:
        """One histogram state folding every attribute variant of a name."""
        merged: Optional[list] = None
        for (key_name, _attrs), state in self._data.items():
            if key_name != name:
                continue
            if merged is None:
                merged = [state[0], state[1], state[2], state[3],
                          list(state[4])]
            else:
                merged[0] += state[0]
                merged[1] += state[1]
                merged[2] = min(merged[2], state[2])
                merged[3] = max(merged[3], state[3])
                merged[4] = [a + b for a, b in zip(merged[4], state[4])]
        return merged

    def summary(self, name: str) -> Optional[Dict[str, float]]:
        """Count/sum/min/max plus p50/p95/p99 for one series (all attrs).

        The quantiles are bucket estimates (see
        :func:`quantile_from_state`); ``None`` when the series has no
        observations.
        """
        state = self._merged_state(name)
        if state is None:
            return None
        out = {"count": state[0], "sum": round(state[1], 9),
               "min": round(state[2], 9), "max": round(state[3], 9)}
        for q in QUANTILES:
            out[f"p{int(q * 100)}"] = round(quantile_from_state(state, q), 9)
        return out

    def names(self) -> List[str]:
        """Distinct series names, sorted."""
        return sorted({name for name, _ in self._data})

    def records(self) -> List[dict]:
        """One JSON-able ``{"t": "hist", ...}`` record per histogram."""
        out = []
        for key in sorted(self._data):
            name, attrs = key
            count, total, vmin, vmax, buckets = self._data[key]
            record: dict = {
                "t": "hist", "name": name, "count": count,
                "sum": round(total, 9), "min": round(vmin, 9),
                "max": round(vmax, 9), "buckets": list(buckets),
            }
            if attrs:
                record["attrs"] = {k: _plain(v) for k, v in attrs}
            out.append(record)
        return out


def _bucket_of(value: float) -> int:
    for i, bound in enumerate(HISTOGRAM_BOUNDS):
        if value <= bound:
            return i
    return len(HISTOGRAM_BOUNDS)


#: Quantiles reported per histogram series by ``/metrics`` and the
#: time-series recorder.
QUANTILES = (0.5, 0.95, 0.99)


def quantile_from_state(state: Sequence, q: float) -> float:
    """Estimate the ``q``-quantile of one histogram state.

    Walks the cumulative bucket counts to the bucket containing the
    target rank, then interpolates geometrically inside it (buckets are
    decade-spaced, so log-linear interpolation is the natural choice).
    The estimate is clamped to the exact observed ``[min, max]``, which
    also makes single-observation histograms report exact values.
    """
    count, _total, vmin, vmax, buckets = state
    if count <= 0:
        return 0.0
    target = q * count
    cumulative = 0.0
    for index, bucket_count in enumerate(buckets):
        if not bucket_count:
            continue
        if cumulative + bucket_count >= target:
            if index < len(HISTOGRAM_BOUNDS):
                upper = HISTOGRAM_BOUNDS[index]
                lower = HISTOGRAM_BOUNDS[index - 1] if index else upper / 10
            else:  # overflow bucket: bounded by the observed extremes
                lower, upper = HISTOGRAM_BOUNDS[-1], max(vmax, float(
                    HISTOGRAM_BOUNDS[-1]))
            fraction = (target - cumulative) / bucket_count
            if lower > 0 and upper > lower:
                estimate = lower * (upper / lower) ** fraction
            else:
                estimate = upper
            return min(max(estimate, vmin), vmax)
        cumulative += bucket_count
    return vmax


def _plain(value: object) -> object:
    """Coerce numpy scalars (and friends) to JSON-able Python types."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return str(value)


# ----------------------------------------------------------------------
# Metrics-endpoint rendering (the serving layer's /metrics)
# ----------------------------------------------------------------------

def _exposition_name(name: str) -> str:
    """A metric name valid in the Prometheus text exposition format."""
    sanitized = "".join(c if c.isalnum() or c == "_" else "_"
                        for c in name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"repro_{sanitized}"


def _exposition_labels(attrs: Tuple[Tuple[str, object], ...]) -> str:
    if not attrs:
        return ""
    pairs = ",".join(
        f'{key}="{_escape_label(value)}"' for key, value in attrs)
    return "{" + pairs + "}"


def _escape_label(value: object) -> str:
    return str(_plain(value)).replace("\\", "\\\\").replace('"', '\\"')


def exposition_text(counters: CounterSet, histograms: HistogramSet) -> str:
    """Render counters + histograms in Prometheus text format.

    Counters become ``repro_<name>_total`` samples (attributes as
    labels); each histogram series is rendered as a Prometheus *summary*
    — ``{quantile="0.5"|"0.95"|"0.99"}`` samples estimated from the
    fixed geometric buckets (:func:`quantile_from_state`) plus ``_sum``
    and ``_count`` — with the exact observed extremes as ``_min``/
    ``_max`` gauges.  This backs the serving layer's ``/metrics``
    endpoint without taking on a client-library dependency; the output
    is held to the text-format grammar by a tier-1 smoke test.
    """
    lines: List[str] = []
    seen_types: Dict[str, str] = {}
    for (name, attrs), value in counters.totals().items():
        metric = _exposition_name(name) + "_total"
        if seen_types.get(metric) is None:
            seen_types[metric] = "counter"
            lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}{_exposition_labels(attrs)} {_plain(value)}")
    for record in histograms.records():
        base = _exposition_name(record["name"])
        attrs = tuple(sorted((record.get("attrs") or {}).items()))
        labels = _exposition_labels(attrs)
        if seen_types.get(base) is None:
            seen_types[base] = "summary"
            lines.append(f"# TYPE {base} summary")
        state = [record["count"], record["sum"], record["min"],
                 record["max"], record["buckets"]]
        for q in QUANTILES:
            quantile_attrs = attrs + (("quantile", f"{q:g}"),)
            value = round(quantile_from_state(state, q), 9)
            lines.append(f"{base}{_exposition_labels(quantile_attrs)} "
                         f"{value}")
        lines.append(f"{base}_sum{labels} {record['sum']}")
        lines.append(f"{base}_count{labels} {record['count']}")
        for suffix, field in (("_min", "min"), ("_max", "max")):
            metric = base + suffix
            if seen_types.get(metric) is None:
                seen_types[metric] = "gauge"
                lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric}{labels} {record[field]}")
    return "\n".join(lines) + ("\n" if lines else "")


def metrics_json(counters: CounterSet,
                 histograms: HistogramSet) -> Dict[str, object]:
    """Counters and histogram summaries as one JSON-able mapping.

    Counter totals are folded over attributes (``by_name``), and each
    histogram series reports bucket-estimated p50/p95/p99 next to its
    exact count/sum/min/max; tests and dashboards that need exact
    per-attribute streams should read the NDJSON journal instead.
    """
    hists: Dict[str, dict] = {}
    for name in histograms.names():
        hists[name] = histograms.summary(name)
    return {"counters": counters.by_name(), "histograms": hists}
