"""Counters and histograms for the telemetry subsystem.

Both metric kinds aggregate under a key of ``(name, sorted attributes)``,
so ``count("observe.hosts_blocked", 3, cause="ids", origin="DE")`` and a
later call with the same name/attributes fold into one total.  Aggregation
is commutative (sums, min/max, bucket counts), which is what makes
worker-local metric sets mergeable in any order without changing totals —
the executor still merges them in job-index order so the *record stream*
is deterministic too.

Determinism contract
--------------------
Metric (and span) names under the :data:`EXCLUDED_PREFIXES` namespaces —
``cache.``, ``runtime.``, and ``serve.`` — are *process-local
diagnostics*: plan-cache hits depend on how many workers rebuilt a plan,
worker-labelled job counts depend on scheduling, wall-time histograms
depend on the hardware, and serving counters (hits, misses, joined
requests) depend on request arrival order and cache warmth.
Everything else is a pure function of ``(seed, campaign definition)`` and
is byte-identical across serial/thread/process execution (tested in
``tests/test_executor_equivalence.py``).  Use
:func:`is_deterministic_name` / :meth:`CounterSet.deterministic_totals`
to select the comparable subset.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

#: Metric/span name prefixes excluded from the cross-backend determinism
#: contract (see module docstring).
EXCLUDED_PREFIXES = ("cache.", "runtime.", "serve.")

#: Aggregation key: (name, ((attr, value), ...)) with attrs sorted.
MetricKey = Tuple[str, Tuple[Tuple[str, object], ...]]


def is_deterministic_name(name: str) -> bool:
    """Whether a metric/span name is part of the determinism contract."""
    return not name.startswith(EXCLUDED_PREFIXES)


def metric_key(name: str, attrs: Dict[str, object]) -> MetricKey:
    return (name, tuple(sorted(attrs.items())))


class CounterSet:
    """Monotonic counters keyed by (name, attributes)."""

    __slots__ = ("_data",)

    def __init__(self) -> None:
        self._data: Dict[MetricKey, float] = {}

    def add(self, name: str, value: float = 1, **attrs: object) -> None:
        key = metric_key(name, attrs)
        # Coerce numpy scalars up front so snapshots pickle/JSON cleanly.
        value = value if isinstance(value, (int, float)) else float(value)
        self._data[key] = self._data.get(key, 0) + value

    def merge_items(self,
                    items: Iterable[Tuple[MetricKey, float]]) -> None:
        for key, value in items:
            self._data[key] = self._data.get(key, 0) + value

    def items(self) -> List[Tuple[MetricKey, float]]:
        """Snapshot of the raw aggregation, suitable for pickling."""
        return list(self._data.items())

    def totals(self) -> Dict[MetricKey, float]:
        """All counters, sorted by (name, attributes)."""
        return {key: self._data[key] for key in sorted(self._data)}

    def deterministic_totals(self) -> Dict[MetricKey, float]:
        """Counters covered by the cross-backend determinism contract."""
        return {key: value for key, value in self.totals().items()
                if is_deterministic_name(key[0])}

    def total(self, name: str) -> float:
        """Sum of one counter over every attribute combination."""
        return sum(value for (n, _), value in self._data.items()
                   if n == name)

    def by_name(self) -> Dict[str, float]:
        """Totals folded over attributes, keyed by bare counter name."""
        out: Dict[str, float] = {}
        for (name, _), value in sorted(self._data.items()):
            out[name] = out.get(name, 0) + value
        return out

    def records(self) -> List[dict]:
        """One JSON-able ``{"t": "counter", ...}`` record per counter."""
        out = []
        for (name, attrs), value in self.totals().items():
            record: dict = {"t": "counter", "name": name,
                            "value": _plain(value)}
            if attrs:
                record["attrs"] = {k: _plain(v) for k, v in attrs}
            out.append(record)
        return out


#: Geometric bucket bounds shared by every histogram: wide enough for
#: microsecond stage times and hundred-second campaign walls alike.
HISTOGRAM_BOUNDS = tuple(10.0 ** e for e in range(-6, 7))


class HistogramSet:
    """Fixed-bucket histograms keyed by (name, attributes).

    State per key is ``[count, total, min, max, bucket_counts]`` where
    ``bucket_counts[i]`` counts values ≤ ``HISTOGRAM_BOUNDS[i]`` (last
    bucket is the overflow).  Merging sums counts and widens min/max, so
    worker-local histograms combine exactly.
    """

    __slots__ = ("_data",)

    def __init__(self) -> None:
        self._data: Dict[MetricKey, list] = {}

    def observe(self, name: str, value: float, **attrs: object) -> None:
        key = metric_key(name, attrs)
        value = float(value)
        state = self._data.get(key)
        if state is None:
            state = [0, 0.0, value, value,
                     [0] * (len(HISTOGRAM_BOUNDS) + 1)]
            self._data[key] = state
        state[0] += 1
        state[1] += value
        state[2] = min(state[2], value)
        state[3] = max(state[3], value)
        state[4][_bucket_of(value)] += 1

    def merge_items(self, items: Iterable[Tuple[MetricKey, list]]) -> None:
        for key, other in items:
            state = self._data.get(key)
            if state is None:
                self._data[key] = [other[0], other[1], other[2], other[3],
                                   list(other[4])]
                continue
            state[0] += other[0]
            state[1] += other[1]
            state[2] = min(state[2], other[2])
            state[3] = max(state[3], other[3])
            state[4] = [a + b for a, b in zip(state[4], other[4])]

    def items(self) -> List[Tuple[MetricKey, list]]:
        return [(key, [s[0], s[1], s[2], s[3], list(s[4])])
                for key, s in self._data.items()]

    def records(self) -> List[dict]:
        """One JSON-able ``{"t": "hist", ...}`` record per histogram."""
        out = []
        for key in sorted(self._data):
            name, attrs = key
            count, total, vmin, vmax, buckets = self._data[key]
            record: dict = {
                "t": "hist", "name": name, "count": count,
                "sum": round(total, 9), "min": round(vmin, 9),
                "max": round(vmax, 9), "buckets": list(buckets),
            }
            if attrs:
                record["attrs"] = {k: _plain(v) for k, v in attrs}
            out.append(record)
        return out


def _bucket_of(value: float) -> int:
    for i, bound in enumerate(HISTOGRAM_BOUNDS):
        if value <= bound:
            return i
    return len(HISTOGRAM_BOUNDS)


def _plain(value: object) -> object:
    """Coerce numpy scalars (and friends) to JSON-able Python types."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return str(value)


# ----------------------------------------------------------------------
# Metrics-endpoint rendering (the serving layer's /metrics)
# ----------------------------------------------------------------------

def _exposition_name(name: str) -> str:
    """A metric name valid in the Prometheus text exposition format."""
    sanitized = "".join(c if c.isalnum() or c == "_" else "_"
                        for c in name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"repro_{sanitized}"


def _exposition_labels(attrs: Tuple[Tuple[str, object], ...]) -> str:
    if not attrs:
        return ""
    pairs = ",".join(
        f'{key}="{_escape_label(value)}"' for key, value in attrs)
    return "{" + pairs + "}"


def _escape_label(value: object) -> str:
    return str(_plain(value)).replace("\\", "\\\\").replace('"', '\\"')


def exposition_text(counters: CounterSet, histograms: HistogramSet) -> str:
    """Render counters + histograms in Prometheus text format.

    Counters become ``repro_<name>_total`` samples (attributes as
    labels); each histogram is flattened to ``_count``/``_sum``/
    ``_min``/``_max`` gauges — the fixed geometric buckets stay internal.
    This backs the serving layer's ``/metrics`` endpoint without taking
    on a client-library dependency.
    """
    lines: List[str] = []
    seen_types: Dict[str, str] = {}
    for (name, attrs), value in counters.totals().items():
        metric = _exposition_name(name) + "_total"
        if seen_types.get(metric) is None:
            seen_types[metric] = "counter"
            lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}{_exposition_labels(attrs)} {_plain(value)}")
    for record in histograms.records():
        base = _exposition_name(record["name"])
        attrs = tuple(sorted((record.get("attrs") or {}).items()))
        labels = _exposition_labels(attrs)
        for suffix, field in (("_count", "count"), ("_sum", "sum"),
                              ("_min", "min"), ("_max", "max")):
            metric = base + suffix
            if seen_types.get(metric) is None:
                seen_types[metric] = "gauge"
                lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric}{labels} {record[field]}")
    return "\n".join(lines) + ("\n" if lines else "")


def metrics_json(counters: CounterSet,
                 histograms: HistogramSet) -> Dict[str, object]:
    """Counters and histogram summaries as one JSON-able mapping.

    Counter totals are folded over attributes (``by_name``); tests and
    dashboards that need exact per-attribute streams should read the
    NDJSON journal instead.
    """
    hists: Dict[str, dict] = {}
    for record in histograms.records():
        entry = hists.setdefault(
            record["name"], {"count": 0, "sum": 0.0,
                             "min": record["min"], "max": record["max"]})
        entry["count"] += record["count"]
        entry["sum"] += record["sum"]
        entry["min"] = min(entry["min"], record["min"])
        entry["max"] = max(entry["max"], record["max"])
    return {"counters": counters.by_name(), "histograms": hists}
