"""Bounded time-series recording of telemetry state.

``/metrics`` and :func:`~repro.telemetry.metrics.metrics_json` are
point-in-time: they answer "what are the totals *now*" and nothing about
how the process got there.  This module adds the time axis — a
:class:`TimeSeriesRecorder` ring buffer that snapshots counter totals,
histogram quantiles, peak RSS, and caller-supplied gauges (active
requests, queue depth) either on a serve-loop tick or opportunistically
at span exits (rate-limited by :meth:`~TimeSeriesRecorder.maybe_sample`
so hot loops don't pay per-span sampling cost).

The buffer is bounded (``max_samples``) so a long-lived server holds a
sliding window, not an unbounded log; the serving layer exposes it at
``/metrics/history`` and ``repro top`` renders it live.  Samples live
only in memory and never touch the journal, so recording cannot perturb
the cross-backend determinism contract.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Dict, List, Optional

#: Default ring-buffer capacity (samples retained).
DEFAULT_MAX_SAMPLES = 512

#: Default minimum spacing between opportunistic samples (seconds).
DEFAULT_INTERVAL_S = 1.0


class TimeSeriesRecorder:
    """A bounded ring buffer of periodic telemetry samples.

    Attach one to a :class:`~repro.telemetry.context.Telemetry` (the
    ``timeseries`` constructor argument) and the collector calls
    :meth:`maybe_sample` at every span exit; a server additionally calls
    :meth:`sample` from its tick loop with live gauges.  ``rows()``
    returns the window oldest-first as JSON-able dicts.
    """

    def __init__(self, max_samples: int = DEFAULT_MAX_SAMPLES,
                 interval_s: float = DEFAULT_INTERVAL_S) -> None:
        self.max_samples = max(int(max_samples), 1)
        self.interval_s = float(interval_s)
        self._rows: Deque[dict] = deque(maxlen=self.max_samples)
        self._t0 = time.monotonic()
        self._last_sample = float("-inf")

    def __len__(self) -> int:
        return len(self._rows)

    def maybe_sample(self, tel) -> bool:
        """Sample iff at least ``interval_s`` has passed since the last.

        This is the span-exit hook: cheap to call at any frequency, it
        turns arbitrary span traffic into an approximately periodic
        series without a dedicated thread.
        """
        now = time.monotonic()
        if now - self._last_sample < self.interval_s:
            return False
        self.sample(tel)
        return True

    def sample(self, tel, **gauges: float) -> dict:
        """Append one sample of ``tel``'s current state, plus gauges."""
        from repro.telemetry.context import peak_rss_bytes

        now = time.monotonic()
        self._last_sample = now
        row = {
            "ts": round(time.time(), 3),
            "uptime_s": round(now - self._t0, 3),
            "counters": {name: value
                         for name, value in sorted(tel.counters.by_name()
                                                   .items())},
            "hists": {name: tel.histograms.summary(name)
                      for name in tel.histograms.names()},
            "rss_bytes": peak_rss_bytes(),
        }
        if gauges:
            row["gauges"] = {key: float(value)
                             for key, value in sorted(gauges.items())}
        self._rows.append(row)
        return row

    def rows(self, last: Optional[int] = None) -> List[dict]:
        """The buffered samples, oldest first (optionally only ``last``)."""
        rows = list(self._rows)
        if last is not None and last >= 0:
            rows = rows[len(rows) - min(last, len(rows)):]
        return rows

    def as_dict(self, last: Optional[int] = None) -> Dict[str, object]:
        """The window plus its bounds, ready for ``/metrics/history``."""
        return {
            "schema": "repro-metrics-history-v1",
            "max_samples": self.max_samples,
            "interval_s": self.interval_s,
            "n_samples": len(self._rows),
            "samples": self.rows(last),
        }
