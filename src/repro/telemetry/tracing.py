"""Distributed tracing: trace identity and span-tree exporters.

Spans were per-collector until now: a served request, the executor jobs
it fanned out, and the per-shard streaming spans each lived in their own
:class:`~repro.telemetry.context.Telemetry` tree with no shared
identity.  This module supplies the identity — a 128-bit *trace ID*
minted once per serve request (or per offline ``run_campaign``) and
threaded through every boundary the work crosses:

* the server stamps each request's spans and access-log line with the
  request's trace ID (honoring an ``X-Repro-Trace`` header from an
  upstream caller, so traces correlate across services);
* single-flight joiners share the leader's flight, and the flight span
  records the leading trace;
* the executor forwards a :class:`TraceContext` to every worker — for
  the process backend it rides the pool initializer, and each job's
  telemetry snapshot carries it back across the pickle boundary inside
  :class:`~repro.sim.executor.JobResult`;
* sharded streaming runs open one ``shard.stream`` span per shard under
  the same ambient trace.

The result is that one served, sharded campaign reassembles into a
single correlated span tree, which the exporters below turn into
standard tooling formats: Chrome trace-event / Perfetto JSON
(:func:`chrome_trace`) and flamegraph collapsed stacks
(:func:`collapsed_stacks`) — both reachable via ``repro trace
--export``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.telemetry.journal import Journal

#: Length of a rendered trace ID: 128 bits as lowercase hex.
TRACE_ID_HEX_CHARS = 32


def new_trace_id() -> str:
    """A fresh 128-bit trace ID (32 lowercase hex chars)."""
    return os.urandom(16).hex()


def valid_trace_id(value: object) -> bool:
    """Whether ``value`` is a well-formed trace ID (e.g. from a header)."""
    if not isinstance(value, str) or len(value) != TRACE_ID_HEX_CHARS:
        return False
    try:
        int(value, 16)
    except ValueError:
        return False
    return value == value.lower()


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity of one request/campaign's work.

    ``trace_id`` names the whole correlated tree; ``parent_span_id`` is
    the span the next child should attach under (the executor sets it to
    its grid span before shipping the context to workers).  Frozen and
    field-only, so it pickles across the process-pool boundary unchanged.
    """

    trace_id: str
    parent_span_id: Optional[str] = None

    def child(self, parent_span_id: Optional[str]) -> "TraceContext":
        """The same trace, re-anchored under a new parent span."""
        return TraceContext(self.trace_id, parent_span_id)


# ----------------------------------------------------------------------
# Chrome trace-event export
# ----------------------------------------------------------------------

def _span_lane(span_id: Optional[str]) -> str:
    """The worker lane of a span: its adoption prefix (`"j3"`, `"f1.j2"`).

    Adopted spans keep their job/flight prefix in the re-namespaced id
    (``f1.j3.2``); grouping by that prefix lays each worker's spans out
    on its own track in the viewer.
    """
    if not span_id or "." not in span_id:
        return "main"
    return span_id.rsplit(".", 1)[0]


def chrome_trace(journal: Journal) -> dict:
    """Render a journal as Chrome trace-event JSON (Perfetto-loadable).

    Every span becomes one complete (``"ph": "X"``) event: ``ts``/``dur``
    in microseconds from the collector's time origin (adopted snapshots
    are rebased into the adopter's timeline at merge), the worker lane as
    the thread ID, and span identity — ``id``, ``parent``, and the trace
    ID — under ``args``.  Load the result at ``chrome://tracing`` or
    https://ui.perfetto.dev.
    """
    lanes: Dict[str, int] = {}
    events: List[dict] = []
    for span in journal.spans:
        lane = _span_lane(span.get("id"))
        tid = lanes.setdefault(lane, len(lanes))
        args: Dict[str, object] = dict(span.get("attrs") or {})
        args["id"] = span.get("id")
        if span.get("parent"):
            args["parent"] = span["parent"]
        if span.get("trace"):
            args["trace"] = span["trace"]
        if span.get("error"):
            args["error"] = span["error"]
        events.append({
            "name": span.get("name", "?"),
            "cat": str(span.get("name", "?")).split(".", 1)[0],
            "ph": "X",
            "ts": round(float(span.get("start_s", 0.0)) * 1e6, 3),
            "dur": round(float(span.get("wall_s", 0.0)) * 1e6, 3),
            "pid": 1,
            "tid": tid,
            "args": args,
        })
    meta = [{"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
             "args": {"name": lane}}
            for lane, tid in sorted(lanes.items(), key=lambda kv: kv[1])]
    header = journal.header or {}
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "journal": journal.path,
            "schema": header.get("schema"),
            "trace_id": header.get("trace_id"),
            "n_spans": len(journal.spans),
        },
    }


def trace_ids(journal: Journal) -> Dict[str, int]:
    """Span counts per trace ID present in a journal (untraced → ``""``)."""
    counts: Dict[str, int] = {}
    for span in journal.spans:
        trace = span.get("trace") or ""
        counts[trace] = counts.get(trace, 0) + 1
    return counts


# ----------------------------------------------------------------------
# Flamegraph collapsed-stack export
# ----------------------------------------------------------------------

def collapsed_stacks(journal: Journal) -> List[str]:
    """Render a journal as flamegraph collapsed stacks.

    One line per unique root-to-span path — ``a;b;c <microseconds>`` —
    where the value is the span's *self* time (wall minus child wall,
    floored at zero), exactly what ``flamegraph.pl`` and speedscope
    ingest.  Same-path spans fold into one line; lines sort by path for
    stable output.
    """
    ids = {s.get("id") for s in journal.spans if s.get("id")}
    children: Dict[Optional[str], List[dict]] = {}
    for span in journal.spans:
        parent = span.get("parent")
        if parent not in ids:
            parent = None
        children.setdefault(parent, []).append(span)

    totals: Dict[Tuple[str, ...], float] = {}

    def walk(span: dict, path: Tuple[str, ...]) -> None:
        path = path + (str(span.get("name", "?")),)
        kids = children.get(span.get("id"), [])
        self_s = float(span.get("wall_s", 0.0)) \
            - sum(float(k.get("wall_s", 0.0)) for k in kids)
        totals[path] = totals.get(path, 0.0) + max(self_s, 0.0)
        for kid in kids:
            walk(kid, path)

    for root in children.get(None, []):
        walk(root, ())
    return [f"{';'.join(path)} {int(round(value * 1e6))}"
            for path, value in sorted(totals.items())]
