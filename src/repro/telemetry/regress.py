"""Perf-regression sentinel over the benchmark trajectory.

``benchmarks/`` sessions append numbered ``BENCH_<n>.json`` artifacts
and aggregate them into ``bench_artifacts/TRAJECTORY.json`` — but until
now nothing *read* that history, so a slow creep in campaign build time
would accumulate silently.  This module compares the newest artifact's
per-benchmark medians against the trajectory and returns a
machine-readable verdict; ``repro bench diff`` (and ``make bench-diff``)
exit non-zero on regression so the creep fails loudly.

Comparisons are deliberately noise-tolerant:

* the baseline for each benchmark is the *median of historical medians*,
  not the single previous run, so one noisy artifact cannot poison it;
* only artifacts from a machine with the same CPU count are comparable
  (every artifact records its machine), so a laptop run never "regresses"
  against a CI box;
* a benchmark needs ``min_history`` comparable historical points before
  it can regress at all — younger series report ``"new"``;
* the threshold is a relative ``tolerance`` (default ±25 %), wide enough
  to absorb scheduler jitter on shared runners.

Custom-schema artifacts (``repro-bench-serve-v1`` …) carry their own
result keys rather than the standard ``benchmarks`` table; they are
counted but never compared.
"""

from __future__ import annotations

import json
import os
import re
import statistics
from typing import Dict, List, Optional, Tuple

#: Relative slowdown tolerated before a check is a regression (25 %).
DEFAULT_TOLERANCE = 0.25

#: Comparable historical artifacts required before a series can regress.
DEFAULT_MIN_HISTORY = 2

#: The standard artifact schema carrying a ``benchmarks`` median table.
BENCH_SCHEMA = "repro-bench-v1"

_BENCH_NAME = re.compile(r"BENCH_(\d+)\.json")


def _load_rows(directory: str) -> List[dict]:
    """Normalized artifact rows, oldest first.

    Prefers the ``TRAJECTORY.json`` aggregate (the documented history);
    falls back to scanning ``BENCH_<n>.json`` files so the sentinel
    still works on a directory that has artifacts but no aggregate yet.
    """
    trajectory = os.path.join(directory, "TRAJECTORY.json")
    if os.path.isfile(trajectory):
        try:
            payload = json.loads(open(trajectory).read())
        except (OSError, json.JSONDecodeError):
            payload = {}
        rows = payload.get("artifacts")
        if isinstance(rows, list):
            return sorted((r for r in rows if isinstance(r, dict)),
                          key=lambda r: r.get("n", 0))
    rows = []
    if not os.path.isdir(directory):
        return rows
    for name in os.listdir(directory):
        match = _BENCH_NAME.fullmatch(name)
        if not match:
            continue
        row: dict = {"file": name, "n": int(match.group(1))}
        try:
            payload = json.loads(open(os.path.join(directory, name)).read())
        except (OSError, json.JSONDecodeError) as error:
            row["error"] = str(error)
            rows.append(row)
            continue
        row["schema"] = payload.get("schema")
        row["cpus"] = (payload.get("machine") or {}).get("cpus")
        benchmarks = payload.get("benchmarks")
        if isinstance(benchmarks, dict):
            row["median_s"] = {
                bench: stats.get("median_s")
                for bench, stats in benchmarks.items()
                if isinstance(stats, dict)}
        rows.append(row)
    return sorted(rows, key=lambda r: r["n"])


def _comparable(row: dict) -> bool:
    return row.get("schema") == BENCH_SCHEMA \
        and isinstance(row.get("median_s"), dict)


def bench_diff(directory: str = "bench_artifacts",
               tolerance: float = DEFAULT_TOLERANCE,
               min_history: int = DEFAULT_MIN_HISTORY) -> dict:
    """Compare the newest standard artifact against trajectory history.

    Returns a ``repro-bench-diff-v1`` report: one check per benchmark in
    the latest artifact (``status`` of ``ok`` / ``regression`` /
    ``improvement`` / ``new``) and an overall ``verdict`` — ``"ok"``,
    ``"regression"`` (any check regressed), or ``"no-data"`` (nothing
    standard to compare).  Pure function of the artifact directory;
    callers decide the exit code.
    """
    rows = _load_rows(os.fspath(directory))
    standard = [row for row in rows if _comparable(row)]
    report: dict = {
        "schema": "repro-bench-diff-v1",
        "directory": os.fspath(directory),
        "tolerance": float(tolerance),
        "min_history": int(min_history),
        "n_artifacts": len(rows),
        "n_standard": len(standard),
        "checks": [],
    }
    if not standard:
        report["verdict"] = "no-data"
        return report
    latest = standard[-1]
    report["artifact"] = latest.get("file")
    history = [row for row in standard[:-1]
               if row.get("cpus") == latest.get("cpus")]
    report["baseline_artifacts"] = [row.get("file") for row in history]
    checks: List[dict] = []
    regressed = False
    for bench, latest_s in sorted((latest.get("median_s") or {}).items()):
        if not isinstance(latest_s, (int, float)):
            continue
        series = [row["median_s"][bench] for row in history
                  if isinstance(row.get("median_s", {}).get(bench),
                                (int, float))]
        check: dict = {"name": bench,
                       "latest_s": round(float(latest_s), 6),
                       "n_history": len(series)}
        # A metric with no comparable history is "new" even when
        # min_history is 0 — there is nothing to take a median of, and
        # a metric absent from every prior artifact must never crash or
        # regress the run just by appearing.
        if not series or len(series) < min_history:
            check["status"] = "new"
        else:
            baseline = statistics.median(series)
            check["baseline_s"] = round(float(baseline), 6)
            if baseline <= 0:
                # A non-positive baseline has no meaningful ratio;
                # treat the series as not-yet-established rather than
                # manufacturing an infinite regression.
                check["status"] = "new"
                checks.append(check)
                continue
            ratio = float(latest_s) / baseline
            check["ratio"] = round(ratio, 4)
            if ratio > 1.0 + tolerance:
                check["status"] = "regression"
                regressed = True
            elif ratio < 1.0 - tolerance:
                check["status"] = "improvement"
            else:
                check["status"] = "ok"
        checks.append(check)
    report["checks"] = checks
    report["verdict"] = "regression" if regressed \
        else ("ok" if checks else "no-data")
    return report


def render_diff(report: dict) -> str:
    """The diff report as an aligned console table, verdict last."""
    lines = [f"bench diff · {report.get('directory')} "
             f"(tolerance ±{report.get('tolerance', 0.0) * 100:.0f}%, "
             f"{report.get('n_standard', 0)}/{report.get('n_artifacts', 0)} "
             f"standard artifacts)"]
    checks = report.get("checks") or []
    if checks:
        lines.append(f"latest: {report.get('artifact')}  baseline: median "
                     f"of {len(report.get('baseline_artifacts') or [])} "
                     f"comparable artifacts")
        width = max(len(c["name"]) for c in checks)
        for check in checks:
            latest = f"{check['latest_s'] * 1000:10.2f}ms"
            if "baseline_s" in check:
                base = f"{check['baseline_s'] * 1000:10.2f}ms"
                ratio = f"{check['ratio']:6.2f}x"
            else:
                base, ratio = f"{'—':>12}", f"{'—':>7}"
            lines.append(f"  {check['name']:<{width}}  {latest}  {base}  "
                         f"{ratio}  {check['status']}")
    lines.append(f"verdict: {report.get('verdict')}")
    return "\n".join(lines) + "\n"
