"""Unified telemetry: tracing spans, counters, and NDJSON run journals.

The forensic backbone of the simulator (see ``docs/TELEMETRY.md``): every
hot path — ``World.observe`` and its plan stages, plan compilation and
cache lookups, the executor backends, ``run_campaign`` — reports through
this package, so a run is diagnosable from its artifacts instead of a
rerun.

Quick use::

    from repro import telemetry

    with telemetry.Telemetry(journal="run.ndjson") as tel:
        dataset = run_campaign(world, origins, config)
    print(tel.counters.total("observe.probes_sent"))

Instrumented code never takes a telemetry argument; it calls
:func:`current` and gets either the active collector or a shared no-op
whose every operation is free (:func:`disabled` reports which).  Names
under ``cache.`` / ``runtime.`` are process-local diagnostics; everything
else is byte-identical across serial/thread/process execution — the
determinism contract is specified in :mod:`repro.telemetry.metrics`.
"""

from repro.telemetry.context import (NULL, SCHEMA, NullTelemetry, Telemetry,
                                     current, disabled, use)
from repro.telemetry.journal import (Journal, default_journal_dir,
                                     find_latest_journal, read_journal)
from repro.telemetry.manifest import (build_manifest, config_hash,
                                      git_describe, world_fingerprint)
from repro.telemetry.metrics import (EXCLUDED_PREFIXES, QUANTILES, CounterSet,
                                     HistogramSet, is_deterministic_name)
from repro.telemetry.regress import bench_diff, render_diff
from repro.telemetry.render import render_trace
from repro.telemetry.timeseries import TimeSeriesRecorder
from repro.telemetry.tracing import (TraceContext, chrome_trace,
                                     collapsed_stacks, new_trace_id,
                                     trace_ids, valid_trace_id)


def span(name: str, **attrs):
    """Open a span on the active telemetry (no-op when disabled)."""
    return current().span(name, **attrs)


def count(name: str, value: float = 1, **attrs) -> None:
    """Bump a counter on the active telemetry (no-op when disabled)."""
    current().count(name, value, **attrs)


def event(name: str, **attrs) -> None:
    """Record an event on the active telemetry (no-op when disabled)."""
    current().event(name, **attrs)


__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL",
    "SCHEMA",
    "current",
    "disabled",
    "use",
    "span",
    "count",
    "event",
    "Journal",
    "read_journal",
    "default_journal_dir",
    "find_latest_journal",
    "render_trace",
    "TraceContext",
    "new_trace_id",
    "valid_trace_id",
    "chrome_trace",
    "collapsed_stacks",
    "trace_ids",
    "TimeSeriesRecorder",
    "bench_diff",
    "render_diff",
    "QUANTILES",
    "build_manifest",
    "config_hash",
    "world_fingerprint",
    "git_describe",
    "CounterSet",
    "HistogramSet",
    "EXCLUDED_PREFIXES",
    "is_deterministic_name",
]
