"""Human-readable rendering of a run journal (``repro trace``).

Renders three sections from a :class:`~repro.telemetry.journal.Journal`:
the manifest header, an aggregated span tree (same-name siblings fold
into one line with a call count), and the top counters.  Aggregation
keeps the output a terminal page even for paper-scale campaigns with
hundreds of per-job spans.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.telemetry.journal import Journal


def _format_attrs(attrs: Optional[dict]) -> str:
    if not attrs:
        return ""
    inner = ", ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
    return "{" + inner + "}"


def _aggregate_children(spans: List[dict],
                        children_of: Dict[Optional[str], List[dict]],
                        ) -> List[Tuple[str, int, float, float, List[dict]]]:
    """Fold same-name sibling spans: (name, count, wall, cpu, members)."""
    groups: Dict[str, List[dict]] = {}
    for span in spans:
        groups.setdefault(span.get("name", "?"), []).append(span)
    out = []
    for name, members in groups.items():
        wall = sum(s.get("wall_s", 0.0) for s in members)
        cpu = sum(s.get("cpu_s", 0.0) for s in members)
        out.append((name, len(members), wall, cpu, members))
    out.sort(key=lambda g: -g[2])
    return out


def render_span_tree(journal: Journal, max_depth: int = 6) -> List[str]:
    children_of: Dict[Optional[str], List[dict]] = {}
    ids = {s.get("id") for s in journal.spans}
    for span in journal.spans:
        parent = span.get("parent")
        if parent not in ids:
            parent = None  # orphaned (e.g. truncated journal) → root
        children_of.setdefault(parent, []).append(span)

    lines: List[str] = []

    def walk(parent_spans: List[dict], depth: int) -> None:
        if depth > max_depth:
            return
        for name, count, wall, cpu, members in _aggregate_children(
                parent_spans, children_of):
            indent = "  " * depth
            calls = f" ×{count}" if count > 1 else ""
            attrs = _format_attrs(members[0].get("attrs")) \
                if count == 1 else ""
            lines.append(f"{indent}{name:<{max(28 - 2 * depth, 8)}}"
                         f" {wall:>9.4f}s wall {cpu:>9.4f}s cpu"
                         f"{calls} {attrs}".rstrip())
            grandchildren: List[dict] = []
            for member in members:
                grandchildren.extend(children_of.get(member.get("id"), []))
            if grandchildren:
                walk(grandchildren, depth + 1)

    walk(children_of.get(None, []), 0)
    return lines


def render_counters(journal: Journal, top: int = 20) -> List[str]:
    totals = journal.counter_totals()
    ranked = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
    lines = []
    for (name, attrs), value in ranked[:top]:
        shown = f"{value:,.0f}" if float(value).is_integer() \
            else f"{value:,.3f}"
        lines.append(f"{shown:>14}  {name} "
                     f"{_format_attrs(dict(attrs))}".rstrip())
    if len(ranked) > top:
        lines.append(f"… {len(ranked) - top} more counters")
    return lines


def render_manifest(journal: Journal) -> List[str]:
    manifest = journal.manifest
    if manifest is None:
        return ["(no manifest record in this journal)"]
    world = manifest.get("world") or {}
    lines = [
        f"seed {manifest.get('seed')} · config {manifest.get('config_hash')}"
        f" · git {manifest.get('git') or '?'}",
        f"backend {manifest.get('backend')}×{manifest.get('workers')}"
        f" · {manifest.get('n_jobs')} jobs"
        f" · {manifest.get('wall_s', 0.0):.2f}s wall",
        f"world: {world.get('services')} services in "
        f"{world.get('n_ases')} ASes (seed {world.get('seed')})",
        f"origins: {', '.join(manifest.get('origins') or [])}",
    ]
    return lines


def render_trace(journal: Journal, max_depth: int = 6,
                 top: int = 20) -> str:
    """The full ``repro trace`` report for one journal."""
    sections = [
        f"telemetry journal: {journal.path}",
        f"{len(journal.records)} records "
        f"({len(journal.spans)} spans, {len(journal.counters)} counters, "
        f"{len(journal.hists)} histograms, {len(journal.events)} events)"
        + (f", {journal.skipped} malformed line(s) skipped"
           if journal.skipped else ""),
        "",
        "— manifest " + "—" * 40,
        *render_manifest(journal),
        "",
        "— span tree " + "—" * 39,
        *(render_span_tree(journal, max_depth=max_depth)
          or ["(no spans)"]),
        "",
        "— top counters " + "—" * 36,
        *(render_counters(journal, top=top) or ["(no counters)"]),
    ]
    return "\n".join(sections)
