"""Temporal churn across trials.

The paper's three trials are spread over eight weeks; each trial's ground
truth differs because hosts appear and disappear (dynamic addressing,
deployments, outages unrelated to scanning).  The methodology accounts for
this with its "unknown" category: a host present in only one trial cannot
be classified as transiently or long-term inaccessible.

We model churn with a stable core plus a churning minority whose presence
is an independent per-trial draw.  Presence is a property of the *service*
(host × protocol), keyed only by (ip, protocol, trial) so every origin
agrees on who exists — origins differ in what they can *reach*, never in
what exists.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rng import CounterRNG, keyed_uniform_lattice, stream_keys


@dataclass(frozen=True)
class ChurnSpec:
    """World-level churn parameters."""

    #: Fraction of services present in every trial.
    stable_fraction: float = 0.92
    #: Per-trial presence probability for churning services.
    churner_presence_prob: float = 0.62

    def __post_init__(self) -> None:
        if not 0.0 <= self.stable_fraction <= 1.0:
            raise ValueError("stable_fraction must be in [0, 1]")
        if not 0.0 < self.churner_presence_prob <= 1.0:
            raise ValueError("churner_presence_prob must be in (0, 1]")


class ChurnModel:
    """Evaluates per-trial presence of services."""

    def __init__(self, rng: CounterRNG, spec: ChurnSpec) -> None:
        self.spec = spec
        self._rng = rng.derive("churn")

    def stable_mask(self, ips: np.ndarray, protocol: str) -> np.ndarray:
        """Persistent stability class: True → present in every trial.

        Trial-independent, so observation plans cache it per protocol
        view and pass it back through ``stable=``.
        """
        ips = np.asarray(ips, dtype=np.uint64)
        return self._rng.uniform_array(
            ips, "class", protocol) < self.spec.stable_fraction

    def present_mask(self, ips: np.ndarray, protocol: str, trial: int,
                     stable: np.ndarray = None) -> np.ndarray:
        """Boolean presence of each service in ``trial``."""
        ips = np.asarray(ips, dtype=np.uint64)
        if stable is None:
            stable = self.stable_mask(ips, protocol)
        churner_present = self._rng.uniform_array(
            ips, "present", protocol, trial) \
            < self.spec.churner_presence_prob
        return stable | churner_present

    def present_lattice(self, ips: np.ndarray, protocol: str,
                        trials, stable: np.ndarray = None) -> np.ndarray:
        """Presence as an ``(n_trials, n_services)`` boolean lattice.

        Row *t* is bit-identical to ``present_mask(ips, protocol,
        trials[t], stable=stable)``: the per-trial draw keys are
        pre-derived and the whole trial axis is drawn in one vectorized
        call (:func:`~repro.rng.keyed_uniform_lattice`).
        """
        ips = np.asarray(ips, dtype=np.uint64)
        if stable is None:
            stable = self.stable_mask(ips, protocol)
        keys = stream_keys(self._rng,
                           [("present", protocol, int(t)) for t in trials])
        churner_present = keyed_uniform_lattice(keys, ips) \
            < self.spec.churner_presence_prob
        return stable[np.newaxis, :] | churner_present

    def churner_mask(self, ips: np.ndarray, protocol: str,
                     stable: np.ndarray = None) -> np.ndarray:
        """Services in the churning (unstable) minority.

        Uses the same draw as :meth:`present_mask`'s stability class, so a
        service is a churner iff it is not in the stable core.
        """
        if stable is None:
            stable = self.stable_mask(ips, protocol)
        return ~stable

    def present_one(self, ip: int, protocol: str, trial: int) -> bool:
        """Scalar counterpart of :meth:`present_mask`."""
        mask = self.present_mask(np.array([ip], dtype=np.uint64),
                                 protocol, trial)
        return bool(mask[0])
