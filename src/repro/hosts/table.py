"""Columnar storage for the simulated host population.

One row per *service* (an IP listening on one protocol); an IP serving
HTTP and SSH occupies two rows sharing the same address.  Columns are numpy
arrays so a whole protocol's population can be evaluated in one vectorized
pass, which is what makes full campaigns run in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.net.ipv4 import format_ipv4, slash24_array
from repro.topology.asn import PROTOCOLS

#: Dense protocol codes used in the ``protocol`` column.
PROTOCOL_CODES: Dict[str, int] = {name: i for i, name in enumerate(PROTOCOLS)}


@dataclass(frozen=True)
class ProtocolView:
    """All services of one protocol, as aligned columns.

    ``row_index`` maps back into the parent :class:`HostTable`.
    """

    protocol: str
    row_index: np.ndarray   # int64 indices into the parent table
    ip: np.ndarray          # uint32
    as_index: np.ndarray    # int64, dense AS indices
    country_index: np.ndarray  # int64, true country indices

    def __len__(self) -> int:
        return len(self.ip)

    @property
    def slash24(self) -> np.ndarray:
        """The containing /24 network address of each service."""
        return slash24_array(self.ip)


class HostTable:
    """The full service population of a synthetic world."""

    def __init__(self, ip: np.ndarray, protocol: np.ndarray,
                 as_index: np.ndarray, country_index: np.ndarray) -> None:
        n = len(ip)
        if not (len(protocol) == len(as_index) == len(country_index) == n):
            raise ValueError("all columns must have equal length")
        order = np.lexsort((protocol, ip))
        self.ip = np.asarray(ip, dtype=np.uint32)[order]
        self.protocol = np.asarray(protocol, dtype=np.uint8)[order]
        self.as_index = np.asarray(as_index, dtype=np.int64)[order]
        self.country_index = \
            np.asarray(country_index, dtype=np.int64)[order]
        self._views: Dict[str, ProtocolView] = {}
        self._check_unique()

    def _check_unique(self) -> None:
        """Reject duplicate (ip, protocol) rows — one service per port."""
        if len(self.ip) < 2:
            return
        same_ip = self.ip[1:] == self.ip[:-1]
        same_proto = self.protocol[1:] == self.protocol[:-1]
        if np.any(same_ip & same_proto):
            raise ValueError("duplicate (ip, protocol) service rows")

    def __len__(self) -> int:
        return len(self.ip)

    def for_protocol(self, protocol: str) -> ProtocolView:
        """The aligned columns of one protocol's services."""
        view = self._views.get(protocol)
        if view is None:
            code = PROTOCOL_CODES[protocol]
            rows = np.flatnonzero(self.protocol == code)
            view = ProtocolView(
                protocol=protocol,
                row_index=rows,
                ip=self.ip[rows],
                as_index=self.as_index[rows],
                country_index=self.country_index[rows])
            self._views[protocol] = view
        return view

    def protocols_present(self) -> List[str]:
        codes = np.unique(self.protocol)
        return [PROTOCOLS[int(c)] for c in codes]

    def counts_by_protocol(self) -> Dict[str, int]:
        return {p: int(len(self.for_protocol(p)))
                for p in self.protocols_present()}

    def describe(self, limit: int = 10) -> str:
        """A small human-readable sample, for debugging and examples."""
        lines = [f"HostTable: {len(self)} services, "
                 f"{len(np.unique(self.ip))} distinct IPs"]
        for i in range(min(limit, len(self))):
            lines.append(
                f"  {format_ipv4(int(self.ip[i]))} "
                f"{PROTOCOLS[int(self.protocol[i])]} "
                f"as={int(self.as_index[i])} "
                f"country={int(self.country_index[i])}")
        return "\n".join(lines)

    @classmethod
    def from_sorted_columns(cls, ip: np.ndarray, protocol: np.ndarray,
                            as_index: np.ndarray,
                            country_index: np.ndarray) -> "HostTable":
        """Adopt already-sorted columns without copying or re-sorting.

        This is the zero-copy construction path used by columnar
        snapshots and the shared-memory world handoff: the arrays (often
        read-only mmap or shared-memory views) become the table's
        columns directly.  The columns must be sorted strictly ascending
        by ``(ip, protocol)`` — exactly what ``__init__`` produces —
        which also rules out duplicate service rows; anything else
        raises ``ValueError``.
        """
        table = cls.__new__(cls)
        ip = np.asarray(ip, dtype=np.uint32)
        protocol = np.asarray(protocol, dtype=np.uint8)
        as_index = np.asarray(as_index, dtype=np.int64)
        country_index = np.asarray(country_index, dtype=np.int64)
        n = len(ip)
        if not (len(protocol) == len(as_index)
                == len(country_index) == n):
            raise ValueError("all columns must have equal length")
        if n > 1:
            same_ip = ip[1:] == ip[:-1]
            ordered = (ip[1:] > ip[:-1]) \
                | (same_ip & (protocol[1:] > protocol[:-1]))
            if not bool(np.all(ordered)):
                raise ValueError(
                    "columns must be sorted strictly ascending by "
                    "(ip, protocol)")
        table.ip = ip
        table.protocol = protocol
        table.as_index = as_index
        table.country_index = country_index
        table._views = {}
        return table

    @classmethod
    def concatenate(cls, tables: Sequence["HostTable"]) -> "HostTable":
        """Merge several tables (used by generators building per-AS)."""
        if not tables:
            raise ValueError("nothing to concatenate")
        return cls(
            ip=np.concatenate([t.ip for t in tables]),
            protocol=np.concatenate([t.protocol for t in tables]),
            as_index=np.concatenate([t.as_index for t in tables]),
            country_index=np.concatenate(
                [t.country_index for t in tables]))
