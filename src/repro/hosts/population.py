"""Host placement: turning a topology into a concrete service population.

For each AS we build a pool of distinct host IPs spread over its populated
/24s, then assign each protocol's listeners to a protocol-specific
deterministic shuffle of the pool.  Pools are slightly smaller than the sum
of per-protocol counts, so a realistic fraction of IPs serve more than one
protocol (a web server that also runs SSH).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.hosts.table import PROTOCOL_CODES, HostTable
from repro.rng import CounterRNG
from repro.topology.asn import PROTOCOLS
from repro.topology.generator import Topology

#: Usable host offsets inside a /24 (.0 and .255 excluded).
_HOSTS_PER_SLASH24 = 254

#: Pool shrink factor: pool = max-protocol count or total/OVERLAP, whichever
#: is larger, producing natural multi-protocol IPs.
_OVERLAP = 1.3


def populate(topology: Topology, rng: CounterRNG,
             as_range: Optional[Tuple[int, int]] = None) -> HostTable:
    """Place every spec'd service onto concrete addresses.

    ``as_range=(start, stop)`` restricts placement to the ASes whose
    dense index falls in ``[start, stop)`` — the shard-generation path
    (:mod:`repro.sim.shard`).  Every per-AS draw is keyed only on the AS
    index (``rng.derive("offsets", index)`` / ``rng.derive("assign",
    index)``), so a restricted call produces byte-identical columns to
    the same ASes' slice of a full build: shard K never needs shards
    0..K-1 materialized.
    """
    ips: List[np.ndarray] = []
    protocols: List[np.ndarray] = []
    as_indices: List[np.ndarray] = []
    country_indices: List[np.ndarray] = []
    start, stop = as_range if as_range is not None \
        else (0, len(topology.ases))

    for system in topology.ases:
        if not start <= system.index < stop:
            continue
        spec = system.spec
        counts = {p: spec.hosts_for(p) for p in PROTOCOLS}
        total = sum(counts.values())
        if total == 0:
            continue
        pool = _build_pool(topology, system.index, counts, rng)
        country_idx = topology.country_index(spec.country)
        sub = rng.derive("assign", system.index)
        for protocol, count in counts.items():
            if count == 0:
                continue
            chosen = _choose(pool, count, sub, protocol)
            ips.append(chosen)
            protocols.append(np.full(count, PROTOCOL_CODES[protocol],
                                     dtype=np.uint8))
            as_indices.append(np.full(count, system.index, dtype=np.int64))
            country_indices.append(np.full(count, country_idx,
                                           dtype=np.int64))

    if not ips:
        if as_range is not None:
            return HostTable(ip=np.zeros(0, dtype=np.uint32),
                             protocol=np.zeros(0, dtype=np.uint8),
                             as_index=np.zeros(0, dtype=np.int64),
                             country_index=np.zeros(0, dtype=np.int64))
        raise ValueError("the topology contains no hosts")
    return HostTable(ip=np.concatenate(ips),
                     protocol=np.concatenate(protocols),
                     as_index=np.concatenate(as_indices),
                     country_index=np.concatenate(country_indices))


def _build_pool(topology: Topology, as_index: int, counts: Dict[str, int],
                rng: CounterRNG) -> np.ndarray:
    """The distinct candidate IPs of one AS, in deterministic mixed order."""
    total = sum(counts.values())
    largest = max(counts.values())
    pool_size = max(largest, math.ceil(total / _OVERLAP))

    bases = topology.populated_slash24s[as_index].astype(np.uint64)
    capacity = len(bases) * _HOSTS_PER_SLASH24
    if pool_size > capacity:
        raise ValueError(
            f"AS index {as_index} needs {pool_size} addresses but its "
            f"{len(bases)} populated /24s hold only {capacity}")

    # Spread pool members round-robin over /24s, with a per-/24 offset
    # permutation so addresses are not bunched at .1.
    idx = np.arange(pool_size, dtype=np.uint64)
    block = idx % len(bases)
    slot = idx // len(bases)
    offset_rng = rng.derive("offsets", as_index)
    # A per-(AS, block) starting rotation over the 254 usable offsets.
    rotations = offset_rng.bits_array(block) % _HOSTS_PER_SLASH24
    offsets = (slot + rotations) % _HOSTS_PER_SLASH24 + 1
    return (bases[block.astype(np.int64)] + offsets).astype(np.uint32)


def _choose(pool: np.ndarray, count: int, rng: CounterRNG,
            protocol: str) -> np.ndarray:
    """``count`` distinct pool members for one protocol.

    Each protocol gets its own deterministic rotation of the pool rather
    than a full shuffle: rotations are cheap, deterministic, and give
    different-but-overlapping IP sets across protocols.
    """
    if count > len(pool):
        raise ValueError("protocol demands more hosts than the pool holds")
    start = rng.bits("rotate", protocol) % len(pool)
    indices = (start + np.arange(count, dtype=np.int64)) % len(pool)
    return pool[indices]
