"""Edge-host population: columnar host table, placement, temporal churn."""

from repro.hosts.table import HostTable, ProtocolView
from repro.hosts.churn import ChurnSpec, ChurnModel
from repro.hosts.population import populate

__all__ = [
    "HostTable",
    "ProtocolView",
    "ChurnSpec",
    "ChurnModel",
    "populate",
]
