"""Differential suite: the packed engine is byte-identical to reference.

Every analysis that grew an ``engine=`` parameter is run under both
engines — over simulated campaigns at several seeds, over hand-built
edge-case datasets, through ``full_report`` and through the CLI — and
the results are compared for *exact* equality (not approximate): the
packed rewrites are algebraically identical computations, so any
difference at all is a bug.

Also covers the shared :class:`~repro.core.engine.AnalysisContext`:
context-threaded calls must match context-less ones, and a full report
must perform exactly one presence-alignment pass per protocol
(asserted via the ``analysis.presence_build`` telemetry counter).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.core.bootstrap import (
    coverage_difference_interval,
    coverage_interval,
    coverage_intervals,
)
from repro.core.classification import breakdown_by_origin, classify_misses
from repro.core.dataset import align_ips
from repro.core.engine import (
    ENGINES,
    AnalysisContext,
    PackedTrial,
    clear_context_cache,
    dataset_fingerprint,
    get_context,
    resolve_engine,
)
from repro.core.exclusivity import exclusivity_report
from repro.core.ground_truth import build_presence
from repro.core.multi_origin import (
    best_combination,
    combo_coverages,
    combo_mean_coverage,
    multi_origin_table,
    probe_origin_tradeoff,
)
from repro.core.report import full_report
from repro.sim.campaign import run_campaign
from repro.sim.scenario import small_scenario
from repro.telemetry.context import Telemetry, use
from tests.conftest import make_campaign, make_trial

SEEDS = (3, 17, 29)


@pytest.fixture(scope="module", params=SEEDS)
def seeded_campaign(request):
    world, origins, config = small_scenario(seed=request.param)
    return run_campaign(world, origins, config, n_trials=3)


def summaries_as_tuples(table):
    return {k: (s.median, s.q1, s.q3, s.minimum, s.maximum, s.std,
                [(c.combo, c.trial, c.coverage) for c in s.samples])
            for k, s in table.items()}


# ----------------------------------------------------------------------
# Multi-origin enumeration
# ----------------------------------------------------------------------

class TestMultiOriginEquivalence:
    def test_combo_coverages_all_k(self, seeded_campaign):
        ds = seeded_campaign
        for protocol in ds.protocols:
            table = ds.trial_data(protocol, 0)
            for single_probe in (False, True):
                for k in range(1, len(table.origins) + 1):
                    packed = combo_coverages(table, k,
                                             single_probe=single_probe,
                                             engine="packed")
                    ref = combo_coverages(table, k,
                                          single_probe=single_probe,
                                          engine="reference")
                    assert [(c.combo, c.trial, c.coverage)
                            for c in packed] == \
                           [(c.combo, c.trial, c.coverage) for c in ref]

    def test_multi_origin_table(self, seeded_campaign):
        ds = seeded_campaign
        for protocol in ds.protocols:
            packed = multi_origin_table(ds, protocol, engine="packed")
            ref = multi_origin_table(ds, protocol, engine="reference")
            assert summaries_as_tuples(packed) == summaries_as_tuples(ref)

    def test_best_combination(self, seeded_campaign):
        ds = seeded_campaign
        for protocol in ds.protocols:
            assert best_combination(ds, protocol, 2, engine="packed") == \
                best_combination(ds, protocol, 2, engine="reference")

    def test_combo_mean_coverage(self, seeded_campaign):
        ds = seeded_campaign
        protocol = ds.protocols[0]
        combo = ds.origins_for(protocol)[:2]
        assert combo_mean_coverage(ds, protocol, combo, engine="packed") \
            == combo_mean_coverage(ds, protocol, combo,
                                   engine="reference")

    def test_probe_origin_tradeoff(self, seeded_campaign):
        ds = seeded_campaign
        protocol = ds.protocols[0]
        assert probe_origin_tradeoff(ds, protocol, engine="packed") == \
            probe_origin_tradeoff(ds, protocol, engine="reference")


# ----------------------------------------------------------------------
# Bootstrap intervals
# ----------------------------------------------------------------------

class TestBootstrapEquivalence:
    def test_coverage_interval(self, seeded_campaign):
        ds = seeded_campaign
        for protocol in ds.protocols:
            table = ds.trial_data(protocol, 0)
            for origin in table.origins:
                packed = coverage_interval(table, origin, replicates=80,
                                           engine="packed")
                ref = coverage_interval(table, origin, replicates=80,
                                        engine="reference")
                assert packed == ref

    def test_coverage_difference_interval(self, seeded_campaign):
        ds = seeded_campaign
        protocol = ds.protocols[0]
        table = ds.trial_data(protocol, 0)
        a, b = table.origins[:2]
        packed = coverage_difference_interval(table, a, b, replicates=80,
                                              engine="packed")
        ref = coverage_difference_interval(table, a, b, replicates=80,
                                           engine="reference")
        assert packed == ref

    def test_coverage_intervals(self, seeded_campaign):
        ds = seeded_campaign
        protocol = ds.protocols[-1]
        table = ds.trial_data(protocol, 1)
        assert coverage_intervals(table, replicates=50,
                                  engine="packed") == \
            coverage_intervals(table, replicates=50, engine="reference")

    def test_single_probe_interval(self, seeded_campaign):
        ds = seeded_campaign
        protocol = ds.protocols[0]
        table = ds.trial_data(protocol, 0)
        origin = table.origins[0]
        assert coverage_interval(table, origin, replicates=50,
                                 single_probe=True, engine="packed") == \
            coverage_interval(table, origin, replicates=50,
                              single_probe=True, engine="reference")


# ----------------------------------------------------------------------
# Full report and CLI
# ----------------------------------------------------------------------

class TestReportEquivalence:
    def test_full_report_identical(self, seeded_campaign):
        assert full_report(seeded_campaign, engine="packed") == \
            full_report(seeded_campaign, engine="reference")

    def test_env_default_respected(self, seeded_campaign, monkeypatch):
        monkeypatch.setenv("REPRO_ANALYSIS_ENGINE", "reference")
        assert resolve_engine(None) == "reference"
        via_env = full_report(seeded_campaign)
        monkeypatch.delenv("REPRO_ANALYSIS_ENGINE")
        assert resolve_engine(None) == "packed"
        assert via_env == full_report(seeded_campaign)

    def test_resolve_engine_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown analysis engine"):
            resolve_engine("quantum")
        assert set(ENGINES) == {"packed", "reference"}


class TestCLIEquivalence:
    @pytest.fixture(scope="class")
    def dataset_dir(self, tmp_path_factory):
        target = tmp_path_factory.mktemp("engine-cli")
        assert main(["simulate", str(target), "--scale", "0.04",
                     "--trials", "2", "--protocols", "http", "ssh",
                     "--seed", "23"]) == 0
        return target

    def test_report_engine_flag(self, dataset_dir, capsys):
        assert main(["report", str(dataset_dir),
                     "--engine", "packed"]) == 0
        packed = capsys.readouterr().out
        assert main(["report", str(dataset_dir),
                     "--engine", "reference"]) == 0
        ref = capsys.readouterr().out
        assert packed == ref
        assert packed.strip()


# ----------------------------------------------------------------------
# Shared context
# ----------------------------------------------------------------------

class TestContextSharing:
    def test_classifications_match_without_context(self, seeded_campaign):
        ds = seeded_campaign
        protocol = ds.protocols[0]
        context = AnalysisContext(ds, protocol)
        with_ctx = breakdown_by_origin(ds, protocol, context=context)
        without = breakdown_by_origin(ds, protocol)
        assert set(with_ctx) == set(without)
        for origin in with_ctx:
            a, b = with_ctx[origin], without[origin]
            assert a.trials == b.trials
            assert np.array_equal(a.category, b.category)
            assert np.array_equal(a.present, b.present)

    def test_classify_misses_with_context(self, seeded_campaign):
        ds = seeded_campaign
        protocol = ds.protocols[0]
        origin = ds.origins_for(protocol)[0]
        context = AnalysisContext(ds, protocol)
        a = classify_misses(ds, protocol, origin, context=context)
        b = classify_misses(ds, protocol, origin)
        assert np.array_equal(a.category, b.category)

    def test_exclusivity_with_context(self, seeded_campaign):
        ds = seeded_campaign
        protocol = ds.protocols[0]
        context = AnalysisContext(ds, protocol)
        a = exclusivity_report(ds, protocol, context=context)
        b = exclusivity_report(ds, protocol)
        assert a.table1() == b.table1()
        assert np.array_equal(a.long_term, b.long_term)
        assert np.array_equal(a.ever_accessible, b.ever_accessible)

    def test_context_memoizes_presence(self, seeded_campaign):
        ds = seeded_campaign
        protocol = ds.protocols[0]
        context = AnalysisContext(ds, protocol)
        first = context.presence()
        # Explicitly naming the default origin set hits the same entry.
        again = context.presence(origins=ds.origins_for(protocol))
        assert first is again

    def test_get_context_memoizes_on_fingerprint(self, seeded_campaign):
        clear_context_cache()
        try:
            ds = seeded_campaign
            protocol = ds.protocols[0]
            a = get_context(ds, protocol)
            b = get_context(ds, protocol)
            assert a is b
            assert a.fingerprint == dataset_fingerprint(ds)
        finally:
            clear_context_cache()

    def test_full_report_builds_presence_once_per_protocol(
            self, seeded_campaign):
        clear_context_cache()
        try:
            tel = Telemetry()
            with use(tel):
                full_report(seeded_campaign)
            builds = {}
            for record in tel.metric_records():
                if record["name"] == "analysis.presence_build":
                    builds[record["attrs"]["protocol"]] = record["value"]
            assert builds == {protocol: 1
                              for protocol in seeded_campaign.protocols}
        finally:
            clear_context_cache()

    def test_fingerprint_changes_with_data(self, seeded_campaign):
        base = dataset_fingerprint(seeded_campaign)
        tables = [t for t in seeded_campaign]
        mutated = make_campaign(tables[:-1],
                                metadata=seeded_campaign.metadata)
        assert dataset_fingerprint(mutated) != base


# ----------------------------------------------------------------------
# Edge cases (hand-built datasets), both engines agreeing
# ----------------------------------------------------------------------

class TestEdgeCases:
    def test_single_trial_dataset(self):
        ds = make_campaign([
            make_trial("http", 0, ["A", "B"], [10, 20, 30], l7={
                "A": ["ok", "none", "ok"],
                "B": ["none", "ok", "ok"]}),
        ])
        presence = build_presence(ds, "http")
        assert presence.present.shape == (1, 3)
        for k in (1, 2):
            packed = combo_coverages(ds.trial_data("http", 0), k,
                                     engine="packed")
            ref = combo_coverages(ds.trial_data("http", 0), k,
                                  engine="reference")
            assert [(c.combo, c.coverage) for c in packed] == \
                [(c.combo, c.coverage) for c in ref]
        assert summaries_as_tuples(
            multi_origin_table(ds, "http", engine="packed")) == \
            summaries_as_tuples(
                multi_origin_table(ds, "http", engine="reference"))

    def test_disjoint_trial_universes(self):
        ds = make_campaign([
            make_trial("http", 0, ["A", "B"], [10, 20], l7={
                "A": ["ok", "ok"], "B": ["ok", "none"]}),
            make_trial("http", 1, ["A", "B"], [30, 40], l7={
                "A": ["none", "ok"], "B": ["ok", "ok"]}),
        ])
        presence = build_presence(ds, "http")
        assert presence.n_hosts() == 4
        # Each trial only "presents" its own half of the universe.
        assert int(presence.present[0].sum()) == 2
        assert int(presence.present[1].sum()) == 2
        assert summaries_as_tuples(
            multi_origin_table(ds, "http", engine="packed")) == \
            summaries_as_tuples(
                multi_origin_table(ds, "http", engine="reference"))

    def test_origin_missing_from_one_trial(self):
        # The Carinet rule: an origin absent from a trial is dropped from
        # the aggregate origin set, but per-trial analyses still see it.
        ds = make_campaign([
            make_trial("http", 0, ["A", "B", "C"], [10, 20], l7={
                "A": ["ok", "ok"], "B": ["ok", "none"],
                "C": ["none", "ok"]}),
            make_trial("http", 1, ["A", "B"], [10, 20], l7={
                "A": ["ok", "none"], "B": ["ok", "ok"]}),
        ])
        assert ds.origins_for("http") == ["A", "B"]
        presence = build_presence(ds, "http")
        assert presence.origins == ["A", "B"]
        # combo including the partial origin: packed == reference.
        assert combo_mean_coverage(ds, "http", ["A", "C"],
                                   engine="packed") == \
            combo_mean_coverage(ds, "http", ["A", "C"],
                                engine="reference")
        assert summaries_as_tuples(
            multi_origin_table(ds, "http", engine="packed")) == \
            summaries_as_tuples(
                multi_origin_table(ds, "http", engine="reference"))

    def test_packed_trial_matches_boolean_algebra(self):
        ds = make_campaign([
            make_trial("http", 0, ["A", "B"], [10, 20, 30, 40, 50], l7={
                "A": ["ok", "none", "ok", "none", "ok"],
                "B": ["none", "ok", "ok", "none", "none"]}),
        ])
        table = ds.trial_data("http", 0)
        packed = PackedTrial(table)
        truth = table.ground_truth()
        assert packed.total == int(truth.sum())
        rows = packed.rows_for(["A", "B"])
        count = int(packed.union_counts(rows[None, :])[0])
        union = (table.accessible("A") | table.accessible("B")) & truth
        assert count == int(union.sum())

    def test_align_ips_edges(self):
        universe = np.array([10, 20, 30], dtype=np.uint32)
        # Empty query / empty universe.
        assert align_ips(np.array([], dtype=np.uint32), universe).size == 0
        empty = align_ips(universe, np.array([], dtype=np.uint32))
        assert np.array_equal(empty, np.array([-1, -1, -1]))
        # Disjoint sets: no position resolves.
        pos = align_ips(universe, np.array([40, 50], dtype=np.uint32))
        assert np.array_equal(pos, np.array([-1, -1, -1]))
        # Partial overlap keeps order.
        pos = align_ips(universe, np.array([20, 40], dtype=np.uint32))
        assert np.array_equal(pos, np.array([-1, 0, -1]))
