"""Tests for the counter-based RNG — the simulator's determinism anchor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng import CounterRNG, scalar_matches_vector


class TestDeterminism:
    def test_same_seed_same_bits(self):
        a = CounterRNG(42, "stream")
        b = CounterRNG(42, "stream")
        assert a.bits(1, 2, 3) == b.bits(1, 2, 3)

    def test_different_seed_different_bits(self):
        a = CounterRNG(42, "stream")
        b = CounterRNG(43, "stream")
        assert a.bits(7) != b.bits(7)

    def test_different_stream_different_bits(self):
        a = CounterRNG(42, "loss")
        b = CounterRNG(42, "outage")
        assert a.bits(7) != b.bits(7)

    def test_derive_matches_constructor(self):
        direct = CounterRNG(42, "a", "b", 3)
        derived = CounterRNG(42).derive("a").derive("b", 3)
        assert direct.key == derived.key

    def test_derive_does_not_mutate_parent(self):
        parent = CounterRNG(42, "p")
        key_before = parent.key
        parent.derive("child")
        assert parent.key == key_before

    def test_counter_order_matters(self):
        rng = CounterRNG(1)
        assert rng.bits(1, 2) != rng.bits(2, 1)

    def test_string_counters_accepted(self):
        rng = CounterRNG(1)
        assert rng.bits("x", 1) != rng.bits("y", 1)

    def test_int_key_part_masked_to_64_bits(self):
        rng = CounterRNG(1)
        assert rng.bits(1 << 64) == rng.bits(0)

    def test_rejects_bad_key_type(self):
        with pytest.raises(TypeError):
            CounterRNG(1, 3.5)


class TestScalarVectorAgreement:
    def test_simple_agreement(self):
        rng = CounterRNG(7, "test")
        assert scalar_matches_vector(rng, 5)

    def test_agreement_with_extras(self):
        rng = CounterRNG(7, "test")
        assert scalar_matches_vector(rng, 5, 9, 11)

    @given(seed=st.integers(0, 2**32), counter=st.integers(0, 2**62))
    @settings(max_examples=60, deadline=None)
    def test_agreement_property(self, seed, counter):
        rng = CounterRNG(seed, "prop")
        assert scalar_matches_vector(rng, counter, 3)

    def test_uniform_agreement(self):
        rng = CounterRNG(3, "u")
        vec = rng.uniform_array(np.arange(10), 4)
        for i in range(10):
            assert rng.uniform(4, i) == vec[i]


class TestDistributions:
    def test_uniform_in_unit_interval(self):
        rng = CounterRNG(0, "dist")
        values = rng.uniform_array(np.arange(10_000))
        assert values.min() >= 0.0
        assert values.max() < 1.0

    def test_uniform_mean_near_half(self):
        rng = CounterRNG(0, "dist")
        values = rng.uniform_array(np.arange(50_000))
        assert abs(values.mean() - 0.5) < 0.01

    def test_uniform_variance_matches_theory(self):
        rng = CounterRNG(0, "dist")
        values = rng.uniform_array(np.arange(50_000))
        assert abs(values.var() - 1.0 / 12.0) < 0.005

    def test_bernoulli_rate(self):
        rng = CounterRNG(1, "bern")
        hits = rng.bernoulli_array(0.3, np.arange(50_000))
        assert abs(hits.mean() - 0.3) < 0.01

    def test_bernoulli_edge_cases(self):
        rng = CounterRNG(1, "bern")
        assert not rng.bernoulli(0.0, 1)
        assert rng.bernoulli(1.0, 1)

    def test_exponential_mean(self):
        rng = CounterRNG(2, "exp")
        values = rng.exponential_array(5.0, np.arange(50_000))
        assert abs(values.mean() - 5.0) < 0.15
        assert values.min() >= 0.0

    def test_randint_range_and_coverage(self):
        rng = CounterRNG(3, "ri")
        values = {rng.randint(2, 7, i) for i in range(500)}
        assert values == {2, 3, 4, 5, 6}

    def test_randint_empty_range_raises(self):
        rng = CounterRNG(3)
        with pytest.raises(ValueError):
            rng.randint(5, 5, 0)

    def test_choice_deterministic_and_valid(self):
        rng = CounterRNG(4, "ch")
        items = ["a", "b", "c"]
        assert rng.choice(items, 9) == rng.choice(items, 9)
        assert rng.choice(items, 9) in items

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            CounterRNG(1).choice([], 0)

    def test_weighted_choice_respects_weights(self):
        rng = CounterRNG(5, "wc")
        picks = [rng.weighted_choice(["x", "y"], [0.99, 0.01], i)
                 for i in range(500)]
        assert picks.count("x") > 450

    def test_weighted_choice_validation(self):
        rng = CounterRNG(5)
        with pytest.raises(ValueError):
            rng.weighted_choice(["a"], [1.0, 2.0], 0)
        with pytest.raises(ValueError):
            rng.weighted_choice(["a"], [0.0], 0)

    def test_shuffled_is_permutation(self):
        rng = CounterRNG(6, "sh")
        items = list(range(50))
        shuffled = rng.shuffled(items, 1)
        assert sorted(shuffled) == items
        assert shuffled != items  # astronomically unlikely to be identity

    def test_shuffled_deterministic(self):
        rng = CounterRNG(6, "sh")
        assert rng.shuffled(range(20), 1) == rng.shuffled(range(20), 1)
        assert rng.shuffled(range(20), 1) != rng.shuffled(range(20), 2)


class TestIndependence:
    def test_counter_addressing_is_order_free(self):
        """Drawing counters in any order yields identical values."""
        rng = CounterRNG(9, "of")
        forward = [rng.uniform(i) for i in range(100)]
        backward = [rng.uniform(i) for i in reversed(range(100))]
        assert forward == list(reversed(backward))

    def test_streams_look_independent(self):
        a = CounterRNG(9, "s1").uniform_array(np.arange(20_000))
        b = CounterRNG(9, "s2").uniform_array(np.arange(20_000))
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.02

    @given(st.integers(0, 2**60), st.integers(0, 2**60))
    @settings(max_examples=50, deadline=None)
    def test_distinct_counters_distinct_bits(self, c1, c2):
        if c1 == c2:
            return
        rng = CounterRNG(13, "distinct")
        assert rng.bits(c1) != rng.bits(c2)


class TestKeyedDraws:
    """The pre-derived-key vector entry points used by the analysis engine."""

    def test_keyed_bits_array_matches_derived_streams(self):
        from repro.rng import keyed_bits_array

        rng = CounterRNG(7, "bootstrap")
        counters = np.arange(1000, dtype=np.uint64)
        keys = np.array([rng.derive(r).key for r in range(8)],
                        dtype=np.uint64)
        matrix = keyed_bits_array(keys[:, None], counters[None, :])
        for r in range(8):
            expected = rng.derive(r).bits_array(counters)
            assert np.array_equal(matrix[r], expected)

    def test_keyed_bits_into_matches_bits_array(self):
        from repro.rng import keyed_bits_into

        rng = CounterRNG(11, "buffers")
        counters = np.arange(5000, dtype=np.uint64)
        out = np.empty(5000, dtype=np.uint64)
        scratch = np.empty(5000, dtype=np.uint64)
        result = keyed_bits_into(np.uint64(rng.key), counters, out, scratch)
        assert result is out
        assert np.array_equal(out, rng.bits_array(counters))

    def test_keyed_bits_into_reusable_buffers(self):
        from repro.rng import keyed_bits_into

        rng = CounterRNG(3, "reuse")
        counters = np.arange(257, dtype=np.uint64)
        out = np.empty(257, dtype=np.uint64)
        scratch = np.empty(257, dtype=np.uint64)
        first = keyed_bits_into(np.uint64(rng.derive(0).key), counters,
                                out, scratch).copy()
        keyed_bits_into(np.uint64(rng.derive(1).key), counters, out, scratch)
        keyed_bits_into(np.uint64(rng.derive(0).key), counters, out, scratch)
        assert np.array_equal(out, first)
        # The counter vector itself must never be clobbered.
        assert np.array_equal(counters, np.arange(257, dtype=np.uint64))
