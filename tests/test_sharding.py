"""Tests for ZMap-style scan sharding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scanner.zmap import ZMapConfig, ZMapScanner


def scanner(shard, n_shards, **kwargs):
    defaults = dict(seed=4, pps=1000.0, domain_size=2**16)
    defaults.update(kwargs)
    return ZMapScanner(ZMapConfig(shard=shard, n_shards=n_shards,
                                  **defaults))


class TestShardConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ZMapConfig(n_shards=0)
        with pytest.raises(ValueError):
            ZMapConfig(shard=2, n_shards=2)
        with pytest.raises(ValueError):
            ZMapConfig(shard=-1, n_shards=2)

    def test_duration_divides(self):
        full = ZMapConfig(pps=1000.0, domain_size=2**16)
        quarter = ZMapConfig(pps=1000.0, domain_size=2**16, n_shards=4)
        assert quarter.scan_duration_s == full.scan_duration_s / 4


class TestShardPartition:
    def test_shards_partition_address_space(self):
        ips = np.arange(2**16, dtype=np.uint32)
        owned = np.zeros(2**16, dtype=int)
        for shard in range(4):
            owned += scanner(shard, 4).shard_mask(ips)
        assert (owned == 1).all()

    def test_shard_sizes_balanced(self):
        ips = np.arange(2**16, dtype=np.uint32)
        sizes = [scanner(s, 3).shard_mask(ips).sum() for s in range(3)]
        assert max(sizes) - min(sizes) <= 1

    def test_eligible_mask_respects_shard(self):
        ips = np.arange(1000, dtype=np.uint32)
        s = scanner(1, 4)
        eligible = s.eligible_mask(ips)
        assert np.array_equal(eligible, s.shard_mask(ips))

    def test_single_shard_covers_everything(self):
        ips = np.arange(1000, dtype=np.uint32)
        assert scanner(0, 1).eligible_mask(ips).all()

    @given(st.integers(1, 8), st.integers(0, 2**16 - 1))
    @settings(max_examples=60, deadline=None)
    def test_exactly_one_owner(self, n_shards, ip):
        owners = [s for s in range(n_shards)
                  if scanner(s, n_shards).shard_mask(
                      np.array([ip], dtype=np.uint32))[0]]
        assert len(owners) == 1


class TestShardTiming:
    def test_times_compressed_within_shard(self):
        """A shard finishes in 1/n of the time of a full scan."""
        full = scanner(0, 1)
        quarter = scanner(0, 4)
        ips = np.arange(2**16, dtype=np.uint32)
        owned = quarter.shard_mask(ips)
        times = quarter.first_probe_times(ips[owned])
        assert times.max() <= quarter.config.scan_duration_s
        assert times.max() < full.config.scan_duration_s / 3

    def test_shard_preserves_relative_order(self):
        """Within a shard, permutation order is preserved."""
        s = scanner(2, 4)
        ips = np.arange(2**16, dtype=np.uint32)
        owned = ips[s.shard_mask(ips)]
        positions = s.permutation.position_of_array(
            owned.astype(np.uint64))
        times = s.first_probe_times(owned)
        order_by_pos = np.argsort(positions)
        assert np.all(np.diff(times[order_by_pos]) >= 0)
