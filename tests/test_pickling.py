"""Pickle round-trips for everything the process executor ships.

The process backend serializes the :class:`World` once per worker and an
:class:`ObservationJob` (origin + trial-reseeded config) per job.  These
tests guard that contract directly: round-tripped objects must not just
survive, they must *observe identically* — which exercises the lazy
per-AS caches (loss params, burst-outage windows in
``repro/conditions/outages.py``, flaky/maxstartups tables) that either
ship in the pickle or rebuild deterministically in the worker.
"""

import dataclasses
import pickle

import numpy as np
import pytest

from repro.origins import Origin, paper_origins
from repro.scanner.zmap import ZMapConfig, ZMapScanner
from repro.sim.campaign import build_observation_grid
from repro.sim.scenario import paper_scenario


@pytest.fixture(scope="module")
def setup():
    return paper_scenario(seed=13, scale=0.02)


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def observe_fields(observation):
    return {name: getattr(observation, name)
            for name in ("ip", "as_index", "country_index", "geo_index",
                         "probe_mask", "l7", "time")}


def assert_observations_equal(a, b):
    fa, fb = observe_fields(a), observe_fields(b)
    for name in fa:
        assert fa[name].dtype == fb[name].dtype, name
        assert np.array_equal(fa[name], fb[name]), name


class TestOriginPickle:
    def test_all_paper_origins_roundtrip(self):
        for origin in paper_origins():
            clone = roundtrip(origin)
            assert clone == origin
            assert clone.state_group == origin.state_group
            assert clone.participates(0) == origin.participates(0)


class TestScannerPickle:
    def test_scanner_roundtrip_preserves_schedule(self):
        config = ZMapConfig(seed=23, pps=5000.0, domain_size=2**16,
                            shard=1, n_shards=4)
        scanner = ZMapScanner(config)
        clone = roundtrip(scanner)
        ips = np.arange(2**12, dtype=np.uint32)
        assert clone.config == scanner.config
        assert np.array_equal(clone.shard_mask(ips),
                              scanner.shard_mask(ips))
        assert np.array_equal(clone.first_probe_times(ips),
                              scanner.first_probe_times(ips))

    def test_job_payload_roundtrip(self):
        """The exact per-job payload the process pool serializes."""
        _, origins, config = paper_scenario(seed=2, scale=0.02)
        jobs = build_observation_grid(origins, config, ("http",), 3)
        for job in jobs:
            clone = roundtrip(job)
            assert clone == job


class TestWorldPickle:
    def test_cold_world_roundtrip_observes_identically(self, setup):
        world, origins, config = setup
        clone = roundtrip(world)
        names = tuple(o.name for o in origins)
        origin = origins[0]
        a = world.observe("http", 0, origin, ZMapScanner(config), names)
        b = clone.observe("http", 0, origin, ZMapScanner(config), names)
        assert_observations_equal(a, b)

    def test_warm_world_roundtrip_observes_identically(self, setup):
        """A world with populated lazy caches (loss params, burst-outage
        windows, flaky/maxstartups tables) must round-trip too — this is
        what a fork-started worker effectively receives."""
        world, origins, config = setup
        names = tuple(o.name for o in origins)
        # Warm every lazy cache: an SSH and an HTTP observation touch the
        # maxstartups tables, outage windows, and per-origin loss params.
        for protocol in ("http", "ssh"):
            for origin in origins[:3]:
                world.observe(protocol, 0, origin, ZMapScanner(config),
                              names)
        clone = roundtrip(world)
        trial1 = dataclasses.replace(config, seed=config.seed + 1)
        for protocol in ("http", "ssh"):
            for origin in (origins[0], origins[-1]):
                a = world.observe(protocol, 1, origin,
                                  ZMapScanner(trial1), names)
                b = clone.observe(protocol, 1, origin,
                                  ZMapScanner(trial1), names)
                assert_observations_equal(a, b)

    def test_roundtripped_world_rebuilds_outage_windows(self, setup):
        """Burst-outage windows drawn pre- and post-pickle agree: the
        ``_cache`` dicts in repro/conditions/outages.py memoize pure
        draws, so a worker's rebuilt cache is bit-compatible."""
        world, origins, config = setup
        names = tuple(o.name for o in origins)
        model = world._outages(names, config.scan_duration_s)
        specs = world.outage_specs()
        before = {as_index: model.windows(as_index, spec, 0)
                  for as_index, spec in list(specs.items())[:50]}
        clone = roundtrip(world)
        clone_model = clone._outages(names, config.scan_duration_s)
        clone_specs = clone.outage_specs()
        for as_index, windows in before.items():
            assert clone_model.windows(as_index, clone_specs[as_index],
                                       0) == windows

    def test_ssh_retry_matches_after_roundtrip(self, setup):
        """The §6 targeted-retry path uses the same cached parameter
        tables; it must agree across the pickle boundary as well."""
        world, origins, config = setup
        names = tuple(o.name for o in origins)
        origin = origins[0]
        obs = world.observe("ssh", 0, origin, ZMapScanner(config), names)
        targets = obs.ip[:200]
        clone = roundtrip(world)
        a = world.ssh_retry_success(targets, origin, 0, max_attempts=3)
        b = clone.ssh_retry_success(targets, origin, 0, max_attempts=3)
        assert np.array_equal(a, b)
