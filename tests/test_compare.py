"""Tests for campaign-to-campaign comparison."""

import numpy as np
import pytest

from repro.core.compare import (
    compare_coverage,
    compare_visibility,
)
from tests.conftest import make_campaign, make_trial


def campaign(a_rate_ok, b_rate_ok, n=100):
    """Single-trial campaign where A and B see given host fractions."""
    ips = list(range(1, n + 1))
    a_ok = int(n * a_rate_ok)
    b_ok = int(n * b_rate_ok)
    l7 = {"A": ["ok"] * a_ok + ["drop"] * (n - a_ok),
          "B": ["drop"] * (n - b_ok) + ["ok"] * b_ok}
    return make_campaign([make_trial("http", 0, ["A", "B"], ips, l7=l7)])


class TestCompareCoverage:
    def test_deltas(self):
        before = campaign(0.8, 0.9)
        after = campaign(0.9, 0.85)
        delta = compare_coverage(before, after, "http")
        b, a, d = delta.by_origin["A"]
        assert b == pytest.approx(0.8)
        assert a == pytest.approx(0.9)
        assert d == pytest.approx(0.1)
        assert delta.biggest_gain() == "A"
        assert delta.biggest_loss() == "B"

    def test_only_shared_origins(self):
        before = campaign(0.8, 0.9)
        after_tables = [make_trial("http", 0, ["A", "C"], [1, 2],
                                   l7={"A": ["ok", "ok"],
                                       "C": ["ok", "ok"]})]
        after = make_campaign(after_tables)
        delta = compare_coverage(before, after, "http")
        assert set(delta.by_origin) == {"A"}

    def test_simulated_censys_reip(self, small_world):
        """The paper's Censys re-IP: fresh range → coverage gain."""
        from repro.sim.campaign import run_campaign
        from repro.sim.scenario import followup_scenario, small_scenario
        world, origins, config = small_world
        before = run_campaign(world, origins, config,
                              protocols=("http",), n_trials=1)
        fworld, forigins, fconfig = followup_scenario(seed=11, scale=0.04)
        after = run_campaign(fworld, forigins, fconfig,
                             protocols=("http",), n_trials=1)
        delta = compare_coverage(before, after, "http")
        assert delta.by_origin["CEN"][2] > 0.02


class TestCompareVisibility:
    def _campaign_with_as(self, a_sees_as1):
        ips = [10, 11, 20, 21]
        as_index = [0, 0, 1, 1]
        a = ["ok", "ok", "ok" if a_sees_as1 else "none",
             "ok" if a_sees_as1 else "none"]
        tables = [make_trial("http", 0, ["A", "B"], ips,
                             l7={"A": a, "B": ["ok"] * 4},
                             as_index=as_index)]
        return make_campaign(tables)

    def test_recovered_as(self):
        asn_map = {0: 100, 1: 200}
        before = self._campaign_with_as(a_sees_as1=False)
        after = self._campaign_with_as(a_sees_as1=True)
        delta = compare_visibility(before, after, "http", "A",
                                   asn_map, asn_map)
        assert delta.by_asn[200] == (0.0, 1.0)
        assert delta.by_asn[100] == (1.0, 1.0)
        assert delta.recovered() == [200]
        assert delta.lost() == []

    def test_lost_as(self):
        asn_map = {0: 100, 1: 200}
        before = self._campaign_with_as(a_sees_as1=True)
        after = self._campaign_with_as(a_sees_as1=False)
        delta = compare_visibility(before, after, "http", "A",
                                   asn_map, asn_map)
        assert delta.lost() == [200]

    def test_missing_origin_gives_empty(self):
        asn_map = {0: 100, 1: 200}
        before = self._campaign_with_as(True)
        after_tables = [make_trial("http", 0, ["B"], [10],
                                   l7={"B": ["ok"]})]
        after = make_campaign(after_tables)
        delta = compare_visibility(before, after, "http", "A",
                                   asn_map, asn_map)
        assert delta.by_asn == {}
