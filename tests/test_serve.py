"""The campaign service: end-to-end serving, caching, and deduplication.

The contract under test is the serving layer's core promise: a served
report is *the same bytes* the offline pipeline produces — on the cold
(miss) path, the warm (hit) path, and after deduplicated concurrent
requests — and every request is accounted for in the ``serve.*``
counters.  Fault-injection coverage (corruption, timeouts, backpressure,
drain) lives in ``tests/test_serve_faults.py``.
"""

from __future__ import annotations

import concurrent.futures
import threading
import time

import pytest

from repro.core.engine import clear_context_cache
from repro.core.report import full_report
from repro.serve import resultcache
from repro.serve.client import ServeClient, ServeError
from repro.serve.handlers import (BadRequest, CampaignRequest, ServeState,
                                  parse_request, run_request)
from repro.serve.server import ServeConfig, ThreadedServer
from repro.sim.campaign import (SingleFlight, campaign_fingerprint,
                                run_campaign)
from repro.sim.scenario import paper_scenario
from repro.topology.asn import PROTOCOLS

SCALE = 0.02
SPEC = {"seed": 3, "scale": SCALE}


def make_server(tmp_path, runner=run_request, **overrides) -> ThreadedServer:
    config = ServeConfig(port=0, cache_dir=str(tmp_path / "results"),
                         queue_depth=overrides.pop("queue_depth", 16),
                         request_timeout=overrides.pop("request_timeout",
                                                       120.0),
                         **overrides)
    return ThreadedServer(config=config, runner=runner)


def offline_report(seed: int, scale: float = SCALE,
                   protocols=PROTOCOLS, n_trials: int = 3) -> str:
    world, origins, config = paper_scenario(seed=seed, scale=scale)
    dataset = run_campaign(world, origins, config, protocols=protocols,
                           n_trials=n_trials)
    return full_report(dataset)


def wait_until(predicate, timeout: float = 30.0,
               interval: float = 0.02) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


# ----------------------------------------------------------------------
# End-to-end: miss, hit, byte-identity with the offline pipeline
# ----------------------------------------------------------------------

def test_miss_then_hit_byte_identical(tmp_path):
    with make_server(tmp_path) as ts:
        client = ServeClient(port=ts.port)
        first = client.report(**SPEC)
        second = client.report(**SPEC)
        entries = client.cache()
        counters = client.metrics()["counters"]
    assert first.source == "miss"
    assert second.source == "hit"
    assert second.key == first.key
    assert second.text == first.text
    assert [e["valid"] for e in entries] == [True]
    assert entries[0]["key"] == first.key
    assert counters["serve.cache_miss"] == 1
    assert counters["serve.cache_hit"] == 1
    assert counters["serve.request"] >= 2


def test_served_report_matches_offline(tmp_path):
    with make_server(tmp_path) as ts:
        client = ServeClient(port=ts.port)
        served = client.report(**SPEC)
    assert served.text == offline_report(**SPEC)


@pytest.mark.slow
@pytest.mark.parametrize("seed", [3, 5, 7])
def test_differential_hit_and_miss_across_seeds(tmp_path, seed):
    """Acceptance: served == offline on both paths, per seed."""
    expected = offline_report(seed)
    with make_server(tmp_path / str(seed)) as ts:
        client = ServeClient(port=ts.port)
        miss = client.report(seed=seed, scale=SCALE)
        hit = client.report(seed=seed, scale=SCALE)
    assert miss.source == "miss" and hit.source == "hit"
    assert miss.text == expected
    assert hit.text == expected


def test_campaign_route_returns_summary_not_report(tmp_path):
    with make_server(tmp_path) as ts:
        client = ServeClient(port=ts.port)
        summary = client.campaign(**SPEC)
        report = client.report(**SPEC)
    assert summary["key"] == report.key
    assert summary["source"] == "miss"
    assert summary["meta"]["request"]["seed"] == SPEC["seed"]
    assert summary["meta"]["protocols"] == list(PROTOCOLS)
    assert "coverage" not in summary  # the report text stays on /report


def test_healthz_metrics_and_unknown_routes(tmp_path):
    with make_server(tmp_path) as ts:
        client = ServeClient(port=ts.port)
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["queue_depth"] == 16
        client.report(**SPEC)
        text = client.metrics_text()
        assert "# TYPE repro_serve_cache_miss_total counter" in text
        assert "repro_serve_request_total" in text
        with pytest.raises(ServeError) as missing:
            client._request("GET", "/nope")
        assert missing.value.status == 404
        with pytest.raises(ServeError) as wrong_method:
            client._request("GET", "/report")
        assert wrong_method.value.status == 405


def test_invalid_specs_are_rejected_with_400(tmp_path):
    with make_server(tmp_path) as ts:
        client = ServeClient(port=ts.port)
        for bad in ({"seed": -1}, {"scenario": "nope"}, {"scale": 99.0},
                    {"protocols": ["smtp"]}, {"n_trials": 0},
                    {"engine": "magic"}, {"bogus": 1}):
            with pytest.raises(ServeError) as err:
                client.campaign(**bad)
            assert err.value.status == 400, bad
        # the server is still healthy after a pile of bad requests
        assert client.healthz()["status"] == "ok"


# ----------------------------------------------------------------------
# Concurrency determinism: dedup and cache-key isolation
# ----------------------------------------------------------------------

def test_identical_concurrent_requests_run_once(tmp_path):
    """N identical in-flight requests → one execution, N-1 joiners."""
    n = 5
    release = threading.Event()
    # The presence-build assertion below counts this test's execution;
    # start from a cold process-wide context memo so an earlier test's
    # identical dataset (same seed/scale → same fingerprint) cannot
    # satisfy the build.
    clear_context_cache()

    def gated(request, state):
        # Hold the leader's compute until every rival has joined the
        # flight, making the dedup count exact rather than timing-lucky.
        assert release.wait(timeout=60)
        return run_request(request, state)

    with make_server(tmp_path, runner=gated) as ts:
        client = ServeClient(port=ts.port)
        with concurrent.futures.ThreadPoolExecutor(n) as pool:
            futures = [pool.submit(client.report, **SPEC)
                       for _ in range(n)]
            assert wait_until(
                lambda: client.metrics()["counters"].get(
                    "serve.dedup_joined", 0) == n - 1)
            release.set()
            results = [f.result() for f in futures]
        counters = client.metrics()["counters"]
    assert len({r.text for r in results}) == 1
    assert len({r.key for r in results}) == 1
    assert counters["serve.cache_miss"] == 1
    assert counters.get("serve.cache_hit", 0) == 0
    assert counters["serve.dedup_joined"] == n - 1
    # Exactly one execution: one presence-context build per protocol.
    totals = ts.server.telemetry.counters.totals()
    for protocol in PROTOCOLS:
        key = ("analysis.presence_build", (("protocol", protocol),))
        assert totals.get(key) == 1, (protocol, totals)


def test_distinct_concurrent_requests_never_share_entries(tmp_path):
    with make_server(tmp_path) as ts:
        client = ServeClient(port=ts.port)
        with concurrent.futures.ThreadPoolExecutor(4) as pool:
            futures = {seed: pool.submit(client.report, seed=seed,
                                         scale=SCALE)
                       for seed in (3, 5)}
            first = {seed: f.result() for seed, f in futures.items()}
        again = {seed: client.report(seed=seed, scale=SCALE)
                 for seed in (3, 5)}
        entries = client.cache()
    assert first[3].key != first[5].key
    assert first[3].text != first[5].text
    for seed in (3, 5):
        assert again[seed].source == "hit"
        assert again[seed].key == first[seed].key
        assert again[seed].text == first[seed].text
    assert sorted(e["key"] for e in entries) \
        == sorted(r.key for r in first.values())


# ----------------------------------------------------------------------
# Units: request parsing, fingerprints, single-flight, result cache
# ----------------------------------------------------------------------

def test_parse_request_normalizes_protocol_order():
    a = parse_request({"protocols": ["ssh", "http"]})
    b = parse_request({"protocols": ["http", "ssh"]})
    assert a == b
    assert a.canonical() == b.canonical()
    assert a.protocols == tuple(p for p in PROTOCOLS
                                if p in ("http", "ssh"))


def test_parse_request_defaults_and_bounds():
    request = parse_request({})
    assert request == CampaignRequest()
    with pytest.raises(BadRequest):
        parse_request(["not", "a", "dict"])
    with pytest.raises(BadRequest):
        parse_request({"seed": True})  # bools are not seeds
    with pytest.raises(BadRequest):
        parse_request({"protocols": ["http", "http"]})


def test_campaign_fingerprint_sensitivity():
    world, origins, config = paper_scenario(seed=3, scale=SCALE)
    base = campaign_fingerprint(world, config, origins)
    assert base == campaign_fingerprint(world, config, origins)
    assert base != campaign_fingerprint(world, config, origins[:-1])
    assert base != campaign_fingerprint(world, config, origins,
                                        protocols=("http",))
    assert base != campaign_fingerprint(world, config, origins, n_trials=2)
    assert base != campaign_fingerprint(world, config, origins,
                                        extra={"engine": "reference"})
    other_world, _, other_config = paper_scenario(seed=4, scale=SCALE)
    assert base != campaign_fingerprint(other_world, other_config, origins)


def test_single_flight_leader_and_joiners():
    flight = SingleFlight()
    future, leader = flight.begin("k")
    assert leader
    joined, second = flight.begin("k")
    assert not second and joined is future
    assert flight.in_flight() == 1
    flight.finish("k", result=41)
    assert future.result(timeout=1) == 41
    assert flight.in_flight() == 0
    # after finish, the key starts a fresh flight
    _, leader = flight.begin("k")
    assert leader
    flight.finish("k", error=RuntimeError("boom"))


def test_single_flight_run_shares_results_across_threads():
    flight = SingleFlight()
    calls = []
    gate = threading.Event()

    def work():
        calls.append(1)
        assert gate.wait(timeout=30)
        return "value"

    with concurrent.futures.ThreadPoolExecutor(4) as pool:
        futures = [pool.submit(flight.run, "key", work) for _ in range(4)]
        assert wait_until(lambda: len(calls) == 1 and
                          flight.in_flight() == 1)
        gate.set()
        outcomes = [f.result() for f in futures]
    assert len(calls) == 1
    assert {value for value, _ in outcomes} == {"value"}
    assert sorted(joined for _, joined in outcomes) \
        == [False, True, True, True]


def test_resultcache_round_trip_and_corruption(tmp_path, small_campaign):
    report = full_report(small_campaign)
    path = resultcache.store("deadbeef" * 8, report, small_campaign,
                             meta={"note": "unit"}, directory=tmp_path)
    assert path is not None
    entry = resultcache.load("deadbeef" * 8, directory=tmp_path)
    assert entry.report == report
    assert entry.meta["note"] == "unit"
    assert resultcache.load("0" * 64, directory=tmp_path) is None

    blob = bytearray(path.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    path.write_bytes(bytes(blob))
    with pytest.raises(resultcache.CorruptEntry):
        resultcache.load("deadbeef" * 8, directory=tmp_path)


def test_resultcache_env_opt_out(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULT_CACHE", "0")
    assert not resultcache.cache_enabled()
    state = ServeState(cache_dir=str(tmp_path))
    payload = run_request(parse_request(dict(SPEC)), state)
    assert payload.source == "miss"
    assert resultcache.list_entries(tmp_path) == []


def test_serve_state_rejects_unknown_backend():
    with pytest.raises(ValueError):
        ServeState(executor="quantum")


def test_cli_parser_accepts_serve():
    from repro.cli import _build_parser
    args = _build_parser().parse_args(
        ["serve", "--port", "0", "--queue-depth", "2",
         "--timeout", "5", "--executor", "serial"])
    assert args.command == "serve"
    assert args.queue_depth == 2
    assert args.timeout == 5.0
