"""The time-series recorder: bounded window, rate limiting, content.

The recorder backs ``/metrics/history`` and ``repro top``: samples of a
live collector's counters/histograms/RSS land in a ring buffer whose
capacity — never the sampling frequency — bounds memory.  Samples stay
in memory only, so recording cannot perturb journal byte-identity.
"""

from __future__ import annotations

import json

from repro.telemetry import Telemetry, TimeSeriesRecorder, use


def make_tel():
    tel = Telemetry()
    tel.count("work.items", 3, kind="a")
    tel.count("work.items", 2, kind="b")
    tel.observe_value("work.latency", 0.25)
    tel.observe_value("work.latency", 0.75)
    return tel


class TestSampling:
    def test_sample_contents(self):
        recorder = TimeSeriesRecorder(max_samples=8)
        row = recorder.sample(make_tel(), active=2, queue_depth=8)
        assert row["counters"] == {"work.items": 5}
        summary = row["hists"]["work.latency"]
        assert summary["count"] == 2
        assert summary["min"] == 0.25 and summary["max"] == 0.75
        assert 0.25 <= summary["p50"] <= 0.75
        assert row["gauges"] == {"active": 2.0, "queue_depth": 8.0}
        assert row["rss_bytes"] >= 0
        assert row["uptime_s"] >= 0.0
        assert json.dumps(row)  # JSON-able for /metrics/history

    def test_ring_buffer_is_bounded(self):
        recorder = TimeSeriesRecorder(max_samples=4, interval_s=0.0)
        tel = make_tel()
        for index in range(10):
            tel.count("tick")
            recorder.sample(tel)
        assert len(recorder) == 4
        rows = recorder.rows()
        # Oldest evicted: the window holds the last four ticks.
        assert [row["counters"]["tick"] for row in rows] == [7, 8, 9, 10]

    def test_maybe_sample_rate_limits(self):
        recorder = TimeSeriesRecorder(max_samples=64, interval_s=3600.0)
        tel = make_tel()
        assert recorder.maybe_sample(tel) is True
        for _ in range(50):
            assert recorder.maybe_sample(tel) is False
        assert len(recorder) == 1

    def test_span_exit_feeds_recorder(self):
        recorder = TimeSeriesRecorder(max_samples=8, interval_s=0.0)
        tel = Telemetry(timeseries=recorder)
        with use(tel):
            with tel.span("work"):
                pass
        assert len(recorder) >= 1

    def test_rows_last_and_as_dict(self):
        recorder = TimeSeriesRecorder(max_samples=8, interval_s=0.5)
        tel = make_tel()
        for _ in range(3):
            recorder.sample(tel)
        assert len(recorder.rows(last=2)) == 2
        assert recorder.rows(last=0) == []
        payload = recorder.as_dict(last=1)
        assert payload["schema"] == "repro-metrics-history-v1"
        assert payload["n_samples"] == 3
        assert payload["interval_s"] == 0.5
        assert len(payload["samples"]) == 1

    def test_disabled_telemetry_never_samples(self):
        # The null collector has no timeseries hook at all, so the
        # disabled path pays nothing for history recording.
        from repro.telemetry import NULL
        assert getattr(NULL, "timeseries", None) is None
