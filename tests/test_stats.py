"""Tests for McNemar, Bonferroni, and Spearman implementations."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.core.stats import (
    _average_ranks,
    all_pairs_significant,
    bonferroni,
    mcnemar,
    mcnemar_exact,
    pairwise_origin_tests,
    spearman,
)
from tests.conftest import make_campaign, make_trial


class TestMcNemar:
    def test_no_discordance(self):
        statistic, p = mcnemar(0, 0)
        assert statistic == 0.0
        assert p == 1.0

    def test_symmetric(self):
        assert mcnemar(30, 10) == mcnemar(10, 30)

    def test_known_value(self):
        # (|30-10|-1)^2 / 40 = 361/40 = 9.025 → p ≈ 0.00266
        statistic, p = mcnemar(30, 10)
        assert statistic == pytest.approx(9.025)
        assert p == pytest.approx(0.002665, abs=1e-4)

    def test_large_difference_significant(self):
        _, p = mcnemar(500, 100)
        assert p < 1e-10

    def test_validation(self):
        with pytest.raises(ValueError):
            mcnemar(-1, 5)

    def test_exact_small_counts(self):
        assert mcnemar_exact(0, 0) == 1.0
        # 5 vs 0 discordant: p = 2 * 0.5^5 = 0.0625
        assert mcnemar_exact(5, 0) == pytest.approx(0.0625)

    def test_pairwise_tests(self):
        td = make_trial("http", 0, ["A", "B", "C"],
                        list(range(1, 41)),
                        l7={"A": ["ok"] * 40,
                            "B": ["ok"] * 20 + ["drop"] * 20,
                            "C": ["ok"] * 40})
        results = pairwise_origin_tests(td)
        assert len(results) == 3
        ab = next(r for r in results
                  if {r.origin_a, r.origin_b} == {"A", "B"})
        assert ab.b == 20 and ab.c == 0
        assert ab.significant()
        ac = next(r for r in results
                  if {r.origin_a, r.origin_b} == {"A", "C"})
        assert not ac.significant()


class TestBonferroni:
    def test_scaling_and_clamping(self):
        assert bonferroni([0.01, 0.2]) == [0.02, 0.4]
        assert bonferroni([0.5, 0.9]) == [1.0, 1.0]
        assert bonferroni([]) == []

    def test_all_pairs_significant(self):
        n = 400
        tables = []
        for t in range(2):
            tables.append(make_trial(
                "http", t, ["A", "B"], list(range(1, n + 1)),
                l7={"A": ["ok"] * n,
                    "B": ["ok"] * (n - 60) + ["drop"] * 60}))
        ds = make_campaign(tables)
        assert all_pairs_significant(ds, "http")

    def test_identical_origins_not_significant(self):
        n = 50
        tables = [make_trial("http", 0, ["A", "B"],
                             list(range(1, n + 1)),
                             l7={"A": ["ok"] * n, "B": ["ok"] * n})]
        ds = make_campaign(tables)
        assert not all_pairs_significant(ds, "http")


class TestSpearman:
    def test_perfect_monotone(self):
        x = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        rho, p = spearman(x, x ** 3)
        assert rho == pytest.approx(1.0)
        assert p < 0.05

    def test_perfect_inverse(self):
        x = np.arange(10.0)
        rho, _ = spearman(x, -x)
        assert rho == pytest.approx(-1.0)

    def test_matches_scipy(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=200)
        y = 0.5 * x + rng.normal(size=200)
        rho, p = spearman(x, y)
        expected_rho, expected_p = scipy_stats.spearmanr(x, y)
        assert rho == pytest.approx(expected_rho, abs=1e-10)
        assert p == pytest.approx(expected_p, rel=0.05)

    def test_matches_scipy_with_ties(self):
        x = np.array([1, 2, 2, 3, 3, 3, 4, 5, 5, 6], dtype=float)
        y = np.array([2, 1, 3, 3, 5, 4, 4, 6, 7, 7], dtype=float)
        rho, _ = spearman(x, y)
        expected_rho, _ = scipy_stats.spearmanr(x, y)
        assert rho == pytest.approx(expected_rho, abs=1e-10)

    def test_degenerate_inputs(self):
        rho, p = spearman(np.array([1.0, 2.0]), np.array([1.0, 2.0]))
        assert np.isnan(rho)
        rho, _ = spearman(np.ones(10), np.arange(10.0))
        assert np.isnan(rho)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            spearman(np.arange(3.0), np.arange(4.0))

    def test_average_ranks(self):
        ranks = _average_ranks(np.array([10.0, 20.0, 20.0, 30.0]))
        assert list(ranks) == [1.0, 2.5, 2.5, 4.0]
