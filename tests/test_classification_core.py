"""Tests for ground truth, coverage, and miss classification.

These use small hand-built datasets where every expected classification
can be verified by eye against §3's definitions.
"""

import numpy as np
import pytest

from repro.core.classification import (
    MissCategory,
    breakdown_by_origin,
    classify_misses,
    figure2_rows,
)
from repro.core.coverage import (
    coverage_by_origin,
    coverage_table,
    median_single_origin_coverage,
)
from repro.core.ground_truth import (
    build_presence,
    ground_truth_ips,
    union_ground_truth,
)
from tests.conftest import make_campaign, make_trial


def three_trial_campaign():
    """Hosts engineered to hit every classification bucket for origin A.

    ip 10: seen by A in every trial                      → ACCESSIBLE
    ip 20: missed by A in trial 1 only                   → TRANSIENT
    ip 30: missed by A in all trials, seen by B          → LONG_TERM
    ip 40: exists only in trial 0 (B sees it), A misses  → UNKNOWN
    ip 50: exists only in trial 0, A sees it             → ACCESSIBLE
    ip 60: never completes L7 anywhere                   → not in universe
    """
    ips = [10, 20, 30, 40, 50, 60]
    tables = [
        make_trial("http", 0, ["A", "B"], ips, l7={
            "A": ["ok", "ok", "drop", "none", "ok", "none"],
            "B": ["ok", "ok", "ok", "ok", "none", "drop"]}),
        make_trial("http", 1, ["A", "B"], [10, 20, 30], l7={
            "A": ["ok", "none", "none"],
            "B": ["ok", "ok", "ok"]}),
        make_trial("http", 2, ["A", "B"], [10, 20, 30], l7={
            "A": ["ok", "ok", "drop"],
            "B": ["ok", "ok", "ok"]}),
    ]
    return make_campaign(tables)


class TestGroundTruth:
    def test_per_trial_ground_truth(self):
        ds = three_trial_campaign()
        assert list(ground_truth_ips(ds.trial_data("http", 0))) \
            == [10, 20, 30, 40, 50]
        assert list(ground_truth_ips(ds.trial_data("http", 1))) \
            == [10, 20, 30]

    def test_union(self):
        ds = three_trial_campaign()
        assert list(union_ground_truth(ds, "http")) == [10, 20, 30, 40, 50]

    def test_presence_matrix(self):
        ds = three_trial_campaign()
        presence = build_presence(ds, "http")
        assert list(presence.ips) == [10, 20, 30, 40, 50]
        assert list(presence.present[0]) == [True] * 5
        assert list(presence.present[1]) == [True, True, True, False,
                                             False]
        assert list(presence.present_trial_counts()) == [3, 3, 3, 1, 1]

    def test_accessible_implies_present(self):
        ds = three_trial_campaign()
        presence = build_presence(ds, "http")
        assert not np.any(presence.accessible
                          & ~presence.present[np.newaxis, :, :])

    def test_single_probe_universe_shrinks_or_equal(self):
        ds = three_trial_campaign()
        full = union_ground_truth(ds, "http")
        single = union_ground_truth(ds, "http", single_probe=True)
        assert set(single.tolist()) <= set(full.tolist())


class TestCoverage:
    def test_coverage_by_origin(self):
        ds = three_trial_campaign()
        cov = coverage_by_origin(ds.trial_data("http", 0))
        # Trial 0 ground truth has 5 hosts; A sees 10, 20, 50.
        assert cov["A"] == pytest.approx(3 / 5)
        assert cov["B"] == pytest.approx(4 / 5)

    def test_coverage_table(self):
        ds = three_trial_campaign()
        table = coverage_table(ds, "http")
        assert table.union_size == {0: 5, 1: 3, 2: 3}
        # Intersection in trial 1: both see only ip 10.
        assert table.intersection[1] == pytest.approx(1 / 3)
        assert table.mean_coverage("B") == pytest.approx(
            np.mean([4 / 5, 1.0, 1.0]))
        rows = table.rows()
        assert len(rows) == 4  # 3 trials + mean

    def test_median_single_origin(self):
        ds = three_trial_campaign()
        med = median_single_origin_coverage(ds, "http")
        # A: 3/5, 1/3, 2/3 over the trials; B: 4/5, 1, 1.
        values = [3 / 5, 1 / 3, 2 / 3, 4 / 5, 1.0, 1.0]
        assert med == pytest.approx(np.median(values))


class TestClassification:
    def test_expected_categories_for_a(self):
        ds = three_trial_campaign()
        cls = classify_misses(ds, "http", "A")
        cats = {int(ip): [MissCategory(c) for c in cls.category[:, i]]
                for i, ip in enumerate(cls.ips)}
        assert cats[10] == [MissCategory.ACCESSIBLE] * 3
        assert cats[20] == [MissCategory.ACCESSIBLE,
                            MissCategory.TRANSIENT,
                            MissCategory.ACCESSIBLE]
        assert cats[30] == [MissCategory.LONG_TERM] * 3
        assert cats[40] == [MissCategory.UNKNOWN,
                            MissCategory.NOT_PRESENT,
                            MissCategory.NOT_PRESENT]
        assert cats[50] == [MissCategory.ACCESSIBLE,
                            MissCategory.NOT_PRESENT,
                            MissCategory.NOT_PRESENT]

    def test_b_sees_everything_it_could(self):
        ds = three_trial_campaign()
        cls = classify_misses(ds, "http", "B")
        # B misses only ip 50 (present in trial 0 only) → UNKNOWN.
        assert not cls.long_term_mask().any()
        unknown = cls.ever_category(MissCategory.UNKNOWN)
        assert list(cls.ips[unknown]) == [50]

    def test_counts_and_missing_mask(self):
        ds = three_trial_campaign()
        cls = classify_misses(ds, "http", "A")
        counts = cls.counts(0)
        assert counts[MissCategory.ACCESSIBLE] == 3
        assert counts[MissCategory.LONG_TERM] == 1
        assert counts[MissCategory.UNKNOWN] == 1
        assert cls.missing_mask(0).sum() == 2

    def test_breakdown_covers_all_origins(self):
        ds = three_trial_campaign()
        breakdown = breakdown_by_origin(ds, "http")
        assert set(breakdown) == {"A", "B"}

    def test_figure2_rows(self):
        ds = three_trial_campaign()
        rows = figure2_rows(ds, "http")
        assert len(rows) == 6  # 2 origins × 3 trials
        a0 = next(r for r in rows
                  if r["origin"] == "A" and r["trial"] == 0)
        assert a0["long_term_host"] + a0["long_term_network"] == 1
        assert a0["unknown"] == 1

    def test_two_trial_miss_is_long_term(self):
        """A host present twice and missed twice is long-term (§3)."""
        tables = [
            make_trial("http", 0, ["A", "B"], [10],
                       l7={"A": ["drop"], "B": ["ok"]}),
            make_trial("http", 1, ["A", "B"], [10],
                       l7={"A": ["none"], "B": ["ok"]}),
        ]
        ds = make_campaign(tables)
        cls = classify_misses(ds, "http", "A")
        assert [MissCategory(c) for c in cls.category[:, 0]] \
            == [MissCategory.LONG_TERM] * 2


class TestNetworkSplit:
    def test_whole_slash24_counts_as_network(self):
        """Two same-/24 hosts consistently missed → network-level miss."""
        ips = [256, 257, 512]  # 0.0.1.0/24 twice, 0.0.2.0/24 once
        tables = [
            make_trial("http", t, ["A", "B"], ips, l7={
                "A": ["drop", "drop", "drop"],
                "B": ["ok", "ok", "ok"]})
            for t in range(2)
        ]
        ds = make_campaign(tables)
        cls = classify_misses(ds, "http", "A")
        split = cls.network_split(0, MissCategory.LONG_TERM)
        assert split == {"host": 1, "network": 2}

    def test_mixed_slash24_is_host_level(self):
        ips = [256, 257]
        tables = [
            make_trial("http", t, ["A", "B"], ips, l7={
                "A": ["drop", "ok"],
                "B": ["ok", "ok"]})
            for t in range(2)
        ]
        ds = make_campaign(tables)
        cls = classify_misses(ds, "http", "A")
        split = cls.network_split(0, MissCategory.LONG_TERM)
        assert split == {"host": 1, "network": 0}

    def test_empty_category(self):
        ds = three_trial_campaign()
        cls = classify_misses(ds, "http", "B")
        assert cls.network_split(1, MissCategory.LONG_TERM) \
            == {"host": 0, "network": 0}
