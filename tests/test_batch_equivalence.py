"""Differential suite for the fused trial-batch kernels.

:mod:`repro.sim.batch` re-derives every per-cell draw as a lattice over
the trial axis, so its one non-negotiable contract is *byte identity*
with the per-cell planned path — same ``Observation`` columns, same
campaign signatures across backends, same streamed planes.  This suite
pins that contract three ways:

* hypothesis property tests on the array-of-trials RNG helpers (the
  identity everything else rests on);
* cell-by-cell kernel differentials against ``world.observe`` —
  including targets subsets, ZMap shard configs, and plane-only mode;
* end-to-end campaign/sharded differentials plus the ``REPRO_BATCH``
  resolution rules and the batched metadata/job-count surface.
"""

import dataclasses

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.rng import (CounterRNG, keyed_bits_lattice, keyed_uniform_array,
                       keyed_uniform_lattice, stream_keys)
from repro.scanner.zmap import ZMapScanner
from repro.sim.batch import (PlaneSlice, batch_enabled, observe_trial_batch)
from repro.sim.campaign import (build_observation_grid, build_trial_batches,
                                run_campaign)
from repro.sim.scenario import paper_scenario, paper_sharded_scenario
from repro.sim.shard import run_sharded_campaign

SCALE = 0.02


def observation_bytes(obs):
    return (obs.protocol, obs.trial, obs.origin,
            obs.ip.tobytes(), obs.as_index.tobytes(),
            obs.country_index.tobytes(), obs.geo_index.tobytes(),
            obs.probe_mask.tobytes(), obs.l7.tobytes(), obs.time.tobytes())


def dataset_signature(dataset):
    return [
        (t.protocol, t.trial, tuple(t.origins),
         t.ip.tobytes(), t.as_index.tobytes(), t.country_index.tobytes(),
         t.geo_index.tobytes(), t.probe_mask.tobytes(), t.l7.tobytes(),
         t.time.tobytes())
        for t in sorted(dataset, key=lambda t: (t.protocol, t.trial))
    ]


def streaming_signature(result):
    """Planes + per-AS tallies of every streamed (protocol, trial)."""
    rows = []
    for (protocol, trial), streaming in sorted(result.trials.items()):
        packed = streaming.finish()
        rows.append((protocol, trial, tuple(packed.origins),
                     packed.packed.tobytes(),
                     streaming.truth_plane.tobytes(),
                     packed.total, packed.n_hosts,
                     streaming.truth_by_as.tobytes(),
                     streaming.seen_by_as.tobytes()))
    return rows


# ----------------------------------------------------------------------
# The RNG identity the whole kernel rests on
# ----------------------------------------------------------------------

suffix_lists = st.lists(
    st.tuples(st.text(min_size=0, max_size=6),
              st.integers(min_value=0, max_value=2 ** 31)),
    min_size=1, max_size=5)

counter_arrays = st.lists(
    st.integers(min_value=0, max_value=2 ** 40),
    min_size=0, max_size=40).map(lambda v: np.array(v, dtype=np.uint64))


class TestLatticeHelpers:
    @given(st.integers(min_value=0, max_value=2 ** 32), suffix_lists,
           counter_arrays)
    @settings(max_examples=100, deadline=None)
    def test_uniform_lattice_rows_match_derived_streams(
            self, seed, suffixes, counters):
        """Row *i* of the lattice is exactly the derived stream's array:
        ``rng.derive(*extra).uniform_array(counters)``, the per-cell
        spelling."""
        rng = CounterRNG(seed)
        keys = stream_keys(rng, suffixes)
        lattice = keyed_uniform_lattice(keys, counters)
        assert lattice.shape == (len(suffixes), len(counters))
        for i, extra in enumerate(suffixes):
            expected = rng.derive(*extra).uniform_array(counters)
            np.testing.assert_array_equal(lattice[i], expected)

    @given(st.integers(min_value=0, max_value=2 ** 32), suffix_lists,
           counter_arrays)
    @settings(max_examples=100, deadline=None)
    def test_bits_lattice_rows_match_derived_streams(
            self, seed, suffixes, counters):
        rng = CounterRNG(seed)
        keys = stream_keys(rng, suffixes)
        lattice = keyed_bits_lattice(keys, counters)
        for i, extra in enumerate(suffixes):
            expected = rng.derive(*extra).bits_array(counters)
            np.testing.assert_array_equal(lattice[i], expected)

    @given(st.integers(min_value=0, max_value=2 ** 32), counter_arrays)
    @settings(max_examples=50, deadline=None)
    def test_single_key_lattice_matches_keyed_array(self, seed, counters):
        rng = CounterRNG(seed)
        keys = stream_keys(rng, [("x", 7)])
        full = np.full(len(counters), keys[0], dtype=np.uint64)
        np.testing.assert_array_equal(
            keyed_uniform_lattice(keys, counters)[0],
            keyed_uniform_array(full, counters))


# ----------------------------------------------------------------------
# Switch resolution
# ----------------------------------------------------------------------

class TestBatchEnabled:
    def test_default_is_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH", raising=False)
        assert batch_enabled() is True

    def test_unplanned_is_never_batched(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH", raising=False)
        assert batch_enabled(planned=False) is False
        assert batch_enabled(batch=True, planned=False) is False

    @pytest.mark.parametrize("value", ["0", "false", "no", "off",
                                       " OFF ", "False"])
    def test_env_opt_out(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_BATCH", value)
        assert batch_enabled() is False

    @pytest.mark.parametrize("value", ["1", "true", "yes", "on", ""])
    def test_env_other_values_stay_on(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_BATCH", value)
        assert batch_enabled() is True

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "0")
        assert batch_enabled(batch=True) is True
        monkeypatch.delenv("REPRO_BATCH", raising=False)
        assert batch_enabled(batch=False) is False


# ----------------------------------------------------------------------
# Kernel-level byte identity against world.observe
# ----------------------------------------------------------------------

@pytest.fixture(scope="module", params=(3, 17), ids=lambda s: f"seed{s}")
def small_world(request):
    return paper_scenario(seed=request.param, scale=SCALE)


def batch_jobs_for(origins, config, protocols, n_trials):
    return build_trial_batches(origins, config, protocols, n_trials)


class TestKernelEquivalence:
    def test_every_cell_byte_identical(self, small_world):
        """The headline guarantee: output element *i* of a batch equals
        the per-cell observation of ``trials[i]``, byte for byte, for
        every (protocol, origin) of the paper grid."""
        world, origins, config = small_world
        names = tuple(o.name for o in origins)
        n_trials = 3
        for job in build_trial_batches(origins, config,
                                       ("http", "https", "ssh"), n_trials):
            scanners = [ZMapScanner(c) for c in job.configs]
            batched = observe_trial_batch(
                world, job.protocol, job.origin, job.trials, scanners,
                names, first_trial=job.first_trial)
            for trial, scanner, obs in zip(job.trials, scanners, batched):
                reference = world.observe(
                    job.protocol, trial, job.origin, scanner, names,
                    first_trial=job.first_trial)
                assert observation_bytes(obs) == observation_bytes(reference)

    def test_targets_subset_matches_per_cell(self, small_world):
        world, origins, config = small_world
        names = tuple(o.name for o in origins)
        view = world.hosts.for_protocol("http")
        targets = view.ip[::3].copy()
        origin = origins[0]
        trials = (0, 1, 2)
        scanners = [ZMapScanner(dataclasses.replace(config,
                                                    seed=config.seed + t))
                    for t in trials]
        batched = observe_trial_batch(world, "http", origin, trials,
                                      scanners, names, targets=targets)
        for trial, scanner, obs in zip(trials, scanners, batched):
            reference = world.observe("http", trial, origin, scanner,
                                      names, targets=targets)
            assert observation_bytes(obs) == observation_bytes(reference)

    def test_zmap_shard_config_matches_per_cell(self, small_world):
        """ZMap-style sharded configs (n_shards/shard) flow through the
        shared eligibility mask unchanged."""
        world, origins, config = small_world
        names = tuple(o.name for o in origins)
        sharded = dataclasses.replace(config, n_shards=4, shard=1)
        origin = origins[1]
        trials = (0, 1)
        scanners = [ZMapScanner(dataclasses.replace(sharded,
                                                    seed=sharded.seed + t))
                    for t in trials]
        batched = observe_trial_batch(world, "https", origin, trials,
                                      scanners, names)
        for trial, scanner, obs in zip(trials, scanners, batched):
            reference = world.observe("https", trial, origin, scanner,
                                      names)
            assert observation_bytes(obs) == observation_bytes(reference)

    def test_plane_only_matches_observation_success(self, small_world):
        world, origins, config = small_world
        names = tuple(o.name for o in origins)
        from repro.core.records import L7Status
        origin = origins[0]
        trials = (0, 1, 2)
        scanners = [ZMapScanner(dataclasses.replace(config,
                                                    seed=config.seed + t))
                    for t in trials]
        planes = observe_trial_batch(world, "ssh", origin, trials,
                                     scanners, names, plane_only=True)
        full = observe_trial_batch(world, "ssh", origin, trials,
                                   scanners, names)
        for plane, obs in zip(planes, full):
            assert isinstance(plane, PlaneSlice)
            np.testing.assert_array_equal(plane.ip, obs.ip)
            np.testing.assert_array_equal(plane.as_index, obs.as_index)
            np.testing.assert_array_equal(
                plane.accessible, obs.l7 == L7Status.SUCCESS.value)

    def test_mismatched_configs_rejected(self, small_world):
        world, origins, config = small_world
        names = tuple(o.name for o in origins)
        scanners = [ZMapScanner(config),
                    ZMapScanner(dataclasses.replace(config, n_probes=1))]
        with pytest.raises(ValueError, match="differ only in their seed"):
            observe_trial_batch(world, "http", origins[0], (0, 1),
                                scanners, names)

    def test_scanner_count_mismatch_rejected(self, small_world):
        world, origins, config = small_world
        with pytest.raises(ValueError, match="one scanner per trial"):
            observe_trial_batch(world, "http", origins[0], (0, 1),
                                [ZMapScanner(config)],
                                tuple(o.name for o in origins))


# ----------------------------------------------------------------------
# Campaign-level equivalence and the metadata surface
# ----------------------------------------------------------------------

class TestCampaignEquivalence:
    def test_batched_matches_per_cell_across_backends(self, small_world):
        world, origins, config = small_world
        reference = run_campaign(world, origins, config, batch=False)
        assert reference.metadata["batch"] is False
        for backend, workers in (("serial", None), ("thread", 4),
                                 ("process", 2)):
            batched = run_campaign(world, origins, config, batch=True,
                                   executor=backend, workers=workers)
            assert batched.metadata["batch"] is True
            assert dataset_signature(batched) == dataset_signature(reference)

    def test_batch_job_granularity(self, small_world):
        """One job per (protocol, origin) instead of per cell."""
        world, origins, config = small_world
        protocols = ("http", "https", "ssh")
        batches = build_trial_batches(origins, config, protocols, 3)
        grid = build_observation_grid(origins, config, protocols, 3)
        assert len(batches) == len(protocols) * len(origins)
        assert len(batches) < len(grid)
        assert sum(len(job.trials) for job in batches) == len(grid)
        batched = run_campaign(world, origins, config, batch=True)
        assert batched.metadata["execution"]["n_jobs"] == len(batches)

    def test_env_opt_out_flows_through_run_campaign(self, small_world,
                                                    monkeypatch):
        world, origins, config = small_world
        monkeypatch.setenv("REPRO_BATCH", "0")
        dataset = run_campaign(world, origins, config,
                               protocols=("http",), n_trials=2)
        assert dataset.metadata["batch"] is False
        monkeypatch.delenv("REPRO_BATCH", raising=False)
        dataset = run_campaign(world, origins, config,
                               protocols=("http",), n_trials=2)
        assert dataset.metadata["batch"] is True

    def test_unplanned_campaign_is_never_batched(self, small_world):
        world, origins, config = small_world
        dataset = run_campaign(world, origins, config,
                               protocols=("http",), n_trials=1,
                               planned=False, batch=True)
        assert dataset.metadata["batch"] is False


class TestShardedBatchEquivalence:
    @pytest.fixture(scope="class")
    def sharded_scenario(self):
        return paper_sharded_scenario(seed=5, scale=SCALE, n_shards=3)

    def test_streamed_planes_identical(self, sharded_scenario):
        """Plane-only batched streaming reduces to the same packed
        planes and per-AS tallies as per-cell streaming."""
        sharded, origins, config = sharded_scenario
        batched = run_sharded_campaign(sharded, origins, config,
                                       n_trials=2, batch=True)
        reference = run_sharded_campaign(sharded, origins, config,
                                         n_trials=2, batch=False)
        assert batched.metadata["batch"] is True
        assert reference.metadata["batch"] is False
        assert streaming_signature(batched) == streaming_signature(reference)

    def test_collected_dataset_matches_monolithic(self, sharded_scenario):
        sharded, origins, config = sharded_scenario
        _, collected = run_sharded_campaign(sharded, origins, config,
                                            n_trials=2, batch=True,
                                            collect=True)
        world, morigins, mconfig = paper_scenario(seed=5, scale=SCALE)
        mono = run_campaign(world, morigins, mconfig, n_trials=2,
                            batch=False)
        assert dataset_signature(collected) == dataset_signature(mono)
