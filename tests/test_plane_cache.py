"""Plane-granular result cache: incremental recomputation stays exact.

The contract under test is the tentpole guarantee: a campaign served
through the plane cache — cold, warm, partially warm, sharded, on any
executor backend — produces *the same bytes* as the non-incremental
reference path (``plane_cache=False``), while dispatching exactly the
units the cache does not already hold.  Corruption surfaces as a
recompute-and-overwrite, never as wrong bytes; ``REPRO_PLANE_CACHE=0``
bypasses the cache entirely; and the eviction pass
(:mod:`repro.io.prune`) removes oldest-first without breaking readers.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.io import prune
from repro.serve import planecache
from repro.serve.client import ServeClient
from repro.serve.handlers import (BadRequest, CampaignRequest, ServeState,
                                  parse_request)
from repro.serve.server import ServeConfig, ThreadedServer
from repro.sim.campaign import run_plane_campaign
from repro.sim.scenario import paper_scenario, paper_sharded_scenario
from repro.sim.shard import run_sharded_campaign

SEED = 11
SCALE = 0.02
PROTS = ("http", "https")
N_TRIALS = 2


@pytest.fixture()
def plane_dir(tmp_path, monkeypatch):
    """A per-test plane-cache root (the session default is shared)."""
    root = tmp_path / "planes"
    monkeypatch.setenv(planecache.ENV_PLANE_CACHE_DIR, str(root))
    return root


@pytest.fixture(scope="module")
def scenario():
    return paper_scenario(seed=SEED, scale=SCALE)


def grid_bytes(result) -> str:
    return json.dumps(result.report(), sort_keys=True, default=str)


def run(scenario, origins=None, plane_cache=None, **kwargs):
    world, all_origins, config = scenario
    kwargs.setdefault("protocols", PROTS)
    kwargs.setdefault("n_trials", N_TRIALS)
    return run_plane_campaign(world, origins or all_origins, config,
                              plane_cache=plane_cache, **kwargs)


# ----------------------------------------------------------------------
# Byte-identity against the non-incremental reference
# ----------------------------------------------------------------------

def test_cold_warm_and_disabled_are_byte_identical(scenario, plane_dir):
    reference = run(scenario, plane_cache=False)
    assert "plane_cache" not in reference.metadata

    cold = run(scenario)
    stats = cold.metadata["plane_cache"]
    assert stats["hits"] == 0 and stats["stores"] == stats["misses"] > 0
    assert grid_bytes(cold) == grid_bytes(reference)

    warm = run(scenario)
    stats = warm.metadata["plane_cache"]
    assert stats["misses"] == 0 and stats["hits"] > 0
    # A fully warm run dispatches nothing at all.
    assert warm.metadata["execution"] == {}
    assert grid_bytes(warm) == grid_bytes(reference)


def test_unbatched_path_matches_batched(scenario, plane_dir):
    batched = run(scenario, plane_cache=False)
    unbatched = run(scenario, plane_cache=False, batch=False)
    assert "plane_cache" not in unbatched.metadata
    assert grid_bytes(unbatched) == grid_bytes(batched)


# ----------------------------------------------------------------------
# Partial-hit reassembly: the cache pays only for the delta
# ----------------------------------------------------------------------

def test_add_origin_dispatches_only_the_new_batches(scenario, plane_dir):
    world, origins, config = scenario
    universe = [o.name for o in origins]
    added = "CEN"
    subset = tuple(o for o in origins if o.name != added)

    run(scenario, origins=subset, origin_universe=universe)
    full = run(scenario)
    stats = full.metadata["plane_cache"]
    # Exactly the new origin's units miss: one batch job per protocol,
    # n_trials units each.
    assert stats["misses"] == len(PROTS) * N_TRIALS
    assert full.metadata["execution"]["n_jobs"] == len(PROTS)
    assert grid_bytes(full) == grid_bytes(run(scenario, plane_cache=False))


def test_extend_trials_computes_only_the_new_trials(scenario, plane_dir):
    cold = run(scenario, n_trials=2)
    extended = run(scenario, n_trials=3)
    stats = extended.metadata["plane_cache"]
    assert stats["hits"] == cold.metadata["plane_cache"]["stores"]
    # Only trial-2 units were computed.
    assert 0 < stats["misses"] < stats["hits"]
    reference = run(scenario, n_trials=3, plane_cache=False)
    assert grid_bytes(extended) == grid_bytes(reference)


def test_add_protocol_computes_only_the_new_protocol(scenario, plane_dir):
    run(scenario, protocols=("http",))
    both = run(scenario, protocols=("http", "https"))
    stats = both.metadata["plane_cache"]
    assert stats["hits"] > 0
    hit_share = stats["hits"] / (stats["hits"] + stats["misses"])
    assert hit_share == 0.5  # http is warm, https is cold
    reference = run(scenario, protocols=("http", "https"),
                    plane_cache=False)
    assert grid_bytes(both) == grid_bytes(reference)


def test_origin_subset_reuses_full_universe_planes(scenario, plane_dir):
    world, origins, config = scenario
    universe = [o.name for o in origins]
    run(scenario)
    subset = origins[:3]
    warm = run(scenario, origins=subset, origin_universe=universe)
    assert warm.metadata["plane_cache"]["misses"] == 0
    reference = run(scenario, origins=subset, origin_universe=universe,
                    plane_cache=False)
    assert grid_bytes(warm) == grid_bytes(reference)


def test_universe_must_contain_every_origin(scenario, plane_dir):
    world, origins, config = scenario
    with pytest.raises(ValueError):
        run_plane_campaign(world, origins, config, protocols=PROTS,
                           n_trials=1, origin_universe=["AU"])


# ----------------------------------------------------------------------
# Sharded worlds, across executor backends
# ----------------------------------------------------------------------

@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
def test_sharded_incremental_matches_reference(tmp_path, monkeypatch,
                                               backend):
    monkeypatch.setenv(planecache.ENV_PLANE_CACHE_DIR,
                       str(tmp_path / "planes"))
    sharded, origins, config = paper_sharded_scenario(
        seed=SEED, scale=SCALE, n_shards=3)
    workers = 2 if backend != "serial" else None
    reference = run_sharded_campaign(sharded, origins, config,
                                     protocols=PROTS, n_trials=N_TRIALS,
                                     executor=backend, workers=workers,
                                     plane_cache=False)
    cold = run_sharded_campaign(sharded, origins, config,
                                protocols=PROTS, n_trials=N_TRIALS,
                                executor=backend, workers=workers)
    stats = cold.metadata["plane_cache"]
    assert stats["hits"] == 0 and stats["stores"] == stats["misses"] > 0
    assert grid_bytes(cold) == grid_bytes(reference)

    warm = run_sharded_campaign(sharded, origins, config,
                                protocols=PROTS, n_trials=N_TRIALS,
                                executor=backend, workers=workers)
    stats = warm.metadata["plane_cache"]
    assert stats["misses"] == 0 and stats["hits"] > 0
    assert warm.metadata["execution"] == {}
    assert grid_bytes(warm) == grid_bytes(reference)


# ----------------------------------------------------------------------
# Durability: corruption repairs, opt-out bypasses
# ----------------------------------------------------------------------

def test_corrupt_entry_recomputes_and_overwrites(scenario, plane_dir):
    reference = run(scenario, plane_cache=False)
    run(scenario)
    victim = sorted(plane_dir.glob("*.planes"))[0]
    blob = bytearray(victim.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    victim.write_bytes(bytes(blob))

    repaired = run(scenario)
    stats = repaired.metadata["plane_cache"]
    assert stats["repairs"] == 1 and stats["stores"] == 1
    assert grid_bytes(repaired) == grid_bytes(reference)

    # The overwrite healed the entry: the next run is fully warm.
    healed = run(scenario)
    assert healed.metadata["plane_cache"]["repairs"] == 0
    assert healed.metadata["plane_cache"]["misses"] == 0


def test_env_opt_out_writes_nothing(scenario, plane_dir, monkeypatch):
    monkeypatch.setenv(planecache.ENV_PLANE_CACHE, "0")
    result = run(scenario)
    assert "plane_cache" not in result.metadata
    assert not plane_dir.exists() or not list(plane_dir.glob("*.planes"))


def test_listing_and_world_grouping(scenario, plane_dir):
    run(scenario)
    entries = planecache.list_entries(plane_dir)
    assert entries and all(e.valid for e in entries)
    groups = planecache.by_world(entries)
    assert len(groups) == 1
    (digest, row), = groups.items()
    assert row["count"] == len(entries)
    assert row["nbytes"] == sum(e.nbytes for e in entries)
    assert planecache.clear(plane_dir) == len(entries)
    assert planecache.list_entries(plane_dir) == []


# ----------------------------------------------------------------------
# Eviction (REPRO_CACHE_MAX_BYTES / repro cache prune)
# ----------------------------------------------------------------------

def _fake_entries(root, count, size=100, suffix=".planes"):
    root.mkdir(parents=True, exist_ok=True)
    paths = []
    for index in range(count):
        path = root / f"entry{index}{suffix}"
        path.write_bytes(b"x" * size)
        os.utime(path, (1_000_000 + index, 1_000_000 + index))
        paths.append(path)
    return paths


def test_prune_evicts_oldest_first(tmp_path):
    paths = _fake_entries(tmp_path, 5, size=100)
    (tmp_path / "claim.lock").write_bytes(b"")  # never a candidate
    report = prune.prune(max_bytes=250, roots=[tmp_path])
    assert report.scanned == 5
    assert report.removed == 3 and report.kept == 2
    assert report.freed_bytes == 300 and report.kept_bytes == 200
    survivors = sorted(p.name for p in tmp_path.glob("*.planes"))
    assert survivors == ["entry3.planes", "entry4.planes"]
    assert (tmp_path / "claim.lock").exists()


def test_prune_spans_every_cache_suffix(tmp_path):
    for suffix in prune.CACHE_SUFFIXES:
        _fake_entries(tmp_path, 1, size=100, suffix=suffix)
    report = prune.prune(max_bytes=0, roots=[tmp_path])
    assert report.removed == len(prune.CACHE_SUFFIXES)
    assert not any(tmp_path.glob("entry*"))


def test_prune_requires_a_budget(tmp_path, monkeypatch):
    monkeypatch.delenv(prune.ENV_CACHE_MAX_BYTES, raising=False)
    with pytest.raises(ValueError):
        prune.prune(roots=[tmp_path])
    assert prune.maybe_prune() is None


def test_maybe_prune_honors_env(tmp_path, monkeypatch):
    _fake_entries(tmp_path, 4, size=100)
    monkeypatch.setenv(prune.ENV_CACHE_MAX_BYTES, "200")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_RESULT_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv(planecache.ENV_PLANE_CACHE_DIR, str(tmp_path))
    report = prune.maybe_prune()
    assert report is not None and report.removed == 2


def test_cache_prune_cli(tmp_path, monkeypatch, capsys):
    from repro.cli import main
    _fake_entries(tmp_path, 3, size=100)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_RESULT_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv(planecache.ENV_PLANE_CACHE_DIR, str(tmp_path))
    assert main(["cache", "prune", "--max-bytes", "150"]) == 0
    out = capsys.readouterr().out
    assert "pruned 2 of 3" in out
    assert len(list(tmp_path.glob("*.planes"))) == 1

    monkeypatch.delenv(prune.ENV_CACHE_MAX_BYTES, raising=False)
    assert main(["cache", "prune"]) == 2


# ----------------------------------------------------------------------
# Serving: the grid surface is incremental end-to-end
# ----------------------------------------------------------------------

SPEC = {"seed": SEED, "scale": SCALE, "protocols": list(PROTS),
        "n_trials": N_TRIALS}


def test_request_accepts_origins_and_report_surface():
    request = parse_request({"origins": ["BR", "AU"], "report": "grid",
                             **SPEC})
    assert request.origins == ("AU", "BR")  # normalized to scenario order
    assert request.report == "grid"
    # Selecting every origin is the same request as selecting none.
    full = parse_request({"origins": ["AU", "BR", "DE", "JP", "US1",
                                      "US64", "CEN", "CARINET"], **SPEC})
    assert full == parse_request(dict(SPEC))
    with pytest.raises(BadRequest):
        parse_request({"origins": ["XX"], **SPEC})
    with pytest.raises(BadRequest):
        parse_request({"origins": [], **SPEC})
    with pytest.raises(BadRequest):
        parse_request({"report": "pdf", **SPEC})


def test_serve_state_lru_key_is_canonical(tmp_path):
    state = ServeState(cache_dir=str(tmp_path))
    request = CampaignRequest(seed=SEED, scale=SCALE)
    state.world_for(request)
    state.world_for(request)
    (key,) = state._worlds.keys()
    assert key == json.dumps(
        {"scenario": "paper", "seed": SEED, "scale": SCALE, "shards": 1},
        sort_keys=True)
    assert json.loads(key) == dict(sorted(json.loads(key).items()))


def test_served_grid_is_incremental_and_byte_identical(tmp_path,
                                                       monkeypatch):
    monkeypatch.setenv(planecache.ENV_PLANE_CACHE_DIR,
                       str(tmp_path / "results"))
    config = ServeConfig(port=0, cache_dir=str(tmp_path / "results"),
                         queue_depth=16, request_timeout=120.0)
    with ThreadedServer(config=config) as ts:
        client = ServeClient(port=ts.port)
        first = client.report(report="grid", **SPEC)
        again = client.report(report="grid", **SPEC)
        assert first.source == "miss" and again.source == "hit"
        assert again.text == first.text

        planes = client.cache_planes()
        assert planes["count"] > 0
        assert planes["nbytes"] > 0 and len(planes["worlds"]) == 1

        # A subset request is a result-cache miss but a full plane hit:
        # zero new units are computed.
        before = client.metrics()["counters"]
        subset = client.report(report="grid", origins=["AU", "BR", "DE"],
                               **SPEC)
        after = client.metrics()["counters"]
        assert subset.source == "miss"
        assert subset.key != first.key
        assert after.get("serve.plane_miss", 0) == \
            before.get("serve.plane_miss", 0)
        assert after.get("serve.plane_hit", 0) > \
            before.get("serve.plane_hit", 0)

        # The full surface is a distinct cache identity.
        full = client.report(**SPEC)
        assert full.key != first.key
        assert full.text != first.text
    assert after["serve.cache_hit"] >= 1
    assert after["serve.cache_miss"] >= 2


def test_served_grid_matches_offline_plane_run(tmp_path, monkeypatch,
                                               scenario):
    monkeypatch.setenv(planecache.ENV_PLANE_CACHE_DIR,
                       str(tmp_path / "results"))
    config = ServeConfig(port=0, cache_dir=str(tmp_path / "results"),
                         queue_depth=16, request_timeout=120.0)
    with ThreadedServer(config=config) as ts:
        client = ServeClient(port=ts.port)
        served = client.report(report="grid", **SPEC)
    offline = run(scenario, plane_cache=False)
    expected = json.dumps(offline.report(), sort_keys=True, indent=2,
                          default=str) + "\n"
    assert served.text == expected
