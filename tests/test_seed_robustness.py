"""Seed-robustness: the paper's qualitative findings are not seed-luck.

The benchmarks run at seed 1; these tests re-check the headline shapes on
different seeds (at reduced scale, so they stay fast).  A finding that
only holds at one seed would be an artifact of calibration, not a
property of the mechanisms.
"""

import numpy as np
import pytest

import repro.core as core
from repro.sim.campaign import run_campaign
from repro.sim.scenario import paper_scenario

SCALE = 0.2


@pytest.fixture(scope="module", params=[2, 5])
def seeded_campaign(request):
    world, origins, config = paper_scenario(seed=request.param,
                                            scale=SCALE)
    ds = run_campaign(world, origins, config,
                      protocols=("http", "ssh"), n_trials=3)
    return world, ds


class TestHeadlineShapesAcrossSeeds:
    def test_censys_last_on_http(self, seeded_campaign):
        _, ds = seeded_campaign
        table = core.coverage_table(ds, "http")
        means = {o: table.mean_coverage(o) for o in table.origins}
        assert min(means, key=means.get) == "CEN"

    def test_ssh_below_http(self, seeded_campaign):
        _, ds = seeded_campaign
        http = core.coverage_table(ds, "http")
        ssh = core.coverage_table(ds, "ssh")
        for origin in http.origins:
            assert ssh.mean_coverage(origin) \
                < http.mean_coverage(origin) - 0.02

    def test_us64_best_on_ssh(self, seeded_campaign):
        _, ds = seeded_campaign
        ssh = core.coverage_table(ds, "ssh")
        means = {o: ssh.mean_coverage(o) for o in ssh.origins}
        assert max(means, key=means.get) == "US64"

    def test_multi_origin_monotone(self, seeded_campaign):
        _, ds = seeded_campaign
        table = core.multi_origin_table(ds, "http", max_k=3,
                                        single_probe=True)
        assert table[1].median < table[2].median < table[3].median
        assert table[3].median > 0.98

    def test_transient_dominates_for_academics(self, seeded_campaign):
        _, ds = seeded_campaign
        rows = core.figure2_rows(ds, "http")
        for origin in ("AU", "JP", "US1"):
            o_rows = [r for r in rows if r["origin"] == origin]
            transient = sum(r["transient_host"] + r["transient_network"]
                            for r in o_rows)
            long_term = sum(r["long_term_host"] + r["long_term_network"]
                            for r in o_rows)
            assert transient > long_term

    def test_censys_top3_concentration(self, seeded_campaign):
        world, ds = seeded_campaign
        conc = core.longterm_as_concentration(ds, "http")["CEN"]
        names = {world.topology.ases.by_index(i).name
                 for i, _ in conc.ranked[:4]}
        assert names & {"DXTL Tseung Kwan O Service", "EGI Hosting",
                        "Enzu"}

    def test_probabilistic_blocking_everywhere(self, seeded_campaign):
        _, ds = seeded_campaign
        breakdown = core.ssh_breakdown(ds)
        for origin in breakdown.origins:
            totals = breakdown.totals(origin)
            assert totals["probabilistic"] > 0
