"""Differential tests for sharded, out-of-core worlds (repro.sim.shard).

The tentpole guarantee is byte-identity: shard K of a world is buildable
in isolation, the concatenation of all shards equals the monolithic
build, a sharded campaign's collected dataset equals ``run_campaign`` on
the monolithic world across every executor backend, and every streamed
paper-grid analysis (coverage, multi-origin, bootstrap, per-AS rates)
equals its dataset-level counterpart to the last float.  These tests pin
each link of that chain at seed scale.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import bootstrap, coverage, multi_origin
from repro.core.streaming import BitPlaneWriter, StreamingTrial
from repro.io import worldcache
from repro.scanner.zmap import ZMapConfig
from repro.sim.campaign import campaign_fingerprint, run_campaign
from repro.sim.executor import BACKENDS
from repro.sim.shard import (DEFAULT_MEMORY_BUDGET, ENV_MEMORY_BUDGET,
                             MemoryBudgetError, ShardManifest,
                             build_sharded_world, memory_budget,
                             plan_shards, run_sharded_campaign)
from repro.sim.scenario import (paper_defaults, paper_origins, paper_specs,
                                build_world_from_specs)
from repro.topology.asn import PROTOCOLS
from repro.topology.generator import build_topology
from repro.topology.geo import default_countries

SEED = 3
SCALE = 0.04
N_SHARDS = 5
N_TRIALS = 2

TABLE_COLUMNS = ("ip", "as_index", "country_index", "geo_index",
                 "probe_mask", "l7", "time")


@pytest.fixture(scope="module")
def specs():
    return paper_specs(seed=SEED, scale=SCALE)


@pytest.fixture(scope="module")
def mono_world(specs):
    return build_world_from_specs(specs, SEED, paper_defaults(),
                                  cache=False)


@pytest.fixture(scope="module")
def sharded(specs):
    return build_sharded_world(specs, SEED, paper_defaults(),
                               n_shards=N_SHARDS, cache=False)


@pytest.fixture(scope="module")
def zmap():
    return ZMapConfig(seed=SEED, pps=100_000.0, n_probes=2)


@pytest.fixture(scope="module")
def mono_ds(mono_world, zmap):
    return run_campaign(mono_world, paper_origins(), zmap,
                        n_trials=N_TRIALS)


@pytest.fixture(scope="module")
def streamed(sharded, zmap):
    """(StreamingCampaignResult, CampaignDataset) from the serial path."""
    return run_sharded_campaign(sharded, paper_origins(), zmap,
                                n_trials=N_TRIALS, collect=True)


# ----------------------------------------------------------------------
# Shard planning
# ----------------------------------------------------------------------

class TestPlanShards:
    def test_deterministic_and_contiguous(self, specs):
        topology = build_topology(list(specs), default_countries())
        a = plan_shards(topology, n_shards=N_SHARDS)
        b = plan_shards(topology, n_shards=N_SHARDS)
        assert a == b
        assert a[0] == 0
        assert a[-1] == len(list(topology.ases))
        assert list(a) == sorted(a)
        assert len(set(a)) == len(a), "no empty shards"

    def test_n_shards_respected(self, specs):
        topology = build_topology(list(specs), default_countries())
        for n in (1, 2, 5, 8):
            boundaries = plan_shards(topology, n_shards=n)
            assert len(boundaries) - 1 <= n
            assert len(boundaries) - 1 >= 1

    def test_max_hosts_bounds_all_but_single_as_overshoot(self, specs):
        topology = build_topology(list(specs), default_countries())
        from repro.sim.shard import _per_as_rows
        rows = _per_as_rows(topology)
        target = 800
        boundaries = plan_shards(topology, max_hosts=target)
        for start, stop in zip(boundaries, boundaries[1:]):
            size = int(rows[start:stop].sum())
            # greedy first-fit: a shard closes as soon as it reaches the
            # target, so the overshoot is at most one AS's rows.
            assert size < target + int(rows[start:stop].max())

    def test_argument_validation(self, specs):
        topology = build_topology(list(specs), default_countries())
        with pytest.raises(ValueError, match="not both"):
            plan_shards(topology, n_shards=2, max_hosts=100)
        with pytest.raises(ValueError, match="n_shards"):
            plan_shards(topology, n_shards=0)
        with pytest.raises(ValueError, match="max_hosts"):
            plan_shards(topology, max_hosts=0)

    def test_manifest_row_counts_exact(self, sharded, mono_world):
        manifest = sharded.manifest
        assert manifest.n_shards == N_SHARDS
        assert sum(manifest.n_hosts) == len(mono_world.hosts.ip)
        for i in range(manifest.n_shards):
            lo, hi = manifest.as_range(i)
            in_range = ((mono_world.hosts.as_index >= lo)
                        & (mono_world.hosts.as_index < hi))
            assert manifest.n_hosts[i] == int(in_range.sum())

    def test_digest_identifies_partition(self, sharded, specs):
        other = build_sharded_world(specs, SEED, paper_defaults(),
                                    n_shards=3, cache=False)
        assert sharded.manifest.digest() != other.manifest.digest()
        again = build_sharded_world(specs, SEED, paper_defaults(),
                                    n_shards=N_SHARDS, cache=False)
        assert sharded.manifest.digest() == again.manifest.digest()
        meta = sharded.manifest.to_meta()
        assert meta["n_shards"] == N_SHARDS
        assert meta["digest"] == sharded.manifest.digest()


# ----------------------------------------------------------------------
# World-level byte-identity
# ----------------------------------------------------------------------

class TestShardedWorldEquality:
    def test_materialized_equals_monolithic(self, sharded, mono_world):
        world = sharded.materialize()
        for column in ("ip", "protocol", "as_index", "country_index"):
            np.testing.assert_array_equal(
                getattr(world.hosts, column),
                getattr(mono_world.hosts, column))

    def test_isolated_shard_equals_monolithic_slice(self, sharded,
                                                    mono_world):
        """Shard K built alone — no other shard touched — equals the
        monolithic table restricted to its AS range."""
        index = N_SHARDS - 2
        lo, hi = sharded.manifest.as_range(index)
        table = sharded.shard_hosts(index)
        mask = ((mono_world.hosts.as_index >= lo)
                & (mono_world.hosts.as_index < hi))
        for column in ("ip", "protocol", "as_index", "country_index"):
            np.testing.assert_array_equal(
                getattr(table, column),
                getattr(mono_world.hosts, column)[mask])

    def test_counts_by_protocol_matches_monolithic(self, sharded,
                                                   mono_world):
        counts = sharded.counts_by_protocol()
        for protocol in PROTOCOLS:
            view = mono_world.hosts.for_protocol(protocol)
            assert counts.get(protocol, 0) == len(view)

    def test_shard_world_observation_is_monolithic_restriction(
            self, sharded, mono_world, zmap):
        """Observing one shard's world yields exactly the monolithic
        observation rows whose hosts fall in the shard."""
        from repro.scanner.zmap import ZMapScanner
        origin = paper_origins()[0]
        names = tuple(o.name for o in paper_origins())
        scanner = ZMapScanner(zmap)
        index = 1
        lo, hi = sharded.manifest.as_range(index)
        whole = mono_world.observe("http", 0, origin, scanner, names)
        part = sharded.shard_world(index).observe("http", 0, origin,
                                                  scanner, names)
        mask = (whole.as_index >= lo) & (whole.as_index < hi)
        np.testing.assert_array_equal(part.ip, whole.ip[mask])
        np.testing.assert_array_equal(part.probe_mask,
                                      whole.probe_mask[mask])
        np.testing.assert_array_equal(part.l7, whole.l7[mask])
        np.testing.assert_array_equal(part.time, whole.time[mask])


# ----------------------------------------------------------------------
# Fingerprints and cache keys
# ----------------------------------------------------------------------

class TestFingerprints:
    def test_payload_matches_monolithic_fields(self, sharded, mono_world):
        from repro.telemetry.manifest import world_fingerprint
        payload = sharded.fingerprint_payload()
        mono = world_fingerprint(mono_world)
        assert payload["seed"] == mono["seed"]
        assert payload["n_ases"] == mono["n_ases"]
        assert payload["services"] == mono["services"]
        assert payload["shards"] == {
            "n": N_SHARDS, "digest": sharded.manifest.digest()}

    def test_campaign_fingerprint_distinguishes_sharding(
            self, sharded, mono_world, specs, zmap):
        origins = paper_origins()
        mono_fp = campaign_fingerprint(mono_world, zmap, origins,
                                       n_trials=N_TRIALS)
        shard_fp = campaign_fingerprint(sharded, zmap, origins,
                                        n_trials=N_TRIALS)
        assert mono_fp != shard_fp
        other = build_sharded_world(specs, SEED, paper_defaults(),
                                    n_shards=3, cache=False)
        assert campaign_fingerprint(other, zmap, origins,
                                    n_trials=N_TRIALS) != shard_fp
        again = build_sharded_world(specs, SEED, paper_defaults(),
                                    n_shards=N_SHARDS, cache=False)
        assert campaign_fingerprint(again, zmap, origins,
                                    n_trials=N_TRIALS) == shard_fp


# ----------------------------------------------------------------------
# Per-shard world cache
# ----------------------------------------------------------------------

class TestShardCache:
    def test_round_trip_list_and_clear(self, specs, tmp_path):
        directory = str(tmp_path / "shards")
        first = build_sharded_world(specs, SEED, paper_defaults(),
                                    n_shards=N_SHARDS, cache=directory)
        cold = [first.shard_hosts(i) for i in range(first.n_shards)]
        entries = worldcache.list_shard_entries(directory=directory)
        assert len(entries) == N_SHARDS
        assert all(e.valid for e in entries)
        by_services = sorted(e.n_services for e in entries)
        assert by_services == sorted(first.manifest.n_hosts)

        warm = build_sharded_world(specs, SEED, paper_defaults(),
                                   n_shards=N_SHARDS, cache=directory)
        for i in range(warm.n_shards):
            loaded = warm.shard_hosts(i)
            for column in ("ip", "protocol", "as_index", "country_index"):
                np.testing.assert_array_equal(getattr(loaded, column),
                                              getattr(cold[i], column))

        removed = worldcache.clear_shards(directory=directory)
        assert removed == N_SHARDS
        assert worldcache.list_shard_entries(directory=directory) == []

    def test_shard_key_depends_on_partition(self):
        a = worldcache.shard_key("base", 0, (0, 10, 20))
        assert a != worldcache.shard_key("base", 1, (0, 10, 20))
        assert a != worldcache.shard_key("base", 0, (0, 5, 20))
        assert a != worldcache.shard_key("other", 0, (0, 10, 20))
        assert a == worldcache.shard_key("base", 0, (0, 10, 20))


# ----------------------------------------------------------------------
# Streaming campaign: dataset byte-identity across backends
# ----------------------------------------------------------------------

class TestStreamingCampaign:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_collected_dataset_equals_monolithic(self, sharded, mono_ds,
                                                 zmap, backend):
        _, ds = run_sharded_campaign(sharded, paper_origins(), zmap,
                                     n_trials=N_TRIALS, executor=backend,
                                     collect=True)
        mono_keys = {(t.protocol, t.trial) for t in mono_ds}
        shard_keys = {(t.protocol, t.trial) for t in ds}
        assert mono_keys == shard_keys
        for table in ds:
            reference = mono_ds.trial_data(table.protocol, table.trial)
            assert table.origins == reference.origins
            assert table.n_probes == reference.n_probes
            for column in TABLE_COLUMNS:
                np.testing.assert_array_equal(
                    getattr(table, column), getattr(reference, column),
                    err_msg=f"{table.protocol}/{table.trial}/{column} "
                            f"via {backend}")

    def test_metadata_records_sharding_and_execution(self, streamed,
                                                     sharded):
        result, ds = streamed
        for metadata in (result.metadata, ds.metadata):
            assert metadata["sharded"] == sharded.manifest.to_meta()
            assert metadata["origins"] == [o.name for o in paper_origins()]
            assert metadata["n_trials"] == N_TRIALS
            execution = metadata["execution"]
            assert execution["backend"] == "serial"
            assert execution["n_shards"] == N_SHARDS
            assert execution["n_jobs"] > 0
        assert result.metadata["execution"].get("peak_rss_bytes", 0) > 0

    def test_shard_telemetry(self, sharded, zmap):
        from repro.telemetry import Telemetry
        with Telemetry() as tel:
            run_sharded_campaign(sharded, paper_origins()[:2], zmap,
                                 protocols=("http",), n_trials=1)
        assert tel.counters.total("shard.shards_processed") == N_SHARDS
        names = [r["name"] for r in tel.records if r.get("t") == "span"]
        assert "shard.run_campaign" in names


# ----------------------------------------------------------------------
# Streaming analyses vs dataset analyses — exact float equality
# ----------------------------------------------------------------------

class TestStreamingAnalyses:
    def test_origins_for(self, streamed):
        result, ds = streamed
        for protocol in ds.protocols:
            assert result.origins_for(protocol) == \
                ds.origins_for(protocol)
            assert result.trials_for(protocol) == ds.trials_for(protocol)

    def test_coverage_table(self, streamed):
        result, ds = streamed
        for protocol in ds.protocols:
            streamed_table = result.coverage_table(protocol)
            reference = coverage.coverage_table(ds, protocol)
            assert streamed_table.origins == reference.origins
            assert streamed_table.trials == reference.trials
            assert streamed_table.coverage == reference.coverage
            assert streamed_table.intersection == reference.intersection
            assert streamed_table.union_size == reference.union_size

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_k_origin_summary(self, streamed, k):
        result, ds = streamed
        mine = result.k_origin_summary("http", k)
        reference = multi_origin.k_origin_summary(ds, "http", k,
                                                  engine="packed")
        for stat in ("median", "q1", "q3", "minimum", "maximum", "std"):
            assert getattr(mine, stat) == getattr(reference, stat)
        assert [(s.combo, s.trial, s.coverage) for s in mine.samples] == \
            [(s.combo, s.trial, s.coverage) for s in reference.samples]

    def test_best_combination(self, streamed):
        result, ds = streamed
        for protocol in ds.protocols:
            assert result.best_combination(protocol, 2) == \
                multi_origin.best_combination(ds, protocol, 2,
                                              engine="packed")

    @pytest.mark.parametrize("origin", ["AU", "DE", "CEN"])
    def test_bootstrap_interval(self, streamed, origin):
        result, ds = streamed
        trial_data = ds.trial_data("https", 1)
        reference = bootstrap.coverage_interval(trial_data, origin,
                                                replicates=120, seed=9)
        mine = result.coverage_interval("https", 1, origin,
                                        replicates=120, seed=9)
        assert mine == reference

    def test_per_as_coverage(self, streamed, sharded):
        result, ds = streamed
        n_ases = len(list(sharded.topology.ases))
        for origin in ("US1", "CARINET"):
            truth_vec, seen_vec = result.per_as_coverage("http", origin)
            expect_truth = np.zeros(n_ases, dtype=np.int64)
            expect_seen = np.zeros(n_ases, dtype=np.int64)
            for trial in ds.trials_for("http"):
                table = ds.trial_data("http", trial)
                truth = table.ground_truth()
                expect_truth += np.bincount(table.as_index[truth],
                                            minlength=n_ases)
                # CARINET only scanned trial 1 — truth still accumulates
                # over every trial, matching the streaming accumulator.
                if table.has_origin(origin):
                    seen = table.accessible(origin) & truth
                    expect_seen += np.bincount(table.as_index[seen],
                                               minlength=n_ases)
            np.testing.assert_array_equal(truth_vec, expect_truth)
            np.testing.assert_array_equal(seen_vec, expect_seen)

    def test_report_is_jsonable_and_complete(self, streamed):
        result, ds = streamed
        report = result.report(max_k=2, replicates=60)
        encoded = json.loads(json.dumps(report))
        assert set(encoded) == set(ds.protocols)
        for protocol, section in encoded.items():
            assert section["origins"] == ds.origins_for(protocol)
            assert set(section["multi_origin"]) == {"1", "2"}
            assert 2 in [int(k) for k in section["best_combination"]]


# ----------------------------------------------------------------------
# Memory budget
# ----------------------------------------------------------------------

class TestMemoryBudget:
    def test_resolution_order(self, monkeypatch):
        monkeypatch.delenv(ENV_MEMORY_BUDGET, raising=False)
        assert memory_budget() == DEFAULT_MEMORY_BUDGET
        monkeypatch.setenv(ENV_MEMORY_BUDGET, "1048576")
        assert memory_budget() == 1048576
        assert memory_budget(42) == 42

    def test_undersized_budget_rejected_before_running(self, sharded,
                                                       zmap):
        with pytest.raises(MemoryBudgetError) as excinfo:
            run_sharded_campaign(sharded, paper_origins(), zmap,
                                 n_trials=N_TRIALS, budget=1)
        message = str(excinfo.value)
        assert ENV_MEMORY_BUDGET in message
        assert "shard" in message

    def test_footprint_scales_with_grid(self, sharded):
        small = sharded.shard_footprint(0, n_origins=1, n_trials=1)
        big = sharded.shard_footprint(0, n_origins=8, n_trials=3)
        assert big > small
        assert small > sharded.manifest.n_hosts[0]


# ----------------------------------------------------------------------
# Streaming primitives
# ----------------------------------------------------------------------

class TestBitPlaneWriter:
    def test_matches_monolithic_packbits(self):
        rng = np.random.default_rng(7)
        chunks = [rng.random(n) < 0.4
                  for n in (0, 3, 8, 13, 1, 0, 257, 6)]
        writer = BitPlaneWriter()
        for chunk in chunks:
            writer.append(chunk)
        whole = np.concatenate(chunks)
        np.testing.assert_array_equal(writer.finish(),
                                      np.packbits(whole))
        assert writer.n_bits == len(whole)

    def test_empty(self):
        writer = BitPlaneWriter()
        assert writer.n_bits == 0
        assert len(writer.finish()) == 0


class TestStreamingTrial:
    def _table(self, origins, ips, statuses):
        from tests.conftest import make_trial
        return make_trial("http", 0, origins, ips,
                          {o: statuses for o in origins})

    def test_origin_mismatch_rejected(self):
        trial = StreamingTrial(protocol="http", trial=0, n_ases=4)
        trial.add_shard(self._table(["A", "B"], [1, 2], ["ok", "fin"]))
        with pytest.raises(ValueError, match="share a grid"):
            trial.add_shard(self._table(["A", "C"], [3], ["ok"]))

    def test_add_after_finish_rejected(self):
        trial = StreamingTrial(protocol="http", trial=0, n_ases=4)
        trial.add_shard(self._table(["A"], [1, 2], ["ok", "drop"]))
        trial.finish()
        with pytest.raises(RuntimeError, match="finished"):
            trial.add_shard(self._table(["A"], [3], ["ok"]))

    def test_finish_without_shards_rejected(self):
        trial = StreamingTrial(protocol="http", trial=0, n_ases=4)
        with pytest.raises(RuntimeError, match="no shards"):
            trial.finish()
