"""Tests for path conditions: correlated loss and burst outages."""

import numpy as np
import pytest

from repro.conditions.loss import (
    LossDraw,
    PathLossModel,
    PathLossSpec,
    _norm_ppf,
)
from repro.conditions.outages import (
    BurstOutageModel,
    BurstOutageSpec,
    Outage,
    _poisson,
)
from repro.rng import CounterRNG


def _model(origin="AU", state_group=""):
    return PathLossModel(CounterRNG(5, "w"), origin,
                         state_group=state_group)


def _deliveries(model, n, trial=0, probe_no=0, epoch=0.0, random=0.0,
                persistent=0.0, times=None, host_offset=0):
    host_ids = np.arange(host_offset, host_offset + n, dtype=np.uint64)
    as_idx = np.zeros(n, dtype=np.int64)
    if times is None:
        times = np.linspace(0, 80000, n)
    return model.probe_delivered(
        host_ids, as_idx, times, trial, probe_no,
        np.full(n, epoch), np.full(n, random), np.full(n, persistent))


class TestLossDraw:
    def test_validation(self):
        with pytest.raises(ValueError):
            LossDraw(epoch_rate=1.5)
        with pytest.raises(ValueError):
            LossDraw(random_rate=-0.1)
        with pytest.raises(ValueError):
            LossDraw(persistent_fraction=2.0)

    def test_for_origin_fallbacks(self):
        spec = PathLossSpec(
            default=LossDraw(0.1),
            per_origin={"AU": LossDraw(0.2),
                        "us-stanford": LossDraw(0.3)})
        assert spec.for_origin("AU").epoch_rate == 0.2
        assert spec.for_origin("US1", "us-stanford").epoch_rate == 0.3
        assert spec.for_origin("DE").epoch_rate == 0.1
        assert spec.for_origin("DE", "nowhere").epoch_rate == 0.1


class TestPathLossModel:
    def test_no_loss_all_delivered(self):
        delivered = _deliveries(_model(), 5000)
        assert delivered.all()

    def test_random_loss_rate(self):
        delivered = _deliveries(_model(), 50000, random=0.05)
        assert abs((~delivered).mean() - 0.05) < 0.005

    def test_epoch_loss_rate(self):
        delivered = _deliveries(_model(), 50000, epoch=0.1)
        lost = (~delivered).mean()
        # Epoch loss ~= rate * BAD_EPOCH_LOSS.
        assert abs(lost - 0.097) < 0.02

    def test_back_to_back_probes_share_fate(self):
        """The paper's core loss finding: consecutive probes die together."""
        model = _model()
        n = 50000
        times = np.linspace(0, 80000, n)
        first = _deliveries(model, n, probe_no=0, epoch=0.05, times=times)
        second = _deliveries(model, n, probe_no=1, epoch=0.05,
                             times=times + 2e-4)
        lost_any = ~(first & second)
        lost_both = ~(first | second)
        assert lost_any.sum() > 0
        assert lost_both.sum() / lost_any.sum() > 0.95

    def test_delayed_probes_nearly_independent(self):
        model = _model()
        n = 50000
        times = np.linspace(0, 80000, n)
        first = _deliveries(model, n, probe_no=0, epoch=0.05, times=times)
        second = _deliveries(model, n, probe_no=1, epoch=0.05,
                             times=times + 600.0)  # 10 minutes later
        lost_any = ~(first & second)
        lost_both = ~(first | second)
        both_fraction = lost_both.sum() / lost_any.sum()
        assert both_fraction < 0.3

    def test_persistent_loss_stable_across_trials(self):
        model = _model()
        n = 20000
        lost_by_trial = []
        for trial in range(3):
            delivered = _deliveries(model, n, trial=trial, persistent=0.1)
            lost_by_trial.append(~delivered)
        # Persistent-lost hosts are identical in every trial.
        assert np.array_equal(lost_by_trial[0], lost_by_trial[1])
        assert np.array_equal(lost_by_trial[0], lost_by_trial[2])
        assert abs(lost_by_trial[0].mean() - 0.1) < 0.01

    def test_scalar_matches_vector(self):
        model = _model()
        draw = LossDraw(epoch_rate=0.3, random_rate=0.1,
                        persistent_fraction=0.2)
        n = 300
        host_ids = np.arange(n, dtype=np.uint64)
        as_idx = np.full(n, 7, dtype=np.int64)
        times = np.linspace(0, 1000, n)
        vec = model.probe_delivered(
            host_ids, as_idx, times, 1, 0,
            np.full(n, draw.epoch_rate), np.full(n, draw.random_rate),
            np.full(n, draw.persistent_fraction))
        for i in range(n):
            assert model.probe_delivered_one(
                int(host_ids[i]), 7, float(times[i]), 1, 0, draw) == vec[i]

    def test_shared_state_group_correlates_origins(self):
        """Colocated origins see correlated epoch loss."""
        a = PathLossModel(CounterRNG(5, "w"), "HE",
                          state_group="chicago")
        b = PathLossModel(CounterRNG(5, "w"), "NTT",
                          state_group="chicago")
        c = PathLossModel(CounterRNG(5, "w"), "JP")
        n = 40000
        la = ~_deliveries(a, n, epoch=0.05)
        lb = ~_deliveries(b, n, epoch=0.05)
        lc = ~_deliveries(c, n, epoch=0.05)
        colocated_overlap = (la & lb).sum() / max(la.sum(), 1)
        remote_overlap = (la & lc).sum() / max(la.sum(), 1)
        assert colocated_overlap > remote_overlap + 0.2

    def test_trial_epoch_rates_vary_by_trial(self):
        model = _model()
        as_idx = np.arange(1000, dtype=np.int64)
        base = np.full(1000, 0.01)
        var = np.ones(1000)
        t0 = model.trial_epoch_rates(base, var, as_idx, 0)
        t1 = model.trial_epoch_rates(base, var, as_idx, 1)
        assert not np.allclose(t0, t1)
        # Multiplier is centred: medians stay near the base rate.
        assert 0.005 < np.median(t0) < 0.02

    def test_epoch_seconds_validation(self):
        with pytest.raises(ValueError):
            PathLossModel(CounterRNG(1), "AU", epoch_seconds=0)


class TestNormPpf:
    def test_known_quantiles(self):
        u = np.array([0.5, 0.841344746, 0.975, 0.025, 0.158655254])
        z = _norm_ppf(u)
        expected = [0.0, 1.0, 1.959964, -1.959964, -1.0]
        assert np.allclose(z, expected, atol=1e-4)

    def test_symmetry(self):
        u = np.linspace(0.01, 0.99, 99)
        z = _norm_ppf(u)
        assert np.allclose(z, -_norm_ppf(1 - u), atol=1e-6)


class TestBurstOutages:
    def _model(self, duration=86400.0):
        return BurstOutageModel(CounterRNG(2, "w"), ["AU", "JP", "US1"],
                                duration)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            BurstOutageSpec(duration_mean_s=0)
        with pytest.raises(ValueError):
            BurstOutageSpec(events_per_origin_trial=-1)

    def test_windows_deterministic_and_cached(self):
        model = self._model()
        spec = BurstOutageSpec(events_per_origin_trial=2.0)
        first = model.windows(3, spec, 0)
        second = model.windows(3, spec, 0)
        assert first is second
        fresh = self._model().windows(3, spec, 0)
        assert [(w.origin_name, w.start) for w in first] \
            == [(w.origin_name, w.start) for w in fresh]

    def test_windows_within_scan(self):
        model = self._model(duration=1000.0)
        spec = BurstOutageSpec(events_per_origin_trial=3.0,
                               duration_mean_s=400.0)
        for window in model.windows(1, spec, 0):
            assert 0 <= window.start <= 1000.0
            assert window.start <= window.end <= 1000.0

    def test_zero_rate_no_windows(self):
        model = self._model()
        spec = BurstOutageSpec(events_per_origin_trial=0.0,
                               shared_events_per_trial=0.0)
        assert model.windows(1, spec, 0) == []

    def test_origin_multiplier_increases_events(self):
        base = BurstOutageSpec(events_per_origin_trial=0.5)
        boosted = BurstOutageSpec(events_per_origin_trial=0.5,
                                  origin_multipliers={"AU": 6.0})
        assert boosted.rate_for("AU") == 3.0
        assert boosted.rate_for("JP") == 0.5
        model_a = self._model()
        model_b = BurstOutageModel(CounterRNG(2, "w"),
                                   ["AU", "JP", "US1"], 86400.0)
        count_base = sum(
            sum(1 for w in model_a.windows(a, base, 0)
                if w.origin_name == "AU") for a in range(200))
        count_boost = sum(
            sum(1 for w in model_b.windows(a + 1000, boosted, 0)
                if w.origin_name == "AU") for a in range(200))
        assert count_boost > count_base * 2

    def test_lost_mask_matches_windows(self):
        model = self._model()
        spec = BurstOutageSpec(events_per_origin_trial=5.0,
                               duration_mean_s=5000.0)
        windows = [w for w in model.windows(7, spec, 0)
                   if w.origin_name == "AU"]
        assert windows, "expected at least one window at this rate"
        inside = windows[0].start + 1.0
        outside_times = np.array([inside, 86399.9])
        mask = model.lost_mask("AU", 0, np.array([7, 7]),
                               outside_times, {7: spec})
        assert mask[0]
        expected_late = any(w.covers(86399.9) for w in windows)
        assert mask[1] == expected_late

    def test_lost_one_matches_lost_mask(self):
        model = self._model()
        spec = BurstOutageSpec(events_per_origin_trial=5.0,
                               duration_mean_s=5000.0)
        times = np.linspace(0, 86000, 50)
        mask = model.lost_mask("JP", 1, np.full(50, 3), times, {3: spec})
        for i, t in enumerate(times):
            assert model.lost_one("JP", 1, 3, float(t), spec) == mask[i]

    def test_shared_events_hit_multiple_origins(self):
        model = BurstOutageModel(CounterRNG(9, "w"),
                                 ["A", "B", "C", "D"], 86400.0)
        spec = BurstOutageSpec(events_per_origin_trial=0.0,
                               shared_events_per_trial=4.0)
        windows = model.windows(1, spec, 0)
        by_start = {}
        for w in windows:
            by_start.setdefault(w.start, set()).add(w.origin_name)
        assert by_start
        for origins in by_start.values():
            assert len(origins) in (2, 3)

    def test_outage_covers(self):
        w = Outage(1, "AU", 0, 10.0, 20.0)
        assert w.covers(10.0) and w.covers(19.99)
        assert not w.covers(20.0) and not w.covers(9.99)

    def test_duration_validation(self):
        with pytest.raises(ValueError):
            BurstOutageModel(CounterRNG(1), ["A"], 0.0)


class TestPoisson:
    def test_zero_lambda(self):
        assert _poisson(CounterRNG(1, "p"), 0.0) == 0

    def test_mean_approximates_lambda(self):
        values = [_poisson(CounterRNG(1, "p", i), 2.5) for i in range(4000)]
        assert abs(np.mean(values) - 2.5) < 0.1

    def test_deterministic(self):
        assert _poisson(CounterRNG(1, "p", 7), 3.0) \
            == _poisson(CounterRNG(1, "p", 7), 3.0)
